// Test double for the network: a hub that connects protocol hosts with
// scriptable per-pair cost bits, drops and delays — so protocol logic can
// be exercised without the full net substrate.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/ids.h"

namespace rbcast::testing {

class FakeHub {
 public:
  explicit FakeHub(sim::Simulator& simulator) : simulator_(simulator) {}

  // Every message sent through any endpoint, in order.
  struct Sent {
    HostId from;
    HostId to;
    std::any payload;
    std::size_t bytes;
    std::string kind;
    sim::TimePoint at;
    net::TraceId trace_id{0};
  };
  std::vector<Sent> log;

  // One-way base delay from any host to any other.
  sim::Duration delay{sim::milliseconds(1)};

  [[nodiscard]] net::HostEndpoint& endpoint(HostId id) {
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) {
      it = endpoints_.emplace(id, std::make_unique<Endpoint>(*this, id)).first;
    }
    return *it->second;
  }

  void register_host(HostId id, net::DeliveryFn deliver) {
    receivers_[id] = std::move(deliver);
  }

  // Marks the (symmetric) pair as connected only via expensive links:
  // deliveries between them carry cost bit 1.
  void set_expensive(HostId a, HostId b, bool expensive) {
    if (expensive) {
      expensive_pairs_.insert(key(a, b));
    } else {
      expensive_pairs_.erase(key(a, b));
    }
  }

  // Drops everything sent from a to b (one direction).
  void set_drop(HostId a, HostId b, bool drop) {
    if (drop) {
      dropped_.insert({a, b});
    } else {
      dropped_.erase({a, b});
    }
  }

  // Drops everything to and from `h` (simulates disconnection).
  void isolate(HostId h, const std::vector<HostId>& others, bool isolated) {
    for (HostId o : others) {
      if (o == h) continue;
      set_drop(h, o, isolated);
      set_drop(o, h, isolated);
    }
  }

  [[nodiscard]] std::size_t sent_count(const std::string& kind) const {
    std::size_t n = 0;
    for (const auto& s : log) {
      if (s.kind == kind) ++n;
    }
    return n;
  }

 private:
  class Endpoint final : public net::HostEndpoint {
   public:
    Endpoint(FakeHub& hub, HostId self) : hub_(hub), self_(self) {}
    [[nodiscard]] HostId self() const override { return self_; }
    void send(HostId to, std::any payload, std::size_t bytes,
              std::string kind, net::TraceId trace_id) override {
      hub_.dispatch(self_, to, std::move(payload), bytes, std::move(kind),
                    trace_id);
    }

   private:
    FakeHub& hub_;
    HostId self_;
  };

  static std::pair<HostId, HostId> key(HostId a, HostId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  void dispatch(HostId from, HostId to, std::any payload, std::size_t bytes,
                std::string kind, net::TraceId trace_id) {
    log.push_back(
        Sent{from, to, payload, bytes, kind, simulator_.now(), trace_id});
    if (dropped_.contains({from, to})) return;
    const bool expensive = expensive_pairs_.contains(key(from, to));
    net::Delivery d{.from = from,
                    .to = to,
                    .expensive = expensive,
                    .payload = std::move(payload),
                    .bytes = bytes,
                    .kind = std::move(kind),
                    .sent_at = simulator_.now(),
                    .hops = 1,
                    .trace_id = trace_id};
    simulator_.after(delay, [this, d = std::move(d)] {
      auto it = receivers_.find(d.to);
      if (it != receivers_.end()) it->second(d);
    });
  }

  sim::Simulator& simulator_;
  std::map<HostId, std::unique_ptr<Endpoint>> endpoints_;
  std::map<HostId, net::DeliveryFn> receivers_;
  std::set<std::pair<HostId, HostId>> expensive_pairs_;
  std::set<std::pair<HostId, HostId>> dropped_;
};

}  // namespace rbcast::testing
