// Tests for the harness layer itself (Experiment wiring).
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "topo/generators.h"

namespace rbcast::harness {
namespace {

ScenarioOptions fast_options() {
  ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 32;
  return options;
}

TEST(Experiment, RejectsBadConfiguration) {
  topo::Topology empty;
  EXPECT_THROW(Experiment(std::move(empty), ScenarioOptions{}),
               std::invalid_argument);

  ScenarioOptions bad_source;
  bad_source.source = HostId{42};
  EXPECT_THROW(
      Experiment(topo::make_single_cluster(2).topology, bad_source),
      std::invalid_argument);
}

TEST(Experiment, BroadcastRecordsMetricsAndSeq) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  e.start();
  EXPECT_EQ(e.last_seq(), 0u);
  const util::Seq s1 = e.broadcast();
  const util::Seq s2 = e.broadcast("explicit body");
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(e.last_seq(), 2u);
  // The source's own delivery is recorded immediately.
  EXPECT_EQ(e.metrics().delivered_count(1), 1u);
}

TEST(Experiment, AllDeliveredFalseWhileStreamPending) {
  Experiment e(topo::make_single_cluster(3).topology, fast_options());
  e.start();
  EXPECT_TRUE(e.all_delivered());  // vacuously: nothing broadcast
  e.broadcast_stream(3, sim::seconds(1), sim::seconds(5));
  // Stream scheduled but not started: must NOT count as delivered.
  EXPECT_FALSE(e.all_delivered());
  e.run_until_delivered(sim::seconds(60));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Experiment, RunUntilDeliveredStopsEarlyOnCompletion) {
  Experiment e(topo::make_single_cluster(3).topology, fast_options());
  e.start();
  e.broadcast_stream(2, sim::milliseconds(100), sim::seconds(1));
  const sim::TimePoint done = e.run_until_delivered(sim::seconds(500));
  EXPECT_LT(done, sim::seconds(60));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Experiment, RunUntilDeliveredHitsDeadlineWhenPartitioned) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 1;
  const auto built = make_clustered_wan(wan);
  Experiment e(built.topology, fast_options());
  e.network().set_link_up(built.trunks[0], false);  // permanent partition
  e.start();
  e.broadcast();
  const sim::TimePoint done = e.run_until_delivered(sim::seconds(30));
  EXPECT_EQ(done, sim::seconds(30));
  EXPECT_FALSE(e.all_delivered());
}

TEST(Experiment, BasicProtocolModeWiresBaseline) {
  ScenarioOptions options = fast_options();
  options.protocol_kind = ProtocolKind::kBasic;
  options.basic.retransmit_period = sim::milliseconds(500);
  Experiment e(topo::make_single_cluster(3).topology, options);
  e.start();
  e.broadcast();
  e.run_until_delivered(sim::seconds(30));
  EXPECT_TRUE(e.all_delivered());
  EXPECT_GE(e.basic_source().counters().first_sends, 2u);
}

TEST(Experiment, SourceCanBeAnyHost) {
  ScenarioOptions options = fast_options();
  options.source = HostId{2};
  Experiment e(topo::make_single_cluster(3).topology, options);
  e.start();
  e.host(HostId{2}).broadcast("from host 2");
  // Wait: Experiment::broadcast targets the configured source.
  e.broadcast();
  e.run_until_delivered(sim::seconds(60));
  EXPECT_TRUE(e.all_delivered());
  EXPECT_FALSE(e.host(HostId{2}).parent().valid());
  const auto report = e.convergence();
  EXPECT_TRUE(report.tree_rooted_at_source) << report.detail;
}

TEST(Experiment, StaticClusterKnowledgeSeedsGroundTruth) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  ScenarioOptions options = fast_options();
  options.protocol.cluster_knowledge =
      core::Config::ClusterKnowledge::kStatic;
  Experiment e(make_clustered_wan(wan).topology, options);
  // Before any message flows, CLUSTER sets already match ground truth.
  EXPECT_TRUE(e.host(HostId{0}).state().in_cluster(HostId{1}));
  EXPECT_FALSE(e.host(HostId{0}).state().in_cluster(HostId{2}));
}

TEST(Experiment, HostViewsExposeAllHosts) {
  Experiment e(topo::make_single_cluster(4).topology, fast_options());
  const auto views = e.host_views();
  ASSERT_EQ(views.size(), 4u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i]->self().value, static_cast<std::int32_t>(i));
  }
}

}  // namespace
}  // namespace rbcast::harness
