// ByzantineTransport unit tests: each adversary behavior mutates exactly
// as specified, mutations are deterministic pure functions of (window,
// message, destination), honest hosts pass through untouched, and the
// behavior windows gate activation.
#include "harness/byzantine.h"

#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "core/messages.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/generators.h"
#include "transport/sim_transport.h"
#include "util/rng.h"

namespace rbcast::harness {
namespace {

using core::DataMsg;
using core::InfoMsg;
using core::ProtocolMessage;

// One cluster of `n` hosts over the simulated network, with `schedule`
// applied through the Byzantine decorator.
struct Rig {
  sim::Simulator sim;
  topo::Wan wan;
  util::RngFactory rngs{3};
  net::Network network;
  transport::SimTransport inner;
  ByzantineTransport byz;
  // Everything delivered to each host, in order.
  std::vector<std::vector<ProtocolMessage>> got;

  explicit Rig(int n, ByzantineSchedule schedule)
      : wan(make_wan(n)),
        network(sim, wan.topology, net::NetConfig{}, rngs),
        inner(sim, network),
        byz(inner, std::move(schedule), HostId{0}) {
    got.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      byz.attach(HostId{i}, [this, i](const net::Delivery& d) {
        if (const auto* m = std::any_cast<ProtocolMessage>(&d.payload)) {
          got[static_cast<std::size_t>(i)].push_back(*m);
        }
      });
    }
  }

  static topo::Wan make_wan(int n) {
    topo::ClusteredWanOptions opts;
    opts.clusters = 1;
    opts.hosts_per_cluster = n;
    return make_clustered_wan(opts);
  }

  net::HostEndpoint& endpoint(int i) {
    return byz.attach(HostId{i}, [](const net::Delivery&) {});
  }

  void send(int from, int to, ProtocolMessage m) {
    // Re-attaching returns the same (possibly interposed) endpoint.
    byz.attach(HostId{from}, [this, from](const net::Delivery& d) {
      if (const auto* pm = std::any_cast<ProtocolMessage>(&d.payload)) {
        got[static_cast<std::size_t>(from)].push_back(*pm);
      }
    }).send(HostId{to}, std::any(m), core::wire_size(m), core::kind_of(m), 0);
  }

  void run() { sim.run_until(sim.now() + sim::seconds(1)); }
};

ByzantineSchedule forever(HostId host, ByzantineBehavior::Kind kind) {
  return {{host, {ByzantineBehavior{kind, 0, 0}}}};
}

DataMsg data(util::Seq seq, const std::string& body) {
  DataMsg d;
  d.seq = seq;
  d.body = body;
  return d;
}

TEST(ByzantineTransport, CorruptFlipsARelayedBodyByte) {
  Rig rig(2, forever(HostId{1}, ByzantineBehavior::Kind::kCorrupt));
  rig.send(1, 0, ProtocolMessage{data(3, "hello")});
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 1u);
  const auto* out = std::get_if<DataMsg>(&rig.got[0][0]);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->seq, 3u);
  EXPECT_NE(out->body, core::Payload{"hello"});
  EXPECT_EQ(out->body.view().size(), 5u);  // one flipped byte, same length
  EXPECT_EQ(rig.byz.mutations(), 1u);
}

TEST(ByzantineTransport, CorruptionIsDeterministicAcrossRuns) {
  auto one_run = [] {
    Rig rig(2, forever(HostId{1}, ByzantineBehavior::Kind::kCorrupt));
    rig.send(1, 0, ProtocolMessage{data(3, "hello")});
    rig.run();
    return std::string(
        std::get<DataMsg>(rig.got[0].at(0)).body.view());
  };
  EXPECT_EQ(one_run(), one_run());
}

TEST(ByzantineTransport, EquivocateShowsDifferentFacesByDestination) {
  Rig rig(4, forever(HostId{1}, ByzantineBehavior::Kind::kEquivocate));
  rig.send(1, 0, ProtocolMessage{data(7, "payload")});  // even destination
  rig.send(1, 3, ProtocolMessage{data(7, "payload")});  // odd destination
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 1u);
  ASSERT_EQ(rig.got[3].size(), 1u);
  const auto& face_even = std::get<DataMsg>(rig.got[0][0]).body;
  const auto& face_odd = std::get<DataMsg>(rig.got[3][0]).body;
  EXPECT_NE(face_even, core::Payload{"payload"});
  EXPECT_NE(face_odd, core::Payload{"payload"});
  // The same (source, seq) tells two different stories.
  EXPECT_NE(face_even, face_odd);
  EXPECT_EQ(rig.byz.mutations(), 2u);
}

TEST(ByzantineTransport, LieInfoInflatesWatermarkAndClaimsRecipientAsParent) {
  Rig rig(2, forever(HostId{1}, ByzantineBehavior::Kind::kLieInfo));
  InfoMsg info;
  info.info.insert(1);
  info.info.insert(2);
  info.parent = kNoHost;
  rig.send(1, 0, ProtocolMessage{info});
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 1u);
  const auto* out = std::get_if<InfoMsg>(&rig.got[0][0]);
  ASSERT_NE(out, nullptr);
  // Sequences 3..10 are claimed but were never received.
  EXPECT_EQ(out->info.max_seq(), 10u);
  EXPECT_TRUE(out->info.contains(7));
  EXPECT_EQ(out->parent, HostId{0});
  EXPECT_EQ(rig.byz.mutations(), 1u);
}

TEST(ByzantineTransport, BogusOfferInjectsAForgedGapFillAfterInfo) {
  Rig rig(2, forever(HostId{1}, ByzantineBehavior::Kind::kBogusOffer));
  InfoMsg info;
  info.info.insert(1);
  rig.send(1, 0, ProtocolMessage{info});
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 2u);
  EXPECT_TRUE(std::holds_alternative<InfoMsg>(rig.got[0][0]));
  const auto* forged = std::get_if<DataMsg>(&rig.got[0][1]);
  ASSERT_NE(forged, nullptr);
  EXPECT_EQ(forged->seq, 6u);  // max_seq 1 + 5
  EXPECT_TRUE(forged->gap_fill);
  EXPECT_EQ(forged->body, core::Payload{"byzantine-bogus-offer"});
  EXPECT_FALSE(forged->auth.has_value());  // the adversary cannot sign
  EXPECT_EQ(rig.byz.mutations(), 1u);
}

TEST(ByzantineTransport, HonestHostsPassThroughUntouched) {
  Rig rig(3, forever(HostId{1}, ByzantineBehavior::Kind::kCorrupt));
  rig.send(2, 0, ProtocolMessage{data(3, "hello")});
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 1u);
  EXPECT_EQ(std::get<DataMsg>(rig.got[0][0]).body, core::Payload{"hello"});
  EXPECT_EQ(rig.byz.mutations(), 0u);
  EXPECT_EQ(rig.byz.byzantine_hosts(), std::set<HostId>{HostId{1}});
}

TEST(ByzantineTransport, BehaviorWindowGatesActivation) {
  ByzantineSchedule schedule{
      {HostId{1},
       {ByzantineBehavior{ByzantineBehavior::Kind::kCorrupt, 10.0, 20.0}}}};
  Rig rig(2, std::move(schedule));
  // t=0: before the window — the relay is still honest.
  rig.send(1, 0, ProtocolMessage{data(1, "early")});
  rig.run();
  ASSERT_EQ(rig.got[0].size(), 1u);
  EXPECT_EQ(std::get<DataMsg>(rig.got[0][0]).body, core::Payload{"early"});

  // t=15: inside the window.
  rig.sim.run_until(sim::TimePoint{} + sim::seconds(15));
  rig.send(1, 0, ProtocolMessage{data(1, "mid")});
  rig.run();
  ASSERT_EQ(rig.got[0].size(), 2u);
  EXPECT_NE(std::get<DataMsg>(rig.got[0][1]).body, core::Payload{"mid"});

  // t=25: after the window — honest again.
  rig.sim.run_until(sim::TimePoint{} + sim::seconds(25));
  rig.send(1, 0, ProtocolMessage{data(1, "late")});
  rig.run();
  ASSERT_EQ(rig.got[0].size(), 3u);
  EXPECT_EQ(std::get<DataMsg>(rig.got[0][2]).body, core::Payload{"late"});
  EXPECT_EQ(rig.byz.mutations(), 1u);
}

TEST(ByzantineTransport, StaleAuthTagRidesAlongUnrecomputed) {
  Rig rig(2, forever(HostId{1}, ByzantineBehavior::Kind::kCorrupt));
  DataMsg m = data(3, "hello");
  m.auth = core::make_auth_tag(0xfeedULL, HostId{0}, 3, "hello");
  rig.send(1, 0, ProtocolMessage{m});
  rig.run();

  ASSERT_EQ(rig.got[0].size(), 1u);
  const auto& out = std::get<DataMsg>(rig.got[0][0]);
  // Body changed, but the tag is the source's original — so verification
  // against the mutated body must fail.
  ASSERT_TRUE(out.auth.has_value());
  EXPECT_EQ(*out.auth, *m.auth);
  EXPECT_FALSE(core::verify_auth_tag(0xfeedULL, HostId{0}, 3,
                                     out.body.view(), *out.auth));
}

}  // namespace
}  // namespace rbcast::harness
