// Claim-level regression tests: miniature versions of the bench scenarios
// asserting the *direction* of every Section 5/6 result. If a code change
// flips who wins an experiment, these fail — the reproduction's
// conclusions are part of the test suite.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast {
namespace {

using harness::Experiment;
using harness::ProtocolKind;
using harness::ScenarioOptions;

core::Config bench_config() {
  core::Config c;
  c.attach_period = sim::seconds(1);
  c.info_period_intra = sim::milliseconds(500);
  c.info_period_inter = sim::seconds(2);
  c.gapfill_period_neighbor = sim::seconds(1);
  c.gapfill_period_far = sim::seconds(4);
  c.parent_timeout = sim::seconds(6);
  c.attach_ack_timeout = sim::seconds(2);
  c.data_bytes = 256;
  return c;
}

// Shared runner: warm up, stream, return the experiment for inspection.
std::unique_ptr<Experiment> run_scenario(topo::Topology topology,
                                         ProtocolKind kind, int messages,
                                         std::uint64_t seed = 1) {
  ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = bench_config();
  options.basic.retransmit_period = sim::seconds(2);
  options.seed = seed;
  auto e = std::make_unique<Experiment>(std::move(topology), options);
  e->start();
  e->broadcast();  // warm-up
  e->run_for(sim::seconds(30));
  e->metrics().reset();
  e->broadcast_stream(messages, sim::milliseconds(500),
                      e->simulator().now() + sim::milliseconds(1));
  e->run_until_delivered(e->simulator().now() + sim::seconds(300),
                         sim::milliseconds(200));
  return e;
}

// E1: the tree's inter-cluster cost sits near k-1; basic pays ~m*(k-1).
TEST(Claims, TreeCostNearOptimalBasicScalesWithHosts) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = 3;
  wan.shape = topo::TrunkShape::kRing;
  constexpr int kMessages = 20;

  auto tree = run_scenario(make_clustered_wan(wan).topology,
                           ProtocolKind::kPaper, kMessages);
  auto basic = run_scenario(make_clustered_wan(wan).topology,
                            ProtocolKind::kBasic, kMessages);
  ASSERT_TRUE(tree->all_delivered());
  ASSERT_TRUE(basic->all_delivered());

  const double tree_cost =
      static_cast<double>(tree->metrics().intercluster_data_sends()) /
      kMessages;
  const double basic_cost =
      static_cast<double>(basic->metrics().intercluster_data_sends()) /
      kMessages;
  // k-1 = 3; allow some gap-fill slack but nowhere near basic's 9.
  EXPECT_LT(tree_cost, 4.5);
  EXPECT_GE(tree_cost, 3.0);
  EXPECT_GT(basic_cost, 8.0);
  EXPECT_GT(basic_cost, 1.8 * tree_cost);
}

// E2: comparable delay at small scale, tree wins at medium scale.
TEST(Claims, TreeDelayComparableSmallAndBetterAtScale) {
  topo::ClusteredWanOptions small;
  small.clusters = 2;
  small.hosts_per_cluster = 1;
  auto tree_small = run_scenario(make_clustered_wan(small).topology,
                                 ProtocolKind::kPaper, 20);
  auto basic_small = run_scenario(make_clustered_wan(small).topology,
                                  ProtocolKind::kBasic, 20);
  const double tree_mean = tree_small->metrics().all_latencies().mean();
  const double basic_mean = basic_small->metrics().all_latencies().mean();
  EXPECT_LT(tree_mean, basic_mean * 1.5 + 0.01);  // comparable

  topo::ClusteredWanOptions big;
  big.clusters = 4;
  big.hosts_per_cluster = 6;
  auto tree_big = run_scenario(make_clustered_wan(big).topology,
                               ProtocolKind::kPaper, 20, 2);
  auto basic_big = run_scenario(make_clustered_wan(big).topology,
                                ProtocolKind::kBasic, 20, 2);
  EXPECT_LT(tree_big->metrics().all_latencies().mean(),
            basic_big->metrics().all_latencies().mean());
}

// E3: the tree's redelivery traffic is mostly intra-cluster; basic's is
// essentially all inter-cluster.
TEST(Claims, RecoveryLocalityUnderLoss) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.expensive.loss_probability = 0.10;
  wan.cheap.loss_probability = 0.02;

  auto tree = run_scenario(make_clustered_wan(wan).topology,
                           ProtocolKind::kPaper, 20, 3);
  auto basic = run_scenario(make_clustered_wan(wan).topology,
                            ProtocolKind::kBasic, 20, 3);
  ASSERT_TRUE(tree->all_delivered());
  ASSERT_TRUE(basic->all_delivered());

  const auto& tm = tree->metrics();
  const double tree_redeliveries =
      static_cast<double>(tm.counter("send.gapfill"));
  const double tree_inter =
      static_cast<double>(tm.counter("send.intercluster.gapfill"));
  ASSERT_GT(tree_redeliveries, 0.0);
  EXPECT_LT(tree_inter / tree_redeliveries, 0.7);

  const auto& bm = basic->metrics();
  const double basic_retx = static_cast<double>(bm.counter("send.data_retx"));
  const double basic_inter =
      static_cast<double>(bm.counter("send.intercluster.data_retx"));
  if (basic_retx > 0) {
    EXPECT_GT(basic_inter / basic_retx, 0.7);
  }
}

// E5: the basic algorithm's source-server backlog exceeds the tree's.
TEST(Claims, BasicCongestsTheSourceServer) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = 6;
  wan.shape = topo::TrunkShape::kStar;
  const auto built_a = make_clustered_wan(wan);
  const auto built_b = make_clustered_wan(wan);
  const ServerId source_server = built_a.topology.host(HostId{0}).server;

  // A burst: messages with no spacing.
  ScenarioOptions options;
  options.protocol = bench_config();
  options.protocol.data_bytes = 1024;
  options.basic.retransmit_period = sim::seconds(2);

  auto run_burst = [&](topo::Topology t, ProtocolKind kind) {
    options.protocol_kind = kind;
    auto e = std::make_unique<Experiment>(std::move(t), options);
    e->start();
    e->broadcast();
    e->run_for(sim::seconds(30));
    e->metrics().reset();
    e->broadcast_stream(15, 0, e->simulator().now() + sim::milliseconds(1));
    e->run_until_delivered(e->simulator().now() + sim::seconds(600),
                           sim::milliseconds(200));
    return e->metrics().max_queue_backlog_seconds(source_server);
  };
  const double tree_backlog =
      run_burst(built_a.topology, ProtocolKind::kPaper);
  const double basic_backlog =
      run_burst(built_b.topology, ProtocolKind::kBasic);
  EXPECT_GT(basic_backlog, 2.0 * tree_backlog);
}

// E6: control traffic is independent of the data rate.
TEST(Claims, ControlTrafficIndependentOfDataRate) {
  auto control_rate = [&](int messages) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 3;
    wan.hosts_per_cluster = 2;
    ScenarioOptions options;
    options.protocol = bench_config();
    Experiment e(make_clustered_wan(wan).topology, options);
    e.start();
    e.broadcast();
    e.run_for(sim::seconds(20));
    e.metrics().reset();
    const sim::TimePoint t0 = e.simulator().now();
    if (messages > 0) {
      e.broadcast_stream(messages, sim::milliseconds(500),
                         t0 + sim::milliseconds(1));
    }
    e.run_until(t0 + sim::seconds(60));
    const auto& m = e.metrics();
    const double data = static_cast<double>(m.counter("send.data") +
                                            m.counter("send.gapfill"));
    return (static_cast<double>(m.counter_prefix_sum("send.")) - data -
            static_cast<double>(
                m.counter_prefix_sum("send.intercluster."))) /
           60.0;
  };
  const double idle = control_rate(0);
  const double busy = control_rate(100);
  EXPECT_NEAR(busy, idle, idle * 0.1 + 0.5);
}

// E14: ordering costs delay under loss, nothing without loss.
TEST(Claims, OrderingCostsDelayOnlyUnderLoss) {
  auto mean_delay = [&](double loss, bool ordered) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 2;
    wan.hosts_per_cluster = 2;
    wan.expensive.loss_probability = loss;
    ScenarioOptions options;
    options.protocol = bench_config();
    options.ordered_delivery = ordered;
    options.seed = 9;
    Experiment e(make_clustered_wan(wan).topology, options);
    e.start();
    e.broadcast();
    e.run_for(sim::seconds(20));
    e.metrics().reset();
    e.broadcast_stream(30, sim::milliseconds(400),
                       e.simulator().now() + sim::milliseconds(1));
    e.run_until_delivered(e.simulator().now() + sim::seconds(300),
                          sim::milliseconds(100));
    return e.metrics().all_latencies().mean();
  };
  EXPECT_NEAR(mean_delay(0.0, false), mean_delay(0.0, true), 1e-6);
  EXPECT_LT(mean_delay(0.20, false), mean_delay(0.20, true));
}

}  // namespace
}  // namespace rbcast
