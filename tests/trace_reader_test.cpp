// Trace read path: JSONL parsing round-trips what JsonlSink writes, the
// structural JSON validator accepts/rejects correctly, and the analysis
// queries (summary, timeline, lineage, convergence) answer real runs —
// including the acceptance gate that --lineage reconstructs the full
// relay + gap-fill path of one sequence number on a 4-cluster topology.
#include "trace/trace_reader.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "topo/generators.h"
#include "trace/trace_sink.h"

namespace rbcast::trace {
namespace {

harness::ScenarioOptions fast_options(std::uint64_t seed = 1) {
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.parent_timeout = sim::seconds(3);
  options.protocol.attach_ack_timeout = sim::milliseconds(400);
  options.protocol.data_bytes = 32;
  options.seed = seed;
  return options;
}

TraceRecord parse_ok(const std::string& line) {
  TraceRecord r;
  std::string error;
  EXPECT_TRUE(parse_jsonl_line(line, &r, &error)) << line << ": " << error;
  return r;
}

TEST(ParseJsonl, RoundTripsWhatJsonlSinkWrites) {
  TraceRecord original;
  original.at = 1500000;
  original.category = "net";
  original.name = "deliver";
  original.host = HostId{5};
  original.field("kind", std::string("data"))
      .field("bytes", std::int64_t{64})
      .field("ratio", 0.25)
      .field("ok", true)
      .field("text", std::string("a\"b\\c\nd"));

  std::ostringstream os;
  JsonlSink sink(os);
  sink.record(original);
  std::string line = os.str();
  line.pop_back();  // trailing newline

  const TraceRecord parsed = parse_ok(line);
  EXPECT_EQ(parsed.at, original.at);
  EXPECT_EQ(parsed.category, "net");
  EXPECT_EQ(parsed.name, "deliver");
  EXPECT_EQ(parsed.host.value, 5);
  EXPECT_EQ(field_string(parsed, "kind"), "data");
  EXPECT_EQ(field_int(parsed, "bytes"), 64);
  EXPECT_EQ(field_string(parsed, "text"), "a\"b\\c\nd");
  const FieldValue* ok = find_field(parsed, "ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(std::holds_alternative<bool>(*ok));
  const FieldValue* ratio = find_field(parsed, "ratio");
  ASSERT_NE(ratio, nullptr);
  ASSERT_TRUE(std::holds_alternative<double>(*ratio));
  EXPECT_DOUBLE_EQ(std::get<double>(*ratio), 0.25);
}

TEST(ParseJsonl, RunGlobalHostParsesAsNoHost) {
  const TraceRecord r = parse_ok(
      R"({"t":0,"cat":"metric","ev":"counters","host":-1,"delivered":3})");
  EXPECT_EQ(r.host, kNoHost);
  EXPECT_EQ(field_int(r, "delivered"), 3);
}

TEST(ParseJsonl, RejectsMalformedLines) {
  TraceRecord r;
  std::string error;
  for (const char* bad :
       {"", "not json", "[1,2]", R"({"t":1)", R"({"t":1} trailing)",
        R"({"t":1,"cat":"x","ev":"y","host":0,})",
        R"({"t":"not-a-number","cat":"x","ev":"y"})"}) {
    EXPECT_FALSE(parse_jsonl_line(bad, &r, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ReadJsonl, SkipsEmptyLinesAndNamesBadLineNumbers) {
  std::istringstream good(
      "{\"t\":1,\"cat\":\"net\",\"ev\":\"a\",\"host\":0}\n"
      "\n"
      "{\"t\":2,\"cat\":\"net\",\"ev\":\"b\",\"host\":1}\n");
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(read_jsonl(good, &records, &error)) << error;
  EXPECT_EQ(records.size(), 2u);

  std::istringstream bad(
      "{\"t\":1,\"cat\":\"net\",\"ev\":\"a\",\"host\":0}\n"
      "oops\n");
  records.clear();
  EXPECT_FALSE(read_jsonl(bad, &records, &error));
  EXPECT_NE(error.find("2"), std::string::npos)
      << "error should name the offending line: " << error;
}

TEST(JsonSyntax, AcceptsValidDocuments) {
  std::string error;
  for (const char* ok :
       {"{}", "[]", "null", "true", "-1.5e3", "\"a\\u00e9b\"",
        R"([{"a":[1,2,{"b":null}]},"x"])", "  [1,\n2]  "}) {
    EXPECT_TRUE(json_syntax_valid(ok, &error)) << ok << ": " << error;
  }
}

TEST(JsonSyntax, RejectsInvalidDocuments) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "[1 2]", "nul", "\"unterminated",
        "01", "[1],", "{\"a\" 1}", "\"bad\\q\""}) {
    EXPECT_FALSE(json_syntax_valid(bad, &error)) << bad;
  }
}

TEST(JsonSyntax, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  std::string error;
  EXPECT_FALSE(json_syntax_valid(deep, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

// Shared traced run for the query tests: 4 clusters, lossy trunks so gap
// filling actually fires.
class TracedRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo::ClusteredWanOptions wan;
    wan.clusters = 4;
    wan.hosts_per_cluster = 3;
    wan.expensive.loss_probability = 0.15;
    std::ostringstream os;
    JsonlSink sink(os);
    harness::Experiment e(make_clustered_wan(wan).topology,
                          fast_options(23));
    e.set_trace_sink(&sink);
    e.enable_metric_sampling(sim::seconds(1));
    e.start();
    e.broadcast_stream(6, sim::milliseconds(500), sim::seconds(1));
    const sim::TimePoint done = e.run_until_delivered(sim::seconds(180));
    ASSERT_TRUE(e.all_delivered());
    e.sampler()->sample_now();
    sink.close();

    std::istringstream is(os.str());
    std::string error;
    records_ = new std::vector<TraceRecord>;
    ASSERT_TRUE(read_jsonl(is, records_, &error)) << error;
    host_count_ = static_cast<std::int32_t>(e.host_count());
    source_ = e.source().value;
    done_at_ = done;
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static std::vector<TraceRecord>* records_;
  static std::int32_t host_count_;
  static std::int32_t source_;
  static sim::TimePoint done_at_;
};

std::vector<TraceRecord>* TracedRunTest::records_ = nullptr;
std::int32_t TracedRunTest::host_count_ = 0;
std::int32_t TracedRunTest::source_ = 0;
sim::TimePoint TracedRunTest::done_at_ = 0;

TEST_F(TracedRunTest, ManifestLeadsTheTrace) {
  const TraceRecord* m = find_manifest(*records_);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m, &records_->front());
  EXPECT_EQ(field_int(*m, "seed"), 23);
  EXPECT_EQ(field_string(*m, "protocol"), "paper");
  EXPECT_FALSE(field_string(*m, "topology").empty());
  EXPECT_FALSE(field_string(*m, "config").empty());
}

TEST_F(TracedRunTest, SummaryCountsAllCategories) {
  const TraceSummary s = summarize(*records_);
  EXPECT_EQ(s.records, records_->size());
  EXPECT_EQ(s.host_count, static_cast<std::size_t>(host_count_));
  EXPECT_EQ(s.by_category.count("manifest"), 1u);
  EXPECT_GT(s.by_category.at("protocol"), 0u);
  EXPECT_GT(s.by_category.at("net"), 0u);
  EXPECT_GT(s.by_category.at("metric"), 0u);
  // Every host (source included) logs a delivery of each of the 6
  // messages.
  EXPECT_EQ(s.deliveries, static_cast<std::size_t>(host_count_) * 6u);
  EXPECT_GT(s.drops, 0u) << "lossy trunks should drop something";
  EXPECT_EQ(s.max_seq, 6u);
  EXPECT_GE(s.last_at, s.first_at);
  EXPECT_GT(s.by_event.count("metric/latency"), 0u);
}

TEST_F(TracedRunTest, TimelineIsPerHostAndTimeOrdered) {
  const std::vector<TraceRecord> line = timeline(*records_, 3);
  ASSERT_FALSE(line.empty());
  sim::TimePoint prev = 0;
  for (const TraceRecord& r : line) {
    EXPECT_EQ(r.host.value, 3);
    EXPECT_GE(r.at, prev);
    prev = r.at;
  }
  EXPECT_TRUE(timeline(*records_, 99).empty());
}

TEST_F(TracedRunTest, LineageReconstructsFullRelayAndGapFillPath) {
  // The acceptance gate: the lineage of one seq on the 4-cluster run
  // must contain the relay hops reaching every host, and — because any
  // delivery may arrive via gap fill on a lossy run — at least one seq
  // across the run should show gap-fill repair events.
  std::vector<std::int32_t> hosts;
  for (std::int32_t h = 0; h < host_count_; ++h) hosts.push_back(h);

  std::size_t gapfill_steps = 0;
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    const std::vector<LineageStep> steps = lineage(*records_, seq);
    ASSERT_FALSE(steps.empty()) << "seq " << seq;
    sim::TimePoint prev = 0;
    std::size_t delivered_events = 0;
    for (const LineageStep& s : steps) {
      EXPECT_GE(s.at, prev);
      prev = s.at;
      if (s.event == "delivered") ++delivered_events;
      if (s.event.rfind("gapfill-", 0) == 0) ++gapfill_steps;
    }
    EXPECT_EQ(delivered_events, static_cast<std::size_t>(host_count_))
        << "seq " << seq;
    EXPECT_TRUE(lineage_covers(steps, source_, hosts))
        << "seq " << seq
        << ": delivery edges do not connect the source to every host";
  }
  EXPECT_GT(gapfill_steps, 0u)
      << "a 15%-loss run should repair at least one gap";
  EXPECT_TRUE(lineage(*records_, 999).empty());
}

TEST_F(TracedRunTest, LineageCoversDetectsIncompletePaths) {
  const std::vector<LineageStep> steps = lineage(*records_, 1);
  // Dropping every deliver edge into host 2 must break coverage.
  std::vector<LineageStep> pruned;
  for (const LineageStep& s : steps) {
    if (s.event == "deliver" && s.host == 2) continue;
    pruned.push_back(s);
  }
  std::vector<std::int32_t> hosts;
  for (std::int32_t h = 0; h < host_count_; ++h) hosts.push_back(h);
  EXPECT_FALSE(lineage_covers(pruned, source_, hosts));
}

TEST_F(TracedRunTest, ConvergenceTimelineMatchesAttachActivity) {
  const ConvergenceTimeline c = convergence_timeline(*records_);
  // Every non-source host attaches at least once to join the tree.
  EXPECT_GE(c.attaches, static_cast<std::size_t>(host_count_ - 1));
  EXPECT_GT(c.last_change_at, 0);
  EXPECT_LE(c.last_change_at, done_at_);
}

TEST_F(TracedRunTest, RenderersProduceOutput) {
  std::ostringstream summary;
  print_summary(summary, *records_);
  EXPECT_NE(summary.str().find("protocol"), std::string::npos);
  EXPECT_NE(summary.str().find("seed=23"), std::string::npos);

  std::ostringstream lin;
  print_lineage(lin, lineage(*records_, 2), 2);
  EXPECT_NE(lin.str().find("deliver"), std::string::npos);

  std::ostringstream conv;
  print_convergence(conv, *records_);
  EXPECT_NE(conv.str().find("attach"), std::string::npos);
}

// --- sim-vs-real comparison -------------------------------------------------

TraceRecord delivered(std::int64_t t, std::int32_t host, std::uint64_t seq) {
  TraceRecord r;
  r.at = t;
  r.category = "protocol";
  r.name = "delivered";
  r.host = HostId{host};
  r.field("seq", seq);
  return r;
}

TEST(Compare, DeliveryMapCollectsSortedPerHostSets) {
  // Out-of-order receipt (real networks reorder) must not affect the map.
  const std::vector<TraceRecord> records = {
      delivered(30, 1, 3), delivered(10, 1, 1), delivered(20, 1, 2),
      delivered(15, 0, 1)};
  const DeliveryMap m = delivery_map(records);
  ASSERT_EQ(m.by_host.size(), 2u);
  EXPECT_EQ(m.by_host.at(1), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(m.by_host.at(0), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(m.max_seq, 3u);
  EXPECT_EQ(m.last_delivery_at, 30);
}

TEST(Compare, IdenticalSetsMatchAcrossDifferentTimings) {
  // Virtual vs wall timestamps differ wildly; only the sets matter.
  const std::vector<TraceRecord> sim_run = {delivered(1000, 0, 1),
                                            delivered(2000, 1, 1)};
  const std::vector<TraceRecord> real_run = {delivered(987654, 1, 1),
                                             delivered(123456, 0, 1)};
  const TraceComparison cmp = compare_traces(sim_run, real_run);
  EXPECT_TRUE(cmp.match);
  EXPECT_TRUE(cmp.divergences.empty());
}

TEST(Compare, MissingHostAndMissingSeqDiverge) {
  const std::vector<TraceRecord> left = {delivered(1, 0, 1), delivered(2, 0, 2),
                                         delivered(3, 1, 1)};
  const std::vector<TraceRecord> right = {delivered(1, 0, 1),
                                          delivered(2, 0, 2)};
  const TraceComparison cmp = compare_traces(left, right);
  EXPECT_FALSE(cmp.match);
  ASSERT_FALSE(cmp.divergences.empty());
  EXPECT_NE(cmp.divergences[0].find("h1"), std::string::npos);

  const std::vector<TraceRecord> gap = {delivered(1, 0, 1), delivered(3, 1, 1)};
  const TraceComparison cmp2 = compare_traces(left, gap);
  EXPECT_FALSE(cmp2.match);
  bool names_seq = false;
  for (const std::string& d : cmp2.divergences) {
    names_seq = names_seq || d.find("only in left") != std::string::npos;
  }
  EXPECT_TRUE(names_seq);
}

TEST(Compare, DuplicateDeliveryBreaksTheMatch) {
  // The protocol promises at-most-once; a duplicated "delivered" record in
  // one trace must diverge even though the sets' unique elements agree.
  const std::vector<TraceRecord> clean = {delivered(1, 0, 1)};
  const std::vector<TraceRecord> dup = {delivered(1, 0, 1),
                                        delivered(2, 0, 1)};
  const TraceComparison cmp = compare_traces(clean, dup);
  EXPECT_FALSE(cmp.match);
}

TEST(Compare, EmptyTracesNeverMatch) {
  const TraceComparison cmp = compare_traces({}, {});
  EXPECT_FALSE(cmp.match);
  ASSERT_FALSE(cmp.divergences.empty());
}

TEST_F(TracedRunTest, CompareIsReflexiveAndPrintsAReport) {
  const TraceComparison cmp = compare_traces(*records_, *records_);
  EXPECT_TRUE(cmp.match);
  EXPECT_EQ(cmp.left.by_host.size(), static_cast<std::size_t>(host_count_));
  EXPECT_EQ(cmp.left.max_seq, 6u);

  std::ostringstream os;
  print_comparison(os, cmp, "sim.jsonl", "real.jsonl");
  EXPECT_NE(os.str().find("MATCH"), std::string::npos);
  EXPECT_NE(os.str().find("sim.jsonl"), std::string::npos);

  // Removing one host's deliveries must flip the verdict and name the host.
  std::vector<TraceRecord> pruned;
  for (const TraceRecord& r : *records_) {
    if (r.category == "protocol" && r.name == "delivered" && r.host.value == 2)
      continue;
    pruned.push_back(r);
  }
  const TraceComparison diverged = compare_traces(*records_, pruned);
  EXPECT_FALSE(diverged.match);
  std::ostringstream os2;
  print_comparison(os2, diverged, "a", "b");
  EXPECT_NE(os2.str().find("DIVERGED"), std::string::npos);
  EXPECT_NE(os2.str().find("h2"), std::string::npos);
}

}  // namespace
}  // namespace rbcast::trace
