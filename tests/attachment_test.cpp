// Unit tests for every option of the attachment procedure (Section 4.2) —
// each exercised in isolation against a hand-built HostState.
#include "core/attachment.h"

#include <gtest/gtest.h>

namespace rbcast::core {
namespace {

std::vector<HostId> hosts(int n) {
  std::vector<HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(HostId{i});
  return out;
}

const std::set<HostId> kNoExclusions;

// Convenience: a state for host `self` among n hosts.
HostState make_state(int self, int n) { return HostState(HostId{self}, hosts(n)); }

// --- Case I: host without a parent -----------------------------------

TEST(Attachment, OptionI1AttachesToInClusterLeaderWithGreaterInfo) {
  HostState s = make_state(0, 3);
  s.set_cluster({HostId{0}, HostId{1}});
  s.record_message(1, "b");
  s.learn_info(HostId{1}, SeqSet::contiguous(3));
  // Host 1 has no known parent -> counts as a leader.
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kAttach);
  EXPECT_EQ(d.candidate, HostId{1});
  EXPECT_EQ(d.rule, "I.1");
}

TEST(Attachment, OptionI1RejectsNonLeader) {
  HostState s = make_state(0, 3);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  s.learn_info(HostId{1}, SeqSet::contiguous(3));
  // Host 1's parent (host 2) is in our cluster: not a leader, and no other
  // option applies (equal-order fails, out-of-cluster fails).
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_info(HostId{2}, SeqSet{});
  const auto d = run_attachment(s, kNoExclusions);
  // I.1 must not fire for host 1; but host 2 (unknown parent => leader,
  // greater info? no, empty). Expect I.2 to also not produce host 1.
  EXPECT_NE(d.candidate, HostId{1});
}

TEST(Attachment, OptionI2AttachesToEqualInfoHigherOrderLeader) {
  HostState s = make_state(1, 3);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  // All INFO sets empty (equal max). Host 2 has higher order than self(1),
  // host 0 lower; both are leaders.
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kAttach);
  EXPECT_EQ(d.candidate, HostId{2});
  EXPECT_EQ(d.rule, "I.2");
}

TEST(Attachment, OptionI2NeverPicksLowerOrder) {
  HostState s = make_state(2, 3);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  // Self has the highest order; no candidate anywhere.
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, OptionI3AttachesOutOfClusterWhenClusterExhausted) {
  HostState s = make_state(0, 3);
  // Cluster is just self; host 2 (different cluster) is ahead.
  s.learn_info(HostId{2}, SeqSet::contiguous(5));
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kAttach);
  EXPECT_EQ(d.candidate, HostId{2});
  EXPECT_EQ(d.rule, "I.3");
}

TEST(Attachment, OptionI3RequiresStrictlyGreaterInfo) {
  HostState s = make_state(0, 2);
  s.record_message(1, "b");
  s.learn_info(HostId{1}, SeqSet::contiguous(1));  // equal, different cluster
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, InClusterOptionsPreferredOverOutOfCluster) {
  HostState s = make_state(0, 3);
  s.set_cluster({HostId{0}, HostId{1}});
  s.learn_info(HostId{1}, SeqSet::contiguous(2));  // in-cluster leader, ahead
  s.learn_info(HostId{2}, SeqSet::contiguous(9));  // out-of-cluster, further
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "I.1");
  EXPECT_EQ(d.candidate, HostId{1});
}

// --- Case II: parent in a different cluster (self is a leader) ------------

TEST(Attachment, OptionII1ConsolidatesLeaders) {
  HostState s = make_state(0, 4);
  s.set_cluster({HostId{0}, HostId{1}});
  s.set_parent(HostId{3});  // out-of-cluster parent: case II
  s.learn_info(HostId{3}, SeqSet::contiguous(2));
  // Another in-cluster leader with greater INFO exists.
  s.learn_info(HostId{1}, SeqSet::contiguous(4));
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "II.1");
  EXPECT_EQ(d.candidate, HostId{1});
}

TEST(Attachment, OptionII2ConsolidatesEqualLeadersByOrder) {
  HostState s = make_state(0, 4);
  s.set_cluster({HostId{0}, HostId{1}});
  s.set_parent(HostId{3});
  s.record_message(1, "b");
  s.learn_info(HostId{1}, SeqSet::contiguous(1));  // equal max, higher order
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "II.2");
  EXPECT_EQ(d.candidate, HostId{1});
}

TEST(Attachment, OptionII2ConsolidatesUnderSourceDespiteLowerId) {
  // Chaos-harness regression: host 1 is a second leader in the source's
  // cluster with a fully caught-up INFO set. Host 0 (the source, never
  // attaches, lower id) must still win option (2) — the order promotes the
  // source to the maximum — or two leaders would persist through
  // quiescence and the parent graph never converges to a cluster tree.
  HostState s(HostId{1}, hosts(4), HostId{0});
  s.set_cluster({HostId{0}, HostId{1}});
  s.set_parent(HostId{3});  // out-of-cluster parent: case II
  s.record_message(1, "b");
  s.learn_info(HostId{0}, SeqSet::contiguous(1));  // source, equal max
  s.learn_info(HostId{3}, SeqSet::contiguous(1));
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "II.2");
  EXPECT_EQ(d.candidate, HostId{0});
}

TEST(Attachment, OptionII3SwitchesToPrompterParent) {
  HostState s = make_state(0, 4);
  s.set_parent(HostId{2});  // out-of-cluster (cluster is just self)
  s.learn_info(HostId{2}, SeqSet::contiguous(3));
  s.learn_info(HostId{3}, SeqSet::contiguous(5));  // ahead of our parent
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "II.3");
  EXPECT_EQ(d.candidate, HostId{3});
}

TEST(Attachment, OptionII3ComparesAgainstParentNotSelf) {
  HostState s = make_state(0, 4);
  s.set_parent(HostId{2});
  s.record_message(1, "b");  // self max = 1
  s.learn_info(HostId{2}, SeqSet::contiguous(6));  // parent well ahead
  s.learn_info(HostId{3}, SeqSet::contiguous(5));  // ahead of self, behind parent
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, OptionII3HonorsHysteresisMargin) {
  HostState s = make_state(0, 4);
  s.set_parent(HostId{2});
  s.learn_info(HostId{2}, SeqSet::contiguous(3));
  s.learn_info(HostId{3}, SeqSet::contiguous(5));  // +2 over parent
  EXPECT_EQ(run_attachment(s, kNoExclusions, /*margin=*/1).rule, "II.3");
  EXPECT_EQ(run_attachment(s, kNoExclusions, /*margin=*/2).action,
            AttachmentDecision::Action::kNone);
}

TEST(Attachment, StableLeaderTakesNoAction) {
  HostState s = make_state(0, 3);
  s.set_parent(HostId{2});
  s.learn_info(HostId{2}, SeqSet::contiguous(5));
  s.learn_info(HostId{1}, SeqSet::contiguous(5));  // equal elsewhere
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

// --- Case III: parent in the same cluster -------------------------------

TEST(Attachment, OptionIII1JumpsToLeaderAncestor) {
  HostState s = make_state(0, 5);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  s.set_parent(HostId{1});                 // in-cluster parent: case III
  s.learn_parent(HostId{1}, HostId{2});    // grandparent in cluster
  s.learn_parent(HostId{2}, HostId{4});    // great-grandparent outside:
  s.learn_info(HostId{2}, SeqSet::of({3}));  // host 2 is the cluster leader
  s.record_message(1, "b");
  s.record_message(2, "b");
  s.record_message(3, "b");  // equal max to leader
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.rule, "III.1");
  EXPECT_EQ(d.candidate, HostId{2});
}

TEST(Attachment, OptionIII1SkipsDirectParent) {
  // Already directly under the leader: nothing to do.
  HostState s = make_state(0, 3);
  s.set_cluster({HostId{0}, HostId{1}});
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});  // leader (parent outside cluster)
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, OptionIII1RequiresInfoAtLeastOwn) {
  HostState s = make_state(0, 4);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_parent(HostId{2}, HostId{3});  // host 2 is a leader ancestor
  s.record_message(1, "b");
  s.record_message(2, "b");
  s.learn_info(HostId{2}, SeqSet::contiguous(1));  // behind us
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

// --- cycle breaking -----------------------------------------------------

TEST(Attachment, HighestOrderOnSingleClusterCycleDetaches) {
  // Cycle 2 -> 0 -> 1 -> 2, all in one cluster. Host 2 has highest order.
  HostState s = make_state(2, 3);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  s.set_parent(HostId{0});
  s.learn_parent(HostId{0}, HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kBreakCycle);
  EXPECT_EQ(d.rule, "cycle");
}

TEST(Attachment, LowerOrderMembersLeaveCycleBreakingToHighest) {
  HostState s = make_state(0, 3);
  s.set_cluster({HostId{0}, HostId{1}, HostId{2}});
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_parent(HostId{2}, HostId{0});
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, MultiClusterCycleIsNotBrokenByCaseIII) {
  // Cycle spans clusters: the leader on it uses II.3 instead; a case-III
  // member must not apply the single-cluster rule.
  HostState s = make_state(2, 3);
  s.set_cluster({HostId{0}, HostId{2}});  // host 1 is in another cluster
  s.set_parent(HostId{0});
  s.learn_parent(HostId{0}, HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

// --- guards -----------------------------------------------------------

TEST(Attachment, ExcludedCandidatesAreSkipped) {
  HostState s = make_state(0, 3);
  s.learn_info(HostId{1}, SeqSet::contiguous(5));
  s.learn_info(HostId{2}, SeqSet::contiguous(4));
  const auto first = run_attachment(s, kNoExclusions);
  EXPECT_EQ(first.candidate, HostId{1});
  const auto second = run_attachment(s, {HostId{1}});
  EXPECT_EQ(second.candidate, HostId{2});
  const auto none = run_attachment(s, {HostId{1}, HostId{2}});
  EXPECT_EQ(none.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, NeverProposesOwnChildOrSelfAttachedHost) {
  HostState s = make_state(0, 3);
  s.learn_info(HostId{1}, SeqSet::contiguous(5));
  s.learn_info(HostId{2}, SeqSet::contiguous(5));
  s.add_child(HostId{1});                // known child
  s.learn_parent(HostId{2}, HostId{0});  // believes it hangs off us
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.action, AttachmentDecision::Action::kNone);
}

TEST(Attachment, PrefersMostAdvancedCandidate) {
  HostState s = make_state(0, 4);
  s.learn_info(HostId{1}, SeqSet::contiguous(3));
  s.learn_info(HostId{2}, SeqSet::contiguous(7));
  s.learn_info(HostId{3}, SeqSet::contiguous(5));
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.candidate, HostId{2});
}

TEST(Attachment, TieBreaksByHighestOrder) {
  HostState s = make_state(0, 4);
  s.learn_info(HostId{1}, SeqSet::contiguous(7));
  s.learn_info(HostId{3}, SeqSet::contiguous(7));
  const auto d = run_attachment(s, kNoExclusions);
  EXPECT_EQ(d.candidate, HostId{3});
}

}  // namespace
}  // namespace rbcast::core
