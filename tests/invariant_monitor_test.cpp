// InvariantMonitor tests: the read-only contract (protocol digest is
// byte-identical with the monitor on or off), zero violations on healthy
// scenarios, and detection of engineered liveness failures.
#include "harness/invariant_monitor.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast {
namespace {

using harness::Experiment;
using harness::ScenarioOptions;

core::Config fast_config() {
  core::Config c;
  c.attach_period = sim::milliseconds(500);
  c.info_period_intra = sim::milliseconds(200);
  c.info_period_inter = sim::seconds(1);
  c.gapfill_period_neighbor = sim::milliseconds(500);
  c.gapfill_period_far = sim::seconds(2);
  c.parent_timeout = sim::seconds(4);
  c.attach_ack_timeout = sim::milliseconds(400);
  c.data_bytes = 64;
  return c;
}

topo::Topology small_wan(std::uint64_t seed, int clusters = 2, int hpc = 2) {
  topo::ClusteredWanOptions wan;
  wan.clusters = clusters;
  wan.hosts_per_cluster = hpc;
  wan.seed = seed;
  return make_clustered_wan(wan).topology;
}

// The determinism gate: enabling the monitor must not perturb the protocol
// in any way. Same seed, same faults — the event digests must match
// exactly whether the monitor observes the run or not.
TEST(InvariantMonitor, DigestUnchangedWhenMonitorEnabled) {
  auto run_digest = [](bool monitored) {
    ScenarioOptions options;
    options.protocol = fast_config();
    options.seed = 17;
    options.monitor_invariants = monitored;
    Experiment e(small_wan(17), options);
    e.faults().host_crash_window(HostId{3}, sim::seconds(4), sim::seconds(12));
    if (monitored) {
      e.monitor()->set_faults_quiet_at(sim::seconds(12));
    }
    e.start();
    e.broadcast_stream(6, sim::milliseconds(500), sim::seconds(1));
    e.run_for(sim::seconds(40));
    return e.events().digest();
  };
  EXPECT_EQ(run_digest(false), run_digest(true));
}

TEST(InvariantMonitor, CleanScenarioReportsNoViolations) {
  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = 3;
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(10);
  options.monitor.converge_deadline = sim::seconds(15);
  Experiment e(small_wan(3, /*clusters=*/3, /*hpc=*/2), options);
  e.monitor()->set_faults_quiet_at(sim::TimePoint{0});  // fault-free run
  e.start();
  e.broadcast_stream(5, sim::milliseconds(500), sim::seconds(1));
  e.run_until(sim::seconds(25));
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok())
      << e.monitor()->violations()[0].invariant << ": "
      << e.monitor()->violations()[0].description;
  EXPECT_GT(e.monitor()->sweeps_run(), 0u);
  EXPECT_EQ(e.monitor()->dropped_violations(), 0u);
}

// A host crashed through the entire judged window: quiescence is declared
// (deliberately prematurely) at t=5, the anchor broadcast fires at t=6, and
// the victim stays dead until after the run ends — both the orphan bound
// (C2) and the convergence deadline (C3) must fire.
TEST(InvariantMonitor, DetectsPersistentOrphanAndMissedConvergence) {
  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = 5;
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(3);
  options.monitor.converge_deadline = sim::seconds(6);
  Experiment e(small_wan(5), options);
  e.faults().host_crash_window(HostId{3}, sim::seconds(2), sim::seconds(30));
  e.monitor()->set_faults_quiet_at(sim::seconds(5));
  e.start();
  e.broadcast_stream(3, sim::milliseconds(500), sim::seconds(1));
  e.schedule_broadcast_at(sim::seconds(6));  // post-"quiescence" anchor
  e.run_until(sim::seconds(20));
  e.monitor()->finish();

  ASSERT_FALSE(e.monitor()->ok());
  bool saw_c2 = false;
  bool saw_c3 = false;
  for (const auto& v : e.monitor()->violations()) {
    if (v.invariant == harness::kOrphanBound) saw_c2 = true;
    if (v.invariant == harness::kConvergeDeadline) saw_c3 = true;
    // Safety must stay clean: the crash loses messages, it does not forge,
    // duplicate or corrupt them.
    EXPECT_NE(v.invariant[0], 'I') << v.description;
  }
  EXPECT_TRUE(saw_c2);
  EXPECT_TRUE(saw_c3);
}

// Liveness stays disarmed without a quiescence point: the same doomed
// scenario reports nothing when set_faults_quiet_at was never called.
TEST(InvariantMonitor, LivenessRequiresQuiescencePoint) {
  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = 5;
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(3);
  options.monitor.converge_deadline = sim::seconds(6);
  Experiment e(small_wan(5), options);
  e.faults().host_crash_window(HostId{3}, sim::seconds(2), sim::seconds(30));
  e.start();
  e.broadcast_stream(3, sim::milliseconds(500), sim::seconds(1));
  e.run_until(sim::seconds(20));
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok());
}

// Without a post-quiescence broadcast the C2/C3 clock never starts: the
// attachment rules only re-form the tree when new information flows, so
// judging a quiescent stream would be a false positive by construction.
TEST(InvariantMonitor, LivenessRequiresPostQuiescenceBroadcast) {
  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = 5;
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(3);
  options.monitor.converge_deadline = sim::seconds(6);
  Experiment e(small_wan(5), options);
  e.faults().host_crash_window(HostId{3}, sim::seconds(2), sim::seconds(30));
  e.monitor()->set_faults_quiet_at(sim::seconds(5));
  e.start();
  // Whole stream finishes before the quiescence point: no anchor.
  e.broadcast_stream(3, sim::milliseconds(500), sim::seconds(1));
  e.run_until(sim::seconds(20));
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok());
}

TEST(ContainmentReport, ContainedMeansNoCorruptionPastDirectEdges) {
  harness::ContainmentReport r;
  // No adversary, nothing corrupted: trivially contained.
  EXPECT_TRUE(r.contained());

  r.byzantine = {HostId{2}};
  r.corrupted_hosts = {HostId{3}};
  r.max_hops = 1;
  r.hosts_by_hops = {{1, 1}};
  // Direct neighbors of a liar may see bad frames; that is the best any
  // defense at the receiver can do.
  EXPECT_TRUE(r.contained());

  r.corrupted_hosts.insert(HostId{5});
  r.max_hops = 2;
  r.hosts_by_hops[2] = 1;
  EXPECT_FALSE(r.contained());
}

TEST(ContainmentReport, ToStringListsEveryField) {
  harness::ContainmentReport r;
  r.byzantine = {HostId{1}, HostId{8}};
  r.corrupted_hosts = {HostId{3}};
  r.max_hops = 2;
  r.hosts_by_hops = {{2, 1}};
  r.invariants = {"I2", "I3"};
  EXPECT_EQ(to_string(r),
            "byzantine={1,8} corrupted={3} max_hops=2 by_hops={2:1} "
            "invariants=[I2,I3] contained=no");
}

}  // namespace
}  // namespace rbcast
