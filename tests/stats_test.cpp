#include "util/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rbcast::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequentialFeed) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 20;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a;
  Accumulator empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyQuantileIsZero) {
  Samples s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(5.0);
  EXPECT_EQ(s.quantile(1.0), 5.0);
  s.add(9.0);  // must invalidate the sorted cache
  EXPECT_EQ(s.quantile(1.0), 9.0);
  s.add(1.0);
  EXPECT_EQ(s.quantile(0.0), 1.0);
}

TEST(Samples, SingleSampleIsEveryQuantile) {
  Samples s;
  s.add(4.2);
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(s.quantile(q), 4.2) << "q=" << q;
  }
  EXPECT_EQ(s.min(), 4.2);
  EXPECT_EQ(s.max(), 4.2);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
}

TEST(Samples, DuplicateHeavyQuantilesLandOnTheMode) {
  // 97 copies of one value and a couple of outliers: mid quantiles must
  // report the mode, not interpolate toward the outliers.
  Samples s;
  s.add(0.1);
  for (int i = 0; i < 97; ++i) s.add(5.0);
  s.add(100.0);
  s.add(100.0);
  EXPECT_EQ(s.quantile(0.0), 0.1);
  EXPECT_EQ(s.quantile(0.5), 5.0);
  EXPECT_EQ(s.quantile(0.95), 5.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW((Histogram({1.0, 1.0})), std::invalid_argument);
  EXPECT_THROW((Histogram({2.0, 1.0})), std::invalid_argument);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  const auto cumulative = h.cumulative_counts();
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_EQ(cumulative[0], 0u);
  EXPECT_EQ(cumulative[1], 0u);
}

TEST(Histogram, BucketsAreCumulativeAndBoundsInclusive) {
  Histogram h({0.1, 1.0, 10.0});
  // One below all bounds, one exactly on a bound (<= semantics), one
  // mid-range, one in the implicit +inf bucket.
  h.add(0.05);
  h.add(0.1);
  h.add(5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.15);
  const auto cumulative = h.cumulative_counts();
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_EQ(cumulative[0], 2u);  // 0.05 and the on-bound 0.1
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);  // 50.0 only shows in count()
}

TEST(Histogram, SingleSampleQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(1.5);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(h.quantile(q), 2.0) << "q=" << q;  // its bucket's bound
  }
}

TEST(Histogram, DuplicateHeavyQuantileEstimates) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.add(1.5);  // bucket le_2
  for (int i = 0; i < 10; ++i) h.add(6.0);  // bucket le_8
  EXPECT_EQ(h.quantile(0.5), 2.0);
  EXPECT_EQ(h.quantile(0.9), 2.0);
  EXPECT_EQ(h.quantile(0.99), 8.0);
}

TEST(Histogram, OverflowQuantileClampsToLastBound) {
  Histogram h({1.0, 2.0});
  h.add(100.0);
  h.add(200.0);
  EXPECT_EQ(h.quantile(0.5), 2.0);
  EXPECT_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, ClearResets) {
  Histogram h({1.0});
  h.add(0.5);
  h.add(3.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.cumulative_counts()[0], 0u);
  h.add(0.5);
  EXPECT_EQ(h.cumulative_counts()[0], 1u);
}

TEST(CounterMap, IncrementAndQuery) {
  CounterMap c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
}

}  // namespace
}  // namespace rbcast::util
