#include "util/stats.h"

#include <gtest/gtest.h>

namespace rbcast::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequentialFeed) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 20;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a;
  Accumulator empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyQuantileIsZero) {
  Samples s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(5.0);
  EXPECT_EQ(s.quantile(1.0), 5.0);
  s.add(9.0);  // must invalidate the sorted cache
  EXPECT_EQ(s.quantile(1.0), 9.0);
  s.add(1.0);
  EXPECT_EQ(s.quantile(0.0), 1.0);
}

TEST(CounterMap, IncrementAndQuery) {
  CounterMap c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
}

}  // namespace
}  // namespace rbcast::util
