// Convergence-probe tests: run real scenarios through the harness and
// check that analyze_convergence reports exactly what the run produced.
#include "trace/convergence.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast::trace {
namespace {

using harness::Experiment;
using harness::ScenarioOptions;

core::Config fast_config() {
  core::Config c;
  c.attach_period = sim::milliseconds(500);
  c.info_period_intra = sim::milliseconds(200);
  c.info_period_inter = sim::seconds(1);
  c.gapfill_period_neighbor = sim::milliseconds(500);
  c.gapfill_period_far = sim::seconds(2);
  c.parent_timeout = sim::seconds(4);
  c.attach_ack_timeout = sim::milliseconds(400);
  c.data_bytes = 64;
  return c;
}

TEST(Convergence, FreshSystemIsNotATree) {
  ScenarioOptions options;
  options.protocol = fast_config();
  Experiment e(topo::make_single_cluster(3).topology, options);
  const auto report = e.convergence();
  EXPECT_TRUE(report.acyclic);  // no parents at all: trivially acyclic
  EXPECT_FALSE(report.tree_rooted_at_source);  // three roots
  EXPECT_FALSE(report.induces_cluster_tree);
  EXPECT_EQ(report.leader_count, 3);
  EXPECT_FALSE(report.detail.empty());
}

TEST(Convergence, SingleClusterConvergesToStar) {
  ScenarioOptions options;
  options.protocol = fast_config();
  Experiment e(topo::make_single_cluster(4).topology, options);
  e.start();
  e.broadcast();
  e.run_for(sim::seconds(20));

  const auto report = e.convergence();
  EXPECT_TRUE(report.acyclic) << report.detail;
  EXPECT_TRUE(report.tree_rooted_at_source) << report.detail;
  EXPECT_TRUE(report.induces_cluster_tree) << report.detail;
  EXPECT_TRUE(report.all_caught_up) << report.detail;
  EXPECT_EQ(report.leader_count, 1);  // the source leads its own cluster
  ASSERT_EQ(report.leaders_per_cluster.size(), 1u);
  EXPECT_EQ(report.leaders_per_cluster[0], 1);
}

TEST(Convergence, MultiClusterWanInducesClusterTree) {
  topo::ClusteredWanOptions wan_options;
  wan_options.clusters = 3;
  wan_options.hosts_per_cluster = 3;
  wan_options.shape = topo::TrunkShape::kLine;
  ScenarioOptions options;
  options.protocol = fast_config();
  Experiment e(make_clustered_wan(wan_options).topology, options);
  e.start();
  // A short stream gives the attachment procedure INFO gradients to climb.
  e.broadcast_stream(5, sim::seconds(1), sim::seconds(1));
  e.run_for(sim::seconds(60));

  const auto report = e.convergence();
  EXPECT_TRUE(report.fully_converged()) << report.detail;
  EXPECT_TRUE(report.all_caught_up) << report.detail;
  EXPECT_EQ(report.leader_count, 3);  // one per cluster
  for (int leaders : report.leaders_per_cluster) EXPECT_EQ(leaders, 1);
}

TEST(Convergence, CaughtUpReflectsMissingMessages) {
  ScenarioOptions options;
  options.protocol = fast_config();
  Experiment e(topo::make_single_cluster(3).topology, options);
  e.start();
  e.broadcast();  // generated but not yet propagated anywhere
  const auto report = e.convergence();
  EXPECT_FALSE(report.all_caught_up);
}

}  // namespace
}  // namespace rbcast::trace
