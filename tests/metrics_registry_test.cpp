// MetricsRegistry: owned and callback instruments, ordered snapshots,
// duplicate rejection, unregistration, and the counter_totals() view the
// MetricSampler folds into traces.
#include "util/metrics_registry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace rbcast::util {
namespace {

TEST(MetricsRegistry, OwnedCounterRoundTrips) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& c =
      registry.counter("node.broadcasts", "", "messages originated");
  c.inc();
  c.inc(4);
  const std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "node.broadcasts");
  EXPECT_EQ(snap[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snap[0].counter, 5u);
  EXPECT_EQ(snap[0].help, "messages originated");
}

TEST(MetricsRegistry, OwnedHistogramSnapshotsBoundsAndCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {0.1, 1.0}, "", "latency");
  h.add(0.05);
  h.add(0.5);
  h.add(5.0);  // above the last bound: only in count
  const std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snap[0].bounds, (std::vector<double>{0.1, 1.0}));
  EXPECT_EQ(snap[0].cumulative, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(snap[0].count, 3u);
  EXPECT_DOUBLE_EQ(snap[0].sum, 5.55);
}

TEST(MetricsRegistry, CallbackInstrumentsReadLiveState) {
  MetricsRegistry registry;
  std::uint64_t sends = 0;
  double depth = 0;
  registry.register_counter_fn("t.sends", "", "", [&] { return sends; });
  registry.register_gauge_fn("t.depth", "", "", [&] { return depth; });
  sends = 7;
  depth = 2.5;
  const std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "t.depth");
  EXPECT_DOUBLE_EQ(snap[0].gauge, 2.5);
  EXPECT_EQ(snap[1].name, "t.sends");
  EXPECT_EQ(snap[1].counter, 7u);
}

TEST(MetricsRegistry, HistogramFnToleratesNullSource) {
  MetricsRegistry registry;
  const Histogram* source = nullptr;
  registry.register_histogram_fn("h", "", "", [&] { return source; });
  std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 0u);  // gone source reads as empty
  Histogram live({1.0});
  live.add(0.5);
  source = &live;
  snap = registry.snapshot();
  EXPECT_EQ(snap[0].count, 1u);
}

TEST(MetricsRegistry, SnapshotIsOrderedByNameThenLabels) {
  MetricsRegistry registry;
  registry.counter("b.metric", "host=\"2\"");
  registry.counter("a.metric");
  registry.counter("b.metric", "host=\"10\"");
  const std::vector<MetricSnapshot> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.metric");
  // Lexicographic within a name: stable, if not numeric, ordering.
  EXPECT_EQ(snap[1].labels, "host=\"10\"");
  EXPECT_EQ(snap[2].labels, "host=\"2\"");
}

TEST(MetricsRegistry, DuplicateRegistrationThrows) {
  MetricsRegistry registry;
  registry.counter("x", "host=\"1\"");
  EXPECT_THROW(registry.counter("x", "host=\"1\""), std::invalid_argument);
  // Same name, different labels: a distinct series, fine.
  registry.counter("x", "host=\"2\"");
  EXPECT_THROW(registry.register_gauge_fn("x", "host=\"2\"", "",
                                          [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(MetricsRegistry, UnregisterDropsExactlyTheKey) {
  MetricsRegistry registry;
  registry.counter("x", "host=\"1\"");
  registry.counter("x", "host=\"2\"");
  registry.unregister("x", "host=\"1\"");
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.snapshot()[0].labels, "host=\"2\"");
  registry.unregister("x", "host=\"1\"");  // absent: no-op
  EXPECT_EQ(registry.size(), 1u);
  // The freed key can be re-registered (host restart).
  registry.counter("x", "host=\"1\"");
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, CounterTotalsSumAcrossLabelSets) {
  MetricsRegistry registry;
  registry.counter("host.deliveries", "host=\"0\"").inc(3);
  registry.counter("host.deliveries", "host=\"1\"").inc(4);
  registry.register_counter_fn("t.sends", "", "", [] { return 9ull; });
  registry.register_gauge_fn("g", "", "", [] { return 1.0; });
  const auto totals = registry.counter_totals();
  ASSERT_EQ(totals.size(), 2u);  // gauges and histograms excluded
  EXPECT_EQ(totals.at("host.deliveries"), 7u);
  EXPECT_EQ(totals.at("t.sends"), 9u);
}

}  // namespace
}  // namespace rbcast::util
