// Property-based (parameterized) tests: protocol invariants that must hold
// across seeds, topology shapes and fault intensities.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>

#include "harness/experiment.h"
#include "model/checker.h"
#include "topo/generators.h"

namespace rbcast {
namespace {

using harness::Experiment;
using harness::ScenarioOptions;

core::Config fast_config() {
  core::Config c;
  c.attach_period = sim::milliseconds(500);
  c.info_period_intra = sim::milliseconds(200);
  c.info_period_inter = sim::seconds(1);
  c.gapfill_period_neighbor = sim::milliseconds(500);
  c.gapfill_period_far = sim::seconds(2);
  c.parent_timeout = sim::seconds(4);
  c.attach_ack_timeout = sim::milliseconds(400);
  c.data_bytes = 64;
  return c;
}

// --- protocol invariants across seeds x topologies -----------------------

struct ScenarioParam {
  std::uint64_t seed;
  int clusters;
  int hosts_per_cluster;
  topo::TrunkShape shape;
  double trunk_loss;
};

class ProtocolProperties : public ::testing::TestWithParam<ScenarioParam> {};

TEST_P(ProtocolProperties, EventualExactlyOnceDeliveryAndConvergence) {
  const ScenarioParam p = GetParam();
  topo::ClusteredWanOptions wan;
  wan.clusters = p.clusters;
  wan.hosts_per_cluster = p.hosts_per_cluster;
  wan.shape = p.shape;
  wan.expensive.loss_probability = p.trunk_loss;
  wan.seed = p.seed;

  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = p.seed;
  // The online monitor rides along (safety invariants only — no faults are
  // declared quiet); it must stay silent across every seed and shape.
  options.monitor_invariants = true;
  Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(8, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(600));

  // P1: eventual delivery of the whole stream at every host.
  ASSERT_TRUE(e.all_delivered());

  // P2: exactly-once delivery to the application.
  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.host(h).counters().deliveries, 8u) << h;
  }

  // P3: at quiescence without partitions, no cycles persist and the parent
  // graph forms a tree rooted at the source that induces a cluster tree.
  e.run_for(sim::seconds(60));  // generous settling time
  const auto report = e.convergence();
  EXPECT_TRUE(report.acyclic) << report.detail;
  EXPECT_TRUE(report.tree_rooted_at_source) << report.detail;
  EXPECT_TRUE(report.induces_cluster_tree) << report.detail;

  // P4: INFO dominance along edges — no host is ahead of its parent.
  for (HostId h : e.topology().host_ids()) {
    const HostId parent = e.host(h).parent();
    if (!parent.valid()) continue;
    EXPECT_LE(e.host(h).info().max_seq(), e.host(parent).info().max_seq());
  }

  // P5: the online monitor confirmed I1-I5 at every sweep.
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok())
      << e.monitor()->violations()[0].invariant << ": "
      << e.monitor()->violations()[0].description;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, ProtocolProperties,
    ::testing::Values(
        ScenarioParam{1, 2, 2, topo::TrunkShape::kLine, 0.0},
        ScenarioParam{2, 3, 2, topo::TrunkShape::kRing, 0.0},
        ScenarioParam{3, 4, 1, topo::TrunkShape::kStar, 0.0},
        ScenarioParam{4, 3, 3, topo::TrunkShape::kRandomTree, 0.0},
        ScenarioParam{5, 2, 2, topo::TrunkShape::kLine, 0.2},
        ScenarioParam{6, 3, 2, topo::TrunkShape::kRing, 0.2},
        ScenarioParam{7, 2, 4, topo::TrunkShape::kLine, 0.1},
        ScenarioParam{8, 5, 1, topo::TrunkShape::kRing, 0.1}));

// --- recovery after random flapping ------------------------------------

class FlappingRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlappingRecovery, StreamCompletesOnceFaultsStop) {
  const std::uint64_t seed = GetParam();
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  wan.shape = topo::TrunkShape::kRing;  // redundancy so flaps rarely partition
  wan.seed = seed;
  const auto built = make_clustered_wan(wan);

  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = seed;
  Experiment e(built.topology, options);
  e.faults().flapping(built.trunks, sim::seconds(8), sim::seconds(4),
                      sim::seconds(60), e.rngs());
  e.start();
  e.broadcast_stream(10, sim::seconds(1), sim::seconds(1));
  e.run_until_delivered(sim::seconds(600));
  EXPECT_TRUE(e.all_delivered());

  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.host(h).counters().deliveries, 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlappingRecovery,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- crash and rejoin ---------------------------------------------------

class CrashRejoin : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashRejoin, CrashedHostCatchesUpAfterReboot) {
  const std::uint64_t seed = GetParam();
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 3;
  wan.intra_cluster_ring = true;
  wan.seed = seed;
  const auto built = make_clustered_wan(wan);

  ScenarioOptions options;
  options.protocol = fast_config();
  options.seed = seed;
  // Full monitoring: faults are quiet after the crash window, the t=30
  // broadcast anchors the liveness clock, and C2/C3 are judged before the
  // final convergence assertions below.
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(30);
  options.monitor.converge_deadline = sim::seconds(45);
  Experiment e(built.topology, options);
  // Crash a non-source host for most of the stream (its access link dies:
  // the paper's host-crash model, Section 2).
  const HostId victim{4};
  e.faults().host_crash_window(victim, sim::seconds(3), sim::seconds(25));
  e.monitor()->set_faults_quiet_at(sim::seconds(27));
  e.start();
  e.broadcast_stream(20, sim::seconds(1), sim::seconds(1));
  e.schedule_broadcast_at(sim::seconds(30));
  e.run_until_delivered(sim::seconds(400));

  // P1: the victim eventually holds everything, exactly once.
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(e.host(victim).counters().deliveries, 21u);
  // P2: the rest of the system never stalled on the crash — they were
  // complete well before the victim (sanity: their parent timeouts
  // affected only edges through the victim).
  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.host(h).counters().deliveries, 21u) << h;
  }
  // P3: the graph re-converges to a proper tree afterwards, and the
  // monitor's sweeps (through the C2/C3 deadlines) saw nothing.
  e.run_until(sim::seconds(90));
  const auto report = e.convergence();
  EXPECT_TRUE(report.tree_rooted_at_source) << report.detail;
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok())
      << e.monitor()->violations()[0].invariant << ": "
      << e.monitor()->violations()[0].description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRejoin,
                         ::testing::Values(61u, 62u, 63u));

// --- ordered delivery under faults ------------------------------------

class OrderedDeliveryProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OrderedDeliveryProperty, FifoReleaseDespiteLossAndReordering) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = 0.25;
  wan.expensive.duplication_probability = 0.1;
  wan.seed = GetParam();

  harness::ScenarioOptions options;
  options.protocol = fast_config();
  options.ordered_delivery = true;
  options.net.jitter_max = sim::milliseconds(10);
  options.seed = GetParam();
  harness::Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(12, sim::milliseconds(300), sim::seconds(1));
  e.run_until_delivered(sim::seconds(600));
  ASSERT_TRUE(e.all_delivered());

  for (HostId h : e.topology().host_ids()) {
    if (h == e.source()) continue;
    auto& adapter = e.ordered_adapter(h);
    EXPECT_EQ(adapter.released(), 12u) << h;
    EXPECT_EQ(adapter.next_expected(), 13u) << h;
    EXPECT_EQ(adapter.buffered(), 0u) << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedDeliveryProperty,
                         ::testing::Values(51u, 52u, 53u));

// --- model-checker sweep over cluster layouts -----------------------------

struct ModelParam {
  int hosts;
  std::vector<int> clusters;
};

class ModelSafetyProperty : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ModelSafetyProperty, BoundedExplorationIsClean) {
  const ModelParam p = GetParam();
  model::ModelConfig config;
  config.hosts = p.hosts;
  config.cluster_of = p.clusters;
  config.max_broadcasts = 2;
  config.max_inflight = 3;
  model::Checker checker(config);
  const auto report = checker.explore_bfs(/*max_depth=*/5,
                                          /*max_states=*/100000);
  EXPECT_TRUE(report.clean())
      << report.violations[0].invariant << ": "
      << report.violations[0].description;
  // And a burst of deeper random schedules.
  const auto walks = checker.explore_random(100, 150, p.hosts * 1000u);
  EXPECT_TRUE(walks.clean());
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ModelSafetyProperty,
    ::testing::Values(ModelParam{2, {0, 0}}, ModelParam{2, {0, 1}},
                      ModelParam{3, {0, 0, 1}}, ModelParam{3, {0, 1, 2}},
                      ModelParam{4, {0, 0, 1, 1}}));

// --- SeqSet differential property with the full operation mix -----------

class SeqSetOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqSetOps, MatchesReferenceUnderInsertMergePrune) {
  std::mt19937_64 rng(GetParam());
  util::SeqSet ours;
  util::SeqSet other;
  std::set<util::Seq> ref_ours;
  std::set<util::Seq> ref_other;
  util::Seq watermark = 0;

  auto ref_contains = [&](const std::set<util::Seq>& ref, util::Seq q) {
    return q <= watermark || ref.contains(q);
  };

  for (int op = 0; op < 600; ++op) {
    switch (rng() % 5) {
      case 0:
      case 1: {
        const util::Seq q = 1 + rng() % 80;
        if (q > watermark) {
          ours.insert(q);
          ref_ours.insert(q);
        }
        break;
      }
      case 2: {
        const util::Seq q = 1 + rng() % 80;
        if (q > watermark) {
          other.insert(q);
          ref_other.insert(q);
        }
        break;
      }
      case 3: {
        ours.merge(other);
        ref_ours.insert(ref_other.begin(), ref_other.end());
        break;
      }
      case 4: {
        // Prune both to a common watermark (models the safe prefix).
        const util::Seq w = watermark + rng() % 3;
        ours.prune_below(w);
        other.prune_below(w);
        watermark = std::max(watermark, w);
        break;
      }
    }
    // Containment agrees everywhere.
    for (util::Seq q = 1; q <= 82; ++q) {
      ASSERT_EQ(ours.contains(q), ref_contains(ref_ours, q))
          << "op=" << op << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqSetOps,
                         ::testing::Values(100u, 200u, 300u, 400u, 500u));

}  // namespace
}  // namespace rbcast
