// Per-source authentication (core/auth.h): tag algebra, the wire layout
// of authenticated DATA frames, the BroadcastHost reject path, and a
// seeded adversarial fuzz over mutated authenticated frames — the
// defense's trust boundary must hold under arbitrary single-frame
// tampering without crashing or perturbing protocol state.
#include "core/auth.h"

#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/messages.h"
#include "core/wire_codec.h"
#include "support/fake_network.h"
#include "util/rng.h"

namespace rbcast::core {
namespace {

using rbcast::testing::FakeHub;

constexpr std::uint64_t kSecret = 0x1234abcd5678ef01ULL;

// --- tag algebra ------------------------------------------------------------

TEST(AuthTag, MakeVerifyRoundTrip) {
  const AuthTag t = make_auth_tag(kSecret, HostId{3}, 7, "hello");
  EXPECT_EQ(t.digest, payload_digest("hello"));
  EXPECT_EQ(t.tag, auth_mac(kSecret, HostId{3}, 7, t.digest));
  EXPECT_TRUE(verify_auth_tag(kSecret, HostId{3}, 7, "hello", t));
}

TEST(AuthTag, IsDeterministic) {
  EXPECT_EQ(make_auth_tag(kSecret, HostId{1}, 2, "x"),
            make_auth_tag(kSecret, HostId{1}, 2, "x"));
}

TEST(AuthTag, BindsEveryField) {
  const AuthTag t = make_auth_tag(kSecret, HostId{3}, 7, "hello");
  // Body, seq, source and secret each invalidate the tag when changed.
  EXPECT_FALSE(verify_auth_tag(kSecret, HostId{3}, 7, "hellO", t));
  EXPECT_FALSE(verify_auth_tag(kSecret, HostId{3}, 8, "hello", t));
  EXPECT_FALSE(verify_auth_tag(kSecret, HostId{4}, 7, "hello", t));
  EXPECT_FALSE(verify_auth_tag(kSecret + 1, HostId{3}, 7, "hello", t));
  // A relay that recomputes the digest over a mutated body but cannot
  // recompute the keyed tag still fails verification.
  AuthTag forged = t;
  forged.digest = payload_digest("hellO");
  EXPECT_FALSE(verify_auth_tag(kSecret, HostId{3}, 7, "hellO", forged));
}

TEST(AuthTag, DigestPinsExactBytes) {
  EXPECT_NE(payload_digest("ab"), payload_digest("ba"));
  EXPECT_NE(payload_digest(""), payload_digest(std::string(1, '\0')));
}

// --- wire layout ------------------------------------------------------------

TEST(AuthWire, AuthenticatedDataRoundTrips) {
  DataMsg d;
  d.seq = 9;
  d.body = "payload";
  d.auth = make_auth_tag(kSecret, HostId{0}, 9, "payload");
  const std::string wire = encode_message(ProtocolMessage{d});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<DataMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  ASSERT_TRUE(out->auth.has_value());
  EXPECT_EQ(*out->auth, *d.auth);
  EXPECT_TRUE(verify_auth_tag(kSecret, HostId{0}, 9, out->body.view(),
                              *out->auth));
}

TEST(AuthWire, AuthTagCoexistsWithGapFillAndPiggyback) {
  DataMsg d;
  d.seq = 4;
  d.body = "b";
  d.gap_fill = true;
  SeqSet have;
  have.insert_range(1, 4);
  d.piggyback = {have, HostId{2}};
  d.auth = make_auth_tag(kSecret, HostId{0}, 4, "b");
  const std::string wire = encode_message(ProtocolMessage{d});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<DataMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->gap_fill);
  ASSERT_TRUE(out->piggyback.has_value());
  ASSERT_TRUE(out->auth.has_value());
  EXPECT_EQ(*out->auth, *d.auth);
}

TEST(AuthWire, TruncatedAuthTagRejected) {
  DataMsg d;
  d.seq = 1;
  d.body = "m";
  d.auth = make_auth_tag(kSecret, HostId{0}, 1, "m");
  const std::string wire = encode_message(ProtocolMessage{d});
  for (std::size_t cut = 1; cut <= 16; ++cut) {
    EXPECT_FALSE(decode_message(wire.data(), wire.size() - cut).has_value())
        << "cut " << cut;
  }
}

TEST(AuthWire, WireSizeAccountsForTheTag) {
  DataMsg plain;
  plain.seq = 1;
  plain.body = "m";
  DataMsg tagged = plain;
  tagged.auth = make_auth_tag(kSecret, HostId{0}, 1, "m");
  EXPECT_EQ(wire_size(ProtocolMessage{tagged}),
            wire_size(ProtocolMessage{plain}) + 16);
  EXPECT_EQ(encode_message(ProtocolMessage{tagged}).size(),
            encode_message(ProtocolMessage{plain}).size() + 16);
}

// --- BroadcastHost reject path ---------------------------------------------

Config auth_config() {
  Config c;
  c.attach_period = sim::milliseconds(100);
  c.info_period_intra = sim::milliseconds(50);
  c.info_period_inter = sim::milliseconds(200);
  c.gapfill_period_neighbor = sim::milliseconds(100);
  c.gapfill_period_far = sim::milliseconds(300);
  c.parent_timeout = sim::seconds(1);
  c.attach_ack_timeout = sim::milliseconds(100);
  c.child_timeout = sim::seconds(3);
  c.data_bytes = 16;
  c.auth_enabled = true;
  return c;
}

struct Cluster {
  sim::Simulator sim;
  FakeHub hub{sim};
  std::vector<std::unique_ptr<BroadcastHost>> nodes;
  std::vector<std::vector<Seq>> delivered;

  explicit Cluster(int n, Config config = auth_config(),
                   HostId source = HostId{0}) {
    std::vector<HostId> all;
    for (int i = 0; i < n; ++i) all.push_back(HostId{i});
    delivered.resize(static_cast<std::size_t>(n));
    util::RngFactory rngs(7);
    for (int i = 0; i < n; ++i) {
      const HostId id{i};
      nodes.push_back(std::make_unique<BroadcastHost>(
          sim, hub.endpoint(id), source, all, config,
          rngs.stream("jitter", i),
          [this, i](Seq seq, std::string_view) {
            delivered[static_cast<std::size_t>(i)].push_back(seq);
          }));
      hub.register_host(id, [this, i](const net::Delivery& d) {
        nodes[static_cast<std::size_t>(i)]->on_delivery(d);
      });
    }
  }

  BroadcastHost& node(int i) { return *nodes[static_cast<std::size_t>(i)]; }
  void start_all() {
    for (auto& n : nodes) n->start();
  }
  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }
};

net::Delivery data_delivery(HostId from, HostId to, const DataMsg& m) {
  return net::Delivery{.from = from,
                       .to = to,
                       .expensive = false,
                       .payload = std::any(ProtocolMessage{m}),
                       .bytes = 64,
                       .kind = "data",
                       .sent_at = 0,
                       .hops = 1};
}

TEST(AuthHost, UntaggedDataRejectedWhenAuthEnabled) {
  Cluster c(2);
  DataMsg m;
  m.seq = 1;
  m.body = "naked";
  c.node(1).on_delivery(data_delivery(HostId{0}, HostId{1}, m));
  EXPECT_EQ(c.node(1).counters().auth_rejects, 1u);
  EXPECT_TRUE(c.node(1).info().empty());
  EXPECT_TRUE(c.delivered[1].empty());
  // The reject happens before liveness bookkeeping: a frame that cannot
  // prove its origin must not vouch for the sender either.
  EXPECT_TRUE(c.node(1).state().map(HostId{0}).empty());
}

TEST(AuthHost, TamperedBodyRejectedValidTagAccepted) {
  Cluster c(2);
  // Form the tree first: new-max data is only accepted from the parent.
  c.start_all();
  c.run_for(sim::seconds(2));
  ASSERT_EQ(c.node(1).parent(), HostId{0});
  DataMsg m;
  m.seq = 1;
  m.body = "genuine";
  m.auth = make_auth_tag(auth_config().auth_secret, HostId{0}, 1, "genuine");

  DataMsg tampered = m;
  tampered.body = "Genuine";  // relay flipped a byte, kept the tag
  c.node(1).on_delivery(data_delivery(HostId{0}, HostId{1}, tampered));
  EXPECT_EQ(c.node(1).counters().auth_rejects, 1u);
  EXPECT_TRUE(c.node(1).info().empty());

  c.node(1).on_delivery(data_delivery(HostId{0}, HostId{1}, m));
  EXPECT_EQ(c.node(1).counters().auth_rejects, 1u);
  EXPECT_EQ(c.delivered[1], (std::vector<Seq>{1}));
}

TEST(AuthHost, RelayedFramesKeepTheSourceTag) {
  // End to end with auth on everywhere: the stream converges, every
  // relayed frame still verifies, and nothing is rejected.
  Cluster c(3);
  c.start_all();
  for (int k = 1; k <= 4; ++k) {
    c.node(0).broadcast("m" + std::to_string(k));
    c.run_for(sim::seconds(1));
  }
  c.run_for(sim::seconds(3));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node(i).info().count(), 4u) << "host " << i;
    EXPECT_EQ(c.node(i).counters().auth_rejects, 0u) << "host " << i;
  }
}

TEST(AuthHost, DisabledConfigIgnoresTags) {
  Config c = auth_config();
  c.auth_enabled = false;
  Cluster cluster(2, c);
  cluster.start_all();
  cluster.run_for(sim::seconds(2));
  ASSERT_EQ(cluster.node(1).parent(), HostId{0});
  DataMsg m;
  m.seq = 1;
  m.body = "naked";
  cluster.node(1).on_delivery(data_delivery(HostId{0}, HostId{1}, m));
  EXPECT_EQ(cluster.node(1).counters().auth_rejects, 0u);
  EXPECT_EQ(cluster.delivered[1], (std::vector<Seq>{1}));
}

// --- adversarial fuzz -------------------------------------------------------

// 2000 rounds of seeded tampering with authenticated DATA frames. Every
// mutated frame must be rejected at one of the two trust boundaries — the
// codec (decode failure -> decode_errors) or the auth check
// (auth_rejects) — and must leave every bit of protocol state untouched:
// no delivery, no INFO growth, no cluster change, no liveness credit for
// the claimed sender.
TEST(AuthFuzz, MutatedAuthenticatedFramesNeverCrashOrPerturbState) {
  Cluster c(2);
  const std::uint64_t secret = auth_config().auth_secret;
  util::Rng rng(20260809);

  const auto cluster_before = c.node(1).state().cluster();
  int rejected_by_auth = 0;
  int rejected_by_codec = 0;
  int still_authentic = 0;
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    DataMsg m;
    m.seq = static_cast<Seq>(1 + rng.uniform_int(0, 5));
    m.body = "fuzz-body-" + std::to_string(round % 7);
    m.gap_fill = rng.uniform_int(0, 1) == 1;
    m.auth = make_auth_tag(secret, HostId{0}, m.seq, m.body.view());
    std::string wire = encode_message(ProtocolMessage{m});

    // Flip 1-3 bytes anywhere past the type tag; each flip is non-zero,
    // so the frame almost always differs from what the source signed.
    const int flips = rng.uniform_int(1, 3);
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(wire.size()) - 1));
      wire[pos] = static_cast<char>(wire[pos] ^
                                    static_cast<char>(rng.uniform_int(1, 255)));
    }

    // A flip can land on unauthenticated metadata (the gap_fill bit) or
    // cancel itself out, leaving a frame whose (source, seq, body) still
    // verify. The defense's contract is exactly those three fields, so
    // such frames are legitimately acceptable; classify and skip them.
    const auto decoded = decode_message(wire.data(), wire.size());
    if (decoded.has_value()) {
      const auto* dm = std::get_if<DataMsg>(&*decoded);
      if (dm != nullptr && dm->auth.has_value() &&
          verify_auth_tag(secret, HostId{0}, dm->seq, dm->body.view(),
                          *dm->auth)) {
        ++still_authentic;
        continue;
      }
    }

    net::Delivery d{.from = HostId{0},
                    .to = HostId{1},
                    .expensive = false,
                    .payload = decoded.has_value()
                                   ? std::any(ProtocolMessage{*decoded})
                                   : std::any{},
                    .bytes = wire.size(),
                    .kind = "data",
                    .sent_at = 0,
                    .hops = 1};
    c.node(1).on_delivery(d);
    if (decoded.has_value()) {
      ++rejected_by_auth;
    } else {
      ++rejected_by_codec;
    }
  }

  // Counters advanced and partitioned the rounds exactly.
  const auto& counters = c.node(1).counters();
  EXPECT_EQ(counters.auth_rejects, static_cast<std::uint64_t>(rejected_by_auth));
  EXPECT_EQ(counters.decode_errors,
            static_cast<std::uint64_t>(rejected_by_codec));
  EXPECT_EQ(rejected_by_auth + rejected_by_codec + still_authentic, kRounds);
  // Both boundaries were actually exercised by the seed, and the
  // metadata-only escape hatch stayed rare.
  EXPECT_GT(rejected_by_auth, 100);
  EXPECT_GT(rejected_by_codec, 100);
  EXPECT_LT(still_authentic, 50);

  // Protocol state is untouched.
  EXPECT_TRUE(c.node(1).info().empty());
  EXPECT_TRUE(c.delivered[1].empty());
  EXPECT_EQ(c.node(1).state().cluster(), cluster_before);
  EXPECT_TRUE(c.node(1).state().map(HostId{0}).empty());
  EXPECT_FALSE(c.node(1).parent().valid());
}

}  // namespace
}  // namespace rbcast::core
