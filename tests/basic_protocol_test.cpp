#include "core/basic_protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_network.h"

namespace rbcast::core {
namespace {

using rbcast::testing::FakeHub;

struct Fixture {
  sim::Simulator sim;
  FakeHub hub{sim};
  std::unique_ptr<BasicSource> source;
  std::vector<std::unique_ptr<BasicReceiver>> receivers;
  std::vector<std::vector<Seq>> delivered;

  explicit Fixture(int n, BasicConfig config = {.retransmit_period =
                                                    sim::milliseconds(200)}) {
    std::vector<HostId> all;
    for (int i = 0; i < n; ++i) all.push_back(HostId{i});
    delivered.resize(static_cast<std::size_t>(n));
    util::RngFactory rngs(3);
    source = std::make_unique<BasicSource>(sim, hub.endpoint(HostId{0}), all,
                                           config, rngs.stream("src"));
    hub.register_host(HostId{0}, [this](const net::Delivery& d) {
      source->on_delivery(d);
    });
    receivers.resize(static_cast<std::size_t>(n));
    for (int i = 1; i < n; ++i) {
      receivers[static_cast<std::size_t>(i)] = std::make_unique<BasicReceiver>(
          hub.endpoint(HostId{i}), [this, i](Seq seq, std::string_view) {
            delivered[static_cast<std::size_t>(i)].push_back(seq);
          });
      hub.register_host(HostId{i}, [this, i](const net::Delivery& d) {
        receivers[static_cast<std::size_t>(i)]->on_delivery(d);
      });
    }
  }

  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }
};

TEST(BasicProtocol, BroadcastUnicastsToEveryHost) {
  Fixture f(4);
  f.source->start();
  f.source->broadcast("m1");
  EXPECT_EQ(f.source->counters().first_sends, 3u);
  f.run_for(sim::milliseconds(50));
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(f.delivered[static_cast<std::size_t>(i)],
              (std::vector<Seq>{1}));
  }
}

TEST(BasicProtocol, AcksClearPendingState) {
  Fixture f(3);
  f.source->start();
  f.source->broadcast("m1");
  EXPECT_EQ(f.source->pending(), 2u);
  EXPECT_FALSE(f.source->fully_acked(1));
  f.run_for(sim::milliseconds(50));
  EXPECT_EQ(f.source->pending(), 0u);
  EXPECT_TRUE(f.source->fully_acked(1));
  EXPECT_EQ(f.source->counters().acks_received, 2u);
}

TEST(BasicProtocol, RetransmitsUntilAcked) {
  Fixture f(3);
  // Host 2 is unreachable for a while.
  f.hub.set_drop(HostId{0}, HostId{2}, true);
  f.source->start();
  f.source->broadcast("m1");
  f.run_for(sim::seconds(1));
  EXPECT_GE(f.source->counters().retransmissions, 3u);
  EXPECT_FALSE(f.source->fully_acked(1));
  EXPECT_TRUE(f.delivered[2].empty());

  f.hub.set_drop(HostId{0}, HostId{2}, false);
  f.run_for(sim::seconds(1));
  EXPECT_TRUE(f.source->fully_acked(1));
  EXPECT_EQ(f.delivered[2], (std::vector<Seq>{1}));
}

TEST(BasicProtocol, ReceiverDeliversOnceButAcksEveryCopy) {
  Fixture f(2);
  auto& receiver = *f.receivers[1];
  for (int copy = 0; copy < 3; ++copy) {
    receiver.on_delivery(net::Delivery{
        .from = HostId{0},
        .to = HostId{1},
        .expensive = false,
        .payload = std::any(BasicMessage{BasicData{1, "m1"}}),
        .bytes = 32,
        .kind = "data",
        .sent_at = 0,
        .hops = 1});
  }
  EXPECT_EQ(receiver.counters().deliveries, 1u);
  EXPECT_EQ(receiver.counters().duplicates, 2u);
  EXPECT_EQ(receiver.counters().acks_sent, 3u);
  EXPECT_EQ(f.delivered[1], (std::vector<Seq>{1}));
}

TEST(BasicProtocol, LostAckTriggersRetransmitAndDedup) {
  Fixture f(2);
  f.hub.set_drop(HostId{1}, HostId{0}, true);  // acks die
  f.source->start();
  f.source->broadcast("m1");
  f.run_for(sim::seconds(1));
  EXPECT_GE(f.source->counters().retransmissions, 2u);
  EXPECT_EQ(f.receivers[1]->counters().deliveries, 1u);
  EXPECT_GE(f.receivers[1]->counters().duplicates, 2u);

  f.hub.set_drop(HostId{1}, HostId{0}, false);
  f.run_for(sim::seconds(1));
  EXPECT_TRUE(f.source->fully_acked(1));
}

TEST(BasicProtocol, MultipleMessagesTrackIndependently) {
  Fixture f(3);
  f.source->start();
  f.source->broadcast("m1");
  f.source->broadcast("m2");
  f.run_for(sim::milliseconds(50));
  EXPECT_TRUE(f.source->fully_acked(1));
  EXPECT_TRUE(f.source->fully_acked(2));
  std::vector<Seq> seen = f.delivered[1];
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<Seq>{1, 2}));
}

TEST(BasicProtocol, RetransmitBurstCapsTraffic) {
  BasicConfig config;
  config.retransmit_period = sim::milliseconds(100);
  config.retransmit_burst = 1;
  Fixture f(4, config);
  f.hub.set_drop(HostId{0}, HostId{1}, true);
  f.hub.set_drop(HostId{0}, HostId{2}, true);
  f.hub.set_drop(HostId{0}, HostId{3}, true);
  f.source->start();
  f.source->broadcast("m1");
  const auto before = f.source->counters().retransmissions;
  f.run_for(sim::milliseconds(450));
  // At most one retransmission per round despite three pending hosts.
  EXPECT_LE(f.source->counters().retransmissions - before, 5u);
}

TEST(BasicProtocol, SourceCountsNoSelfDestination) {
  Fixture f(1);  // source alone
  f.source->start();
  f.source->broadcast("solo");
  EXPECT_EQ(f.source->counters().first_sends, 0u);
  EXPECT_EQ(f.source->pending(), 0u);
  EXPECT_TRUE(f.source->fully_acked(1));
}

}  // namespace
}  // namespace rbcast::core
