// Tests for the anti-entropy gossip baseline.
#include "core/gossip_protocol.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "net/fault_plan.h"
#include "topo/generators.h"

namespace rbcast::core {
namespace {

harness::ScenarioOptions gossip_options(std::uint64_t seed = 1) {
  harness::ScenarioOptions options;
  options.protocol_kind = harness::ProtocolKind::kGossip;
  options.gossip.gossip_period = sim::milliseconds(500);
  options.gossip.fanout = 2;
  options.seed = seed;
  return options;
}

TEST(Gossip, MessageSizesAndKinds) {
  EXPECT_STREQ(kind_of(GossipMessage{GossipDigest{}}), "gossip_digest");
  EXPECT_STREQ(kind_of(GossipMessage{GossipData{1, "x"}}), "data");
  EXPECT_LT(wire_size(GossipMessage{GossipDigest{SeqSet::contiguous(5), false}}),
            wire_size(GossipMessage{GossipData{1, std::string(200, 'x')}}));
}

TEST(Gossip, RejectsZeroFanout) {
  sim::Simulator simulator;
  util::RngFactory rngs{1};
  auto wan = topo::make_single_cluster(2);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);
  GossipConfig config;
  config.fanout = 0;
  EXPECT_THROW(GossipNode(simulator, network.endpoint(HostId{0}), HostId{0},
                          wan.topology.host_ids(), config, util::Rng(1)),
               std::invalid_argument);
}

TEST(Gossip, EpidemicSpreadsTheWholeStream) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  harness::Experiment e(make_clustered_wan(wan).topology, gossip_options());
  e.start();
  e.broadcast_stream(10, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.gossip_node(h).counters().deliveries, 10u) << h;
  }
}

TEST(Gossip, SurvivesLossAndDuplication) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 3;
  wan.expensive.loss_probability = 0.3;
  wan.cheap.loss_probability = 0.05;
  wan.expensive.duplication_probability = 0.2;
  harness::Experiment e(make_clustered_wan(wan).topology,
                        gossip_options(7));
  e.start();
  e.broadcast_stream(8, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(600));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Gossip, HealsAcrossAPartition) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  const auto built = make_clustered_wan(wan);
  harness::Experiment e(built.topology, gossip_options(3));
  e.faults().partition_window({built.trunks[0]}, sim::seconds(2),
                              sim::seconds(30));
  e.start();
  e.broadcast_stream(10, sim::seconds(1), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Gossip, PullLegFetchesWhatTheDigestRevealed) {
  // Direct unit exercise of the push-pull logic: a digest from a peer that
  // is *ahead* must trigger a reply digest (the pull), and a digest from a
  // peer that is *behind* must trigger pushes.
  sim::Simulator simulator;
  util::RngFactory rngs{1};
  auto wan = topo::make_single_cluster(2);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);

  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (HostId h : wan.topology.host_ids()) {
    nodes.push_back(std::make_unique<GossipNode>(
        simulator, network.endpoint(h), HostId{0}, wan.topology.host_ids(),
        GossipConfig{}, rngs.stream("g", h.value)));
    network.register_host(h, [&nodes, h](const net::Delivery& d) {
      nodes[static_cast<std::size_t>(h.value)]->on_delivery(d);
    });
  }
  nodes[0]->broadcast("m1");
  nodes[0]->broadcast("m2");

  // Host 1 (empty) receives host 0's digest: no pushes possible from host
  // 1, but it must reply with its own digest; host 0 then pushes both
  // messages. Simulate by direct delivery.
  nodes[1]->on_delivery(net::Delivery{
      .from = HostId{0},
      .to = HostId{1},
      .expensive = false,
      .payload = std::any(GossipMessage{
          GossipDigest{nodes[0]->info(), /*reply=*/false}}),
      .bytes = 64,
      .kind = "gossip_digest",
      .sent_at = 0,
      .hops = 1});
  simulator.run_until(sim::seconds(2));
  EXPECT_EQ(nodes[1]->info().count(), 2u);
  EXPECT_GE(nodes[0]->counters().pushes_sent, 2u);
}

TEST(Gossip, DuplicatesAreCounted) {
  sim::Simulator simulator;
  util::RngFactory rngs{1};
  auto wan = topo::make_single_cluster(2);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);
  GossipNode node(simulator, network.endpoint(HostId{1}), HostId{0},
                  wan.topology.host_ids(), GossipConfig{}, util::Rng(1));
  for (int copy = 0; copy < 3; ++copy) {
    node.on_delivery(net::Delivery{
        .from = HostId{0},
        .to = HostId{1},
        .expensive = false,
        .payload = std::any(GossipMessage{GossipData{1, "m1"}}),
        .bytes = 64,
        .kind = "data",
        .sent_at = 0,
        .hops = 1});
  }
  EXPECT_EQ(node.counters().deliveries, 1u);
  EXPECT_EQ(node.counters().duplicates, 2u);
}

}  // namespace
}  // namespace rbcast::core
