#include "topo/topology.h"

#include <gtest/gtest.h>

namespace rbcast::topo {
namespace {

auto all_up = [](LinkId) { return true; };

TEST(Topology, BuildBasicNetwork) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const LinkId l = t.add_link(s0, s1, LinkClass::kCheap);
  const HostId h0 = t.add_host(s0);
  const HostId h1 = t.add_host(s1);

  EXPECT_EQ(t.server_count(), 2u);
  EXPECT_EQ(t.host_count(), 2u);
  EXPECT_EQ(t.link_count(), 3u);  // trunk + 2 access links
  EXPECT_EQ(t.host(h0).server, s0);
  EXPECT_EQ(t.host(h1).server, s1);
  EXPECT_FALSE(t.link(l).is_access);
  EXPECT_TRUE(t.link(t.host(h0).access_link).is_access);
}

TEST(Topology, RejectsInvalidConstruction) {
  Topology t;
  const ServerId s0 = t.add_server();
  EXPECT_THROW(t.add_link(s0, s0, LinkClass::kCheap), std::invalid_argument);
  EXPECT_THROW(t.add_link(s0, ServerId{5}, LinkClass::kCheap),
               std::invalid_argument);
  t.add_host(s0);
  EXPECT_THROW(t.add_host(s0), std::invalid_argument);  // one host per server
}

TEST(Topology, TrunkLinksExcludeAccessLinks) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  t.add_host(s0);
  const LinkId trunk = t.add_link(s0, s1, LinkClass::kExpensive);
  ASSERT_EQ(t.trunk_links_of(s0).size(), 1u);
  EXPECT_EQ(t.trunk_links_of(s0)[0], trunk);
}

TEST(Topology, TransmissionTimeScalesWithSizeAndBandwidth) {
  LinkSpec cheap{.id = LinkId{0},
                 .a = ServerId{0},
                 .b = ServerId{1},
                 .link_class = LinkClass::kCheap,
                 .params = LinkParams::cheap_defaults()};
  LinkSpec expensive = cheap;
  expensive.link_class = LinkClass::kExpensive;
  expensive.params = LinkParams::expensive_defaults();

  EXPECT_LT(cheap.transmission_time(1000), expensive.transmission_time(1000));
  EXPECT_LT(cheap.transmission_time(100), cheap.transmission_time(10000));
  // 1000 bytes at 56 kbit/s is ~143 ms.
  EXPECT_NEAR(sim::to_seconds(expensive.transmission_time(1000)), 0.143,
              0.005);
}

TEST(Topology, ClustersFollowCheapConnectivity) {
  // Two cheap islands joined by an expensive trunk.
  Topology t;
  const ServerId a0 = t.add_server();
  const ServerId a1 = t.add_server();
  const ServerId b0 = t.add_server();
  t.add_link(a0, a1, LinkClass::kCheap);
  t.add_link(a1, b0, LinkClass::kExpensive);
  const HostId ha0 = t.add_host(a0);
  const HostId ha1 = t.add_host(a1);
  const HostId hb0 = t.add_host(b0);

  const auto clusters = t.clusters(all_up);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<HostId>{ha0, ha1}));
  EXPECT_EQ(clusters[1], (std::vector<HostId>{hb0}));

  const auto idx = t.host_cluster_index(all_up);
  EXPECT_EQ(idx[0], idx[1]);
  EXPECT_NE(idx[0], idx[2]);
}

TEST(Topology, CheapLinkFailureSplitsCluster) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const LinkId cheap = t.add_link(s0, s1, LinkClass::kCheap);
  t.add_host(s0);
  t.add_host(s1);

  EXPECT_EQ(t.clusters(all_up).size(), 1u);
  auto down = [cheap](LinkId l) { return l != cheap; };
  EXPECT_EQ(t.clusters(down).size(), 2u);
}

TEST(Topology, CrashedHostFormsSingletonCluster) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  t.add_link(s0, s1, LinkClass::kCheap);
  const HostId h0 = t.add_host(s0);
  t.add_host(s1);

  const LinkId access = t.host(h0).access_link;
  auto down = [access](LinkId l) { return l != access; };
  const auto clusters = t.clusters(down);
  ASSERT_EQ(clusters.size(), 2u);
}

TEST(Topology, ConnectedSeesAllLinkClasses) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const ServerId s2 = t.add_server();
  const LinkId l01 = t.add_link(s0, s1, LinkClass::kCheap);
  t.add_link(s1, s2, LinkClass::kExpensive);
  const HostId h0 = t.add_host(s0);
  const HostId h2 = t.add_host(s2);

  EXPECT_TRUE(t.connected(h0, h2, all_up));
  auto down = [l01](LinkId l) { return l != l01; };
  EXPECT_FALSE(t.connected(h0, h2, down));
}

TEST(Topology, ConnectedRequiresAccessLinks) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  t.add_link(s0, s1, LinkClass::kCheap);
  const HostId h0 = t.add_host(s0);
  const HostId h1 = t.add_host(s1);
  const LinkId access = t.host(h1).access_link;
  auto down = [access](LinkId l) { return l != access; };
  EXPECT_FALSE(t.connected(h0, h1, down));
}

TEST(Topology, SameServerHostsAlwaysConnectedWhenAccessUp) {
  // Degenerate but legal: connected() via the same server.
  Topology t;
  const ServerId s0 = t.add_server();
  const HostId h0 = t.add_host(s0);
  EXPECT_TRUE(t.connected(h0, h0, all_up));
}

TEST(Topology, DescribeSummarizes) {
  Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  t.add_link(s0, s1, LinkClass::kExpensive);
  t.add_host(s0);
  const std::string d = t.describe();
  EXPECT_NE(d.find("2 servers"), std::string::npos);
  EXPECT_NE(d.find("1 expensive"), std::string::npos);
}

}  // namespace
}  // namespace rbcast::topo
