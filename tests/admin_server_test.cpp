// AdminServer: real-socket GETs against the loopback admin endpoint,
// driven on the same RealTimeScheduler poll loop the node uses. The
// hostile-input contract under test: malformed, oversized, truncated or
// non-GET requests are answered (or dropped) and counted — never a crash,
// and the server keeps serving afterwards.
#include "trace/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <stdexcept>
#include <string>

#include "util/real_time_scheduler.h"

namespace rbcast::trace {
namespace {

// Sends `raw` to the server and pumps the shared scheduler until the
// server closes the connection (Connection: close semantics), returning
// everything it wrote back. `half_close` shuts down our write side first,
// as curl-less probes ("GET /x\n" + EOF) do.
std::string roundtrip(util::RealTimeScheduler& scheduler, std::uint16_t port,
                      const std::string& raw, bool half_close = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  if (!raw.empty()) {
    EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
              static_cast<ssize_t>(raw.size()));
  }
  if (half_close) ::shutdown(fd, SHUT_WR);

  std::string response;
  for (int i = 0; i < 400; ++i) {  // 2s ceiling; loopback finishes in a few
    scheduler.run_for(util::milliseconds(5));
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closed: response complete
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;  // e.g. ECONNRESET: the server closed with our bytes unread
    }
  }
  ::close(fd);
  return response;
}

class AdminServerTest : public ::testing::Test {
 protected:
  util::RealTimeScheduler scheduler;
  AdminServer server{scheduler, 0};  // ephemeral port

  std::string get(const std::string& raw, bool half_close = false) {
    return roundtrip(scheduler, server.port(), raw, half_close);
  }
};

TEST_F(AdminServerTest, RoutesGetToHandlerWithHeaders) {
  server.handle("/metrics", [] {
    AdminServer::Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = "x 1\n";
    return r;
  });
  const std::string response = get("GET /metrics HTTP/1.1\r\nHost: a\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4; "
                          "charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 4), "x 1\n");
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST_F(AdminServerTest, QueryStringIsStrippedBeforeRouting) {
  server.handle("/status", [] {
    AdminServer::Response r;
    r.body = "{}";
    return r;
  });
  const std::string response = get("GET /status?pretty=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
}

TEST_F(AdminServerTest, AnswersBareRequestLineOnEof) {
  server.handle("/healthz", [] {
    AdminServer::Response r;
    r.body = "ok\n";
    return r;
  });
  // No blank line, no HTTP version — just a probe followed by EOF.
  const std::string response = get("GET /healthz\n", /*half_close=*/true);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST_F(AdminServerTest, UnknownPathIs404ListingKnownPaths) {
  server.handle("/metrics", [] { return AdminServer::Response{}; });
  server.handle("/status", [] { return AdminServer::Response{}; });
  const std::string response = get("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/status"), std::string::npos);
  EXPECT_EQ(server.stats().not_found, 1u);
}

TEST_F(AdminServerTest, NonGetIs405) {
  server.handle("/metrics", [] { return AdminServer::Response{}; });
  const std::string response =
      get("POST /metrics HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST_F(AdminServerTest, MalformedRequestLineIs400) {
  const std::string response = get("\x01\x02garbage-no-spaces\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST_F(AdminServerTest, RelativePathIs400) {
  const std::string response = get("GET metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST_F(AdminServerTest, OversizedRequestIsRejectedAndCounted) {
  server.handle("/metrics", [] {
    AdminServer::Response r;
    r.body = "m 1\n";
    return r;
  });
  // 16 KiB of head with no terminating blank line: past the cap. The
  // close-with-unread-bytes can RST the 400 off the wire, so the hard
  // assertions are the count and continued service, not the body.
  const std::string response = get("GET /" + std::string(16384, 'a'));
  if (!response.empty()) {
    EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  }
  EXPECT_EQ(server.stats().bad_requests, 1u);
  EXPECT_EQ(server.open_connections(), 0u);
  const std::string after = get("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(after.find("HTTP/1.1 200"), std::string::npos) << after;
}

TEST_F(AdminServerTest, SilentDisconnectIsDroppedWithoutResponse) {
  const std::string response = get("", /*half_close=*/true);
  EXPECT_EQ(response, "");
  EXPECT_EQ(server.stats().connections, 1u);
  EXPECT_EQ(server.stats().bad_requests, 1u);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST_F(AdminServerTest, HandlerExceptionIs500AndServerSurvives) {
  bool boom = true;
  server.handle("/status", [&]() -> AdminServer::Response {
    if (boom) throw std::runtime_error("snapshot raced");
    AdminServer::Response r;
    r.body = "fine\n";
    return r;
  });
  const std::string first = get("GET /status HTTP/1.1\r\n\r\n");
  EXPECT_NE(first.find("HTTP/1.1 500"), std::string::npos) << first;
  EXPECT_NE(first.find("snapshot raced"), std::string::npos);
  EXPECT_EQ(server.stats().handler_errors, 1u);

  boom = false;
  const std::string second = get("GET /status HTTP/1.1\r\n\r\n");
  EXPECT_NE(second.find("HTTP/1.1 200"), std::string::npos) << second;
  EXPECT_NE(second.find("fine"), std::string::npos);
}

TEST_F(AdminServerTest, ReadinessHandlerCanFlipStatusCodes) {
  bool converged = false;
  server.handle("/healthz", [&] {
    AdminServer::Response r;
    r.status = converged ? 200 : 503;
    r.body = converged ? "ok\n" : "not ready\n";
    return r;
  });
  EXPECT_NE(get("GET /healthz HTTP/1.1\r\n\r\n").find("HTTP/1.1 503"),
            std::string::npos);
  converged = true;
  EXPECT_NE(get("GET /healthz HTTP/1.1\r\n\r\n").find("HTTP/1.1 200"),
            std::string::npos);
}

TEST_F(AdminServerTest, HostileBytesNeverCrashAndServiceContinues) {
  server.handle("/metrics", [] {
    AdminServer::Response r;
    r.body = "m 1\n";
    return r;
  });
  get(std::string("\x00\x01\x02\x7f", 4) + "garbage\r\n\r\n",
      /*half_close=*/true);
  get("DELETE / HTTP/1.1\r\n\r\n");
  get("GET\r\n\r\n");
  const std::string after = get("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(after.find("HTTP/1.1 200"), std::string::npos) << after;
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_GE(server.stats().bad_requests, 3u);
  EXPECT_EQ(server.open_connections(), 0u);
}

}  // namespace
}  // namespace rbcast::trace
