// The Transport seam: SimTransport must be a pure forwarding adapter over
// net::Network, UdpTransport must move real datagrams between sockets
// (ephemeral ports, defensive decoding, counted stats), and the seeded
// impairment shim must reproduce exactly per seed.
#include "transport/transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/messages.h"
#include "core/wire_codec.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/generators.h"
#include "transport/impairment.h"
#include "transport/sim_transport.h"
#include "transport/udp_transport.h"
#include "transport/wire.h"
#include "util/real_time_scheduler.h"
#include "util/rng.h"

namespace rbcast::transport {
namespace {

// --- SimTransport -----------------------------------------------------------

TEST(SimTransport, ForwardsSendsAndDeliveriesThroughTheNetwork) {
  sim::Simulator sim;
  topo::ClusteredWanOptions opts;
  opts.clusters = 1;
  opts.hosts_per_cluster = 2;
  topo::Wan wan = make_clustered_wan(opts);
  util::RngFactory rngs(3);
  net::Network network(sim, wan.topology, net::NetConfig{}, rngs);
  SimTransport transport(sim, network);

  EXPECT_EQ(&transport.scheduler(), static_cast<util::Scheduler*>(&sim));

  std::vector<std::string> got;
  net::HostEndpoint& ep0 =
      transport.attach(HostId{0}, [&](const net::Delivery& d) {
        got.push_back("h0<-" + std::to_string(d.from.value));
      });
  transport.attach(HostId{1}, [&](const net::Delivery& d) {
    got.push_back("h1<-" + std::to_string(d.from.value));
  });
  EXPECT_EQ(ep0.self(), HostId{0});

  ep0.send(HostId{1}, std::any{std::string("ping")}, 16, "data", 0);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "h1<-0");
}

TEST(SimTransport, DetachSilencesTheUpcallWithoutUnregistering) {
  sim::Simulator sim;
  topo::ClusteredWanOptions opts;
  opts.clusters = 1;
  opts.hosts_per_cluster = 2;
  topo::Wan wan = make_clustered_wan(opts);
  util::RngFactory rngs(3);
  net::Network network(sim, wan.topology, net::NetConfig{}, rngs);
  SimTransport transport(sim, network);

  int delivered = 0;
  net::HostEndpoint& ep0 =
      transport.attach(HostId{0}, [&](const net::Delivery&) {});
  transport.attach(HostId{1}, [&](const net::Delivery&) { ++delivered; });
  transport.detach(HostId{1});

  // The network still routes (registration is permanent) but the detached
  // host's callback must never run again.
  ep0.send(HostId{1}, std::any{std::string("late")}, 16, "data", 0);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(delivered, 0);
}

// --- UdpTransport -----------------------------------------------------------

UdpTransport::Config two_host_config() {
  UdpTransport::Config cfg;
  cfg.peers = {{HostId{0}, "127.0.0.1", 0}, {HostId{1}, "127.0.0.1", 0}};
  return cfg;
}

TEST(UdpTransport, DeliversAcrossRealSockets) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  std::vector<core::ProtocolMessage> got;
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});
  udp.attach(HostId{1}, [&](const net::Delivery& d) {
    if (const auto* m = std::any_cast<core::ProtocolMessage>(&d.payload)) {
      got.push_back(*m);
    }
    rt.stop();
  });
  // Both ephemeral ports resolved and published to the local peer table.
  EXPECT_NE(udp.local_port(HostId{0}), 0);
  EXPECT_NE(udp.local_port(HostId{1}), 0);

  core::DataMsg data;
  data.seq = 5;
  data.body = "over the wire";
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 64, "data", 7);

  rt.run_for(util::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(std::get<core::DataMsg>(got[0]).seq, 5u);
  EXPECT_EQ(std::get<core::DataMsg>(got[0]).body, "over the wire");
  EXPECT_EQ(udp.stats().datagrams_sent, 1u);
  EXPECT_EQ(udp.stats().datagrams_received, 1u);
}

TEST(UdpTransport, GarbageDatagramsAreCountedAndDropped) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int upcalls = 0;
  int empty_payloads = 0;
  udp.attach(HostId{1}, [&](const net::Delivery& d) {
    ++upcalls;
    if (!d.payload.has_value()) ++empty_payloads;
  });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  // The raw datagrams below come from an ad-hoc socket, which the
  // unknown-peer filter would rightly drop; spoof their source as peer 0
  // so the decode paths under test are reached.
  udp.set_recv_fn_for_test(
      [&](int fd, void* buf, std::size_t len, sockaddr_in* src) -> ssize_t {
        socklen_t src_len = sizeof(*src);
        const ssize_t n = ::recvfrom(fd, buf, len, 0,
                                     reinterpret_cast<sockaddr*>(src),
                                     &src_len);
        if (n >= 0) {
          src->sin_family = AF_INET;
          ::inet_pton(AF_INET, "127.0.0.1", &src->sin_addr);
          src->sin_port = htons(udp.local_port(HostId{0}));
        }
        return n;
      });

  // A frame-level corruption: valid payload, then scribble on the magic.
  core::DataMsg data;
  data.seq = 1;
  Frame frame;
  frame.from = HostId{0};
  frame.to = HostId{1};
  frame.kind = "data";
  ASSERT_TRUE(codec.encode(std::any{core::ProtocolMessage{data}},
                           frame.payload));
  std::string garbage = encode_frame(frame);
  garbage[0] = 'X';

  // Send it raw, straight into host 1's socket.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(udp.local_port(HostId{1}));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &to.sin_addr), 1);
  ASSERT_EQ(::sendto(fd, garbage.data(), garbage.size(), 0,
                     reinterpret_cast<const sockaddr*>(&to), sizeof(to)),
            static_cast<ssize_t>(garbage.size()));

  // A payload-level corruption: valid frame, garbage body — must reach the
  // host as an EMPTY payload so BroadcastHost can count it.
  frame.payload = "not a protocol message";
  const std::string bad_body = encode_frame(frame);
  ASSERT_EQ(::sendto(fd, bad_body.data(), bad_body.size(), 0,
                     reinterpret_cast<const sockaddr*>(&to), sizeof(to)),
            static_cast<ssize_t>(bad_body.size()));
  ::close(fd);

  // And one good message, to bound the wait.
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 64, "data", 0);

  rt.after(util::seconds(3), [&] { rt.stop(); });
  std::function<void()> poll = [&] {
    if (udp.stats().datagrams_received >= 3) {
      rt.stop();
    } else {
      rt.after(util::milliseconds(20), poll);
    }
  };
  rt.after(util::milliseconds(20), poll);
  rt.run_for(util::seconds(4));

  EXPECT_EQ(udp.stats().frame_decode_errors, 1u);
  EXPECT_EQ(udp.stats().payload_decode_errors, 1u);
  EXPECT_EQ(empty_payloads, 1);
  EXPECT_EQ(upcalls, 2);  // the bad-frame datagram never reaches the host
}

TEST(UdpTransport, RunsTwoBroadcastHostsEndToEnd) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  core::Config fast;
  fast.attach_period = util::milliseconds(50);
  fast.info_period_intra = util::milliseconds(30);
  fast.info_period_inter = util::milliseconds(100);
  fast.gapfill_period_neighbor = util::milliseconds(50);
  fast.gapfill_period_far = util::milliseconds(200);
  fast.parent_timeout = util::seconds(1);
  fast.attach_ack_timeout = util::milliseconds(100);
  fast.data_bytes = 16;

  const std::vector<HostId> all{HostId{0}, HostId{1}};
  util::RngFactory rngs(11);
  std::vector<util::Seq> delivered;
  core::BroadcastHost source(udp, HostId{0}, HostId{0}, all, fast,
                             rngs.stream("host.jitter", 0));
  core::BroadcastHost sink(
      udp, HostId{1}, HostId{0}, all, fast, rngs.stream("host.jitter", 1),
      [&](util::Seq seq, std::string_view) { delivered.push_back(seq); });
  source.start();
  sink.start();

  rt.after(util::milliseconds(100), [&] { source.broadcast("one"); });
  rt.after(util::milliseconds(200), [&] { source.broadcast("two"); });
  std::function<void()> poll = [&] {
    if (delivered.size() >= 2) {
      rt.stop();
    } else {
      rt.after(util::milliseconds(50), poll);
    }
  };
  rt.after(util::milliseconds(50), poll);
  rt.run_for(util::seconds(10));

  EXPECT_EQ(delivered, (std::vector<util::Seq>{1, 2}));
  EXPECT_EQ(sink.counters().decode_errors, 0u);
}

// --- SimTransport batching --------------------------------------------------

TEST(SimTransport, BatchingCoalescesSendsAndUnpacksPerFrameDeliveries) {
  sim::Simulator sim;
  topo::ClusteredWanOptions opts;
  opts.clusters = 1;
  opts.hosts_per_cluster = 2;
  topo::Wan wan = make_clustered_wan(opts);
  util::RngFactory rngs(3);
  net::Network network(sim, wan.topology, net::NetConfig{}, rngs);
  CoalescerConfig coalesce;
  coalesce.flush_delay = sim::milliseconds(5);
  coalesce.max_bytes = 1200;
  SimTransport transport(sim, network, coalesce);
  ASSERT_TRUE(transport.batching());

  std::vector<std::string> got;
  net::HostEndpoint& ep0 =
      transport.attach(HostId{0}, [&](const net::Delivery&) {});
  transport.attach(HostId{1}, [&](const net::Delivery& d) {
    // The receive side must see per-frame deliveries, not the container.
    got.push_back(d.kind + "/" + std::to_string(d.bytes));
  });

  ep0.send(HostId{1}, std::any{std::string("a")}, 16, "data", 0);
  ep0.send(HostId{1}, std::any{std::string("b")}, 20, "info", 0);
  ep0.send(HostId{1}, std::any{std::string("c")}, 16, "data", 0);
  sim.run_for(sim::seconds(1));

  EXPECT_EQ(got, (std::vector<std::string>{"data/16", "info/20", "data/16"}));
  const Coalescer::Stats stats = transport.coalescer_stats();
  EXPECT_EQ(stats.frames_enqueued, 3u);
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.size_flushes, 0u);
}

// --- UdpTransport receive loop (the bugfix sweep) ---------------------------

TEST(UdpTransport, RecvLoopRetriesImmediatelyAfterEintr) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) {
    ++delivered;
    rt.stop();
  });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  // First call: a signal interrupted recvfrom. The loop must retry at
  // once (the datagram is still queued), not bail out or count an error.
  int eintrs = 0;
  udp.set_recv_fn_for_test(
      [&](int fd, void* buf, std::size_t len, sockaddr_in* src) -> ssize_t {
        if (eintrs == 0) {
          ++eintrs;
          errno = EINTR;
          return -1;
        }
        socklen_t src_len = sizeof(*src);
        return ::recvfrom(fd, buf, len, 0, reinterpret_cast<sockaddr*>(src),
                          &src_len);
      });

  core::DataMsg data;
  data.seq = 1;
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  rt.run_for(util::seconds(5));

  EXPECT_EQ(eintrs, 1);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(udp.stats().recv_errors, 0u);
  EXPECT_EQ(udp.stats().datagrams_received, 1u);
}

TEST(UdpTransport, RecvLoopTreatsEagainAsDrainedNotAsAnError) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) { ++delivered; });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  int calls = 0;
  udp.set_recv_fn_for_test(
      [&](int, void*, std::size_t, sockaddr_in*) -> ssize_t {
        ++calls;
        errno = EAGAIN;
        return -1;
      });

  // A real datagram parks in the socket buffer so poll keeps reporting
  // readable; the fake recv never hands it over.
  core::DataMsg data;
  data.seq = 1;
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  rt.after(util::milliseconds(150), [&] { rt.stop(); });
  rt.run_for(util::seconds(2));

  EXPECT_GE(calls, 1);  // the loop ran and exited at EAGAIN...
  EXPECT_EQ(udp.stats().recv_errors, 0u);       // ...without counting errors
  EXPECT_EQ(udp.stats().datagrams_received, 0u);
  EXPECT_EQ(delivered, 0);
}

TEST(UdpTransport, HardRecvErrorsAreCountedAndTheTransportSurvives) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) {
    ++delivered;
    rt.stop();
  });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  // First call: a hard socket error (not EINTR, not EAGAIN). It must be
  // counted in recv_errors — distinguishable from a drained socket — and
  // must not kill the transport: the next wakeup still drains the queue.
  int hard_errors = 0;
  udp.set_recv_fn_for_test(
      [&](int fd, void* buf, std::size_t len, sockaddr_in* src) -> ssize_t {
        if (hard_errors == 0) {
          ++hard_errors;
          errno = EBADF;
          return -1;
        }
        socklen_t src_len = sizeof(*src);
        return ::recvfrom(fd, buf, len, 0, reinterpret_cast<sockaddr*>(src),
                          &src_len);
      });

  core::DataMsg data;
  data.seq = 1;
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  rt.run_for(util::seconds(5));

  EXPECT_EQ(hard_errors, 1);
  EXPECT_EQ(udp.stats().recv_errors, 1u);
  EXPECT_EQ(delivered, 1);  // the queued datagram was still delivered
}

TEST(UdpTransport, DropsDatagramsFromUnknownSourceAddresses) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) { ++delivered; });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  // Receive the real datagram but claim it came from an address that is
  // in no peer binding: the frame must be dropped before decoding, counted
  // only in recv_unknown_peer.
  udp.set_recv_fn_for_test(
      [&](int fd, void* buf, std::size_t len, sockaddr_in* src) -> ssize_t {
        socklen_t src_len = sizeof(*src);
        const ssize_t n = ::recvfrom(fd, buf, len, 0,
                                     reinterpret_cast<sockaddr*>(src),
                                     &src_len);
        if (n >= 0) {
          src->sin_family = AF_INET;
          ::inet_pton(AF_INET, "203.0.113.9", &src->sin_addr);
          src->sin_port = htons(4444);
        }
        return n;
      });

  core::DataMsg data;
  data.seq = 1;
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  rt.after(util::milliseconds(150), [&] { rt.stop(); });
  rt.run_for(util::seconds(2));

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(udp.stats().recv_unknown_peer, 1u);
  EXPECT_EQ(udp.stats().frame_decode_errors, 0u);  // never reached the parser
}

TEST(UdpTransport, ZeroedSourceAddressCountsAsUnknownPeer) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport udp(rt, codec, two_host_config());

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) { ++delivered; });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  // A recv seam that never fills `src` models a sender the kernel could
  // not attribute: the zeroed struct must not match any peer.
  udp.set_recv_fn_for_test(
      [&](int fd, void* buf, std::size_t len, sockaddr_in*) -> ssize_t {
        return ::recvfrom(fd, buf, len, 0, nullptr, nullptr);
      });

  core::DataMsg data;
  data.seq = 1;
  ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  rt.after(util::milliseconds(150), [&] { rt.stop(); });
  rt.run_for(util::seconds(2));

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(udp.stats().recv_unknown_peer, 1u);
}

// --- UdpTransport batching --------------------------------------------------

TEST(UdpTransport, CoalescesFramesIntoOneBatchDatagram) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport::Config cfg = two_host_config();
  cfg.coalesce.flush_delay = util::milliseconds(20);
  cfg.coalesce.max_bytes = 1200;
  UdpTransport udp(rt, codec, cfg);

  std::vector<util::Seq> got;
  udp.attach(HostId{1}, [&](const net::Delivery& d) {
    if (const auto* m = std::any_cast<core::ProtocolMessage>(&d.payload)) {
      if (const auto* data = std::get_if<core::DataMsg>(m)) {
        got.push_back(data->seq);
      }
    }
    if (got.size() == 4) rt.stop();
  });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  for (util::Seq seq = 1; seq <= 4; ++seq) {
    core::DataMsg data;
    data.seq = seq;
    data.body = "m" + std::to_string(seq);
    ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 32, "data", 0);
  }
  rt.run_for(util::seconds(5));

  // All four frames arrive, in enqueue order, out of ONE wire datagram.
  EXPECT_EQ(got, (std::vector<util::Seq>{1, 2, 3, 4}));
  EXPECT_EQ(udp.stats().datagrams_sent, 1u);
  EXPECT_EQ(udp.stats().datagrams_received, 1u);
  const Coalescer::Stats stats = udp.coalescer_stats();
  EXPECT_EQ(stats.frames_enqueued, 4u);
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
}

TEST(UdpTransport, BatchBudgetOverflowFlushesEarly) {
  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport::Config cfg = two_host_config();
  cfg.coalesce.flush_delay = util::milliseconds(20);
  // Room for one encoded DataMsg frame but not two: the second enqueue
  // must push the first out as a size flush instead of overflowing.
  cfg.coalesce.max_bytes = 70;
  UdpTransport udp(rt, codec, cfg);

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) {
    if (++delivered == 2) rt.stop();
  });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  for (util::Seq seq = 1; seq <= 2; ++seq) {
    core::DataMsg data;
    data.seq = seq;
    data.body = "x";
    ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 32, "data", 0);
  }
  rt.run_for(util::seconds(5));

  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(udp.stats().datagrams_sent, 2u);
  const Coalescer::Stats stats = udp.coalescer_stats();
  EXPECT_EQ(stats.frames_enqueued, 2u);
  EXPECT_EQ(stats.batches_flushed, 2u);
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
}

TEST(UdpTransport, ImpairmentDrawsOncePerDatagramAndCountsFrames) {
  // Pin the draw order: batching must consume ONE impairment plan per
  // datagram, not one per frame, and the impair_* stats must count the
  // contained frames. A reference Impairment with the same seed predicts
  // the exact fate of each of the two batches below.
  ImpairmentConfig icfg;
  icfg.loss = 0.5;
  icfg.seed = 7;
  Impairment ref(icfg);
  const bool first_dropped = ref.next().dropped;
  const bool second_dropped = ref.next().dropped;

  util::RealTimeScheduler rt;
  const core::ProtocolCodec codec;
  UdpTransport::Config cfg = two_host_config();
  cfg.impairment = icfg;
  cfg.coalesce.flush_delay = util::milliseconds(20);
  cfg.coalesce.max_bytes = 1200;
  UdpTransport udp(rt, codec, cfg);

  int delivered = 0;
  udp.attach(HostId{1}, [&](const net::Delivery&) { ++delivered; });
  net::HostEndpoint& ep0 = udp.attach(HostId{0}, [](const net::Delivery&) {});

  const auto send_one = [&](util::Seq seq) {
    core::DataMsg data;
    data.seq = seq;
    ep0.send(HostId{1}, std::any{core::ProtocolMessage{data}}, 16, "data", 0);
  };
  // Batch 1: three frames. Batch 2 (after the first deadline flush): two.
  rt.after(util::milliseconds(1), [&] {
    send_one(1);
    send_one(2);
    send_one(3);
  });
  rt.after(util::milliseconds(100), [&] {
    send_one(4);
    send_one(5);
  });
  rt.after(util::milliseconds(300), [&] { rt.stop(); });
  rt.run_for(util::seconds(5));

  const std::uint64_t expected_drops =
      (first_dropped ? 3u : 0u) + (second_dropped ? 2u : 0u);
  EXPECT_EQ(udp.stats().impair_drops, expected_drops);
  EXPECT_EQ(udp.stats().datagrams_sent,
            (first_dropped ? 0u : 1u) + (second_dropped ? 0u : 1u));
  EXPECT_EQ(delivered,
            (first_dropped ? 0 : 3) + (second_dropped ? 0 : 2));
  const Coalescer::Stats stats = udp.coalescer_stats();
  EXPECT_EQ(stats.frames_enqueued, 5u);
  EXPECT_EQ(stats.batches_flushed, 2u);
}

// --- impairment -------------------------------------------------------------

TEST(Impairment, SameSeedSamePlanSequence) {
  ImpairmentConfig cfg;
  cfg.loss = 0.2;
  cfg.duplicate = 0.15;
  cfg.reorder = 0.3;
  cfg.seed = 99;
  Impairment a(cfg);
  Impairment b(cfg);
  int drops = 0;
  int dups = 0;
  int delays = 0;
  for (int i = 0; i < 5000; ++i) {
    const ImpairmentPlan pa = a.next();
    const ImpairmentPlan pb = b.next();
    EXPECT_EQ(pa.dropped, pb.dropped);
    EXPECT_EQ(pa.copies, pb.copies);
    EXPECT_EQ(pa.delay[0], pb.delay[0]);
    EXPECT_EQ(pa.delay[1], pb.delay[1]);
    if (pa.dropped) ++drops;
    if (pa.copies > 1) ++dups;
    if (pa.delay[0] > 0 || pa.delay[1] > 0) ++delays;
    for (int c = 0; c < ImpairmentPlan::kMaxCopies; ++c) {
      EXPECT_GE(pa.delay[c], 0);
      EXPECT_LE(pa.delay[c], cfg.delay_max);
    }
  }
  // All three knobs actually fire at roughly their configured rates.
  EXPECT_GT(drops, 5000 / 10);
  EXPECT_GT(dups, 5000 / 20);
  EXPECT_GT(delays, 5000 / 10);
}

TEST(Impairment, DisabledConfigMeansCleanPlans) {
  const ImpairmentConfig clean;
  EXPECT_FALSE(clean.enabled());
  ImpairmentConfig lossy;
  lossy.loss = 0.01;
  EXPECT_TRUE(lossy.enabled());
}

}  // namespace
}  // namespace rbcast::transport
