// Exposition: the Prometheus text rendering (golden file), its
// consistency with util::Histogram's bucket semantics, name mangling,
// and the /status JSON document round-tripping through util::json.
#include "trace/exposition.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/metric_sampler.h"
#include "util/metrics_registry.h"

namespace rbcast::trace {
namespace {

TEST(PrometheusName, ManglesDotsAndPrefixes) {
  EXPECT_EQ(prometheus_name("transport.datagrams_sent"),
            "rbcast_transport_datagrams_sent");
  EXPECT_EQ(prometheus_name("host.attach-attempts"),
            "rbcast_host_attach_attempts");
  // Already prefixed: no double rbcast_.
  EXPECT_EQ(prometheus_name("rbcast_custom"), "rbcast_custom");
}

TEST(Prometheus, GoldenTextFormat) {
  util::MetricsRegistry registry;
  registry.counter("host.deliveries", "host=\"0\"", "First receipts").inc(3);
  registry.counter("host.deliveries", "host=\"1\"", "First receipts").inc(4);
  registry.register_gauge_fn("tree.depth", "", "Longest parent chain",
                             [] { return 2.0; });
  util::Histogram& lat =
      registry.histogram("delivery.latency_seconds", {0.01, 0.5}, "",
                         "Delivery latency");
  lat.add(0.002);
  lat.add(0.1);
  lat.add(9.0);

  std::ostringstream os;
  write_prometheus(os, registry.snapshot());
  const std::string expected =
      "# HELP rbcast_delivery_latency_seconds Delivery latency\n"
      "# TYPE rbcast_delivery_latency_seconds histogram\n"
      "rbcast_delivery_latency_seconds_bucket{le=\"0.01\"} 1\n"
      "rbcast_delivery_latency_seconds_bucket{le=\"0.5\"} 2\n"
      "rbcast_delivery_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "rbcast_delivery_latency_seconds_sum 9.102\n"
      "rbcast_delivery_latency_seconds_count 3\n"
      "# HELP rbcast_host_deliveries First receipts\n"
      "# TYPE rbcast_host_deliveries counter\n"
      "rbcast_host_deliveries{host=\"0\"} 3\n"
      "rbcast_host_deliveries{host=\"1\"} 4\n"
      "# HELP rbcast_tree_depth Longest parent chain\n"
      "# TYPE rbcast_tree_depth gauge\n"
      "rbcast_tree_depth 2\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(Prometheus, HelpFallsBackToTheDottedName) {
  util::MetricsRegistry registry;
  registry.counter("a.b");
  std::ostringstream os;
  write_prometheus(os, registry.snapshot());
  EXPECT_NE(os.str().find("# HELP rbcast_a_b a.b\n"), std::string::npos);
}

// The bucket lines must agree with util::Histogram's own cumulative
// counts for the shared sampler bounds — one histogram semantics
// everywhere (DESIGN.md §14).
TEST(Prometheus, BucketsMatchUtilHistogramOnSamplerBounds) {
  const std::vector<double> bounds = MetricSampler::latency_bounds();
  util::Histogram reference(bounds);
  util::MetricsRegistry registry;
  util::Histogram& exposed = registry.histogram("lat", bounds);
  const std::vector<double> samples = {0.0005, 0.003, 0.02, 0.02,
                                       0.7,    30.0,  120.0};
  for (double v : samples) {
    reference.add(v);
    exposed.add(v);
  }
  std::ostringstream os;
  write_prometheus(os, registry.snapshot());
  const std::string text = os.str();
  const auto cumulative = reference.cumulative_counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    std::ostringstream bound_text;
    bound_text.precision(12);
    bound_text << bounds[i];
    const std::string line = "rbcast_lat_bucket{le=\"" + bound_text.str() +
                             "\"} " + std::to_string(cumulative[i]) + "\n";
    EXPECT_NE(text.find(line), std::string::npos) << line << "\nin\n" << text;
  }
  EXPECT_NE(text.find("rbcast_lat_bucket{le=\"+Inf\"} " +
                      std::to_string(reference.count()) + "\n"),
            std::string::npos);
}

StatusDoc sample_doc() {
  StatusDoc doc;
  doc.now_s = 3.25;
  doc.ready = true;
  doc.source = 0;
  doc.messages_expected = 20;
  doc.messages_sent = 20;
  HostStatus h;
  h.id = 4;
  h.source = false;
  h.parent = 0;
  h.orphan = false;
  h.leader = false;
  h.info_count = 20;
  h.max_seq = 20;
  h.deliveries = 20;
  h.decode_errors = 1;
  h.auth_rejects = 2;
  h.cluster = {0, 3, 4};
  doc.hosts.push_back(h);
  util::MetricSnapshot counter;
  counter.name = "transport.datagrams_sent";
  counter.kind = util::MetricSnapshot::Kind::kCounter;
  counter.counter = 123;
  doc.metrics.push_back(counter);
  util::MetricSnapshot gauge;
  gauge.name = "tree.depth";
  gauge.kind = util::MetricSnapshot::Kind::kGauge;
  gauge.gauge = 2.5;
  doc.metrics.push_back(gauge);
  util::MetricSnapshot histogram;
  histogram.name = "delivery.latency_seconds";
  histogram.kind = util::MetricSnapshot::Kind::kHistogram;
  histogram.bounds = {0.01, 0.5};
  histogram.cumulative = {1, 2};
  histogram.count = 3;
  histogram.sum = 9.102;
  doc.metrics.push_back(histogram);
  return doc;
}

TEST(StatusJson, RoundTripsThroughUtilJson) {
  const StatusDoc doc = sample_doc();
  const std::string text = status_json(doc);
  const StatusDoc parsed = parse_status_json(text);

  EXPECT_DOUBLE_EQ(parsed.now_s, doc.now_s);
  EXPECT_EQ(parsed.ready, doc.ready);
  EXPECT_EQ(parsed.source, doc.source);
  EXPECT_EQ(parsed.messages_expected, doc.messages_expected);
  EXPECT_EQ(parsed.messages_sent, doc.messages_sent);
  ASSERT_EQ(parsed.hosts.size(), 1u);
  EXPECT_EQ(parsed.hosts[0].id, 4);
  EXPECT_EQ(parsed.hosts[0].parent, 0);
  EXPECT_EQ(parsed.hosts[0].info_count, 20u);
  EXPECT_EQ(parsed.hosts[0].max_seq, 20);
  EXPECT_EQ(parsed.hosts[0].deliveries, 20u);
  EXPECT_EQ(parsed.hosts[0].decode_errors, 1u);
  EXPECT_EQ(parsed.hosts[0].auth_rejects, 2u);
  EXPECT_EQ(parsed.hosts[0].cluster, (std::vector<std::int64_t>{0, 3, 4}));
  ASSERT_EQ(parsed.metrics.size(), 3u);
  EXPECT_EQ(parsed.metrics[0].counter, 123u);
  EXPECT_DOUBLE_EQ(parsed.metrics[1].gauge, 2.5);
  EXPECT_EQ(parsed.metrics[2].kind, util::MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(parsed.metrics[2].cumulative,
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(parsed.metrics[2].sum, 9.102);

  // Serialization is byte-stable: render(parse(render(x))) == render(x).
  EXPECT_EQ(status_json(parsed), text);
}

TEST(StatusJson, ParserDefaultsAuthRejectsForPreAuthNodes) {
  // A /status document from a node built before the auth field existed
  // must parse cleanly with auth_rejects == 0.
  const StatusDoc parsed = parse_status_json(
      "{\"hosts\":[{\"id\":1,\"deliveries\":3,\"decode_errors\":0}]}");
  ASSERT_EQ(parsed.hosts.size(), 1u);
  EXPECT_EQ(parsed.hosts[0].auth_rejects, 0u);
}

TEST(StatusJson, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(parse_status_json("not json"), std::invalid_argument);
  EXPECT_THROW(parse_status_json("[1,2,3]"), std::invalid_argument);
  EXPECT_THROW(parse_status_json("{\"hosts\":7}"), std::invalid_argument);
  EXPECT_THROW(parse_status_json("{\"metrics\":[{\"name\":\"x\","
                                 "\"kind\":\"nope\"}]}"),
               std::invalid_argument);
  // Histogram arrays must be parallel.
  EXPECT_THROW(parse_status_json(
                   "{\"metrics\":[{\"name\":\"h\",\"kind\":\"histogram\","
                   "\"count\":1,\"sum\":1,\"bounds\":[1],"
                   "\"cumulative\":[1,2]}]}"),
               std::invalid_argument);
  // Negative counts are nonsense from an untrusted endpoint.
  EXPECT_THROW(parse_status_json("{\"hosts\":[{\"id\":1,"
                                 "\"deliveries\":-3}]}"),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::trace
