#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rbcast::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo = saw_lo || v == 2;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCasesAreDeterministic) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngFactory, StreamsAreReproducible) {
  RngFactory f(99);
  Rng a = f.stream("workload", 1);
  Rng b = f.stream("workload", 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngFactory, StreamsDifferByPurpose) {
  RngFactory f(99);
  Rng a = f.stream("workload");
  Rng b = f.stream("faults");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngFactory, StreamsDifferByIndex) {
  RngFactory f(99);
  Rng a = f.stream("link", 0);
  Rng b = f.stream("link", 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngFactory, RootSeedChangesEverything) {
  RngFactory f1(1);
  RngFactory f2(2);
  EXPECT_NE(f1.stream("x").uniform(), f2.stream("x").uniform());
}

}  // namespace
}  // namespace rbcast::util
