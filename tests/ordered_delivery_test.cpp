#include "core/ordered_delivery.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast::core {
namespace {

struct Capture {
  std::vector<util::Seq> out;
  OrderedDeliveryAdapter adapter{[this](util::Seq s, std::string_view) {
    out.push_back(s);
  }};
};

TEST(OrderedDelivery, InOrderPassesThroughImmediately) {
  Capture c;
  c.adapter.on_message(1, "a");
  c.adapter.on_message(2, "b");
  c.adapter.on_message(3, "c");
  EXPECT_EQ(c.out, (std::vector<util::Seq>{1, 2, 3}));
  EXPECT_EQ(c.adapter.buffered(), 0u);
  EXPECT_EQ(c.adapter.next_expected(), 4u);
}

TEST(OrderedDelivery, HoldsBackUntilGapFills) {
  Capture c;
  c.adapter.on_message(2, "b");
  c.adapter.on_message(3, "c");
  EXPECT_TRUE(c.out.empty());
  EXPECT_EQ(c.adapter.buffered(), 2u);

  c.adapter.on_message(1, "a");
  EXPECT_EQ(c.out, (std::vector<util::Seq>{1, 2, 3}));
  EXPECT_EQ(c.adapter.buffered(), 0u);
}

TEST(OrderedDelivery, InterleavedGapsReleaseInWaves) {
  Capture c;
  c.adapter.on_message(2, "b");
  c.adapter.on_message(5, "e");
  c.adapter.on_message(1, "a");  // releases 1, 2
  EXPECT_EQ(c.out, (std::vector<util::Seq>{1, 2}));
  c.adapter.on_message(4, "d");
  EXPECT_EQ(c.out.size(), 2u);   // 3 still missing
  c.adapter.on_message(3, "c");  // releases 3, 4, 5
  EXPECT_EQ(c.out, (std::vector<util::Seq>{1, 2, 3, 4, 5}));
}

TEST(OrderedDelivery, TracksMaxBufferOccupancy) {
  Capture c;
  for (util::Seq q = 10; q >= 2; --q) c.adapter.on_message(q, "x");
  EXPECT_EQ(c.adapter.max_buffered(), 9u);
  c.adapter.on_message(1, "x");
  EXPECT_EQ(c.adapter.buffered(), 0u);
  EXPECT_EQ(c.adapter.max_buffered(), 9u);
  EXPECT_EQ(c.adapter.released(), 10u);
}

TEST(OrderedDelivery, RejectsNullDownstream) {
  EXPECT_THROW(OrderedDeliveryAdapter(nullptr), std::invalid_argument);
}

TEST(OrderedDelivery, EndToEndThroughExperiment) {
  // Lossy WAN: receipts are out of order, the application must still see
  // 1, 2, 3, ... at every host.
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = 0.2;

  harness::ScenarioOptions options;
  options.ordered_delivery = true;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 32;
  options.seed = 31;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(15, sim::milliseconds(300), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  ASSERT_TRUE(e.all_delivered());

  for (HostId h : e.topology().host_ids()) {
    if (h == e.source()) continue;
    auto& adapter = e.ordered_adapter(h);
    EXPECT_EQ(adapter.released(), 15u) << h;
    EXPECT_EQ(adapter.buffered(), 0u) << h;
    EXPECT_EQ(adapter.next_expected(), 16u) << h;
  }
}

}  // namespace
}  // namespace rbcast::core
