// Tests for the formal-model layer: the model itself, the checker, the
// checker's ability to catch injected bugs, and bounded verification runs
// of the real protocol rules.
#include "model/checker.h"

#include <gtest/gtest.h>

namespace rbcast::model {
namespace {

ModelConfig two_hosts() {
  ModelConfig config;
  config.hosts = 2;
  config.cluster_of = {0, 1};
  config.max_broadcasts = 2;
  config.max_inflight = 3;
  return config;
}

ModelConfig three_hosts_triangle() {
  // The Figure 4.1 shape: three single-host clusters.
  ModelConfig config;
  config.hosts = 3;
  config.cluster_of = {0, 1, 2};
  config.max_broadcasts = 2;
  config.max_inflight = 3;
  return config;
}

ModelConfig three_hosts_one_cluster() {
  ModelConfig config;
  config.hosts = 3;
  config.cluster_of = {0, 0, 0};
  config.max_broadcasts = 2;
  config.max_inflight = 3;
  return config;
}

// --- model mechanics -----------------------------------------------------

TEST(Model, InitialStateMatchesPaperInitialConditions) {
  Checker checker(two_hosts());
  const SystemState init = checker.initial_state();
  ASSERT_EQ(init.nodes.size(), 2u);
  for (const auto& node : init.nodes) {
    EXPECT_TRUE(node.state().info().empty());
    EXPECT_FALSE(node.state().parent().valid());
    EXPECT_EQ(node.state().cluster().size(), 1u);  // {self}
  }
  EXPECT_TRUE(init.inflight.empty());
}

TEST(Model, BroadcastTransitionGeneratesMessage) {
  Checker checker(two_hosts());
  const SystemState init = checker.initial_state();
  const auto next = checker.successors(init);
  // At minimum: the broadcast transition and info exchanges exist.
  bool found_broadcast = false;
  for (const auto& [description, state] : next) {
    if (description == "broadcast#1") {
      found_broadcast = true;
      EXPECT_EQ(state.broadcasts_done, 1);
      EXPECT_EQ(state.nodes[0].state().info().max_seq(), 1u);
      // No children yet: nothing in flight from the broadcast itself.
    }
  }
  EXPECT_TRUE(found_broadcast);
}

TEST(Model, FingerprintDistinguishesStates) {
  Checker checker(two_hosts());
  const SystemState init = checker.initial_state();
  const auto next = checker.successors(init);
  ASSERT_FALSE(next.empty());
  for (const auto& [description, state] : next) {
    EXPECT_NE(state.fingerprint(), init.fingerprint()) << description;
  }
}

TEST(Model, FingerprintIsOrderInsensitiveForInflight) {
  Checker checker(two_hosts());
  SystemState a = checker.initial_state();
  SystemState b = checker.initial_state();
  ModelMessage m1{HostId{0}, HostId{1},
                  core::ProtocolMessage{core::DetachNotice{}}};
  ModelMessage m2{HostId{1}, HostId{0},
                  core::ProtocolMessage{core::DetachNotice{}}};
  a.inflight = {m1, m2};
  b.inflight = {m2, m1};
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// --- bounded verification of the real rules ---------------------------------

TEST(Model, ExhaustiveTwoHostsIsSafe) {
  Checker checker(two_hosts());
  const auto report = checker.explore_bfs(/*max_depth=*/14,
                                          /*max_states=*/200000);
  ASSERT_TRUE(report.clean()) << report.violations[0].invariant << ": "
                              << report.violations[0].description;
  EXPECT_GT(report.states_explored, 20000u);
}

TEST(Model, ExhaustiveTriangleIsSafe) {
  Checker checker(three_hosts_triangle());
  const auto report = checker.explore_bfs(/*max_depth=*/7,
                                          /*max_states=*/150000);
  ASSERT_TRUE(report.clean()) << report.violations[0].invariant << ": "
                              << report.violations[0].description;
  EXPECT_GT(report.states_explored, 3000u);
}

TEST(Model, ExhaustiveSingleClusterIsSafe) {
  Checker checker(three_hosts_one_cluster());
  const auto report = checker.explore_bfs(/*max_depth=*/5,
                                          /*max_states=*/150000);
  EXPECT_TRUE(report.clean()) << report.violations[0].invariant << ": "
                              << report.violations[0].description;
}

TEST(Model, RandomWalksAreSafeDeepIntoTheRun) {
  Checker checker(three_hosts_triangle());
  const auto report =
      checker.explore_random(/*walks=*/300, /*steps=*/120, /*seed=*/99);
  EXPECT_TRUE(report.clean()) << report.violations[0].invariant << ": "
                              << report.violations[0].description;
  EXPECT_GT(report.transitions_fired, 10000u);
}

// --- liveness under fair scheduling ----------------------------------------

TEST(Model, FairWalksReachFullDissemination) {
  Checker checker(three_hosts_triangle());
  const auto report =
      checker.explore_liveness(/*walks=*/60, /*max_steps=*/400, /*seed=*/3);
  EXPECT_TRUE(report.clean());
  // Under fair scheduling, the vast majority of runs disseminate fully.
  EXPECT_GE(report.completed, 50) << "only " << report.completed << "/"
                                  << report.walks << " walks completed";
  EXPECT_GT(report.mean_steps_to_complete, 0.0);
}

TEST(Model, FairWalksCompleteInSingleClusterToo) {
  Checker checker(three_hosts_one_cluster());
  const auto report =
      checker.explore_liveness(/*walks=*/60, /*max_steps=*/400, /*seed=*/4);
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.completed, 50);
}

// --- checker self-tests (mutation testing) ------------------------------

TEST(Model, CheckerCatchesDoubleDeliveryMutant) {
  ModelConfig config = two_hosts();
  config.mutant_double_delivery = true;
  Checker checker(config);
  const auto report =
      checker.explore_random(/*walks=*/500, /*steps=*/100, /*seed=*/5);
  ASSERT_FALSE(report.clean())
      << "the checker failed to catch an injected exactly-once bug";
  EXPECT_EQ(report.violations[0].invariant, "I1");
  // A violation carries a reproducible trace.
  EXPECT_FALSE(report.violations[0].trace.empty());
}

TEST(Model, AcceptFromAnyoneMutantIsStillSafe) {
  // Documenting a real insight: the acceptance rule (new maxima only from
  // the parent) is *not* needed for safety — dropping it keeps
  // exactly-once and integrity intact. The paper needs it for the
  // structural/liveness argument (cycle handling, Section 4.3), not for
  // safety.
  ModelConfig config = three_hosts_triangle();
  config.mutant_accept_from_anyone = true;
  Checker checker(config);
  const auto report = checker.explore_bfs(/*max_depth=*/5,
                                          /*max_states=*/150000);
  EXPECT_TRUE(report.clean());
}

TEST(Model, RejectsBadConfiguration) {
  ModelConfig config;
  config.hosts = 3;
  config.cluster_of = {0, 0};  // wrong size
  EXPECT_THROW(Checker{config}, std::invalid_argument);

  ModelConfig bad_source;
  bad_source.hosts = 2;
  bad_source.cluster_of = {0, 1};
  bad_source.source = HostId{7};
  EXPECT_THROW(Checker{bad_source}, std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::model
