#include "topo/generators.h"

#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace rbcast::topo {
namespace {

auto all_up = [](LinkId) { return true; };

TEST(Generators, ClusteredWanHasPlannedClusters) {
  ClusteredWanOptions options;
  options.clusters = 4;
  options.hosts_per_cluster = 3;
  options.shape = TrunkShape::kRing;
  const Wan wan = make_clustered_wan(options);

  EXPECT_EQ(wan.topology.host_count(), 12u);
  EXPECT_EQ(wan.cluster_hosts.size(), 4u);
  // Ground truth agrees with the plan.
  const auto actual = wan.topology.clusters(all_up);
  ASSERT_EQ(actual.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(actual[c], wan.cluster_hosts[c]);
  }
}

TEST(Generators, TrunkCountsPerShape) {
  for (auto [shape, expected] :
       {std::pair{TrunkShape::kLine, 4}, std::pair{TrunkShape::kRing, 5},
        std::pair{TrunkShape::kStar, 4}, std::pair{TrunkShape::kRandomTree, 4}}) {
    ClusteredWanOptions options;
    options.clusters = 5;
    options.hosts_per_cluster = 2;
    options.shape = shape;
    const Wan wan = make_clustered_wan(options);
    EXPECT_EQ(wan.trunks.size(), static_cast<std::size_t>(expected));
  }
}

TEST(Generators, TrunksAreExpensive) {
  ClusteredWanOptions options;
  options.clusters = 3;
  options.hosts_per_cluster = 2;
  const Wan wan = make_clustered_wan(options);
  for (LinkId l : wan.trunks) {
    EXPECT_EQ(wan.topology.link(l).link_class, LinkClass::kExpensive);
  }
}

TEST(Generators, ExtraTrunksAddPathDiversity) {
  ClusteredWanOptions base;
  base.clusters = 8;
  base.hosts_per_cluster = 1;
  base.shape = TrunkShape::kLine;
  const std::size_t baseline = make_clustered_wan(base).trunks.size();

  base.extra_trunk_fraction = 0.5;
  const std::size_t extended = make_clustered_wan(base).trunks.size();
  EXPECT_GT(extended, baseline);
}

TEST(Generators, RandomTreeIsDeterministicPerSeed) {
  ClusteredWanOptions options;
  options.clusters = 6;
  options.hosts_per_cluster = 1;
  options.shape = TrunkShape::kRandomTree;
  options.seed = 7;
  const Wan a = make_clustered_wan(options);
  const Wan b = make_clustered_wan(options);
  ASSERT_EQ(a.trunks.size(), b.trunks.size());
  for (std::size_t i = 0; i < a.trunks.size(); ++i) {
    EXPECT_EQ(a.topology.link(a.trunks[i]).a, b.topology.link(b.trunks[i]).a);
    EXPECT_EQ(a.topology.link(a.trunks[i]).b, b.topology.link(b.trunks[i]).b);
  }
}

TEST(Generators, IntraClusterRingSurvivesOneCheapLinkFailure) {
  ClusteredWanOptions options;
  options.clusters = 1;
  options.hosts_per_cluster = 4;
  options.intra_cluster_ring = true;
  const Wan wan = make_clustered_wan(options);

  // Taking down any single cheap trunk must keep the cluster whole.
  for (const LinkSpec& l : wan.topology.links()) {
    if (l.is_access || l.link_class != LinkClass::kCheap) continue;
    auto down = [&](LinkId id) { return id != l.id; };
    EXPECT_EQ(wan.topology.clusters(down).size(), 1u)
        << "cheap link " << l.id << " is a single point of failure";
  }
}

TEST(Generators, SingleClusterShortcut) {
  const Wan wan = make_single_cluster(5);
  EXPECT_EQ(wan.topology.host_count(), 5u);
  EXPECT_EQ(wan.trunks.size(), 0u);
  EXPECT_EQ(wan.topology.clusters(all_up).size(), 1u);
}

TEST(Generators, Figure31MatchesThePaper) {
  const Figure31 fig = make_figure_3_1();
  EXPECT_EQ(fig.topology.host_count(), 3u);
  EXPECT_EQ(fig.topology.server_count(), 4u);
  // s4 is a pure switch.
  EXPECT_FALSE(fig.topology.server(fig.s4).has_host);
  // Every host is its own cluster (all trunks expensive).
  EXPECT_EQ(fig.topology.clusters(all_up).size(), 3u);
  // The star through s4 is the only wiring.
  EXPECT_EQ(fig.topology.trunk_links_of(fig.s4).size(), 3u);
  EXPECT_EQ(fig.topology.trunk_links_of(fig.s1).size(), 1u);
}

TEST(Generators, Figure32HasFourClustersAndDiamondTrunks) {
  const Figure32 fig = make_figure_3_2();
  const auto clusters = fig.topology.clusters(all_up);
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0], fig.cluster_hosts[0]);
  EXPECT_EQ(clusters[3], fig.cluster_hosts[3]);
  EXPECT_EQ(fig.cluster_hosts[3].size(), 3u);  // cluster C has three hosts
  // The source lives in cluster R.
  EXPECT_EQ(fig.cluster_hosts[0].front(), fig.source);
}

TEST(Generators, Figure41TriangleSurvivesSourceIsolation) {
  const Figure41 fig = make_figure_4_1();
  EXPECT_EQ(fig.topology.clusters(all_up).size(), 3u);
  // Cutting both links at s still leaves i and j connected.
  auto cut = [&](LinkId l) { return l != fig.trunk_si && l != fig.trunk_sj; };
  EXPECT_FALSE(fig.topology.connected(fig.s, fig.i, cut));
  EXPECT_FALSE(fig.topology.connected(fig.s, fig.j, cut));
  EXPECT_TRUE(fig.topology.connected(fig.i, fig.j, cut));
}

TEST(Generators, ArpanetShapeAndClusters) {
  const Arpanet net = make_arpanet();
  EXPECT_EQ(net.sites.size(), 20u);
  EXPECT_EQ(net.trunks.size(), 27u);
  // 5 LAN sites (3+2+2+2+2 hosts) + 7 single-host sites = 18 hosts.
  EXPECT_EQ(net.hosts.size(), 18u);
  EXPECT_EQ(net.topology.host_count(), 18u);

  // Every trunk is expensive — the historical 56 kbit/s lines.
  for (LinkId trunk : net.trunks) {
    EXPECT_EQ(net.topology.link(trunk).link_class, LinkClass::kExpensive);
  }

  // Ground truth: each LAN is one multi-host cluster; singles are alone.
  const auto clusters = net.topology.clusters(all_up);
  EXPECT_EQ(clusters.size(), 12u);  // 5 LANs + 7 singles
  std::size_t multi = 0;
  for (const auto& cluster : clusters) {
    if (cluster.size() > 1) ++multi;
  }
  EXPECT_EQ(multi, 5u);

  // Coast to coast: an MIT host can reach a UCLA host.
  EXPECT_TRUE(net.topology.connected(net.hosts_at.at("MIT").front(),
                                     net.hosts_at.at("UCLA").front(),
                                     all_up));
}

TEST(Generators, ArpanetSurvivesSingleTrunkFailures) {
  // The map has enough path diversity that no single trunk is a cut edge
  // between MIT and UCLA.
  const Arpanet net = make_arpanet();
  const HostId east = net.hosts_at.at("MIT").front();
  const HostId west = net.hosts_at.at("UCLA").front();
  for (LinkId down : net.trunks) {
    auto up = [down](LinkId l) { return l != down; };
    EXPECT_TRUE(net.topology.connected(east, west, up))
        << "trunk " << down << " is a single point of failure";
  }
}

TEST(Generators, ArpanetBroadcastsEndToEnd) {
  const Arpanet net = make_arpanet();
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 64;
  // Source at MIT.
  options.source = net.hosts_at.at("MIT").front();
  harness::Experiment e(net.topology, options);
  e.start();
  e.broadcast_stream(5, sim::seconds(1), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Generators, RejectsDegenerateOptions) {
  ClusteredWanOptions options;
  options.clusters = 0;
  EXPECT_THROW(make_clustered_wan(options), std::invalid_argument);
  options.clusters = 2;
  options.hosts_per_cluster = 0;
  EXPECT_THROW(make_clustered_wan(options), std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::topo
