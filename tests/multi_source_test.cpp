// Multi-source broadcast (Section 2's "several identical single-source
// protocols") over the real network substrate.
#include "core/multi_source.h"

#include <gtest/gtest.h>

#include <map>

#include "net/fault_plan.h"
#include "net/network.h"
#include "topo/generators.h"

namespace rbcast::core {
namespace {

Config fast_config() {
  Config c;
  c.attach_period = sim::milliseconds(500);
  c.info_period_intra = sim::milliseconds(200);
  c.info_period_inter = sim::seconds(1);
  c.gapfill_period_neighbor = sim::milliseconds(500);
  c.gapfill_period_far = sim::seconds(2);
  c.parent_timeout = sim::seconds(4);
  c.attach_ack_timeout = sim::milliseconds(400);
  c.data_bytes = 64;
  return c;
}

struct Fixture {
  sim::Simulator simulator;
  util::RngFactory rngs{17};
  topo::Wan wan;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<MultiSourceNode>> nodes;
  // delivered[host][source] -> seqs in arrival order
  std::vector<std::map<HostId, std::vector<Seq>>> delivered;

  explicit Fixture(std::vector<HostId> sources,
                   topo::ClusteredWanOptions options = {.clusters = 2,
                                                        .hosts_per_cluster = 2}) {
    wan = make_clustered_wan(options);
    network = std::make_unique<net::Network>(simulator, wan.topology,
                                             net::NetConfig{}, rngs);
    const auto all = wan.topology.host_ids();
    delivered.resize(all.size());
    for (HostId h : all) {
      const auto idx = static_cast<std::size_t>(h.value);
      nodes.push_back(std::make_unique<MultiSourceNode>(
          simulator, network->endpoint(h), sources, all, fast_config(), rngs,
          [this, idx](HostId source, Seq seq, std::string_view) {
            delivered[idx][source].push_back(seq);
          }));
      network->register_host(h, [this, idx](const net::Delivery& d) {
        nodes[idx]->on_delivery(d);
      });
    }
    for (auto& node : nodes) node->start();
  }

  MultiSourceNode& node(int i) {
    return *nodes[static_cast<std::size_t>(i)];
  }
  void run_for(sim::Duration d) {
    simulator.run_until(simulator.now() + d);
  }
};

TEST(MultiSource, TwoStreamsDeliverEverywhereIndependently) {
  Fixture f({HostId{0}, HostId{3}});
  // Interleaved broadcasts on both streams.
  for (int k = 0; k < 5; ++k) {
    f.node(0).broadcast("a" + std::to_string(k));
    f.node(3).broadcast("b" + std::to_string(k));
    f.run_for(sim::seconds(1));
  }
  f.run_for(sim::seconds(30));

  for (int h = 0; h < 4; ++h) {
    EXPECT_EQ(f.node(h).instance(HostId{0}).info().count(), 5u)
        << "host " << h << " stream 0";
    EXPECT_EQ(f.node(h).instance(HostId{3}).info().count(), 5u)
        << "host " << h << " stream 3";
  }
}

TEST(MultiSource, StreamsHaveIndependentParentGraphs) {
  Fixture f({HostId{0}, HostId{3}});
  f.node(0).broadcast("a");
  f.node(3).broadcast("b");
  f.run_for(sim::seconds(20));

  // In each stream the root is that stream's source.
  EXPECT_FALSE(f.node(0).instance(HostId{0}).parent().valid());
  EXPECT_FALSE(f.node(3).instance(HostId{3}).parent().valid());
  // ... and the *other* host has a parent in each stream.
  EXPECT_TRUE(f.node(0).instance(HostId{3}).parent().valid());
  EXPECT_TRUE(f.node(3).instance(HostId{0}).parent().valid());
}

TEST(MultiSource, ExactlyOncePerStream) {
  Fixture f({HostId{0}, HostId{1}});
  for (int k = 0; k < 4; ++k) {
    f.node(0).broadcast("x");
    f.node(1).broadcast("y");
  }
  f.run_for(sim::seconds(30));
  for (int h = 0; h < 4; ++h) {
    for (HostId source : {HostId{0}, HostId{1}}) {
      if (HostId{h} == source) continue;
      auto seqs = f.delivered[static_cast<std::size_t>(h)][source];
      std::sort(seqs.begin(), seqs.end());
      EXPECT_EQ(seqs, (std::vector<Seq>{1, 2, 3, 4}))
          << "host " << h << " stream " << source;
    }
  }
}

TEST(MultiSource, SurvivesPartitionMidStream) {
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 2;
  Fixture f({HostId{0}, HostId{2}}, options);  // one source per cluster
  net::FaultPlan faults(f.simulator, *f.network);
  faults.partition_window({f.wan.trunks[0]}, sim::seconds(5),
                          sim::seconds(25));

  for (int k = 0; k < 10; ++k) {
    f.simulator.at(sim::seconds(1 + 2 * k), [&f] {
      f.node(0).broadcast("a");
      f.node(2).broadcast("b");
    });
  }
  f.run_for(sim::seconds(120));

  for (int h = 0; h < 4; ++h) {
    EXPECT_EQ(f.node(h).instance(HostId{0}).info().count(), 10u) << h;
    EXPECT_EQ(f.node(h).instance(HostId{2}).info().count(), 10u) << h;
  }
}

TEST(MultiSource, NonSourceCannotBroadcast) {
  Fixture f({HostId{0}});
  EXPECT_FALSE(f.node(1).is_source());
  EXPECT_TRUE(f.node(0).is_source());
  EXPECT_DEATH(f.node(1).broadcast("nope"), "not a stream source");
}

TEST(MultiSource, RejectsBadConfiguration) {
  sim::Simulator simulator;
  util::RngFactory rngs{1};
  auto wan = topo::make_single_cluster(2);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);
  // Unknown source host.
  EXPECT_THROW(MultiSourceNode(simulator, network.endpoint(HostId{0}),
                               {HostId{9}}, wan.topology.host_ids(),
                               Config{}, rngs),
               std::invalid_argument);
  // Duplicate sources.
  EXPECT_THROW(MultiSourceNode(simulator, network.endpoint(HostId{0}),
                               {HostId{0}, HostId{0}},
                               wan.topology.host_ids(), Config{}, rngs),
               std::invalid_argument);
  // Empty source list.
  EXPECT_THROW(MultiSourceNode(simulator, network.endpoint(HostId{0}), {},
                               wan.topology.host_ids(), Config{}, rngs),
               std::invalid_argument);
}

TEST(MultiSource, TotalDeliveriesAggregatesStreams) {
  Fixture f({HostId{0}, HostId{1}});
  f.node(0).broadcast("x");
  f.node(1).broadcast("y");
  f.run_for(sim::seconds(20));
  // Each host delivered one message on each of the two streams.
  for (int h = 0; h < 4; ++h) {
    EXPECT_EQ(f.node(h).total_deliveries(), 2u) << h;
  }
}

}  // namespace
}  // namespace rbcast::core
