// Chaos harness tests: ChaosSpec JSON round-trip, deterministic expansion,
// end-to-end monitored runs and the shrinking loop.
//
// The known-bad fixture (tests/data/chaos_bad.json) breaks recovery by
// construction: attach_period_s is far longer than the horizon, so the
// first (jittered) attachment activation of most hosts never happens and
// the parent graph cannot form — C2/C3 fire regardless of fault timing.
#include "harness/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rbcast::harness {
namespace {

// A spec small enough that monitored runs take milliseconds.
ChaosSpec small_spec() {
  ChaosSpec spec;
  spec.clusters = 3;
  spec.hosts_per_cluster = 2;
  spec.broadcasts = 4;
  spec.interval_s = 1.0;
  spec.first_at_s = 2.0;
  spec.fault_end_s = 20.0;
  spec.orphan_limit_s = 30.0;
  spec.converge_deadline_s = 60.0;
  spec.outages = 2;
  spec.crashes = 1;
  spec.partitions = 0;
  spec.flap_links = 1;
  return spec;
}

// Mirrors tests/data/chaos_bad.json (which drives the CLI smoke test);
// inline here so the test binary does not depend on its working directory.
ChaosSpec bad_spec() {
  return parse_chaos_spec(R"({
    "version": 1,
    "topology": {"clusters": 3, "hosts_per_cluster": 2, "shape": "ring"},
    "workload": {"broadcasts": 4, "interval_s": 1, "first_at_s": 2},
    "horizon": {"fault_end_s": 15, "orphan_limit_s": 5,
                "converge_deadline_s": 8, "horizon_s": 40},
    "config": {"attach_period_s": 200},
    "concrete": true,
    "events": [
      {"type": "crash", "target": 3, "from_s": 2, "to_s": 15}
    ]
  })");
}

TEST(ChaosSpec, JsonRoundTripIsStable) {
  const ChaosSpec spec = concretize(small_spec(), 7);
  const std::string once = to_json(spec);
  const std::string twice = to_json(parse_chaos_spec(once));
  EXPECT_EQ(once, twice);
  EXPECT_FALSE(spec.events.empty());
}

TEST(ChaosSpec, RoundTripPreservesGeneratorFields) {
  ChaosSpec spec = small_spec();
  spec.jitter_topology = true;
  spec.piggyback_info = false;
  spec.attach_period_s = 2.5;
  spec.batch_flush_ms = 5;
  spec.batch_max_bytes = 1200;
  const ChaosSpec back = parse_chaos_spec(to_json(spec));
  EXPECT_EQ(back.clusters, spec.clusters);
  EXPECT_EQ(back.broadcasts, spec.broadcasts);
  EXPECT_EQ(back.flap_links, spec.flap_links);
  EXPECT_TRUE(back.jitter_topology);
  ASSERT_TRUE(back.piggyback_info.has_value());
  EXPECT_FALSE(*back.piggyback_info);
  ASSERT_TRUE(back.attach_period_s.has_value());
  EXPECT_DOUBLE_EQ(*back.attach_period_s, 2.5);
  ASSERT_TRUE(back.batch_flush_ms.has_value());
  EXPECT_DOUBLE_EQ(*back.batch_flush_ms, 5.0);
  ASSERT_TRUE(back.batch_max_bytes.has_value());
  EXPECT_EQ(*back.batch_max_bytes, 1200);
  EXPECT_FALSE(back.concrete);
}

TEST(ChaosSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_chaos_spec("{"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec("[]"), std::invalid_argument);
  EXPECT_THROW(parse_chaos_spec(R"({"topology": {"clusters": 0}})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_chaos_spec(R"({"events": [{"type": "meteor", "from_s": 1,
                           "to_s": 2}]})"),
      std::invalid_argument);
}

TEST(ChaosSpec, ExpansionIsDeterministicPerSeed) {
  const ChaosSpec spec = small_spec();
  EXPECT_EQ(to_json(concretize(spec, 5)), to_json(concretize(spec, 5)));
  EXPECT_NE(to_json(concretize(spec, 5)), to_json(concretize(spec, 6)));
}

TEST(ChaosSpec, ConcreteSpecPassesThroughUnchanged) {
  const ChaosSpec expanded = concretize(small_spec(), 3);
  ASSERT_TRUE(expanded.concrete);
  // Re-concretizing (with a different seed!) must not regenerate events:
  // a reproducer pins its schedule.
  EXPECT_EQ(to_json(concretize(expanded, 99)), to_json(expanded));
}

TEST(ChaosSpec, ExpansionOrdersAndClampsEvents) {
  const ChaosSpec spec = concretize(small_spec(), 11);
  EXPECT_TRUE(std::is_sorted(
      spec.events.begin(), spec.events.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.from_s < b.from_s; }));
  for (const ChaosEvent& e : spec.events) {
    EXPECT_LT(e.from_s, e.to_s);
    EXPECT_LE(e.to_s, spec.fault_end_s);
  }
}

TEST(ChaosRun, CleanSpecProducesNoViolations) {
  const ChaosRunResult r = run_chaos(small_spec(), 1);
  EXPECT_TRUE(r.violations.empty())
      << r.violations[0].invariant << ": " << r.violations[0].description;
  EXPECT_TRUE(r.delivered_all);
  EXPECT_FALSE(r.manifest.empty());
}

TEST(ChaosRun, KnownBadSpecViolatesLiveness) {
  const ChaosRunResult r = run_chaos(bad_spec(), 1);
  ASSERT_TRUE(r.violated());
  // With attachment effectively disabled the orphan bound (C2) and the
  // convergence deadline (C3) must both fire.
  auto has = [&](const std::string& id) {
    return std::any_of(r.violations.begin(), r.violations.end(),
                       [&](const auto& v) { return v.invariant == id; });
  };
  EXPECT_TRUE(has(kOrphanBound));
  EXPECT_TRUE(has(kConvergeDeadline));
}

TEST(ChaosShrink, MinimizesKnownBadSpecAndKeepsItFailing) {
  const ChaosSpec spec = bad_spec();
  const ShrinkResult shrunk = shrink_chaos(spec, 1, /*max_attempts=*/60);
  EXPECT_LE(shrunk.events_after, shrunk.events_before);
  ASSERT_FALSE(shrunk.violations.empty());
  // The minimized spec reproduces the original failure signature.
  const ChaosRunResult original = run_chaos(spec, 1);
  ASSERT_FALSE(original.violations.empty());
  EXPECT_EQ(shrunk.violations.front().invariant,
            original.violations.front().invariant);
  // The repro is self-contained: a fresh parse of its JSON still fails
  // identically (this is exactly what rbcast_sim --chaos-spec replays).
  const ChaosRunResult replay =
      run_chaos(parse_chaos_spec(to_json(shrunk.spec)), 1);
  ASSERT_FALSE(replay.violations.empty());
  EXPECT_EQ(replay.violations.front().invariant,
            shrunk.violations.front().invariant);
}

TEST(ChaosShrink, ShrunkTopologyStaysRunnable) {
  // Modulo-mapped targets must keep every event applicable after the
  // topology shrinks; a throw here would mean an out-of-range target.
  const ShrinkResult shrunk = shrink_chaos(bad_spec(), 1, 40);
  EXPECT_LE(shrunk.spec.clusters, 3);
  EXPECT_LE(shrunk.spec.hosts_per_cluster, 2);
  EXPECT_NO_THROW(run_chaos(shrunk.spec, 1));
}

// --- Byzantine adversary family ---------------------------------------------

// Mirrors tests/data/chaos_byzantine_bad.json (the undefended known-bad
// fixture the CI byzantine-soak job replays); inline so the test binary
// does not depend on its working directory. Verified empirically: at seed
// 1 the adversary corrupts hosts >= 2 hops from any Byzantine host.
ChaosSpec byzantine_bad_spec() {
  return parse_chaos_spec(R"({
    "version": 1,
    "topology": {"clusters": 3, "hosts_per_cluster": 3, "shape": "line"},
    "workload": {"broadcasts": 8, "interval_s": 1, "first_at_s": 5},
    "horizon": {"fault_end_s": 40, "orphan_limit_s": 45,
                "converge_deadline_s": 90},
    "generate": {"outages": 0, "crashes": 0, "partitions": 0,
                 "flap_links": 0, "jitter_config": false},
    "byzantine": {"count": 2, "equivocate": true, "corrupt": true,
                  "lie_info": true, "bogus_offer": true}
  })");
}

TEST(ChaosByzantine, RoundTripPreservesAdversaryFields) {
  ChaosSpec spec = small_spec();
  spec.byzantine = 2;
  spec.byz_lie_info = false;
  spec.auth_enabled = true;
  const ChaosSpec back = parse_chaos_spec(to_json(spec));
  EXPECT_EQ(back.byzantine, 2);
  EXPECT_TRUE(back.byz_equivocate);
  EXPECT_TRUE(back.byz_corrupt);
  EXPECT_FALSE(back.byz_lie_info);
  EXPECT_TRUE(back.byz_bogus_offer);
  ASSERT_TRUE(back.auth_enabled.has_value());
  EXPECT_TRUE(*back.auth_enabled);
}

TEST(ChaosByzantine, ExpansionDrawsByzantineWindowsDeterministically) {
  ChaosSpec spec = small_spec();
  spec.byzantine = 2;
  const ChaosSpec a = concretize(spec, 9);
  const ChaosSpec b = concretize(spec, 9);
  EXPECT_EQ(to_json(a), to_json(b));
  const auto byz_events = std::count_if(
      a.events.begin(), a.events.end(),
      [](const ChaosEvent& e) { return e.type.rfind("byz_", 0) == 0; });
  // Two adversaries, four behaviors each.
  EXPECT_EQ(byz_events, 8);
  for (const ChaosEvent& e : a.events) {
    EXPECT_LT(e.from_s, e.to_s);
    EXPECT_LE(e.to_s, spec.fault_end_s);
  }
}

TEST(ChaosByzantine, UndefendedAdversaryBreaksSafetyBeyondOneHop) {
  const ChaosRunResult r = run_chaos(byzantine_bad_spec(), 1);
  ASSERT_TRUE(r.violated());
  // The first violation is attributed to the adversary class.
  EXPECT_EQ(violation_signature(r.violations.front()), "I2/byzantine");
  // Blast radius: corruption propagated past the adversary's direct
  // edges — the exact failure mode authentication exists to contain.
  EXPECT_FALSE(r.containment.byzantine.empty());
  EXPECT_FALSE(r.containment.corrupted_hosts.empty());
  EXPECT_GE(r.containment.max_hops, 2);
  EXPECT_FALSE(r.containment.contained());
  EXPECT_EQ(r.auth_rejects, 0u);
}

TEST(ChaosByzantine, AuthenticationRestoresContainment) {
  ChaosSpec spec = byzantine_bad_spec();
  // Same adversary, data-plane behaviors, defense on. (lie_info stays on
  // the undefended fixture: INFO frames are not authenticated, and a
  // lying watermark can still poison pruning — a measured limitation,
  // see EXPERIMENTS.md.)
  spec.byz_lie_info = false;
  spec.auth_enabled = true;
  const ChaosRunResult r = run_chaos(spec, 1);
  EXPECT_TRUE(r.violations.empty())
      << r.violations[0].invariant << ": " << r.violations[0].description;
  // The adversary was active — its forgeries were rejected at receipt —
  // and no host accepted a corrupt body.
  EXPECT_FALSE(r.containment.byzantine.empty());
  EXPECT_GT(r.auth_rejects, 0u);
  EXPECT_TRUE(r.containment.corrupted_hosts.empty());
  EXPECT_TRUE(r.containment.contained());
}

TEST(ChaosByzantine, SameSeedRunsAreBitIdentical) {
  // Mutations are pure functions of (window, message, destination): two
  // runs of the same seed must agree on every violation and counter.
  const ChaosRunResult a = run_chaos(byzantine_bad_spec(), 3);
  const ChaosRunResult b = run_chaos(byzantine_bad_spec(), 3);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].description, b.violations[i].description);
    EXPECT_EQ(a.violations[i].at, b.violations[i].at);
  }
  EXPECT_EQ(a.auth_rejects, b.auth_rejects);
  EXPECT_EQ(to_string(a.containment), to_string(b.containment));
}

TEST(ChaosByzantine, ShrinkKeepsTheByzantineSignature) {
  const ChaosSpec spec = byzantine_bad_spec();
  const ShrinkResult shrunk = shrink_chaos(spec, 1, /*max_attempts=*/60);
  ASSERT_FALSE(shrunk.violations.empty());
  // ddmin may not strip every byz event (removing them all would turn
  // I2/byzantine into plain I2 and the candidate is rejected), so the
  // minimized spec still schedules an adversary and fails the same way.
  EXPECT_EQ(violation_signature(shrunk.violations.front()), "I2/byzantine");
  const auto byz_left = std::count_if(
      shrunk.spec.events.begin(), shrunk.spec.events.end(),
      [](const ChaosEvent& e) { return e.type.rfind("byz_", 0) == 0; });
  EXPECT_GE(byz_left, 1);
  // And replays from its own JSON, exactly like rbcast_sim --chaos-spec.
  const ChaosRunResult replay =
      run_chaos(parse_chaos_spec(to_json(shrunk.spec)), 1);
  ASSERT_FALSE(replay.violations.empty());
  EXPECT_EQ(violation_signature(replay.violations.front()), "I2/byzantine");
}

}  // namespace
}  // namespace rbcast::harness
