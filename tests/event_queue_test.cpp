#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rbcast::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(42, [] {});
  EXPECT_EQ(q.pop().time, 42);
}

TEST(EventQueue, CompactionBoundsBackingStoreUnderChurn) {
  // The cancel-and-rearm pattern of the protocol's timers must not grow
  // the backing store without bound: tombstones are compacted away once
  // they outnumber live entries (above a small floor).
  EventQueue q;
  constexpr int kLive = 16;
  std::vector<EventId> ids;
  for (int i = 0; i < kLive; ++i) {
    ids.push_back(q.schedule(1000 + i, [] {}));
  }
  for (int round = 0; round < 10000; ++round) {
    const std::size_t slot = static_cast<std::size_t>(round % kLive);
    ASSERT_TRUE(q.cancel(ids[slot]));
    ids[slot] = q.schedule(1000 + round, [] {});
    EXPECT_EQ(q.size(), static_cast<std::size_t>(kLive));
    // size - live <= max(live, floor) at all times after maybe_compact.
    EXPECT_LE(q.backing_size(), 2u * std::max<std::size_t>(kLive, 64));
  }
  // Draining still fires exactly the live timers, in time order.
  int fired = 0;
  TimePoint last = -1;
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
    ++fired;
  }
  EXPECT_EQ(fired, kLive);
}

TEST(EventQueue, CompactionPreservesFifoAmongSimultaneousEvents) {
  // Force a compaction between scheduling same-time events and draining:
  // the FIFO tie-break (sequence numbers) must survive the heap rebuild.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 64; ++i) {
    q.schedule(7, [&fired, i] { fired.push_back(i); });
  }
  std::vector<EventId> victims;
  for (int i = 0; i < 200; ++i) victims.push_back(q.schedule(9, [] {}));
  for (EventId id : victims) q.cancel(id);  // triggers compaction
  EXPECT_LT(q.backing_size(), 264u);
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 100; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  int fired = 0;
  TimePoint last = -1;
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GT(f.time, last);
    last = f.time;
    ++fired;
  }
  EXPECT_EQ(fired, 50);
}

}  // namespace
}  // namespace rbcast::sim
