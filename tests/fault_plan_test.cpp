#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include "topo/generators.h"

namespace rbcast::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  util::RngFactory rngs{1};
  topo::Wan wan;
  std::unique_ptr<Network> network;
  std::unique_ptr<FaultPlan> faults;

  explicit Fixture(topo::ClusteredWanOptions options = {.clusters = 2,
                                                        .hosts_per_cluster = 1}) {
    wan = make_clustered_wan(options);
    network = std::make_unique<Network>(sim, wan.topology, NetConfig{}, rngs);
    for (const auto& h : wan.topology.hosts()) {
      network->register_host(h.id, [](const Delivery&) {});
    }
    faults = std::make_unique<FaultPlan>(sim, *network);
  }
};

TEST(FaultPlan, OutageWindowTogglesLink) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->outage_window(trunk, sim::seconds(1), sim::seconds(3));

  f.sim.run_until(sim::milliseconds(500));
  EXPECT_TRUE(f.network->link_up(trunk));
  f.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(f.network->link_up(trunk));
  f.sim.run_until(sim::seconds(4));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, RejectsEmptyWindow) {
  Fixture f;
  EXPECT_THROW(
      f.faults->outage_window(f.wan.trunks[0], sim::seconds(2), sim::seconds(2)),
      std::invalid_argument);
}

TEST(FaultPlan, HostCrashWindowUsesAccessLink) {
  Fixture f;
  const HostId victim{0};
  const LinkId access = f.wan.topology.host(victim).access_link;
  f.faults->host_crash_window(victim, sim::seconds(1), sim::seconds(2));

  f.sim.run_until(sim::milliseconds(1500));
  EXPECT_FALSE(f.network->link_up(access));
  f.sim.run_until(sim::seconds(3));
  EXPECT_TRUE(f.network->link_up(access));
}

TEST(FaultPlan, PartitionWindowCutsAndHealsConnectivity) {
  Fixture f({.clusters = 3, .hosts_per_cluster = 1,
             .shape = topo::TrunkShape::kLine});
  // Cut everything incident to cluster 0's server.
  const auto cut = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[0]);
  ASSERT_FALSE(cut.empty());
  f.faults->partition_window(cut, sim::seconds(1), sim::seconds(5));

  f.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(f.network->connected(HostId{0}, HostId{1}));
  EXPECT_TRUE(f.network->connected(HostId{1}, HostId{2}));
  f.sim.run_until(sim::seconds(6));
  EXPECT_TRUE(f.network->connected(HostId{0}, HostId{1}));
}

TEST(FaultPlan, FlappingTogglesAndEndsUp) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->flapping({trunk}, sim::seconds(2), sim::seconds(2),
                     sim::seconds(60), f.rngs);

  // Sample the link over time; it should be down at least once.
  bool saw_down = false;
  for (int t = 1; t <= 60; ++t) {
    f.sim.run_until(sim::seconds(t));
    if (!f.network->link_up(trunk)) saw_down = true;
  }
  EXPECT_TRUE(saw_down);
  // After the schedule ends, the link is left up.
  f.sim.run_until(sim::seconds(61));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, FlappingRejectsNonPositiveMeans) {
  Fixture f;
  EXPECT_THROW(f.faults->flapping({f.wan.trunks[0]}, 0, sim::seconds(1),
                                  sim::seconds(10), f.rngs),
               std::invalid_argument);
}

TEST(FaultPlan, TrunksIncidentToFindsAllTrunks) {
  Fixture f({.clusters = 4, .hosts_per_cluster = 1,
             .shape = topo::TrunkShape::kStar});
  const auto hub = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[0]);
  EXPECT_EQ(hub.size(), 3u);  // star center touches every trunk
  const auto leaf = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[1]);
  EXPECT_EQ(leaf.size(), 1u);
}

}  // namespace
}  // namespace rbcast::net
