#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  util::RngFactory rngs{1};
  topo::Wan wan;
  std::unique_ptr<Network> network;
  std::unique_ptr<FaultPlan> faults;

  explicit Fixture(topo::ClusteredWanOptions options = {.clusters = 2,
                                                        .hosts_per_cluster = 1}) {
    wan = make_clustered_wan(options);
    network = std::make_unique<Network>(sim, wan.topology, NetConfig{}, rngs);
    for (const auto& h : wan.topology.hosts()) {
      network->register_host(h.id, [](const Delivery&) {});
    }
    faults = std::make_unique<FaultPlan>(sim, *network);
  }
};

TEST(FaultPlan, OutageWindowTogglesLink) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->outage_window(trunk, sim::seconds(1), sim::seconds(3));

  f.sim.run_until(sim::milliseconds(500));
  EXPECT_TRUE(f.network->link_up(trunk));
  f.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(f.network->link_up(trunk));
  f.sim.run_until(sim::seconds(4));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, RejectsEmptyWindow) {
  Fixture f;
  EXPECT_THROW(
      f.faults->outage_window(f.wan.trunks[0], sim::seconds(2), sim::seconds(2)),
      std::invalid_argument);
}

TEST(FaultPlan, HostCrashWindowUsesAccessLink) {
  Fixture f;
  const HostId victim{0};
  const LinkId access = f.wan.topology.host(victim).access_link;
  f.faults->host_crash_window(victim, sim::seconds(1), sim::seconds(2));

  f.sim.run_until(sim::milliseconds(1500));
  EXPECT_FALSE(f.network->link_up(access));
  f.sim.run_until(sim::seconds(3));
  EXPECT_TRUE(f.network->link_up(access));
}

TEST(FaultPlan, PartitionWindowCutsAndHealsConnectivity) {
  Fixture f({.clusters = 3, .hosts_per_cluster = 1,
             .shape = topo::TrunkShape::kLine});
  // Cut everything incident to cluster 0's server.
  const auto cut = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[0]);
  ASSERT_FALSE(cut.empty());
  f.faults->partition_window(cut, sim::seconds(1), sim::seconds(5));

  f.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(f.network->connected(HostId{0}, HostId{1}));
  EXPECT_TRUE(f.network->connected(HostId{1}, HostId{2}));
  f.sim.run_until(sim::seconds(6));
  EXPECT_TRUE(f.network->connected(HostId{0}, HostId{1}));
}

TEST(FaultPlan, FlappingTogglesAndEndsUp) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->flapping({trunk}, sim::seconds(2), sim::seconds(2),
                     sim::seconds(60), f.rngs);

  // Sample the link over time; it should be down at least once.
  bool saw_down = false;
  for (int t = 1; t <= 60; ++t) {
    f.sim.run_until(sim::seconds(t));
    if (!f.network->link_up(trunk)) saw_down = true;
  }
  EXPECT_TRUE(saw_down);
  // After the schedule ends, the link is left up.
  f.sim.run_until(sim::seconds(61));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, FlappingRejectsNonPositiveMeans) {
  Fixture f;
  EXPECT_THROW(f.faults->flapping({f.wan.trunks[0]}, 0, sim::seconds(1),
                                  sim::seconds(10), f.rngs),
               std::invalid_argument);
}

// Regression: an `link_up_at` scheduled by an earlier outage window used
// to fire inside a later, longer window on the same link and resurrect it
// mid-outage. With per-link hold counts the link stays down until the last
// window releases it.
TEST(FaultPlan, OverlappingWindowsDoNotResurrectLink) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->outage_window(trunk, sim::seconds(1), sim::seconds(4));
  f.faults->outage_window(trunk, sim::seconds(2), sim::seconds(10));

  f.sim.run_until(sim::seconds(3));
  EXPECT_FALSE(f.network->link_up(trunk));
  EXPECT_EQ(f.faults->holds(trunk), 2);
  // The first window's up-event at t=4 must not bring the link back.
  f.sim.run_until(sim::seconds(5));
  EXPECT_FALSE(f.network->link_up(trunk));
  EXPECT_EQ(f.faults->holds(trunk), 1);
  f.sim.run_until(sim::seconds(11));
  EXPECT_TRUE(f.network->link_up(trunk));
  EXPECT_EQ(f.faults->holds(trunk), 0);
}

TEST(FaultPlan, NestedWindowsKeepLinkDownForOuterWindow) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->outage_window(trunk, sim::seconds(1), sim::seconds(10));
  f.faults->outage_window(trunk, sim::seconds(3), sim::seconds(5));

  for (int t = 2; t <= 9; ++t) {
    f.sim.run_until(sim::seconds(t));
    EXPECT_FALSE(f.network->link_up(trunk)) << "t=" << t;
  }
  f.sim.run_until(sim::seconds(11));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, PermanentFailureSurvivesNestedWindow) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->link_down_at(sim::seconds(1), trunk);  // permanent failure
  f.faults->outage_window(trunk, sim::seconds(2), sim::seconds(4));

  f.sim.run_until(sim::seconds(5));
  EXPECT_FALSE(f.network->link_up(trunk));  // still failed after the window
  f.faults->link_up_at(sim::seconds(6), trunk);  // explicit repair
  f.sim.run_until(sim::seconds(7));
  EXPECT_TRUE(f.network->link_up(trunk));
}

TEST(FaultPlan, UnpairedRepairIsANoOp) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  f.faults->link_up_at(sim::seconds(1), trunk);
  f.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(f.network->link_up(trunk));
  EXPECT_EQ(f.faults->holds(trunk), 0);
}

// Same seed + topology => byte-identical protocol event logs across two
// independent flapping runs (the fault schedule is part of the
// determinism contract).
TEST(FaultPlan, FlappingScheduleIsDeterministic) {
  auto run_digest = [](std::uint64_t seed) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 3;
    wan.hosts_per_cluster = 2;
    wan.shape = topo::TrunkShape::kRing;
    wan.seed = seed;
    const auto built = make_clustered_wan(wan);

    harness::ScenarioOptions options;
    options.seed = seed;
    harness::Experiment e(built.topology, options);
    e.faults().flapping(built.trunks, sim::seconds(6), sim::seconds(3),
                        sim::seconds(50), e.rngs());
    e.start();
    e.broadcast_stream(6, sim::seconds(1), sim::seconds(1));
    e.run_until(sim::seconds(90));
    return e.events().digest();
  };
  EXPECT_EQ(run_digest(9), run_digest(9));
  // And a different seed produces a different schedule (sanity that the
  // digest actually depends on the run).
  EXPECT_NE(run_digest(9), run_digest(10));
}

// Per-link RNG streams must actually decorrelate flap phases: two links
// flapped with identical means must not toggle in lock-step.
TEST(FaultPlan, FlappingStreamsDecorrelateAcrossLinks) {
  Fixture f({.clusters = 3, .hosts_per_cluster = 1,
             .shape = topo::TrunkShape::kRing});
  ASSERT_GE(f.wan.trunks.size(), 2u);
  f.faults->flapping(f.wan.trunks, sim::seconds(4), sim::seconds(4),
                     sim::seconds(120), f.rngs);

  std::string phases_a;
  std::string phases_b;
  for (int t = 1; t <= 119; ++t) {
    f.sim.run_until(sim::seconds(t));
    phases_a += f.network->link_up(f.wan.trunks[0]) ? '1' : '0';
    phases_b += f.network->link_up(f.wan.trunks[1]) ? '1' : '0';
  }
  EXPECT_NE(phases_a, phases_b);
  // Both links actually flapped (saw both states).
  EXPECT_NE(phases_a.find('0'), std::string::npos);
  EXPECT_NE(phases_a.find('1'), std::string::npos);
}

TEST(FaultPlan, TrunksIncidentToFindsAllTrunks) {
  Fixture f({.clusters = 4, .hosts_per_cluster = 1,
             .shape = topo::TrunkShape::kStar});
  const auto hub = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[0]);
  EXPECT_EQ(hub.size(), 3u);  // star center touches every trunk
  const auto leaf = FaultPlan::trunks_incident_to(
      f.wan.topology, f.wan.cluster_head_server[1]);
  EXPECT_EQ(leaf.size(), 1u);
}

}  // namespace
}  // namespace rbcast::net
