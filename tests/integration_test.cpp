// End-to-end scenarios over the full stack: simulator + network substrate +
// protocol. These validate the paper's qualitative guarantees: eventual
// exactly-once delivery under loss, duplication, reordering, link failures
// and partitions, plus the Figure 4.1 behaviour.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast {
namespace {

using harness::Experiment;
using harness::ProtocolKind;
using harness::ScenarioOptions;

core::Config test_config() {
  core::Config c;
  c.attach_period = sim::milliseconds(500);
  c.info_period_intra = sim::milliseconds(200);
  c.info_period_inter = sim::seconds(1);
  c.gapfill_period_neighbor = sim::milliseconds(500);
  c.gapfill_period_far = sim::seconds(2);
  c.parent_timeout = sim::seconds(4);
  c.attach_ack_timeout = sim::milliseconds(400);
  c.data_bytes = 64;
  return c;
}

ScenarioOptions paper_options(std::uint64_t seed = 1) {
  ScenarioOptions options;
  options.protocol = test_config();
  options.seed = seed;
  return options;
}

TEST(Integration, FaultFreeWanDeliversEverythingExactlyOnce) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  ScenarioOptions options = paper_options();
  // Fault-free, so the full monitor (safety + liveness from t=0) applies.
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(20);
  options.monitor.converge_deadline = sim::seconds(30);
  Experiment e(make_clustered_wan(wan).topology, options);
  e.monitor()->set_faults_quiet_at(sim::TimePoint{0});
  e.start();
  e.broadcast_stream(10, sim::milliseconds(500), sim::seconds(1));
  const auto done = e.run_until_delivered(sim::seconds(120));
  EXPECT_TRUE(e.all_delivered()) << "undelivered by t="
                                 << sim::to_seconds(done);
  // Exactly-once: per-host delivery counters equal the stream length.
  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.host(h).counters().deliveries, 10u) << h;
  }
  // Run through the liveness deadlines; the monitor must stay silent.
  e.run_until(sim::seconds(40));
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok())
      << e.monitor()->violations()[0].invariant << ": "
      << e.monitor()->violations()[0].description;
}

TEST(Integration, SurvivesHeavyLossOnTrunks) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = 0.3;
  wan.cheap.loss_probability = 0.05;
  Experiment e(make_clustered_wan(wan).topology, paper_options(42));
  e.start();
  e.broadcast_stream(10, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Integration, SurvivesDuplicationAndReordering) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 3;
  wan.expensive.duplication_probability = 0.3;
  wan.cheap.duplication_probability = 0.1;
  ScenarioOptions options = paper_options(7);
  options.net.jitter_max = sim::milliseconds(5);
  Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(10, sim::milliseconds(300), sim::seconds(1));
  e.run_until_delivered(sim::seconds(200));
  EXPECT_TRUE(e.all_delivered());
  for (HostId h : e.topology().host_ids()) {
    EXPECT_EQ(e.host(h).counters().deliveries, 10u);
  }
}

TEST(Integration, TrunkOutageIsRoutedAroundOrRepaired) {
  // Ring of clusters: when one trunk dies, the other direction still
  // connects everyone; the tree reorganizes via parent timeouts.
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = 1;
  wan.shape = topo::TrunkShape::kRing;
  const auto built = make_clustered_wan(wan);
  Experiment e(built.topology, paper_options());
  // Kill one trunk for a long window mid-stream.
  e.faults().outage_window(built.trunks[0], sim::seconds(5),
                           sim::seconds(60));
  e.start();
  e.broadcast_stream(20, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Integration, PartitionHealsAndStreamCompletes) {
  // Line of 3 clusters; cutting the first trunk isolates the source's
  // cluster. Messages broadcast during the partition must reach the cut-off
  // clusters after repair.
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  wan.shape = topo::TrunkShape::kLine;
  const auto built = make_clustered_wan(wan);
  Experiment e(built.topology, paper_options());
  e.faults().partition_window({built.trunks[0]}, sim::seconds(3),
                              sim::seconds(40));
  e.start();
  e.broadcast_stream(15, sim::seconds(1), sim::seconds(1));

  e.run_for(sim::seconds(30));
  EXPECT_FALSE(e.all_delivered());  // partition still open

  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
  const auto report = e.convergence();
  EXPECT_TRUE(report.all_caught_up) << report.detail;
}

TEST(Integration, HostCrashRecoversViaGapFilling) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 3;
  wan.intra_cluster_ring = true;
  const auto built = make_clustered_wan(wan);
  ScenarioOptions options = paper_options();
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::seconds(20);
  options.monitor.converge_deadline = sim::seconds(30);
  Experiment e(built.topology, options);
  // Crash a non-source host mid-stream.
  e.faults().host_crash_window(HostId{4}, sim::seconds(5), sim::seconds(20));
  e.monitor()->set_faults_quiet_at(sim::seconds(22));
  e.start();
  e.broadcast_stream(15, sim::milliseconds(800), sim::seconds(1));
  e.schedule_broadcast_at(sim::seconds(24));  // liveness anchor
  e.run_until_delivered(sim::seconds(300));
  EXPECT_TRUE(e.all_delivered());
  // Through the C2/C3 deadlines (anchor 24s): recovery must look healthy
  // to the monitor, not merely complete.
  e.run_until(sim::seconds(60));
  e.monitor()->finish();
  EXPECT_TRUE(e.monitor()->ok())
      << e.monitor()->violations()[0].invariant << ": "
      << e.monitor()->violations()[0].description;
}

// Engineers the exact Section 4.4 / Figure 4.1 state on the triangle
// topology: after a warm-up message, two broadcasts are selectively lost
// (one to i, the other to j) by sending them while the direct trunk's
// routing entry is stale, a final broadcast reaches both (making their
// INFO maxima equal, so no reattachment can ever help), and the source is
// then muted for good via its access link. Between broadcasts the source
// is also muted so its own gap-filling cannot repair the engineered holes.
// End state: s isolated, INFO_i = {1,3,4}, INFO_j = {1,2,4}.
struct Figure41Scenario {
  topo::Figure41 fig = topo::make_figure_4_1();
  std::unique_ptr<Experiment> e;
  LinkId source_access;

  explicit Figure41Scenario(ScenarioOptions options) {
    // i and j must keep s as their parent throughout (the paper's premise:
    // the parent graph stays rooted at s), so parent liveness is disabled.
    options.protocol.parent_timeout = sim::seconds(100000);
    e = std::make_unique<Experiment>(fig.topology, options);
    source_access = e->topology().host(fig.s).access_link;
  }

  void mute_source(bool mute) {
    e->network().set_link_up(source_access, !mute);
  }

  void run_engineered_losses() {
    auto& net = e->network();
    e->start();
    e->broadcast();  // seq 1: warm-up, forms the tree s -> {i, j}
    e->run_for(sim::seconds(10));
    ASSERT_TRUE(e->all_delivered());

    // All three selective losses happen inside one routing-convergence
    // window (200 ms), so that i and j end with *equal* INFO maxima and
    // neither can ever look like a better parent for the other (that is
    // the crux of the paper's example: reattachment cannot help). The
    // forwarding tables stay stale (direct-trunk routes) throughout; a
    // packet hitting a downed direct trunk is silently lost. Toggles are
    // spaced ~60 ms apart because a trunk going *down* also kills copies
    // still in flight on it (~40 ms of trunk time each).
    net.set_link_up(fig.trunk_si, false);
    e->run_for(sim::milliseconds(1));
    e->broadcast();  // seq 2: trunk s-i is down -> reaches only j
    e->run_for(sim::milliseconds(59));  // let j's copy land
    net.set_link_up(fig.trunk_si, true);
    net.set_link_up(fig.trunk_sj, false);
    e->run_for(sim::milliseconds(1));
    e->broadcast();  // seq 3: trunk s-j is down -> reaches only i
    e->run_for(sim::milliseconds(59));  // let i's copy land
    net.set_link_up(fig.trunk_sj, true);
    e->run_for(sim::milliseconds(1));
    e->broadcast();  // seq 4: both trunks up -> reaches both
    e->run_for(sim::milliseconds(60));
    mute_source(true);  // s is cut off for good

    // Just long enough for the in-flight seq-4 copies to land (~50 ms of
    // trunk time); the state must be checked before a periodic far
    // gap-fill round gets a chance to begin healing the holes.
    e->run_for(sim::milliseconds(100));
    ASSERT_EQ(e->host(fig.s).info().count(), 4u);
    ASSERT_FALSE(e->host(fig.i).info().contains(2));
    ASSERT_FALSE(e->host(fig.j).info().contains(3));
    ASSERT_TRUE(e->host(fig.i).info().contains(3));
    ASSERT_TRUE(e->host(fig.j).info().contains(2));
    ASSERT_EQ(e->host(fig.i).info().max_seq(), 4u);
    ASSERT_EQ(e->host(fig.j).info().max_seq(), 4u);
  }
};

TEST(Integration, Figure41NonNeighborGapFillingCompletesDelivery) {
  ScenarioOptions options = paper_options();
  options.protocol.gapfill_period_far = sim::seconds(2);
  Figure41Scenario scenario(options);
  scenario.run_engineered_losses();

  // i and j have complementary gaps but equal-max INFO sets: neither may
  // raise the other's maximum and no reattachment is possible — only
  // non-neighbor gap filling (they are not parent-graph neighbors) helps.
  auto& e = *scenario.e;
  e.run_for(sim::seconds(60));
  EXPECT_EQ(e.host(scenario.fig.i).info().count(), 4u);
  EXPECT_EQ(e.host(scenario.fig.j).info().count(), 4u);
  // Their parents never changed: the fill really was non-neighbor.
  EXPECT_EQ(e.host(scenario.fig.i).parent(), scenario.fig.s);
  EXPECT_EQ(e.host(scenario.fig.j).parent(), scenario.fig.s);
}

TEST(Integration, Figure41FailsWithoutNonNeighborGapFilling) {
  // Ablation: with the Section 4.4 extension disabled, the same scenario
  // must stall (this is exactly why the paper adds it).
  ScenarioOptions options = paper_options();
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.nonneighbor_gapfill = false;
  Figure41Scenario scenario(options);
  scenario.run_engineered_losses();

  auto& e = *scenario.e;
  e.run_for(sim::seconds(120));
  EXPECT_FALSE(e.host(scenario.fig.i).info().contains(2));
  EXPECT_FALSE(e.host(scenario.fig.j).info().contains(3));
}

TEST(Integration, BaselineDeliversToo) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  ScenarioOptions options;
  options.protocol_kind = ProtocolKind::kBasic;
  options.basic.retransmit_period = sim::seconds(1);
  Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(5, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(120));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Integration, BaselineRetransmitsThroughLoss) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = 0.4;
  ScenarioOptions options;
  options.protocol_kind = ProtocolKind::kBasic;
  options.basic.retransmit_period = sim::milliseconds(500);
  options.seed = 5;
  Experiment e(make_clustered_wan(wan).topology, options);
  e.start();
  e.broadcast_stream(5, sim::milliseconds(500), sim::seconds(1));
  e.run_until_delivered(sim::seconds(120));
  EXPECT_TRUE(e.all_delivered());
  EXPECT_GT(e.basic_source().counters().retransmissions, 0u);
}

TEST(Integration, ClusterKnowledgeModesAllDeliver) {
  for (auto mode : {core::Config::ClusterKnowledge::kDynamic,
                    core::Config::ClusterKnowledge::kStatic,
                    core::Config::ClusterKnowledge::kNone}) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 2;
    wan.hosts_per_cluster = 2;
    ScenarioOptions options = paper_options();
    options.protocol.cluster_knowledge = mode;
    Experiment e(make_clustered_wan(wan).topology, options);
    e.start();
    e.broadcast_stream(5, sim::milliseconds(500), sim::seconds(1));
    e.run_until_delivered(sim::seconds(200));
    EXPECT_TRUE(e.all_delivered())
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(Integration, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 2;
    wan.hosts_per_cluster = 2;
    wan.expensive.loss_probability = 0.1;
    Experiment e(make_clustered_wan(wan).topology, paper_options(seed));
    e.start();
    e.broadcast_stream(5, sim::milliseconds(500), sim::seconds(1));
    e.run_for(sim::seconds(30));
    return e.metrics().counter_prefix_sum("send.");
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));  // different seeds diverge
}

}  // namespace
}  // namespace rbcast
