// Tests for the rbcast_lint rule engine (tools/lint/lint_engine.*): each
// rule must fire on a seeded bad snippet and stay quiet on clean code.
#include "lint/lint_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rbcast::lint {
namespace {

std::vector<Finding> lint(std::string_view path, std::string_view source) {
  std::set<std::string> ids;
  for (const std::string& id : unordered_identifiers(source)) ids.insert(id);
  return lint_file(path, source, ids);
}

bool fires(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- raw-random -------------------------------------------------------

TEST(RawRandomRule, FlagsRandSrandAndRandomDevice) {
  const auto f = lint("src/core/bad.cpp",
                      "int draw() {\n"
                      "  srand(42);\n"
                      "  std::random_device rd;\n"
                      "  return rand() % 6;\n"
                      "}\n");
  ASSERT_TRUE(fires(f, "raw-random"));
  EXPECT_EQ(3u, std::count_if(f.begin(), f.end(), [](const Finding& x) {
              return x.rule == "raw-random";
            }));
  EXPECT_EQ(2, f[0].line);
}

TEST(RawRandomRule, FlagsWallClockReads) {
  EXPECT_TRUE(fires(lint("src/sim/bad.cpp", "auto t = time(NULL);\n"),
                    "raw-random"));
  EXPECT_TRUE(fires(lint("src/sim/bad.cpp",
                         "auto t = std::chrono::steady_clock::now();\n"),
                    "raw-random"));
}

TEST(RawRandomRule, AllowsSeededRngAndSimilarNames) {
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "double x = rng_.uniform();\n"
                          "auto t = spec.transmission_time(bytes);\n"
                          "auto n = next_time();\n"),
                     "raw-random"));
  // The stream factory itself is the one sanctioned home of <random>.
  EXPECT_TRUE(lint("src/util/rng.cpp", "std::random_device rd;\n").empty());
}

TEST(RawRandomRule, IgnoresCommentsAndStrings) {
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "// rand() would break determinism\n"
                          "log(\"rand() banned\");\n"),
                     "raw-random"));
}

// --- unordered-container ------------------------------------------------

TEST(UnorderedContainerRule, FlagsProtocolLayerDeclarations) {
  const auto f = lint("src/core/bad.h",
                      "#pragma once\n"
                      "#include <unordered_map>\n"
                      "std::unordered_map<int, int> table_;\n");
  EXPECT_EQ(2u, std::count_if(f.begin(), f.end(), [](const Finding& x) {
              return x.rule == "unordered-container";
            }));
}

TEST(UnorderedContainerRule, AllowsOrderedContainersAndOtherLayers) {
  EXPECT_FALSE(fires(lint("src/core/good.h",
                          "#pragma once\n"
                          "#include <map>\n"
                          "std::map<int, int> table_;\n"),
                     "unordered-container"));
  // src/model is outside the protocol layers: membership-only hash sets
  // are fine there (the BFS visited set).
  EXPECT_FALSE(fires(lint("src/model/ok.cpp",
                          "std::unordered_set<std::string> visited;\n"),
                     "unordered-container"));
}

// --- unordered-range-for ------------------------------------------------

TEST(UnorderedRangeForRule, FlagsIterationOverUnorderedMember) {
  const auto f = lint("src/model/bad.cpp",
                      "std::unordered_map<int, int> seen_;\n"
                      "void dump() {\n"
                      "  for (const auto& [k, v] : seen_) use(k, v);\n"
                      "}\n");
  ASSERT_TRUE(fires(f, "unordered-range-for"));
}

TEST(UnorderedRangeForRule, AllowsIterationOverOrderedMember) {
  EXPECT_FALSE(fires(lint("src/model/good.cpp",
                          "std::map<int, int> seen_;\n"
                          "void dump() {\n"
                          "  for (const auto& [k, v] : seen_) use(k, v);\n"
                          "}\n"),
                     "unordered-range-for"));
}

TEST(UnorderedRangeForRule, MembershipOnlyUseIsFine) {
  EXPECT_FALSE(fires(lint("src/model/good.cpp",
                          "std::unordered_set<std::string> visited;\n"
                          "bool seen(const std::string& s) {\n"
                          "  return visited.contains(s);\n"
                          "}\n"),
                     "unordered-range-for"));
}

// --- direct-output --------------------------------------------------------

TEST(DirectOutputRule, FlagsCoutAndPrintfInProtocolLayers) {
  EXPECT_TRUE(fires(lint("src/core/bad.cpp",
                         "void f() { std::cout << \"attached\\n\"; }\n"),
                    "direct-output"));
  EXPECT_TRUE(fires(lint("src/net/bad.cpp",
                         "void f() { printf(\"%d\\n\", 1); }\n"),
                    "direct-output"));
}

TEST(DirectOutputRule, AllowsLoggerAndNonProtocolLayers) {
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "RBCAST_INFO(self() << \" attached\");\n"),
                     "direct-output"));
  // util implements the logger; trace dumps timelines on purpose.
  EXPECT_FALSE(fires(lint("src/util/logging.cpp",
                          "std::fprintf(stderr, \"%s\", msg.c_str());\n"),
                     "direct-output"));
}

// --- raw-assert ---------------------------------------------------------

TEST(RawAssertRule, FlagsAssertCallAndInclude) {
  const auto f = lint("src/core/bad.cpp",
                      "#include <cassert>\n"
                      "void f(int n) { assert(n > 0); }\n");
  EXPECT_EQ(2u, std::count_if(f.begin(), f.end(), [](const Finding& x) {
              return x.rule == "raw-assert";
            }));
}

TEST(RawAssertRule, AllowsRbcastAssertFamily) {
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "RBCAST_ASSERT(n > 0);\n"
                          "RBCAST_ASSERT_MSG(n > 0, \"positive\");\n"
                          "static_assert(sizeof(int) == 4);\n"),
                     "raw-assert"));
}

// --- pragma-once ----------------------------------------------------------

TEST(PragmaOnceRule, FlagsHeaderWithoutGuard) {
  EXPECT_TRUE(fires(lint("src/core/bad.h", "struct S {};\n"), "pragma-once"));
}

TEST(PragmaOnceRule, SatisfiedHeaderAndSourcesExempt) {
  EXPECT_FALSE(fires(lint("src/core/good.h", "#pragma once\nstruct S {};\n"),
                     "pragma-once"));
  EXPECT_FALSE(fires(lint("src/core/good.cpp", "struct S {};\n"),
                     "pragma-once"));
}

// --- cross-cutting --------------------------------------------------------

TEST(Engine, SuppressionCommentWaivesExactlyThatRule) {
  const std::string bad =
      "int x = rand();  // lint:allow(raw-random) seeding the lint test\n";
  EXPECT_FALSE(fires(lint("src/core/ok.cpp", bad), "raw-random"));
  // The waiver names a specific rule; others still fire.
  const std::string wrong =
      "int x = rand();  // lint:allow(direct-output)\n";
  EXPECT_TRUE(fires(lint("src/core/bad.cpp", wrong), "raw-random"));
}

TEST(Engine, OnlySrcTreeIsLinted) {
  EXPECT_TRUE(lint("tools/whatever.cpp", "int x = rand();\n").empty());
  EXPECT_TRUE(lint("tests/whatever.cpp", "int x = rand();\n").empty());
}

TEST(Engine, FindingsCarryFileAndLine) {
  const auto f = lint("src/core/bad.cpp", "void f() {\n  srand(1);\n}\n");
  ASSERT_EQ(1u, f.size());
  EXPECT_EQ("src/core/bad.cpp", f[0].file);
  EXPECT_EQ(2, f[0].line);
  EXPECT_EQ("raw-random", f[0].rule);
}

TEST(Engine, RawStringContentsAreNotCode) {
  // rand() inside a raw string literal is data, not a call — including
  // when the raw string carries a delimiter or an encoding prefix.
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "auto s = R\"(call rand() here)\";\n"),
                     "raw-random"));
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "auto s = R\"x(rand() and )\" srand(1) )x\";\n"),
                     "raw-random"));
  EXPECT_FALSE(fires(lint("src/core/good.cpp",
                          "auto s = u8R\"(std::random_device)\";\n"),
                     "raw-random"));
}

TEST(Engine, RawStringTerminatorRespectsDelimiter) {
  // The payload contains ')"' but the delimiter is 'x', so the literal
  // ends only at ')x"' — the srand() after it is real code and must fire.
  const auto f = lint("src/core/bad.cpp",
                      "auto s = R\"x(not the end: )\" still string)x\";\n"
                      "srand(7);\n");
  ASSERT_TRUE(fires(f, "raw-random"));
  EXPECT_EQ(2, f[0].line);
}

TEST(Engine, UnterminatedRawStringBlanksToEofWithoutFindings) {
  EXPECT_TRUE(lint("src/core/odd.cpp",
                   "auto s = R\"(rand() never closed\n"
                   "srand(1);\n")
                  .empty());
}

TEST(Engine, IdentifierEndingInRIsNotARawStringPrefix) {
  // "FOOR" ends in R but is an identifier; the following quote opens an
  // ordinary string. The rand() outside it must still fire.
  const auto f = lint("src/core/bad.cpp",
                      "auto s = FOOR\"(text)\";\n"
                      "int x = rand();\n");
  ASSERT_TRUE(fires(f, "raw-random"));
  EXPECT_EQ(2, f[0].line);
}

TEST(Engine, LineContinuationExtendsLineComment) {
  // The backslash splices line 2 into the comment on line 1, so that
  // srand() is commentary; the one on line 3 is code.
  const auto f = lint("src/core/bad.cpp",
                      "// spliced comment \\\n"
                      "srand(1);\n"
                      "srand(2);\n");
  ASSERT_EQ(1u, std::count_if(f.begin(), f.end(), [](const Finding& x) {
              return x.rule == "raw-random";
            }));
  EXPECT_EQ(3, f[0].line);
}

TEST(Engine, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000 must not open a character literal that would swallow the
  // rest of the line (and the srand call with it).
  const auto f = lint("src/core/bad.cpp",
                      "int big = 1'000'000; srand(big);\n");
  EXPECT_TRUE(fires(f, "raw-random"));
}

TEST(Engine, UnorderedIdentifierHarvesting) {
  const auto ids = unordered_identifiers(
      "std::unordered_map<std::uint64_t, Action> actions_;\n"
      "std::unordered_set<std::string> visited;\n"
      "std::unordered_map<K, std::vector<V>>& by_ref\n"
      "std::unordered_map<int, int>::iterator it;\n");
  EXPECT_EQ(3u, ids.size());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "actions_"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "visited"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "by_ref"), ids.end());
}

}  // namespace
}  // namespace rbcast::lint
