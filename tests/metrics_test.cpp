#include "trace/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generators.h"

namespace rbcast::trace {
namespace {

struct Fixture {
  sim::Simulator sim;
  util::RngFactory rngs{1};
  topo::Wan wan;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Metrics> metrics;

  Fixture() {
    topo::ClusteredWanOptions options;
    options.clusters = 2;
    options.hosts_per_cluster = 2;
    wan = make_clustered_wan(options);
    network = std::make_unique<net::Network>(sim, wan.topology,
                                             net::NetConfig{}, rngs);
    metrics = std::make_unique<Metrics>(sim, *network);
    metrics->attach();
    for (const auto& h : wan.topology.hosts()) {
      network->register_host(h.id, [](const net::Delivery&) {});
    }
  }

  void send(HostId from, HostId to, const std::string& kind,
            std::size_t bytes = 100) {
    network->send(from, to, std::any(std::string("payload")), bytes, kind);
  }
};

TEST(Metrics, CountsSendsByKind) {
  Fixture f;
  f.send(HostId{0}, HostId{1}, "data");
  f.send(HostId{0}, HostId{1}, "data");
  f.send(HostId{0}, HostId{1}, "info", 40);
  EXPECT_EQ(f.metrics->counter("send.data"), 2u);
  EXPECT_EQ(f.metrics->counter("send.info"), 1u);
  EXPECT_EQ(f.metrics->counter("send_bytes.data"), 200u);
}

TEST(Metrics, ClassifiesInterClusterSends) {
  Fixture f;
  f.send(HostId{0}, HostId{1}, "data");  // intra (hosts 0,1 in cluster 0)
  f.send(HostId{0}, HostId{2}, "data");  // inter (host 2 in cluster 1)
  f.send(HostId{0}, HostId{2}, "gapfill");
  f.send(HostId{0}, HostId{2}, "info", 40);
  EXPECT_EQ(f.metrics->counter("send.intercluster.data"), 1u);
  EXPECT_EQ(f.metrics->intercluster_data_sends(), 2u);
  EXPECT_EQ(f.metrics->intercluster_control_sends(), 1u);
}

TEST(Metrics, InterClusterClassificationTracksLinkState) {
  Fixture f;
  // Split cluster 0 by downing its internal cheap trunk: hosts 0 and 1 are
  // then in different ground-truth clusters.
  for (const auto& l : f.wan.topology.links()) {
    if (!l.is_access && l.link_class == topo::LinkClass::kCheap) {
      f.network->set_link_up(l.id, false);
    }
  }
  f.send(HostId{0}, HostId{1}, "data");
  EXPECT_EQ(f.metrics->counter("send.intercluster.data"), 1u);
}

TEST(Metrics, DeliverAndTransmitCounters) {
  Fixture f;
  f.send(HostId{0}, HostId{2}, "data");
  f.sim.run_until(sim::seconds(5));
  EXPECT_EQ(f.metrics->counter("deliver.data"), 1u);
  EXPECT_EQ(f.metrics->counter("link.expensive"), 1u);
  EXPECT_EQ(f.metrics->counter_prefix_sum("drop."), 0u);
}

TEST(Metrics, DropCountersByReason) {
  Fixture f;
  f.network->set_link_up(f.wan.trunks[0], false);
  f.send(HostId{0}, HostId{2}, "data");
  f.sim.run_until(sim::seconds(2));
  EXPECT_GE(f.metrics->counter_prefix_sum("drop."), 1u);
}

TEST(Metrics, LatencyBookkeeping) {
  Fixture f;
  f.metrics->record_broadcast(1);
  f.sim.run_until(sim::milliseconds(250));
  f.metrics->record_delivery(HostId{1}, 1);
  EXPECT_NEAR(f.metrics->delivery_latency(HostId{1}, 1), 0.25, 1e-9);
  EXPECT_LT(f.metrics->delivery_latency(HostId{2}, 1), 0.0);  // not delivered
  EXPECT_EQ(f.metrics->delivered_count(1), 1u);

  // First delivery wins; a duplicate later must not move the clock.
  f.sim.run_until(sim::seconds(1));
  f.metrics->record_delivery(HostId{1}, 1);
  EXPECT_NEAR(f.metrics->delivery_latency(HostId{1}, 1), 0.25, 1e-9);
}

TEST(Metrics, LatencySamplesFilterBySeqRange) {
  Fixture f;
  f.metrics->record_broadcast(1);
  f.metrics->record_broadcast(2);
  f.sim.run_until(sim::milliseconds(100));
  f.metrics->record_delivery(HostId{1}, 1);
  f.sim.run_until(sim::milliseconds(300));
  f.metrics->record_delivery(HostId{1}, 2);

  EXPECT_EQ(f.metrics->all_latencies().count(), 2u);
  const auto only_second = f.metrics->latencies_between(2, 2);
  ASSERT_EQ(only_second.count(), 1u);
  EXPECT_NEAR(only_second.mean(), 0.3, 1e-9);
}

TEST(Metrics, QueueBacklogPerServer) {
  Fixture f;
  // Saturate the trunk out of host 0's cluster head with large messages.
  for (int i = 0; i < 10; ++i) f.send(HostId{0}, HostId{2}, "data", 5000);
  f.sim.run_until(sim::seconds(30));
  const ServerId head = f.wan.cluster_head_server[0];
  EXPECT_GT(f.metrics->max_queue_backlog_seconds(head), 0.0);
  EXPECT_GT(f.metrics->queue_backlog(head).count(), 0u);
}

TEST(Metrics, LinkUtilizationAccumulatesWireTime) {
  Fixture f;
  const LinkId trunk = f.wan.trunks[0];
  EXPECT_EQ(f.metrics->link_busy_time(trunk), 0);
  EXPECT_EQ(f.metrics->link_utilization(trunk), 0.0);

  // One 700-byte message over the 56 kbit/s trunk = 100 ms of wire time.
  f.send(HostId{0}, HostId{2}, "data", 700);
  f.sim.run_until(sim::seconds(10));
  EXPECT_NEAR(sim::to_seconds(f.metrics->link_busy_time(trunk)), 0.1, 0.01);
  EXPECT_NEAR(f.metrics->link_utilization(trunk), 0.01, 0.002);
  EXPECT_EQ(f.metrics->busiest_trunk(), trunk);
}

TEST(Metrics, UtilizationWindowRestartsOnReset) {
  Fixture f;
  f.send(HostId{0}, HostId{2}, "data", 700);
  f.sim.run_until(sim::seconds(10));
  f.metrics->reset();
  EXPECT_EQ(f.metrics->link_busy_time(f.wan.trunks[0]), 0);
  EXPECT_FALSE(f.metrics->busiest_trunk().valid());
  // New window: one message in one second is ~10% utilization.
  f.send(HostId{0}, HostId{2}, "data", 700);
  f.sim.run_until(sim::seconds(11));
  EXPECT_NEAR(f.metrics->link_utilization(f.wan.trunks[0]), 0.1, 0.02);
}

TEST(Metrics, CompletionCurveIsMonotoneAndEndsAtFraction) {
  Fixture f;
  // Two messages, 3 hosts expected each (host_count param = 3).
  f.metrics->record_broadcast(1);
  f.metrics->record_broadcast(2);
  f.metrics->record_delivery(HostId{0}, 1);  // t = 0
  f.sim.run_until(sim::seconds(7));
  f.metrics->record_delivery(HostId{1}, 1);
  f.sim.run_until(sim::seconds(12));
  f.metrics->record_delivery(HostId{0}, 2);

  const auto curve = f.metrics->completion_curve(5.0, 3);
  ASSERT_GE(curve.size(), 3u);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
  // 3 of 6 expected deliveries happened.
  EXPECT_NEAR(curve.back().second, 0.5, 1e-9);
  // At t=5: only the first delivery (t=0) counted.
  EXPECT_NEAR(curve[1].second, 1.0 / 6.0, 1e-9);
}

TEST(Metrics, CompletionCurveEmptyWithoutDeliveries) {
  Fixture f;
  EXPECT_TRUE(f.metrics->completion_curve(1.0, 3).empty());
  EXPECT_THROW(f.metrics->completion_curve(0.0, 3), std::invalid_argument);
}

TEST(Metrics, CsvExports) {
  Fixture f;
  f.send(HostId{0}, HostId{1}, "data");
  f.metrics->record_broadcast(1);
  f.sim.run_until(sim::milliseconds(500));
  f.metrics->record_delivery(HostId{1}, 1);

  std::ostringstream counters;
  f.metrics->write_counters_csv(counters);
  EXPECT_NE(counters.str().find("name,value"), std::string::npos);
  EXPECT_NE(counters.str().find("send.data,1"), std::string::npos);

  std::ostringstream latencies;
  f.metrics->write_latencies_csv(latencies);
  EXPECT_NE(latencies.str().find("seq,host,latency_seconds"),
            std::string::npos);
  EXPECT_NE(latencies.str().find("1,1,0.5"), std::string::npos);
}

TEST(Metrics, ResetClearsEverything) {
  Fixture f;
  f.send(HostId{0}, HostId{1}, "data");
  f.metrics->record_broadcast(1);
  f.metrics->reset();
  EXPECT_EQ(f.metrics->counter_prefix_sum(""), 0u);
  EXPECT_EQ(f.metrics->all_latencies().count(), 0u);
}

}  // namespace
}  // namespace rbcast::trace
