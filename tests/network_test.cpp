#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "topo/generators.h"

namespace rbcast::net {
namespace {

struct Received {
  HostId from;
  bool expensive;
  std::string payload;
  sim::TimePoint at;
};

struct Harness {
  sim::Simulator sim;
  util::RngFactory rngs{1};
  topo::Topology topology;
  std::unique_ptr<Network> network;
  std::vector<std::vector<Received>> inbox;

  void init(topo::Topology t, NetConfig config = {}) {
    topology = std::move(t);
    network = std::make_unique<Network>(sim, topology, config, rngs);
    inbox.resize(topology.host_count());
    for (const auto& h : topology.hosts()) {
      network->register_host(h.id, [this, id = h.id](const Delivery& d) {
        inbox[static_cast<std::size_t>(id.value)].push_back(
            Received{d.from, d.expensive,
                     std::any_cast<std::string>(d.payload), sim.now()});
      });
    }
  }

  void send(HostId from, HostId to, const std::string& body,
            std::size_t bytes = 100) {
    network->send(from, to, std::any(body), bytes, "data");
  }
};

// Counts every observer callback.
struct CountingObserver : NetObserver {
  int sends = 0, delivers = 0, drops = 0, transmits = 0, backlogs = 0;
  void on_host_send(const Delivery&) override { ++sends; }
  void on_deliver(const Delivery&) override { ++delivers; }
  void on_drop(const Delivery&, DropReason) override { ++drops; }
  void on_link_transmit(LinkId, const Delivery&) override { ++transmits; }
  void on_queue_backlog(ServerId, LinkId, sim::Duration) override {
    ++backlogs;
  }
};

TEST(Network, DeliversAcrossClusters) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 2;
  h.init(make_clustered_wan(options).topology);

  h.send(HostId{0}, HostId{3}, "hello");
  h.sim.run_until(sim::seconds(2));
  ASSERT_EQ(h.inbox[3].size(), 1u);
  EXPECT_EQ(h.inbox[3][0].payload, "hello");
  EXPECT_EQ(h.inbox[3][0].from, HostId{0});
}

TEST(Network, CostBitSetOnlyForExpensivePaths) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 2;
  h.init(make_clustered_wan(options).topology);

  h.send(HostId{0}, HostId{1}, "intra");  // same cluster: cheap path
  h.send(HostId{0}, HostId{2}, "inter");  // crosses the expensive trunk
  h.sim.run_until(sim::seconds(2));
  ASSERT_EQ(h.inbox[1].size(), 1u);
  EXPECT_FALSE(h.inbox[1][0].expensive);
  ASSERT_EQ(h.inbox[2].size(), 1u);
  EXPECT_TRUE(h.inbox[2][0].expensive);
}

TEST(Network, ExpensivePathTakesLonger) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 2;
  h.init(make_clustered_wan(options).topology);

  h.send(HostId{0}, HostId{1}, "intra");
  h.send(HostId{0}, HostId{2}, "inter");
  h.sim.run_until(sim::seconds(5));
  ASSERT_EQ(h.inbox[1].size(), 1u);
  ASSERT_EQ(h.inbox[2].size(), 1u);
  EXPECT_LT(h.inbox[1][0].at, h.inbox[2][0].at);
}

TEST(Network, DownTrunkSilentlyDropsUntilRerouteConverges) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  const auto wan = make_clustered_wan(options);
  NetConfig config;
  config.convergence_lag = sim::milliseconds(100);
  h.init(wan.topology, config);
  const LinkId trunk = wan.trunks[0];

  h.network->set_link_up(trunk, false);
  h.send(HostId{0}, HostId{1}, "lost");
  h.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(h.inbox[1].empty());  // no route, no error reported
}

TEST(Network, RecoversAfterLinkRepair) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  const auto wan = make_clustered_wan(options);
  NetConfig config;
  config.convergence_lag = sim::milliseconds(100);
  h.init(wan.topology, config);
  const LinkId trunk = wan.trunks[0];

  h.network->set_link_up(trunk, false);
  h.sim.run_until(sim::seconds(1));
  h.network->set_link_up(trunk, true);
  h.sim.run_until(sim::seconds(2));  // allow reconvergence
  h.send(HostId{0}, HostId{1}, "after-repair");
  h.sim.run_until(sim::seconds(4));
  ASSERT_EQ(h.inbox[1].size(), 1u);
}

TEST(Network, AccessLinkDownIsolatesHostBothWays) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 1;
  options.hosts_per_cluster = 2;
  h.init(make_clustered_wan(options).topology);
  const LinkId access = h.topology.host(HostId{1}).access_link;
  h.network->set_link_up(access, false);

  h.send(HostId{0}, HostId{1}, "to-crashed");
  h.send(HostId{1}, HostId{0}, "from-crashed");
  h.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(h.inbox[1].empty());
  EXPECT_TRUE(h.inbox[0].empty());
}

TEST(Network, LossyLinkDropsSomeMessages) {
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  options.expensive.loss_probability = 0.5;
  Harness h;
  h.init(make_clustered_wan(options).topology);

  for (int i = 0; i < 200; ++i) {
    h.sim.run_until(h.sim.now() + sim::seconds(1));
    h.send(HostId{0}, HostId{1}, "maybe");
  }
  h.sim.run_until(h.sim.now() + sim::seconds(5));
  const auto got = h.inbox[1].size();
  EXPECT_GT(got, 50u);
  EXPECT_LT(got, 150u);
}

TEST(Network, DuplicatingLinkDeliversTwice) {
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  options.expensive.duplication_probability = 1.0;
  Harness h;
  h.init(make_clustered_wan(options).topology);

  h.send(HostId{0}, HostId{1}, "twice");
  h.sim.run_until(sim::seconds(5));
  EXPECT_EQ(h.inbox[1].size(), 2u);
}

TEST(Network, ObserverSeesSendTransmitDeliver) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  h.init(make_clustered_wan(options).topology);
  CountingObserver obs;
  h.network->set_observer(&obs);

  h.send(HostId{0}, HostId{1}, "watched");
  h.sim.run_until(sim::seconds(2));
  EXPECT_EQ(obs.sends, 1);
  EXPECT_EQ(obs.delivers, 1);
  EXPECT_EQ(obs.transmits, 1);  // exactly one trunk hop
  EXPECT_EQ(obs.drops, 0);
  EXPECT_GE(obs.backlogs, 1);
}

TEST(Network, ClusterQueriesTrackLinkState) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 1;
  options.hosts_per_cluster = 2;
  h.init(make_clustered_wan(options).topology);

  EXPECT_TRUE(h.network->same_cluster(HostId{0}, HostId{1}));
  EXPECT_EQ(h.network->clusters().size(), 1u);

  // Cut the cheap trunk between the two servers: cluster splits.
  for (const auto& l : h.topology.links()) {
    if (!l.is_access) h.network->set_link_up(l.id, false);
  }
  EXPECT_FALSE(h.network->same_cluster(HostId{0}, HostId{1}));
  EXPECT_EQ(h.network->clusters().size(), 2u);
  EXPECT_FALSE(h.network->connected(HostId{0}, HostId{1}));
}

TEST(Network, TopologyEpochBumpsOnChange) {
  Harness h;
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  const auto wan = make_clustered_wan(options);
  h.init(wan.topology);

  const auto before = h.network->topology_epoch();
  h.network->set_link_up(wan.trunks[0], false);
  EXPECT_EQ(h.network->topology_epoch(), before + 1);
  h.network->set_link_up(wan.trunks[0], false);  // no-op
  EXPECT_EQ(h.network->topology_epoch(), before + 1);
}

TEST(Network, RejectsInvalidConfig) {
  sim::Simulator sim;
  util::RngFactory rngs{1};
  const auto wan =
      topo::make_clustered_wan({.clusters = 1, .hosts_per_cluster = 1});
  NetConfig bad_ttl;
  bad_ttl.ttl = 0;
  EXPECT_THROW(Network(sim, wan.topology, bad_ttl, rngs),
               std::invalid_argument);
  NetConfig bad_jitter;
  bad_jitter.jitter_max = -1;
  EXPECT_THROW(Network(sim, wan.topology, bad_jitter, rngs),
               std::invalid_argument);
  NetConfig bad_queue;
  bad_queue.max_queue_delay = 0;
  EXPECT_THROW(Network(sim, wan.topology, bad_queue, rngs),
               std::invalid_argument);
  NetConfig bad_lag;
  bad_lag.convergence_lag = -1;
  EXPECT_THROW(Network(sim, wan.topology, bad_lag, rngs),
               std::invalid_argument);
}

TEST(Network, RejectsSelfSend) {
  Harness h;
  h.init(topo::make_clustered_wan({.clusters = 1, .hosts_per_cluster = 2})
             .topology);
  EXPECT_THROW(h.send(HostId{0}, HostId{0}, "self"), std::invalid_argument);
}

TEST(Network, ParallelTrunksFailOverWithoutRouteChange) {
  // Two parallel expensive trunks between the same pair of servers: when
  // the first goes down, forwarding must pick the sibling immediately —
  // the routing next-hop does not even change.
  topo::Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const LinkId trunk_a = t.add_link(s0, s1, topo::LinkClass::kExpensive);
  t.add_link(s0, s1, topo::LinkClass::kExpensive);
  const HostId h0 = t.add_host(s0);
  const HostId h1 = t.add_host(s1);
  (void)h0;
  (void)h1;

  Harness h;
  h.init(std::move(t));
  h.network->set_link_up(trunk_a, false);
  h.send(HostId{0}, HostId{1}, "via sibling");
  h.sim.run_until(sim::seconds(5));
  ASSERT_EQ(h.inbox[1].size(), 1u);
  EXPECT_TRUE(h.inbox[1][0].expensive);
}

TEST(Network, ServerForwardCountsAccumulate) {
  topo::ClusteredWanOptions options;
  options.clusters = 3;
  options.hosts_per_cluster = 1;
  options.shape = topo::TrunkShape::kLine;
  const auto wan = make_clustered_wan(options);
  Harness h;
  h.init(wan.topology);

  // h0 -> h2 transits the middle cluster's server.
  h.send(HostId{0}, HostId{2}, "through the middle");
  h.sim.run_until(sim::seconds(5));
  ASSERT_EQ(h.inbox[2].size(), 1u);
  const ServerId middle = wan.cluster_head_server[1];
  EXPECT_GE(h.network->server(middle).forwarded(), 1u);
}

TEST(Network, FiniteBufferTailDropsUnderOverload) {
  // A tiny queue budget: blasting many large messages down the expensive
  // trunk must tail-drop most of them rather than queue for minutes.
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  NetConfig config;
  config.max_queue_delay = sim::milliseconds(500);
  Harness h;
  h.init(make_clustered_wan(options).topology, config);
  CountingObserver obs;
  h.network->set_observer(&obs);

  // 2000-byte messages take ~290 ms each on the 56 kbit/s trunk: only the
  // first couple fit inside a 500 ms queue budget.
  for (int i = 0; i < 20; ++i) h.send(HostId{0}, HostId{1}, "x", 2000);
  h.sim.run_until(sim::seconds(30));
  EXPECT_GE(obs.drops, 10);
  EXPECT_LE(h.inbox[1].size(), 10u);
  EXPECT_GE(h.inbox[1].size(), 1u);
}

TEST(Network, GenerousBufferDeliversSameOverload) {
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  Harness h;
  h.init(make_clustered_wan(options).topology);  // default 60 s budget

  for (int i = 0; i < 20; ++i) h.send(HostId{0}, HostId{1}, "x", 2000);
  h.sim.run_until(sim::seconds(30));
  EXPECT_EQ(h.inbox[1].size(), 20u);
}

TEST(LinkStateQueue, BacklogAccessorTracksOccupancy) {
  topo::LinkParams params = topo::LinkParams::cheap_defaults();
  params.bandwidth_bytes_per_sec = 1000.0;
  topo::LinkSpec spec{.id = LinkId{0},
                      .a = ServerId{0},
                      .b = ServerId{1},
                      .link_class = topo::LinkClass::kCheap,
                      .params = params};
  LinkState link(spec, util::Rng(1));
  EXPECT_EQ(link.queue_backlog(0, 0), 0);
  link.transmit(100, 0, 0);  // 100 ms of wire time
  EXPECT_EQ(link.queue_backlog(0, 0), sim::milliseconds(100));
  EXPECT_EQ(link.queue_backlog(0, sim::milliseconds(40)),
            sim::milliseconds(60));
  EXPECT_EQ(link.queue_backlog(0, sim::milliseconds(200)), 0);
  EXPECT_EQ(link.queue_backlog(1, 0), 0);  // other direction independent
}

TEST(Network, LinkFailureKillsInFlightPackets) {
  // A message is crossing the (slow) expensive trunk when the trunk dies:
  // it must never arrive, even though the trunk later recovers.
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  const auto wan = make_clustered_wan(options);
  Harness h;
  h.init(wan.topology);

  h.send(HostId{0}, HostId{1}, "doomed", 500);  // ~70ms on the trunk
  h.sim.run_until(sim::milliseconds(30));       // mid-flight
  h.network->set_link_up(wan.trunks[0], false);
  h.sim.run_until(sim::seconds(1));
  h.network->set_link_up(wan.trunks[0], true);
  h.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(h.inbox[1].empty());
}

TEST(Network, AccessLinkFailureKillsInFlightDelivery) {
  topo::ClusteredWanOptions options;
  options.clusters = 1;
  options.hosts_per_cluster = 2;
  const auto wan = make_clustered_wan(options);
  Harness h;
  h.init(wan.topology);

  // Large message: the host->server access hop takes ~0.9 ms at 10 Mbit/s
  // plus propagation; kill the access link immediately after sending.
  h.send(HostId{0}, HostId{1}, "doomed", 1000);
  const LinkId access = h.topology.host(HostId{0}).access_link;
  h.network->set_link_up(access, false);
  h.sim.run_until(sim::seconds(1));
  h.network->set_link_up(access, true);
  h.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(h.inbox[1].empty());
}

TEST(Network, PacketsLandedBeforeFailureSurvive) {
  topo::ClusteredWanOptions options;
  options.clusters = 2;
  options.hosts_per_cluster = 1;
  const auto wan = make_clustered_wan(options);
  Harness h;
  h.init(wan.topology);

  h.send(HostId{0}, HostId{1}, "made it", 100);
  h.sim.run_until(sim::seconds(2));  // fully delivered
  h.network->set_link_up(wan.trunks[0], false);
  h.sim.run_until(sim::seconds(3));
  EXPECT_EQ(h.inbox[1].size(), 1u);
}

TEST(Network, JitterCausesReorderingOnSharedPath) {
  // Many messages down the same multi-hop path: with per-hop jitter, at
  // least one pair should arrive out of order relative to sending.
  topo::ClusteredWanOptions options;
  options.clusters = 3;
  options.hosts_per_cluster = 1;
  options.shape = topo::TrunkShape::kLine;
  Harness h;
  NetConfig config;
  config.jitter_max = sim::milliseconds(30);
  h.init(make_clustered_wan(options).topology, config);

  for (int i = 0; i < 40; ++i) {
    h.send(HostId{0}, HostId{2}, std::to_string(i), 10);
  }
  h.sim.run_until(sim::seconds(30));
  ASSERT_EQ(h.inbox[2].size(), 40u);
  bool out_of_order = false;
  for (std::size_t k = 1; k < h.inbox[2].size(); ++k) {
    if (std::stoi(h.inbox[2][k].payload) <
        std::stoi(h.inbox[2][k - 1].payload)) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
}

}  // namespace
}  // namespace rbcast::net
