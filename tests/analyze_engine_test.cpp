// Tests for the rbcast_analyze rule engine (tools/analyze/*): every pass
// must fire on a seeded bad snippet, stay quiet on clean code, and the
// ratchet comparator must gate exactly the regressions.
#include "analyze/analyze_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/source_scanner.h"

namespace rbcast::analyze {
namespace {

AnalysisResult run(std::vector<FileInput> files) {
  return analyze(files, default_layer_spec(), default_hot_spec());
}

bool fires(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// --- layer pass ---------------------------------------------------------

TEST(LayerPass, ForbiddenEdgeCoreToSim) {
  const auto r = run({
      {"src/core/host.h", "#pragma once\n#include \"sim/simulator.h\"\n"},
      {"src/sim/simulator.h", "#pragma once\n"},
  });
  ASSERT_TRUE(fires(r.findings, "layer-violation"));
  EXPECT_EQ("src/core/host.h", r.findings[0].file);
  EXPECT_EQ(2, r.findings[0].line);
}

TEST(LayerPass, ForbiddenEdgeCoreToHarness) {
  const auto r = run({
      {"src/core/host.h", "#pragma once\n#include \"harness/experiment.h\"\n"},
      {"src/harness/experiment.h", "#pragma once\n"},
  });
  EXPECT_TRUE(fires(r.findings, "layer-violation"));
}

TEST(LayerPass, RankClimbFlagged) {
  // sim (rank 1) including core (rank 4) climbs the DAG.
  const auto r = run({
      {"src/sim/event_queue.h", "#pragma once\n#include \"core/config.h\"\n"},
      {"src/core/config.h", "#pragma once\n"},
  });
  ASSERT_TRUE(fires(r.findings, "layer-violation"));
  EXPECT_NE(r.findings[0].message.find("climbs"), std::string::npos);
}

TEST(LayerPass, DownwardAndSameRankEdgesAllowed) {
  const auto r = run({
      {"src/core/host.h",
       "#pragma once\n#include \"util/rng.h\"\n#include \"net/message.h\"\n"},
      {"src/net/message.h", "#pragma once\n#include \"sim/time.h\"\n"},
      {"src/trace/sink.h", "#pragma once\n#include \"model/graph.h\"\n"},
      {"src/model/graph.h", "#pragma once\n"},
      {"src/util/rng.h", "#pragma once\n"},
      {"src/sim/time.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "layer-violation"));
  EXPECT_FALSE(fires(r.findings, "layer-unknown"));
}

TEST(LayerPass, InterfaceOnlyEdgeAllowsTheAbstractHeader) {
  const auto r = run({
      {"src/core/host.h",
       "#pragma once\n#include \"transport/transport.h\"\n"
       "#include \"net/message.h\"\n"},
      {"src/transport/transport.h", "#pragma once\n"},
      {"src/net/message.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "layer-violation"));
}

TEST(LayerPass, InterfaceOnlyEdgeRejectsConcreteBackends) {
  // core -> transport is rank-legal but restricted to the abstract
  // interface header; a backend include must fire even though transport
  // sits below core in the DAG.
  const auto r = run({
      {"src/core/host.cpp",
       "#include \"transport/udp_transport.h\"\n"},
      {"src/transport/udp_transport.h", "#pragma once\n"},
  });
  ASSERT_TRUE(fires(r.findings, "layer-violation"));
  EXPECT_NE(r.findings[0].message.find("interface-only"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("transport/transport.h"),
            std::string::npos);
}

TEST(LayerPass, InterfaceOnlyEdgeRejectsConcreteNetEndpoints) {
  const auto r = run({
      {"src/core/host.h", "#pragma once\n#include \"net/network.h\"\n"},
      {"src/net/network.h", "#pragma once\n"},
  });
  ASSERT_TRUE(fires(r.findings, "layer-violation"));
  EXPECT_NE(r.findings[0].message.find("interface-only"), std::string::npos);
}

TEST(LayerPass, InterfaceOnlyRestrictionDoesNotBindOtherLayers) {
  // Only the named from-layer is restricted: transport backends and the
  // harness may include concrete net headers freely.
  const auto r = run({
      {"src/transport/sim_transport.h",
       "#pragma once\n#include \"net/network.h\"\n"},
      {"src/harness/experiment.h",
       "#pragma once\n#include \"net/network.h\"\n"
       "#include \"transport/sim_transport.h\"\n"},
      {"src/net/network.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "layer-violation"));
}

TEST(LayerPass, CoalescerSitsInsideTheTransportLayer) {
  // The coalescing data plane is transport-internal: transport/coalescer.h
  // reaches down to net and util, and both backends include it — all of
  // that is DAG-legal and must stay quiet.
  const auto r = run({
      {"src/transport/coalescer.h",
       "#pragma once\n#include \"net/message.h\"\n"
       "#include \"util/scheduler.h\"\n"},
      {"src/transport/udp_transport.h",
       "#pragma once\n#include \"transport/coalescer.h\"\n"},
      {"src/transport/sim_transport.h",
       "#pragma once\n#include \"transport/coalescer.h\"\n"},
      {"src/net/message.h", "#pragma once\n"},
      {"src/util/scheduler.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "layer-violation"));
  EXPECT_FALSE(fires(r.findings, "layer-unknown"));
}

TEST(LayerPass, InterfaceOnlyEdgeRejectsCoalescerFromCore) {
  // Batching stays behind the Transport seam: the protocol automaton
  // configures it through core::Config knobs, never by including the
  // coalescer — core -> transport is restricted to transport/transport.h.
  const auto r = run({
      {"src/core/broadcast_host.h",
       "#pragma once\n#include \"transport/coalescer.h\"\n"},
      {"src/transport/coalescer.h", "#pragma once\n"},
  });
  ASSERT_TRUE(fires(r.findings, "layer-violation"));
  EXPECT_NE(r.findings[0].message.find("interface-only"), std::string::npos);
}

TEST(LayerPass, UnknownLayerFlagged) {
  const auto r = run({
      {"src/zebra/a.h", "#pragma once\n#include \"util/rng.h\"\n"},
      {"src/util/rng.h", "#pragma once\n"},
  });
  EXPECT_TRUE(fires(r.findings, "layer-unknown"));
}

TEST(LayerPass, CommentedOutIncludeIgnored) {
  const auto r = run({
      {"src/core/host.h", "#pragma once\n// #include \"sim/simulator.h\"\n"},
      {"src/sim/simulator.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "layer-violation"));
  EXPECT_TRUE(r.include_graph.empty());
}

TEST(LayerPass, GraphRecordsResolvedEdges) {
  const auto r = run({
      {"src/core/a.h", "#pragma once\n#include \"util/b.h\"\n"},
      {"src/util/b.h", "#pragma once\n"},
  });
  ASSERT_EQ(1u, r.include_graph.size());
  EXPECT_TRUE(r.include_graph.at("src/core/a.h").contains("src/util/b.h"));
  const std::string dot = to_dot(r.include_graph);
  EXPECT_NE(dot.find("\"src/core/a.h\" -> \"src/util/b.h\""),
            std::string::npos);
}

// --- include cycles -----------------------------------------------------

TEST(IncludeCycle, TwoFileCycleDetected) {
  const auto r = run({
      {"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
      {"src/util/b.h", "#pragma once\n#include \"util/a.h\"\n"},
  });
  ASSERT_TRUE(fires(r.findings, "include-cycle"));
  const auto it = std::find_if(
      r.findings.begin(), r.findings.end(),
      [](const Finding& f) { return f.rule == "include-cycle"; });
  EXPECT_NE(it->message.find("src/util/a.h"), std::string::npos);
  EXPECT_NE(it->message.find("src/util/b.h"), std::string::npos);
}

TEST(IncludeCycle, AcyclicChainClean) {
  const auto r = run({
      {"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
      {"src/util/b.h", "#pragma once\n#include \"util/c.h\"\n"},
      {"src/util/c.h", "#pragma once\n"},
  });
  EXPECT_FALSE(fires(r.findings, "include-cycle"));
}

// --- shared-state census ------------------------------------------------

TEST(Census, MutableGlobalFlagged) {
  const auto r = run({{"src/util/bad.cpp",
                       "namespace rbcast {\n"
                       "int counter = 0;\n"
                       "}\n"}});
  ASSERT_TRUE(fires(r.findings, "mutable-global"));
  EXPECT_EQ(2, r.findings[0].line);
  EXPECT_NE(r.findings[0].message.find("'counter'"), std::string::npos);
}

TEST(Census, ConstAndConstexprGlobalsClean) {
  const auto r = run({{"src/util/good.cpp",
                       "namespace rbcast {\n"
                       "const int kA = 1;\n"
                       "constexpr int kB = 2;\n"
                       "inline constexpr char kName[] = \"x\";\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "mutable-global"));
}

TEST(Census, ForwardDeclarationsAndFunctionsClean) {
  const auto r = run({{"src/util/good.h",
                       "#pragma once\n"
                       "namespace rbcast {\n"
                       "struct Config;\n"
                       "class Simulator;\n"
                       "int parse(const char* s);\n"
                       "using Clock = int;\n"
                       "namespace inv = model::invariants;\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "mutable-global"));
}

TEST(Census, StaticDataMemberFlagged) {
  const auto r = run({{"src/util/bad.h",
                       "#pragma once\n"
                       "class Registry {\n"
                       "  static int live_count_;\n"
                       "};\n"}});
  ASSERT_TRUE(fires(r.findings, "mutable-global"));
  EXPECT_NE(r.findings[0].message.find("'live_count_'"), std::string::npos);
}

TEST(Census, LocalStaticFlagged) {
  const auto r = run({{"src/util/bad.cpp",
                       "int next_id() {\n"
                       "  static int id = 0;\n"
                       "  return ++id;\n"
                       "}\n"}});
  EXPECT_TRUE(fires(r.findings, "local-static"));
  EXPECT_FALSE(fires(r.findings, "singleton"));
}

TEST(Census, MeyersSingletonFlaggedAsSingleton) {
  const auto r = run({{"src/util/bad.cpp",
                       "Logger& logger() {\n"
                       "  static Logger instance;\n"
                       "  return instance;\n"
                       "}\n"}});
  EXPECT_TRUE(fires(r.findings, "singleton"));
  EXPECT_FALSE(fires(r.findings, "local-static"));
}

TEST(Census, ConstLocalStaticClean) {
  const auto r = run({{"src/util/good.cpp",
                       "int table(int i) {\n"
                       "  static const int t[3] = {1, 2, 3};\n"
                       "  return t[i];\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "local-static"));
  EXPECT_FALSE(fires(r.findings, "singleton"));
}

// --- hot-path allocation pass -------------------------------------------

TEST(AllocPass, FlagsGrowingContainerInHotFunction) {
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::schedule(Event e) {\n"
                       "  heap_.push_back(std::move(e));\n"
                       "}\n"}});
  ASSERT_EQ(1u, count_rule(r.findings, "hot-alloc"));
  EXPECT_EQ(2, r.findings[0].line);
  EXPECT_NE(r.findings[0].message.find("push_back()"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("EventQueue::schedule"),
            std::string::npos);
}

TEST(AllocPass, FlagsNewAndMakeUniqueViaWildcards) {
  // Simulator::step is listed exactly; BroadcastHost::on_* by prefix.
  const auto r = run({{"src/sim/simulator.cpp",
                       "void Simulator::step() {\n"
                       "  auto* e = new Event();\n"
                       "}\n"
                       "void BroadcastHost::on_message(Msg m) {\n"
                       "  auto p = std::make_unique<Msg>(m);\n"
                       "}\n"}});
  EXPECT_EQ(2u, count_rule(r.findings, "hot-alloc"));
}

TEST(AllocPass, QuietOutsideHotSet) {
  const auto r = run({{"src/core/other.cpp",
                       "void Journal::append_entry(Entry e) {\n"
                       "  entries_.push_back(std::move(e));\n"
                       "  auto p = std::make_shared<Entry>(e);\n"
                       "}\n"
                       "void Simulator::run(int n) {\n"
                       "  pending_.resize(n);\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "hot-alloc"));
}

TEST(AllocPass, WordBoundariesAvoidFalsePositives) {
  // "renewal"/"newest_" must not match \bnew\b; a non-growing member call
  // ("find") must not match the container-growth alternation.
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::step_to(Time t) {\n"
                       "  renewal_ = t;\n"
                       "  newest_ = heap_.find(t);\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "hot-alloc"));
}

TEST(AllocPass, NestedLambdaStillAttributedToHotFunction) {
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::drain(Fn f) {\n"
                       "  visit([this](Event& e) {\n"
                       "    spill_.push_back(e);\n"
                       "  });\n"
                       "}\n"}});
  EXPECT_TRUE(fires(r.findings, "hot-alloc"));
}

TEST(AllocPass, RefcountedPayloadRelayStaysAllocationFree) {
  // The zero-copy fan-out claim, pinned as an analyzer expectation:
  // relaying a message on the BroadcastHost hot path copies Payload
  // handles (refcount bumps), which the scan does not flag — whereas the
  // pre-Payload idiom (std::string body stored per relay via emplace)
  // fired hot-alloc and needed a waiver. The buffer copy happens once, at
  // decode/record time, outside the hot set.
  const auto clean = run({{"src/core/broadcast_host.cpp",
                           "void BroadcastHost::on_delivery(Delivery d) {\n"
                           "  const Payload* body = state_.body_of(seq);\n"
                           "  Payload shared = *body;\n"
                           "  send_message(child, make_data(seq, shared));\n"
                           "}\n"}});
  EXPECT_FALSE(fires(clean.findings, "hot-alloc"));

  const auto old_idiom =
      run({{"src/core/broadcast_host.cpp",
            "void BroadcastHost::on_delivery(Delivery d) {\n"
            "  bodies_.emplace(seq, std::string(body));\n"
            "}\n"}});
  EXPECT_TRUE(fires(old_idiom.findings, "hot-alloc"));
}

// --- waivers ------------------------------------------------------------

TEST(Waivers, SuppressExactlyTheNamedRuleAndAreCounted) {
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::schedule(Event e) {\n"
                       "  heap_.push_back(e);  // analyze:allow(hot-alloc) "
                       "amortized growth\n"
                       "}\n"}});
  EXPECT_FALSE(fires(r.findings, "hot-alloc"));
  EXPECT_FALSE(fires(r.findings, "stale-waiver"));
  ASSERT_EQ(1u, r.waivers.size());
  EXPECT_EQ("hot-alloc", r.waivers[0].rule);
  EXPECT_EQ(2, r.waivers[0].line);
  EXPECT_EQ("amortized growth", r.waivers[0].reason);
}

TEST(Waivers, WrongRuleNameLeavesFindingAndGoesStale) {
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::schedule(Event e) {\n"
                       "  heap_.push_back(e);  // analyze:allow(singleton) "
                       "misfiled\n"
                       "}\n"}});
  EXPECT_TRUE(fires(r.findings, "hot-alloc"));
  EXPECT_TRUE(fires(r.findings, "stale-waiver"));
  EXPECT_TRUE(r.waivers.empty());
}

TEST(Waivers, StaleWaiverOnCleanLineIsAFinding) {
  const auto r = run({{"src/util/clean.cpp",
                       "int add(int a, int b) {\n"
                       "  return a + b;  // analyze:allow(hot-alloc) nothing "
                       "here\n"
                       "}\n"}});
  ASSERT_TRUE(fires(r.findings, "stale-waiver"));
  EXPECT_EQ(2, r.findings[0].line);
}

// --- ratchet ------------------------------------------------------------

TEST(Ratchet, CountsFindingsAndWaiversPerRule) {
  const auto r = run({{"src/sim/event_queue.cpp",
                       "void EventQueue::schedule(Event e) {\n"
                       "  a_.push_back(e);\n"
                       "  b_.push_back(e);  // analyze:allow(hot-alloc) ok\n"
                       "}\n"}});
  const Ratchet c = count(r);
  EXPECT_EQ(1, c.findings.at("hot-alloc"));
  EXPECT_EQ(1, c.waivers.at("hot-alloc"));
}

TEST(Ratchet, JsonRoundTrip) {
  Ratchet r;
  r.findings = {{"hot-alloc", 3}, {"layer-violation", 1}};
  r.waivers = {{"singleton", 2}};
  const auto parsed = ratchet_from_json(ratchet_to_json(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(r, *parsed);
}

TEST(Ratchet, MalformedBaselineFailsClosed) {
  EXPECT_FALSE(ratchet_from_json("").has_value());
  EXPECT_FALSE(ratchet_from_json("not json at all").has_value());
  EXPECT_FALSE(ratchet_from_json("{\"findings\": [1, 2]}").has_value());
}

TEST(Ratchet, CompareFlagsRegression) {
  Ratchet base, cur;
  base.findings = {{"hot-alloc", 1}};
  cur.findings = {{"hot-alloc", 2}};
  const RatchetDiff d = compare_ratchet(base, cur);
  EXPECT_TRUE(d.regressed);
  EXPECT_FALSE(d.improved);
}

TEST(Ratchet, CompareFlagsImprovement) {
  Ratchet base, cur;
  base.findings = {{"hot-alloc", 2}};
  cur.findings = {{"hot-alloc", 1}};
  const RatchetDiff d = compare_ratchet(base, cur);
  EXPECT_FALSE(d.regressed);
  EXPECT_TRUE(d.improved);
}

TEST(Ratchet, DisjointRuleNamesUseImplicitZero) {
  // A rule only in the baseline has dropped to 0 (improvement); a rule
  // only in the current run rose from 0 (regression). Both at once.
  Ratchet base, cur;
  base.findings = {{"old-rule", 1}};
  cur.findings = {{"new-rule", 1}};
  const RatchetDiff d = compare_ratchet(base, cur);
  EXPECT_TRUE(d.regressed);
  EXPECT_TRUE(d.improved);
}

TEST(Ratchet, WaiverGrowthAloneRegresses) {
  // Waivers are tracked debt: converting a finding into a waiver still
  // raises the waiver count and must trip the gate.
  Ratchet base, cur;
  base.findings = {{"hot-alloc", 1}};
  cur.waivers = {{"hot-alloc", 2}};
  const RatchetDiff d = compare_ratchet(base, cur);
  EXPECT_TRUE(d.regressed);
}

TEST(Ratchet, EqualCountsAreClean) {
  Ratchet base, cur;
  base.findings = cur.findings = {{"hot-alloc", 2}};
  base.waivers = cur.waivers = {{"singleton", 1}};
  const RatchetDiff d = compare_ratchet(base, cur);
  EXPECT_FALSE(d.regressed);
  EXPECT_FALSE(d.improved);
}

// --- scope scanner ------------------------------------------------------

TEST(ScopeScanner, ClassifiesHeads) {
  const std::vector<Scope> empty;
  EXPECT_EQ(ScopeKind::kNamespace, classify_head("namespace rbcast::sim", empty).kind);
  EXPECT_EQ(ScopeKind::kType, classify_head("class EventQueue final", empty).kind);
  EXPECT_EQ("EventQueue", classify_head("class EventQueue final", empty).name);
  EXPECT_EQ(ScopeKind::kBlock, classify_head("if (x > 0)", empty).kind);
  EXPECT_EQ(ScopeKind::kBlock, classify_head("for (int i = 0; i < n; ++i)", empty).kind);

  const Scope fn = classify_head("void EventQueue::pop()", empty);
  EXPECT_EQ(ScopeKind::kFunction, fn.kind);
  EXPECT_EQ("EventQueue::pop", fn.name);
}

TEST(ScopeScanner, QualifiesInClassMethodWithEnclosingType) {
  const std::vector<Scope> stack = {{ScopeKind::kNamespace, "rbcast"},
                                    {ScopeKind::kType, "SeqSet"}};
  const Scope fn = classify_head("bool contains(Seq s) const", stack);
  EXPECT_EQ(ScopeKind::kFunction, fn.kind);
  EXPECT_EQ("SeqSet::contains", fn.name);
}

TEST(ScopeScanner, MemberCallWithLambdaIsABlockNotAFunction) {
  // "queue_.schedule(t, [this]" precedes the lambda's '{' — classifying it
  // as function "schedule" would misattribute nested allocations.
  const std::vector<Scope> empty;
  EXPECT_EQ(ScopeKind::kBlock,
            classify_head("queue_.schedule(t, [this]", empty).kind);
}

}  // namespace
}  // namespace rbcast::analyze
