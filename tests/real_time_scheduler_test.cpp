// RealTimeScheduler: the wall-clock twin of sim::Simulator. Covers timer
// ordering (earliest deadline, FIFO among ties), cancel, fd watching via
// a pipe, and the phase-jitter contract both schedulers share: one
// uniform draw per call, identical sequence for identical seeds.
#include "util/real_time_scheduler.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/generators.h"
#include "trace/metric_sampler.h"
#include "trace/metrics.h"
#include "trace/trace_sink.h"
#include "util/metrics_registry.h"
#include "util/rng.h"
#include "util/scheduler.h"

namespace rbcast::util {
namespace {

TEST(RealTimeScheduler, FiresTimersInDeadlineThenFifoOrder) {
  RealTimeScheduler rt;
  std::vector<int> order;
  rt.after(milliseconds(20), [&] { order.push_back(3); });
  rt.after(milliseconds(5), [&] { order.push_back(1); });
  rt.after(milliseconds(5), [&] { order.push_back(2); });  // same deadline
  rt.run_for(milliseconds(60));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rt.pending_timers(), 0u);
}

TEST(RealTimeScheduler, CancelPreventsFiring) {
  RealTimeScheduler rt;
  int fired = 0;
  const EventId id = rt.after(milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(rt.cancel(id));
  EXPECT_FALSE(rt.cancel(id));  // second cancel is a no-op
  rt.after(milliseconds(10), [&] { fired += 10; });
  rt.run_for(milliseconds(40));
  EXPECT_EQ(fired, 10);
}

TEST(RealTimeScheduler, ActionsMayRescheduleFromInsideTheLoop) {
  RealTimeScheduler rt;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) rt.after(milliseconds(2), tick);
  };
  rt.after(milliseconds(2), tick);
  rt.run_for(milliseconds(100));
  EXPECT_EQ(ticks, 3);
}

TEST(RealTimeScheduler, NowAdvancesWithTheWallClock) {
  RealTimeScheduler rt;
  const TimePoint before = rt.now();
  rt.run_for(milliseconds(10));
  EXPECT_GE(rt.now(), before + milliseconds(10));
}

TEST(RealTimeScheduler, StopEndsTheRunEarly) {
  RealTimeScheduler rt;
  bool late_fired = false;
  rt.after(milliseconds(2), [&] { rt.stop(); });
  rt.after(seconds(30), [&] { late_fired = true; });
  rt.run_for(seconds(60));  // returns in milliseconds, not a minute
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(rt.pending_timers(), 1u);
}

TEST(RealTimeScheduler, WatchedFdCallbackFiresOnReadable) {
  RealTimeScheduler rt;
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  std::string seen;
  rt.watch_fd(fds[0], [&] {
    char buf[16];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) seen.append(buf, static_cast<std::size_t>(n));
    rt.stop();
  });
  rt.after(milliseconds(5), [&] { ASSERT_EQ(::write(fds[1], "hi", 2), 2); });
  rt.run_for(seconds(5));
  EXPECT_EQ(seen, "hi");
  rt.unwatch_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- generalized MetricSampler (satellite of the telemetry plane) -----------

TEST(RealTimeScheduler, DrivesMetricSamplerOnTheWallClock) {
  // The sampler takes any util::Scheduler; under RealTimeScheduler it must
  // pace samples on wall time and fold registry counters exactly as it
  // does under the simulator. The sim::Simulator below is only the data
  // source's clock (never run): virtual time stays 0 while samples fire.
  sim::Simulator data_clock;
  topo::ClusteredWanOptions wan;
  wan.clusters = 1;
  wan.hosts_per_cluster = 2;
  topo::Topology topology = topo::make_clustered_wan(wan).topology;
  RngFactory rngs(1);
  net::Network network(data_clock, topology, net::NetConfig{}, rngs);
  trace::Metrics metrics(data_clock, network);

  class CollectingSink final : public trace::TraceSink {
   public:
    void record(const trace::TraceRecord& r) override {
      records.push_back(r);
    }
    std::vector<trace::TraceRecord> records;
  };
  CollectingSink sink;

  RealTimeScheduler rt;
  trace::MetricSampler sampler(rt, metrics, sink, milliseconds(20));
  MetricsRegistry registry;
  std::uint64_t flushes = 0;
  registry.register_counter_fn("transport.coalescer.batches_flushed", "", "",
                               [&] { return flushes; });
  sampler.set_registry(&registry);

  flushes = 3;
  sampler.start();
  rt.run_for(milliseconds(90));
  sampler.stop();

  EXPECT_GE(sampler.samples_taken(), 2u);
  std::vector<trace::TraceRecord> registry_records;
  TimePoint last_at = 0;
  for (const trace::TraceRecord& r : sink.records) {
    EXPECT_EQ(r.category, "metric");
    EXPECT_GE(r.at, last_at);  // stamped on the wall clock, monotone
    last_at = r.at;
    if (r.name == "registry") registry_records.push_back(r);
  }
  EXPECT_GT(last_at, 0);  // wall time, not the untouched virtual clock
  // The counter moved before the first sample and never again: exactly
  // one registry record, carrying the full delta.
  ASSERT_EQ(registry_records.size(), 1u);
  ASSERT_EQ(registry_records[0].fields.size(), 1u);
  EXPECT_EQ(registry_records[0].fields[0].first,
            "transport.coalescer.batches_flushed");
  EXPECT_EQ(std::get<std::uint64_t>(registry_records[0].fields[0].second),
            3u);
}

// --- the shared phase-jitter policy -----------------------------------------

TEST(PhaseJitter, OneDrawPerCallPinnedToUniformInt) {
  // The contract both schedulers rely on: phase_jitter(rng, p) consumes
  // EXACTLY one uniform_int(0, p-1) draw. Any change to the draw count or
  // formula would silently shift every host's timer phases and break
  // same-seed digest equality — this test pins it.
  Rng a(12345);
  Rng b(12345);
  for (const Duration period :
       {milliseconds(1), milliseconds(100), seconds(2), seconds(8)}) {
    EXPECT_EQ(phase_jitter(a, period), b.uniform_int(0, period - 1))
        << "period " << period;
  }
  // After identical draw counts the streams still agree.
  EXPECT_EQ(a.uniform_int(0, 1 << 20), b.uniform_int(0, 1 << 20));
}

TEST(PhaseJitter, BoundsHoldForDegeneratePeriods) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Duration j = phase_jitter(rng, milliseconds(50));
    EXPECT_GE(j, 0);
    EXPECT_LT(j, milliseconds(50));
  }
  // A 1-microsecond period still burns one draw and yields 0.
  Rng c(9);
  Rng d(9);
  EXPECT_EQ(phase_jitter(c, 1), 0);
  (void)d.uniform_int(0, 0);
  EXPECT_EQ(c.uniform_int(0, 100), d.uniform_int(0, 100));
}

TEST(PhaseJitter, IdenticalUnderBothSchedulers) {
  // A PeriodicTask armed with the same seed must land on the same phase
  // offset whichever scheduler drives it: under the simulator the first
  // firing time IS the jitter, and under the wall clock it must stay
  // within [jitter, jitter + scheduling slack).
  const Duration period = milliseconds(40);
  Rng seed_a(77);
  const Duration expected = phase_jitter(seed_a, period);

  sim::Simulator sim;
  std::vector<TimePoint> sim_fires;
  PeriodicTask sim_task(sim, period, [&] { sim_fires.push_back(sim.now()); });
  Rng seed_b(77);
  sim_task.start(phase_jitter(seed_b, period));
  sim.run_until(period * 3);
  ASSERT_GE(sim_fires.size(), 2u);
  EXPECT_EQ(sim_fires[0], expected);
  EXPECT_EQ(sim_fires[1], expected + period);

  RealTimeScheduler rt;
  std::vector<TimePoint> rt_fires;
  PeriodicTask rt_task(rt, period, [&] { rt_fires.push_back(rt.now()); });
  Rng seed_c(77);
  rt_task.start(phase_jitter(seed_c, period));
  rt.run_for(period * 3);
  rt_task.stop();
  ASSERT_GE(rt_fires.size(), 2u);
  // Wall-clock firing: never before the deadline, close after it.
  EXPECT_GE(rt_fires[0], expected);
  EXPECT_LT(rt_fires[0], expected + period);
}

}  // namespace
}  // namespace rbcast::util
