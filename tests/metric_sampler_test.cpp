// MetricSampler: periodic "metric" records on the virtual clock —
// counter deltas that sum back to the totals, latency distributions with
// monotone cumulative buckets, per-server backlog, and tree shape.
#include "trace/metric_sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast::trace {
namespace {

harness::ScenarioOptions fast_options(std::uint64_t seed = 1) {
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.parent_timeout = sim::seconds(3);
  options.protocol.attach_ack_timeout = sim::milliseconds(400);
  options.protocol.data_bytes = 32;
  options.seed = seed;
  return options;
}

// Keeps every record in memory for assertions.
class CollectingSink final : public TraceSink {
 public:
  void record(const TraceRecord& r) override { records.push_back(r); }

  [[nodiscard]] std::vector<TraceRecord> named(
      const std::string& name) const {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : records) {
      if (r.category == "metric" && r.name == name) out.push_back(r);
    }
    return out;
  }

  std::vector<TraceRecord> records;
};

double field_double(const TraceRecord& r, const std::string& key) {
  for (const auto& [k, v] : r.fields) {
    if (k != key) continue;
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
      return static_cast<double>(*u);
    }
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
  }
  ADD_FAILURE() << "missing numeric field " << key;
  return -1.0;
}

// One sampled experiment shared by the assertions below.
class MetricSamplerRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sink_ = new CollectingSink;
    topo::ClusteredWanOptions wan;
    wan.clusters = 3;
    wan.hosts_per_cluster = 2;
    e_ = new harness::Experiment(make_clustered_wan(wan).topology,
                                 fast_options(9));
    e_->set_trace_sink(sink_);
    e_->enable_metric_sampling(sim::seconds(1));
    e_->start();
    e_->broadcast_stream(5, sim::milliseconds(400), sim::seconds(1));
    e_->run_until_delivered(sim::seconds(60));
    ASSERT_TRUE(e_->all_delivered());
    e_->sampler()->sample_now();
  }
  static void TearDownTestSuite() {
    delete e_;
    delete sink_;
    e_ = nullptr;
    sink_ = nullptr;
  }

  static CollectingSink* sink_;
  static harness::Experiment* e_;
};

CollectingSink* MetricSamplerRunTest::sink_ = nullptr;
harness::Experiment* MetricSamplerRunTest::e_ = nullptr;

TEST_F(MetricSamplerRunTest, PeriodicSamplesFireOnTheVirtualClock) {
  const std::vector<TraceRecord> counters = sink_->named("counters");
  // One per elapsed period plus the explicit end-of-run sample.
  ASSERT_GE(counters.size(), 2u);
  EXPECT_EQ(e_->sampler()->samples_taken(), counters.size());
  for (std::size_t i = 0; i + 1 < counters.size(); ++i) {
    EXPECT_EQ(counters[i].at, sim::seconds(static_cast<int>(i) + 1))
        << "periodic samples must land exactly on the period grid";
  }
}

TEST_F(MetricSamplerRunTest, CounterDeltasSumToTheFinalTotals) {
  std::map<std::string, std::uint64_t> summed;
  for (const TraceRecord& r : sink_->named("counters")) {
    for (const auto& [key, value] : r.fields) {
      summed[key] += std::get<std::uint64_t>(value);
    }
  }
  ASSERT_FALSE(summed.empty());
  EXPECT_GT(summed.count("deliver.data"), 0u);
  for (const auto& [name, total] : summed) {
    EXPECT_EQ(total, e_->metrics().counter(name))
        << "deltas of " << name << " must sum back to the final total";
  }
}

TEST_F(MetricSamplerRunTest, LatencySamplesCarryMonotoneCumulativeBuckets) {
  const std::vector<TraceRecord> latency = sink_->named("latency");
  ASSERT_FALSE(latency.empty());
  const TraceRecord& last = latency.back();

  const auto expected = e_->metrics().all_latencies();
  EXPECT_EQ(static_cast<std::uint64_t>(field_double(last, "count")),
            expected.count());
  const double p50 = field_double(last, "p50_s");
  const double p95 = field_double(last, "p95_s");
  const double p99 = field_double(last, "p99_s");
  const double max = field_double(last, "max_s");
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, max);
  EXPECT_GT(field_double(last, "mean_s"), 0.0);

  // Cumulative le_* buckets: non-decreasing in the bound, capped by count.
  double prev = 0.0;
  std::size_t buckets = 0;
  for (const auto& [key, value] : last.fields) {
    if (key.rfind("le_", 0) != 0) continue;
    ++buckets;
    const double c = static_cast<double>(std::get<std::uint64_t>(value));
    EXPECT_GE(c, prev) << key;
    EXPECT_LE(c, field_double(last, "count")) << key;
    prev = c;
  }
  EXPECT_EQ(buckets, trace::MetricSampler::latency_bounds().size());

  // The series is cumulative over the run, so counts never shrink.
  std::uint64_t prev_count = 0;
  for (const TraceRecord& r : latency) {
    const auto count = static_cast<std::uint64_t>(field_double(r, "count"));
    EXPECT_GE(count, prev_count);
    prev_count = count;
  }
}

TEST_F(MetricSamplerRunTest, BacklogReportsPerServerSeconds) {
  const std::vector<TraceRecord> backlog = sink_->named("backlog");
  ASSERT_FALSE(backlog.empty());
  for (const TraceRecord& r : backlog) {
    ASSERT_FALSE(r.fields.empty());
    for (const auto& [key, value] : r.fields) {
      EXPECT_EQ(key.rfind("s", 0), 0u) << key;
      ASSERT_TRUE(std::holds_alternative<double>(value)) << key;
      EXPECT_GE(std::get<double>(value), 0.0) << key;
    }
  }
}

TEST_F(MetricSamplerRunTest, TreeShapeConvergesToNoOrphans) {
  const std::vector<TraceRecord> tree = sink_->named("tree");
  ASSERT_FALSE(tree.empty());
  const TraceRecord& last = tree.back();
  // Fully delivered implies a connected tree: every non-source host has a
  // parent and at least the source's own cluster has a leader.
  EXPECT_GE(field_double(last, "depth"), 1.0);
  EXPECT_GE(field_double(last, "leaders"), 1.0);
  EXPECT_EQ(field_double(last, "orphans"), 0.0);
}

TEST_F(MetricSamplerRunTest, QuietIntervalStillEmitsAFieldlessSample) {
  const std::size_t before = sink_->records.size();
  // Nothing has happened since the previous sample_now(), so the counter
  // record must be present but empty (series gaps stay distinguishable
  // from sampling having stopped).
  e_->sampler()->sample_now();
  const std::vector<TraceRecord> counters = sink_->named("counters");
  ASSERT_GT(sink_->records.size(), before);
  EXPECT_TRUE(counters.back().fields.empty());
}

TEST(MetricSampler, RejectsNonPositivePeriod) {
  sim::Simulator simulator;
  topo::ClusteredWanOptions wan;
  wan.clusters = 1;
  wan.hosts_per_cluster = 2;
  topo::Topology topology = make_clustered_wan(wan).topology;
  util::RngFactory rngs(1);
  net::Network network(simulator, topology, net::NetConfig{}, rngs);
  Metrics metrics(simulator, network);
  CollectingSink sink;
  EXPECT_THROW(MetricSampler(simulator, metrics, sink, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::trace
