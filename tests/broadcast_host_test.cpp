// Behavioural tests of the BroadcastHost automaton over a scriptable fake
// network (no real substrate: full control over cost bits and drops).
#include "core/broadcast_host.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/fake_network.h"

namespace rbcast::core {
namespace {

using rbcast::testing::FakeHub;

core::Config fast_config() {
  Config c;
  c.attach_period = sim::milliseconds(100);
  c.info_period_intra = sim::milliseconds(50);
  c.info_period_inter = sim::milliseconds(200);
  c.gapfill_period_neighbor = sim::milliseconds(100);
  c.gapfill_period_far = sim::milliseconds(300);
  c.parent_timeout = sim::seconds(1);
  c.attach_ack_timeout = sim::milliseconds(100);
  c.child_timeout = sim::seconds(3);
  c.data_bytes = 16;
  return c;
}

struct Cluster {
  sim::Simulator sim;
  FakeHub hub{sim};
  std::vector<std::unique_ptr<BroadcastHost>> nodes;
  std::vector<std::vector<Seq>> delivered;

  explicit Cluster(int n, Config config = fast_config(),
                   HostId source = HostId{0}) {
    std::vector<HostId> all;
    for (int i = 0; i < n; ++i) all.push_back(HostId{i});
    delivered.resize(static_cast<std::size_t>(n));
    util::RngFactory rngs(7);
    for (int i = 0; i < n; ++i) {
      const HostId id{i};
      nodes.push_back(std::make_unique<BroadcastHost>(
          sim, hub.endpoint(id), source, all, config,
          rngs.stream("jitter", i),
          [this, i](Seq seq, std::string_view) {
            delivered[static_cast<std::size_t>(i)].push_back(seq);
          }));
      hub.register_host(id, [this, i](const net::Delivery& d) {
        nodes[static_cast<std::size_t>(i)]->on_delivery(d);
      });
    }
  }

  BroadcastHost& node(int i) { return *nodes[static_cast<std::size_t>(i)]; }
  void start_all() {
    for (auto& n : nodes) n->start();
  }
  void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }
};

TEST(BroadcastHost, SourceDeliversLocallyOnBroadcast) {
  Cluster c(2);
  c.node(0).broadcast("m1");
  EXPECT_EQ(c.delivered[0], (std::vector<Seq>{1}));
  EXPECT_EQ(c.node(0).info().max_seq(), 1u);
  EXPECT_EQ(c.node(0).last_broadcast_seq(), 1u);
}

TEST(BroadcastHost, StreamReachesAttachedHostsAndConvergesToTree) {
  Cluster c(3);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(3));
  for (int k = 2; k <= 5; ++k) {
    c.node(0).broadcast("m" + std::to_string(k));
    c.run_for(sim::seconds(1));
  }
  c.run_for(sim::seconds(3));

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node(i).info().count(), 5u) << "host " << i;
  }
  // All deliveries are exactly-once.
  for (int i = 0; i < 3; ++i) {
    std::vector<Seq> seen = c.delivered[static_cast<std::size_t>(i)];
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<Seq>{1, 2, 3, 4, 5}));
  }
  // The graph is a tree rooted at the source.
  EXPECT_FALSE(c.node(0).parent().valid());
  int with_parent = 0;
  for (int i = 1; i < 3; ++i) {
    if (c.node(i).parent().valid()) ++with_parent;
  }
  EXPECT_EQ(with_parent, 2);
}

TEST(BroadcastHost, NewMaxFromNonParentIsDiscarded) {
  Cluster c(3);
  // Hand-feed host 2 a data message from host 1 (not its parent).
  ProtocolMessage m{DataMsg{1, "stray", false, {}}};
  net::Delivery d{.from = HostId{1},
                  .to = HostId{2},
                  .expensive = false,
                  .payload = std::any(m),
                  .bytes = 64,
                  .kind = "data",
                  .sent_at = 0,
                  .hops = 1};
  c.node(2).on_delivery(d);
  EXPECT_TRUE(c.node(2).info().empty());
  EXPECT_EQ(c.node(2).counters().new_max_rejected, 1u);
  // But the sender is now known to have it (MAP update).
  EXPECT_TRUE(c.node(2).state().map(HostId{1}).contains(1));
}

TEST(BroadcastHost, DuplicateDataIsDiscarded) {
  Cluster c(2);
  c.node(0).broadcast("m1");
  ProtocolMessage m{DataMsg{1, "m1", true, {}}};
  net::Delivery d{.from = HostId{1},
                  .to = HostId{0},
                  .expensive = false,
                  .payload = std::any(m),
                  .bytes = 64,
                  .kind = "gapfill",
                  .sent_at = 0,
                  .hops = 1};
  c.node(0).on_delivery(d);
  EXPECT_EQ(c.node(0).counters().duplicates_discarded, 1u);
  EXPECT_EQ(c.delivered[0].size(), 1u);
}

TEST(BroadcastHost, GapFillAcceptedFromNonParent) {
  Cluster c(3);
  // Host 2's max is 3 (fed from its parent -- simulate by making host 1 its
  // parent first through a real handshake).
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  c.node(0).broadcast("m2");
  c.node(0).broadcast("m3");
  c.run_for(sim::seconds(2));
  ASSERT_EQ(c.node(2).info().max_seq(), 3u);

  // Now remove message 2 knowledge... instead feed a *below-max* message
  // from a non-parent: host 2 already has everything, so craft seq 2 as if
  // it were missing -- use a fresh host 1 delivery of an old message. To
  // keep the state consistent we test acceptance on host 1 instead if it
  // lacks nothing. Simplest: build a fresh node with a hole.
  Cluster c2(3);
  // Give host 2 max=3 via its parent (host 0 is the source and will be the
  // parent after attachment); here we inject state directly: parent must be
  // set for new-max acceptance, so simulate the hole by sending 1 and 3
  // from the parent after a real attach.
  c2.start_all();
  c2.node(0).broadcast("a1");
  c2.run_for(sim::seconds(2));  // everyone attaches and gets a1
  // Sever hub delivery from 0 to 2 while message 2 flows.
  c2.hub.set_drop(HostId{0}, HostId{2}, true);
  c2.node(0).broadcast("a2");
  c2.run_for(sim::milliseconds(20));  // in flight; drop eats host 2's copy
  c2.hub.set_drop(HostId{0}, HostId{2}, false);
  c2.node(0).broadcast("a3");
  c2.run_for(sim::seconds(5));  // gap filling must repair the hole
  EXPECT_TRUE(c2.node(2).info().contains(2));
  EXPECT_EQ(c2.node(2).info().count(), 3u);
}

TEST(BroadcastHost, AttachHandshakeSetsBothEnds) {
  Cluster c(2);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  EXPECT_EQ(c.node(1).parent(), HostId{0});
  EXPECT_TRUE(c.node(0).state().is_child(HostId{1}));
  EXPECT_GE(c.node(1).counters().attaches_completed, 1u);
}

TEST(BroadcastHost, AttachBackfillFillsNewChild) {
  Cluster c(2);
  c.start_all();
  // Source generates before anyone attaches.
  c.node(0).broadcast("m1");
  c.node(0).broadcast("m2");
  c.node(0).broadcast("m3");
  c.run_for(sim::seconds(3));
  // After attaching, host 1 must have received the whole backlog.
  EXPECT_EQ(c.node(1).info().count(), 3u);
}

TEST(BroadcastHost, AttachTimeoutMovesToNextCandidate) {
  Cluster c(3);
  // Host 2 knows hosts 0 and 1 are ahead; host 1 is silent (drops).
  c.hub.set_drop(HostId{2}, HostId{1}, true);
  c.node(2).on_delivery(net::Delivery{
      .from = HostId{1},
      .to = HostId{2},
      .expensive = false,
      .payload = std::any(ProtocolMessage{InfoMsg{SeqSet::contiguous(5), kNoHost}}),
      .bytes = 32,
      .kind = "info",
      .sent_at = 0,
      .hops = 1});
  c.node(2).on_delivery(net::Delivery{
      .from = HostId{0},
      .to = HostId{2},
      .expensive = false,
      .payload = std::any(ProtocolMessage{InfoMsg{SeqSet::contiguous(4), kNoHost}}),
      .bytes = 32,
      .kind = "info",
      .sent_at = 0,
      .hops = 1});
  // Host 0 must answer attach requests: hand-craft its state so it accepts.
  c.hub.register_host(HostId{0}, [&](const net::Delivery& d) {
    c.node(0).on_delivery(d);
  });

  c.node(2).run_attachment_now();  // candidate: host 1 (max 5) -> times out
  c.run_for(sim::milliseconds(500));
  EXPECT_GE(c.node(2).counters().attach_timeouts, 1u);
  EXPECT_EQ(c.node(2).parent(), HostId{0});  // fell back to next candidate
}

TEST(BroadcastHost, DetachNoticeRemovesChild) {
  Cluster c(2);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  ASSERT_TRUE(c.node(0).state().is_child(HostId{1}));
  c.node(0).on_delivery(net::Delivery{
      .from = HostId{1},
      .to = HostId{0},
      .expensive = false,
      .payload = std::any(ProtocolMessage{DetachNotice{}}),
      .bytes = 24,
      .kind = "detach",
      .sent_at = 0,
      .hops = 1});
  EXPECT_FALSE(c.node(0).state().is_child(HostId{1}));
}

TEST(BroadcastHost, InfoExchangeReconcilesChildren) {
  Cluster c(3);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  ASSERT_TRUE(c.node(0).state().is_child(HostId{1}));

  // Host 1's info claiming a different parent must evict it from host 0's
  // CHILDREN set (heals lost DetachNotice).
  c.node(0).on_delivery(net::Delivery{
      .from = HostId{1},
      .to = HostId{0},
      .expensive = false,
      .payload =
          std::any(ProtocolMessage{InfoMsg{SeqSet::contiguous(1), HostId{2}}}),
      .bytes = 32,
      .kind = "info",
      .sent_at = 0,
      .hops = 1});
  EXPECT_FALSE(c.node(0).state().is_child(HostId{1}));

  // And a claim of "you are my parent" re-adds (heals lost AttachAccept).
  c.node(0).on_delivery(net::Delivery{
      .from = HostId{1},
      .to = HostId{0},
      .expensive = false,
      .payload =
          std::any(ProtocolMessage{InfoMsg{SeqSet::contiguous(1), HostId{0}}}),
      .bytes = 32,
      .kind = "info",
      .sent_at = 0,
      .hops = 1});
  EXPECT_TRUE(c.node(0).state().is_child(HostId{1}));
}

TEST(BroadcastHost, ParentTimeoutDetachesAndReattaches) {
  Cluster c(3);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  ASSERT_EQ(c.node(2).parent(), HostId{0});

  // Silence everything from host 0 (its crash); host 2 must time the
  // parent out, then find host 1 (equal info, higher order than none...
  // host 1 is in the same cluster and has the stream).
  c.hub.set_drop(HostId{0}, HostId{1}, true);
  c.hub.set_drop(HostId{0}, HostId{2}, true);
  c.run_for(sim::seconds(3));
  EXPECT_GE(c.node(2).counters().parent_timeouts +
                c.node(1).counters().parent_timeouts,
            1u);
  EXPECT_NE(c.node(2).parent(), HostId{0});
}

TEST(BroadcastHost, CostBitMaintainsClusterView) {
  Cluster c(2);
  c.hub.set_expensive(HostId{0}, HostId{1}, true);
  c.start_all();
  c.run_for(sim::seconds(1));
  // All traffic between 0 and 1 is expensive: they see separate clusters.
  EXPECT_FALSE(c.node(1).state().in_cluster(HostId{0}));

  c.hub.set_expensive(HostId{0}, HostId{1}, false);
  c.run_for(sim::seconds(1));
  EXPECT_TRUE(c.node(1).state().in_cluster(HostId{0}));
}

TEST(BroadcastHost, StaticClusterKnowledgeIgnoresCostBit) {
  Config config = fast_config();
  config.cluster_knowledge = Config::ClusterKnowledge::kStatic;
  Cluster c(2, config);
  c.node(1).seed_cluster({HostId{0}, HostId{1}});
  c.hub.set_expensive(HostId{0}, HostId{1}, true);
  c.start_all();
  c.run_for(sim::seconds(1));
  EXPECT_TRUE(c.node(1).state().in_cluster(HostId{0}));
}

TEST(BroadcastHost, PruningReleasesSafePrefix) {
  Config config = fast_config();
  config.enable_pruning = true;
  Cluster c(2, config);
  c.start_all();
  for (int k = 1; k <= 5; ++k) {
    c.node(0).broadcast("m" + std::to_string(k));
    c.run_for(sim::milliseconds(300));
  }
  c.run_for(sim::seconds(3));
  ASSERT_EQ(c.node(1).info().count(), 5u);
  // Everyone has everything and INFO exchange has spread that knowledge:
  // the prefix must be pruned on both ends.
  EXPECT_EQ(c.node(0).info().prune_watermark(), 5u);
  EXPECT_EQ(c.node(1).info().prune_watermark(), 5u);
  EXPECT_EQ(c.node(0).state().body_of(1), nullptr);
}

TEST(BroadcastHost, PruningDisabledKeepsEverything) {
  Config config = fast_config();
  config.enable_pruning = false;
  Cluster c(2, config);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  EXPECT_EQ(c.node(0).info().prune_watermark(), 0u);
  EXPECT_NE(c.node(0).state().body_of(1), nullptr);
}

TEST(BroadcastHost, PiggybackCarriesSenderInfoOnData) {
  Config config = fast_config();
  config.piggyback_info = true;
  Cluster c(3, config);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));

  // Every data message in the log must carry the piggyback.
  int data_seen = 0;
  for (const auto& sent : c.hub.log) {
    const auto* pm = std::any_cast<ProtocolMessage>(&sent.payload);
    ASSERT_NE(pm, nullptr);
    if (const auto* data = std::get_if<DataMsg>(pm)) {
      ++data_seen;
      EXPECT_TRUE(data->piggyback.has_value());
    }
  }
  EXPECT_GT(data_seen, 0);
}

TEST(BroadcastHost, PiggybackDisabledByDefault) {
  Cluster c(2);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));
  for (const auto& sent : c.hub.log) {
    const auto* pm = std::any_cast<ProtocolMessage>(&sent.payload);
    ASSERT_NE(pm, nullptr);
    if (const auto* data = std::get_if<DataMsg>(pm)) {
      EXPECT_FALSE(data->piggyback.has_value());
    }
  }
}

TEST(BroadcastHost, PiggybackRefreshesMapWithoutInfoMessages) {
  // With separate INFO exchange effectively disabled, the piggyback alone
  // must keep the child's view of the parent's INFO set fresh.
  Config config = fast_config();
  config.piggyback_info = true;
  Cluster c(2, config);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(2));  // attach with normal exchange
  ASSERT_EQ(c.node(1).parent(), HostId{0});

  // Freeze control traffic: stretch INFO periods beyond the test horizon.
  // (Periods cannot be changed mid-run through the public API, so instead
  // verify the piggyback path directly: inject a data message carrying a
  // piggybacked INFO far ahead of anything host 1 has heard via control.)
  SeqSet advanced = SeqSet::contiguous(50);
  ProtocolMessage m{DataMsg{2, "m2", false,
                            std::make_pair(advanced, kNoHost)}};
  c.node(1).on_delivery(net::Delivery{
      .from = HostId{0},
      .to = HostId{1},
      .expensive = false,
      .payload = std::any(m),
      .bytes = 128,
      .kind = "data",
      .sent_at = 0,
      .hops = 1});
  EXPECT_EQ(c.node(1).state().map(HostId{0}).max_seq(), 50u);
}

TEST(BroadcastHost, PiggybackIncreasesDataWireSize) {
  DataMsg plain{1, "body", false, std::nullopt};
  DataMsg loaded{1, "body", false,
                 std::make_pair(SeqSet::contiguous(100), HostId{3})};
  EXPECT_LT(wire_size(ProtocolMessage{plain}),
            wire_size(ProtocolMessage{loaded}));
}

TEST(BroadcastHost, SourceNeverRunsAttachment) {
  Cluster c(3);
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(5));
  EXPECT_EQ(c.node(0).counters().attach_attempts, 0u);
  EXPECT_FALSE(c.node(0).parent().valid());
}

// Engineers a genuine single-cluster cycle 1 -> 0 -> 2 -> 1 through the
// real automaton (crafted INFO/accept deliveries), then verifies the
// Section 4.3 rule: the member with the highest static order breaks it.
TEST(BroadcastHost, SingleClusterCycleIsBrokenByHighestOrder) {
  // Host 3 is the (idle, unreachable) source, so hosts 0..2 all run the
  // attachment procedure and host 2 has the highest order among them.
  Cluster c(4, fast_config(), /*source=*/HostId{3});
  c.hub.isolate(HostId{3}, {HostId{0}, HostId{1}, HostId{2}}, true);

  auto deliver = [&](int to, int from, ProtocolMessage m,
                     bool expensive = false) {
    c.node(to).on_delivery(net::Delivery{.from = HostId{from},
                                         .to = HostId{to},
                                         .expensive = expensive,
                                         .payload = std::any(std::move(m)),
                                         .bytes = 64,
                                         .kind = "test",
                                         .sent_at = 0,
                                         .hops = 1});
  };

  // Everyone sees everyone in one cluster (cheap info deliveries), with
  // empty INFO sets and unknown parents.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a != b) deliver(a, b, InfoMsg{SeqSet{}, kNoHost});
    }
  }

  // Forge the edges 0 -> 2, 1 -> 0, 2 -> 1: steer each host's candidate
  // view, run the procedure, and answer its request by hand (the clock
  // never runs, so only crafted deliveries exist).
  //
  // Host 0 -> 2: with equal INFO everywhere, option I.2 picks the
  // highest-order in-cluster leader, which is host 2.
  c.node(0).run_attachment_now();
  ASSERT_FALSE(c.hub.log.empty());
  ASSERT_EQ(c.hub.log.back().to, HostId{2});
  deliver(0, 2, AttachAccept{SeqSet{}, kNoHost});
  ASSERT_EQ(c.node(0).parent(), HostId{2});

  // Host 1 -> 0: evict host 2 from CLUSTER_1 (expensive delivery), and
  // make host 0 look ahead so option I.1 picks it.
  deliver(1, 2, InfoMsg{SeqSet{}, kNoHost}, /*expensive=*/true);
  deliver(1, 0, InfoMsg{SeqSet::of({1}), kNoHost});
  c.node(1).run_attachment_now();
  ASSERT_EQ(c.hub.log.back().to, HostId{0});
  deliver(1, 0, AttachAccept{SeqSet::of({1}), kNoHost});
  ASSERT_EQ(c.node(1).parent(), HostId{0});

  // Host 2 -> 1: same trick (evict 0, make 1 look ahead).
  deliver(2, 0, InfoMsg{SeqSet{}, kNoHost}, /*expensive=*/true);
  deliver(2, 1, InfoMsg{SeqSet::of({1}), kNoHost});
  c.node(2).run_attachment_now();
  ASSERT_EQ(c.hub.log.back().to, HostId{1});
  deliver(2, 1, AttachAccept{SeqSet::of({1}), kNoHost});
  ASSERT_EQ(c.node(2).parent(), HostId{1});

  // The cycle 0 -> 2 -> 1 -> 0 now exists. Restore host 2's full cluster
  // view (cheap delivery re-adds host 0) and give it the parent pointers
  // so its ancestor walk finds the cycle: 1 -> 0 -> 2 = self.
  deliver(2, 0, InfoMsg{SeqSet::of({1}), HostId{2}});  // p[0] = 2, cheap
  deliver(2, 1, InfoMsg{SeqSet::of({1}), HostId{0}});  // p[1] = 0

  // Host 2 has the highest order on the cycle: it must break it.
  ASSERT_EQ(c.node(2).counters().cycles_broken, 0u);
  c.node(2).run_attachment_now();
  EXPECT_EQ(c.node(2).counters().cycles_broken, 1u);
  EXPECT_NE(c.node(2).parent(), HostId{1});

  // Lower-order members never break cycles themselves: host 0's view of
  // the same cycle (2 -> 1 -> 0 = self) leaves the action to host 2.
  deliver(0, 1, InfoMsg{SeqSet::of({1}), HostId{0}});
  deliver(0, 2, InfoMsg{SeqSet{}, HostId{1}});
  const auto broken_before = c.node(0).counters().cycles_broken;
  c.node(0).run_attachment_now();
  EXPECT_EQ(c.node(0).counters().cycles_broken, broken_before);
}

// A lost AttachAccept must not strand the requester: the candidate is
// excluded for a few rounds, the periodic parent-pointer exchange
// reconciles the stale CHILDREN entry, and the retry succeeds once the
// exclusion expires.
TEST(BroadcastHost, LostAttachAcceptRecoversAfterExclusionExpiry) {
  Cluster c(2);
  // Everything from host 0 to host 1 is dropped: requests reach host 0,
  // accepts never come back. Host 1 must still learn that host 0 is ahead
  // (its INFO would normally arrive on the now-dead path), so inject that
  // one control message by hand.
  c.hub.set_drop(HostId{0}, HostId{1}, true);
  c.start_all();
  c.node(0).broadcast("m1");
  c.node(1).on_delivery(net::Delivery{
      .from = HostId{0},
      .to = HostId{1},
      .expensive = false,
      .payload = std::any(ProtocolMessage{InfoMsg{SeqSet::of({1}), kNoHost}}),
      .bytes = 32,
      .kind = "info",
      .sent_at = 0,
      .hops = 1});
  c.run_for(sim::seconds(2));

  // Host 1 tried and timed out at least once; host 0 holds a stale child.
  EXPECT_GE(c.node(1).counters().attach_timeouts, 1u);
  EXPECT_FALSE(c.node(1).parent().valid());

  // Heal the path. Host 1's next INFO (claiming no parent) fixes host 0's
  // CHILDREN; after the exclusion expires (4 x attach_period = 400 ms)
  // the retry goes through and the stream arrives.
  c.hub.set_drop(HostId{0}, HostId{1}, false);
  c.run_for(sim::seconds(3));
  EXPECT_EQ(c.node(1).parent(), HostId{0});
  EXPECT_EQ(c.node(1).info().count(), 1u);
}

TEST(BroadcastHost, GapFillOffersAreNotRepeatedAgainstStaleMap) {
  Config cfg = fast_config();
  cfg.gapfill_suppress_period = sim::milliseconds(250);
  Cluster c(2, cfg);
  // Periodic tasks are NOT started: rounds run by hand, so nothing but the
  // calls below generates traffic. The source holds 1..5.
  for (int k = 1; k <= 5; ++k) c.node(0).broadcast("m" + std::to_string(k));

  // Host 1 reports INFO {1,5}: holes 2..4 below its own maximum, so the
  // source may fill them (capped offers never exceed the reported max).
  SeqSet peer;
  peer.insert(1);
  peer.insert(5);
  ProtocolMessage info{InfoMsg{peer, kNoHost}};
  net::Delivery report{.from = HostId{1},
                       .to = HostId{0},
                       .expensive = false,
                       .payload = std::any(info),
                       .bytes = 64,
                       .kind = "info",
                       .sent_at = 0,
                       .hops = 1};
  c.node(0).on_delivery(report);

  auto gapfills = [&] { return c.hub.sent_count("gapfill"); };
  c.node(0).run_gapfill_far_now();
  const std::size_t first = gapfills();
  EXPECT_EQ(first, 3u);  // fills 2, 3, 4

  // Back-to-back round against the unchanged MAP: nothing is re-sent.
  c.node(0).run_gapfill_far_now();
  EXPECT_EQ(gapfills(), first);

  // A fresh INFO report that still lacks the offered seqs refutes the
  // optimistic fold — the fills were evidently lost, so the very next
  // round re-offers without waiting for the suppress period.
  c.node(0).on_delivery(report);
  c.node(0).run_gapfill_far_now();
  EXPECT_EQ(gapfills(), 2 * first);

  // Suppressed again immediately after...
  c.node(0).run_gapfill_far_now();
  EXPECT_EQ(gapfills(), 2 * first);

  // ...until the suppress period lapses with no news from the peer.
  c.run_for(sim::milliseconds(300));
  c.node(0).run_gapfill_far_now();
  EXPECT_EQ(gapfills(), 3 * first);
}

TEST(BroadcastHost, AttachRetriesAreBoundedUnderTotalPartition) {
  // Host 11 sits alone behind expensive links (its own cluster). After
  // convergence its uplink breaks: everything it SENDS is lost, and so is
  // its parent's traffic — but INFO from the other hosts still reaches it,
  // so case I keeps proposing fresh out-of-cluster candidates with strictly
  // greater INFO sets forever. Every attach request it fires times out.
  // This is the worst case for retry traffic: with unbounded immediate
  // retries the host would cycle through the candidate list at rate
  // 1/attach_ack_timeout; the retry burst must cap it near 1/attach_period.
  constexpr int kHosts = 12;
  const HostId cut_host{kHosts - 1};
  Config cfg = fast_config();
  cfg.attach_period = sim::milliseconds(500);
  cfg.attach_ack_timeout = sim::milliseconds(50);
  cfg.attach_retry_burst = 3;
  cfg.parent_timeout = sim::seconds(1);
  Cluster c(kHosts, cfg);
  for (int j = 0; j + 1 < kHosts; ++j) {
    c.hub.set_expensive(cut_host, HostId{j}, true);
  }
  c.start_all();
  c.node(0).broadcast("m1");
  c.run_for(sim::seconds(3));  // converge: everyone attached, MAPs full
  ASSERT_TRUE(c.node(kHosts - 1).parent().valid());

  for (int j = 0; j + 1 < kHosts; ++j) {
    c.hub.set_drop(cut_host, HostId{j}, true);  // uplink dead
  }
  c.hub.set_drop(c.node(kHosts - 1).parent(), cut_host, true);  // parent mute
  c.node(0).broadcast("m2");  // the others pull ahead: candidates stay valid
  const sim::TimePoint cut = c.sim.now();
  const sim::Duration window = sim::seconds(20);
  c.run_for(window);

  // A hot loop at 1/attach_ack_timeout would emit hundreds of requests in
  // this window (~11 per exclusion cycle of 2 s ≈ 110+); the burst plus the
  // periodic timer bound it near window/attach_period.
  std::size_t requests = 0;
  for (const auto& s : c.hub.log) {
    if (s.kind == "attach_req" && s.from == cut_host && s.at >= cut) {
      ++requests;
    }
  }
  const std::size_t periodic_ceiling =
      static_cast<std::size_t>(window / cfg.attach_period);
  EXPECT_GE(requests, 5u);  // it IS still trying
  EXPECT_LE(requests, periodic_ceiling + cfg.attach_retry_burst + 4);
}

TEST(BroadcastHost, BroadcastOnNonSourceAborts) {
  Cluster c(2);
  EXPECT_DEATH(c.node(1).broadcast("nope"), "non-source");
}

}  // namespace
}  // namespace rbcast::core
