#include "core/gap_filling.h"

#include <gtest/gtest.h>

namespace rbcast::core {
namespace {

std::vector<HostId> hosts(int n) {
  std::vector<HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(HostId{i});
  return out;
}

HostState with_messages(int self, int n, Seq upto) {
  HostState s(HostId{self}, hosts(n));
  for (Seq q = 1; q <= upto; ++q) s.record_message(q, "b" + std::to_string(q));
  return s;
}

TEST(GapFilling, AttachBackfillSendsEverythingMissing) {
  HostState s = with_messages(0, 2, 5);
  const SeqSet child_info = SeqSet::of({2, 4});
  EXPECT_EQ(plan_attach_backfill(s, child_info, 100),
            (std::vector<Seq>{1, 3, 5}));
}

TEST(GapFilling, AttachBackfillHonorsBurstLimit) {
  HostState s = with_messages(0, 2, 10);
  EXPECT_EQ(plan_attach_backfill(s, SeqSet{}, 3).size(), 3u);
}

TEST(GapFilling, AttachBackfillForCaughtUpChildIsEmpty) {
  HostState s = with_messages(0, 2, 5);
  EXPECT_TRUE(plan_attach_backfill(s, SeqSet::contiguous(5), 100).empty());
}

TEST(GapFilling, ChildPlanMayRaiseChildMax) {
  HostState s = with_messages(0, 2, 5);
  s.learn_info(HostId{1}, SeqSet::of({1, 2, 3}));
  // Child: new maxima 4, 5 may be pushed (we are its parent).
  EXPECT_EQ(plan_neighbor_gapfill(s, HostId{1}, /*j_is_child=*/true, 100),
            (std::vector<Seq>{4, 5}));
}

TEST(GapFilling, ParentPlanIsCappedAtParentMax) {
  HostState s = with_messages(0, 2, 5);
  // Our parent somehow lags: it has {1,3} (max 3). We may only offer 2 —
  // anything above its max would be rejected as a non-parent new-max.
  s.learn_info(HostId{1}, SeqSet::of({1, 3}));
  EXPECT_EQ(plan_neighbor_gapfill(s, HostId{1}, /*j_is_child=*/false, 100),
            (std::vector<Seq>{2}));
}

TEST(GapFilling, FarPlanIsCappedAndNeedsKnownInfo) {
  HostState s = with_messages(0, 3, 6);
  // Never heard from host 1: nothing is offered.
  EXPECT_TRUE(plan_far_gapfill(s, HostId{1}, 100).empty());
  // Host 2 has holes below its max.
  s.learn_info(HostId{2}, SeqSet::of({1, 4}));
  EXPECT_EQ(plan_far_gapfill(s, HostId{2}, 100), (std::vector<Seq>{2, 3}));
}

TEST(GapFilling, FarPlanHonorsBurst) {
  HostState s = with_messages(0, 2, 10);
  s.learn_info(HostId{1}, SeqSet::of({9}));
  EXPECT_EQ(plan_far_gapfill(s, HostId{1}, 2), (std::vector<Seq>{1, 2}));
}

TEST(GapFilling, PrunedBodiesAreNeverOffered) {
  HostState s = with_messages(0, 2, 6);
  s.prune(3);  // bodies 1..3 gone
  s.learn_info(HostId{1}, SeqSet::of({5}));
  // Missing below 5 are {1,2,3,4}; only 4 still has a body.
  EXPECT_EQ(plan_far_gapfill(s, HostId{1}, 100), (std::vector<Seq>{4}));
}

TEST(GapFilling, NothingPlannedWhenPeerIsAhead) {
  HostState s = with_messages(0, 2, 2);
  s.learn_info(HostId{1}, SeqSet::contiguous(9));
  EXPECT_TRUE(plan_neighbor_gapfill(s, HostId{1}, true, 100).empty());
  EXPECT_TRUE(plan_far_gapfill(s, HostId{1}, 100).empty());
}

// The Figure 4.1 kernel: i has {1,3}, j has {2,3}. Neither may raise the
// other's max, yet each can fill the other's hole.
TEST(GapFilling, Figure41MutualFillWorksDespiteEqualMaxima) {
  HostState i(HostId{0}, hosts(2));
  i.record_message(1, "m1");
  i.record_message(3, "m3");
  i.learn_info(HostId{1}, SeqSet::of({2, 3}));

  HostState j(HostId{1}, hosts(2));
  j.record_message(2, "m2");
  j.record_message(3, "m3");
  j.learn_info(HostId{0}, SeqSet::of({1, 3}));

  EXPECT_EQ(plan_far_gapfill(i, HostId{1}, 100), (std::vector<Seq>{1}));
  EXPECT_EQ(plan_far_gapfill(j, HostId{0}, 100), (std::vector<Seq>{2}));
}

}  // namespace
}  // namespace rbcast::core
