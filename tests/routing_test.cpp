#include "net/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/topology.h"

namespace rbcast::net {
namespace {

// A 4-server line: s0 - s1 - s2 - s3 (all cheap).
struct Line {
  topo::Topology t;
  ServerId s[4];
  LinkId l01, l12, l23;
  std::set<LinkId> down;

  Line() {
    for (auto& server : s) server = t.add_server();
    l01 = t.add_link(s[0], s[1], topo::LinkClass::kCheap);
    l12 = t.add_link(s[1], s[2], topo::LinkClass::kCheap);
    l23 = t.add_link(s[2], s[3], topo::LinkClass::kCheap);
  }

  [[nodiscard]] auto up_fn() {
    return [this](LinkId id) { return !down.contains(id); };
  }
};

TEST(Routing, NextHopAlongLine) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), 0);
  routing.recompute_now();

  EXPECT_EQ(routing.next_hop(line.s[0], line.s[3]), line.s[1]);
  EXPECT_EQ(routing.next_hop(line.s[1], line.s[3]), line.s[2]);
  EXPECT_EQ(routing.next_hop(line.s[3], line.s[0]), line.s[2]);
  EXPECT_EQ(routing.next_hop(line.s[0], line.s[0]), line.s[0]);
}

TEST(Routing, UnreachableGivesNoHop) {
  Line line;
  line.down.insert(line.l12);
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), 0);
  routing.recompute_now();

  EXPECT_FALSE(routing.next_hop(line.s[0], line.s[3]).valid());
  EXPECT_EQ(routing.next_hop(line.s[0], line.s[1]), line.s[1]);
}

TEST(Routing, ConvergenceLagDelaysNewRoutes) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), sim::milliseconds(100));
  routing.recompute_now();
  EXPECT_EQ(routing.next_hop(line.s[0], line.s[3]), line.s[1]);

  // Cut the middle; routes must stay stale until the lag passes.
  line.down.insert(line.l12);
  routing.notify_change();
  sim.run_until(sim::milliseconds(50));
  EXPECT_EQ(routing.next_hop(line.s[0], line.s[3]), line.s[1]);  // stale
  sim.run_until(sim::milliseconds(150));
  EXPECT_FALSE(routing.next_hop(line.s[0], line.s[3]).valid());  // converged
}

TEST(Routing, CoalescesBackToBackChanges) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), sim::milliseconds(100));
  routing.recompute_now();
  const int before = routing.recompute_count();
  routing.notify_change();
  routing.notify_change();
  routing.notify_change();
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(routing.recompute_count(), before + 1);
}

TEST(Routing, PrefersCheapPathOverShorterExpensiveOne) {
  // s0 ==expensive== s1   versus   s0 -cheap- s2 -cheap- s1.
  topo::Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const ServerId s2 = t.add_server();
  t.add_link(s0, s1, topo::LinkClass::kExpensive);
  t.add_link(s0, s2, topo::LinkClass::kCheap);
  t.add_link(s2, s1, topo::LinkClass::kCheap);

  sim::Simulator sim;
  Routing routing(sim, t, [](LinkId) { return true; }, 0);
  routing.recompute_now();
  EXPECT_EQ(routing.next_hop(s0, s1), s2);
}

TEST(Routing, FallsBackToExpensiveWhenCheapPathDies) {
  topo::Topology t;
  const ServerId s0 = t.add_server();
  const ServerId s1 = t.add_server();
  const ServerId s2 = t.add_server();
  t.add_link(s0, s1, topo::LinkClass::kExpensive);
  const LinkId cheap1 = t.add_link(s0, s2, topo::LinkClass::kCheap);
  t.add_link(s2, s1, topo::LinkClass::kCheap);

  std::set<LinkId> down{cheap1};
  sim::Simulator sim;
  Routing routing(
      sim, t, [&down](LinkId id) { return !down.contains(id); }, 0);
  routing.recompute_now();
  EXPECT_EQ(routing.next_hop(s0, s1), s1);  // direct expensive hop
}

// The communication-transitivity assumption (Section 2): if x reaches y and
// y reaches z, then after convergence x reaches z.
TEST(Routing, TransitivityHoldsAfterConvergence) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), 0);
  routing.recompute_now();

  auto reaches = [&](ServerId from, ServerId to) {
    ServerId at = from;
    for (std::size_t hops = 0; hops < 10; ++hops) {
      if (at == to) return true;
      const ServerId next = routing.next_hop(at, to);
      if (!next.valid()) return false;
      at = next;
    }
    return false;
  };

  ASSERT_TRUE(reaches(line.s[0], line.s[1]));
  ASSERT_TRUE(reaches(line.s[1], line.s[3]));
  EXPECT_TRUE(reaches(line.s[0], line.s[3]));
}

TEST(Routing, PathReturnsFullServerSequence) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), 0);
  routing.recompute_now();

  EXPECT_EQ(routing.path(line.s[0], line.s[3]),
            (std::vector<ServerId>{line.s[0], line.s[1], line.s[2],
                                   line.s[3]}));
  EXPECT_EQ(routing.path(line.s[2], line.s[2]),
            (std::vector<ServerId>{line.s[2]}));

  line.down.insert(line.l12);
  routing.recompute_now();
  EXPECT_TRUE(routing.path(line.s[0], line.s[3]).empty());
}

TEST(Routing, RoutesAreSymmetricOnSymmetricTopology) {
  Line line;
  sim::Simulator sim;
  Routing routing(sim, line.t, line.up_fn(), 0);
  routing.recompute_now();
  // Forward and reverse walks traverse the same servers.
  EXPECT_EQ(routing.next_hop(line.s[1], line.s[2]), line.s[2]);
  EXPECT_EQ(routing.next_hop(line.s[2], line.s[1]), line.s[1]);
}

}  // namespace
}  // namespace rbcast::net
