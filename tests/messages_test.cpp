#include "core/messages.h"

#include <gtest/gtest.h>

#include "core/basic_protocol.h"

namespace rbcast::core {
namespace {

TEST(Messages, KindLabels) {
  EXPECT_STREQ(kind_of(ProtocolMessage{DataMsg{1, "x", false, {}}}), "data");
  EXPECT_STREQ(kind_of(ProtocolMessage{DataMsg{1, "x", true, {}}}), "gapfill");
  EXPECT_STREQ(kind_of(ProtocolMessage{InfoMsg{SeqSet{}, kNoHost}}), "info");
  EXPECT_STREQ(kind_of(ProtocolMessage{AttachRequest{SeqSet{}}}),
               "attach_req");
  EXPECT_STREQ(kind_of(ProtocolMessage{AttachAccept{SeqSet{}, kNoHost}}),
               "attach_ack");
  EXPECT_STREQ(kind_of(ProtocolMessage{DetachNotice{}}), "detach");
}

TEST(Messages, IsDataOnlyForDataFamily) {
  EXPECT_TRUE(is_data(ProtocolMessage{DataMsg{}}));
  EXPECT_FALSE(is_data(ProtocolMessage{InfoMsg{}}));
  EXPECT_FALSE(is_data(ProtocolMessage{AttachRequest{}}));
  EXPECT_FALSE(is_data(ProtocolMessage{AttachAccept{}}));
  EXPECT_FALSE(is_data(ProtocolMessage{DetachNotice{}}));
}

TEST(Messages, DataSizeGrowsWithBody) {
  const auto small = wire_size(ProtocolMessage{DataMsg{1, "ab", false, {}}});
  const auto large =
      wire_size(ProtocolMessage{DataMsg{1, std::string(1000, 'x'), false, {}}});
  EXPECT_EQ(large - small, 998u);
}

TEST(Messages, InfoSizeGrowsWithFragmentation) {
  SeqSet compact = SeqSet::contiguous(100);
  SeqSet holey;
  for (Seq q = 1; q <= 100; q += 2) holey.insert(q);
  const auto a = wire_size(ProtocolMessage{InfoMsg{compact, kNoHost}});
  const auto b = wire_size(ProtocolMessage{InfoMsg{holey, kNoHost}});
  EXPECT_LT(a, b);
}

TEST(Messages, ControlMessagesAreSmall) {
  // A detach notice is pure header.
  EXPECT_LE(wire_size(ProtocolMessage{DetachNotice{}}), 32u);
  // An empty attach request is nearly pure header.
  EXPECT_LE(wire_size(ProtocolMessage{AttachRequest{SeqSet{}}}), 48u);
}

TEST(BasicMessages, SizesAndKinds) {
  EXPECT_STREQ(kind_of(BasicMessage{BasicData{1, "x"}}), "data");
  EXPECT_STREQ(kind_of(BasicMessage{BasicAck{1}}), "ack");
  EXPECT_LT(wire_size(BasicMessage{BasicAck{1}}),
            wire_size(BasicMessage{BasicData{1, std::string(100, 'x')}}));
}

}  // namespace
}  // namespace rbcast::core
