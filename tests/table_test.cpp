#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rbcast::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("b").cell(std::int64_t{12345});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator rules: top, below header, bottom.
  std::size_t rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, DoubleFormattingRespectsDecimals) {
  Table t({"x"});
  t.row().cell(3.14159, 3);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("one").cell(std::int64_t{2});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\none,2\n");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("x");
  t.row().cell("y");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsEmptyColumnList) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ShortRowsPrintBlank) {
  Table t({"a", "b"});
  t.row().cell("only");
  std::ostringstream os;
  t.print(os);  // must not crash; second column renders empty
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace rbcast::util
