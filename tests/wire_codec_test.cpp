// Wire codec hardening: every ProtocolMessage variant must round-trip
// byte-exactly, and every malformed buffer — truncated, mis-tagged,
// hostile length prefixes, trailing garbage — must decode to nullopt,
// never crash. Datagrams arrive from untrusted peers; the codec is the
// trust boundary.
#include <gtest/gtest.h>

#include <any>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/messages.h"
#include "core/wire_codec.h"
#include "support/fake_network.h"
#include "transport/wire.h"

namespace rbcast::core {
namespace {

SeqSet set_of(std::initializer_list<util::Seq> seqs) {
  SeqSet s;
  for (util::Seq q : seqs) s.insert(q);
  return s;
}

// --- round trips: every variant --------------------------------------------

TEST(WireCodec, DataRoundTrip) {
  DataMsg d;
  d.seq = 42;
  d.body = std::string("payload\0with\xffbytes", 18);
  d.gap_fill = true;
  const std::string wire = encode_message(ProtocolMessage{d});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<DataMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->seq, 42u);
  EXPECT_EQ(out->body, d.body);
  EXPECT_TRUE(out->gap_fill);
  EXPECT_FALSE(out->piggyback.has_value());
}

TEST(WireCodec, DataWithPiggybackRoundTrip) {
  DataMsg d;
  d.seq = 7;
  d.body = "x";
  d.piggyback = {set_of({1, 2, 3, 7}), HostId{9}};
  const std::string wire = encode_message(d);
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<DataMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  ASSERT_TRUE(out->piggyback.has_value());
  EXPECT_TRUE(out->piggyback->first.contains(3));
  EXPECT_EQ(out->piggyback->first.count(), 4u);
  EXPECT_EQ(out->piggyback->second, HostId{9});
}

TEST(WireCodec, InfoRoundTrip) {
  InfoMsg i;
  i.info = set_of({1, 2, 5, 6, 7, 100});
  i.parent = HostId{3};
  const std::string wire = encode_message(ProtocolMessage{i});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<InfoMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->info.count(), 6u);
  EXPECT_TRUE(out->info.contains(100));
  EXPECT_EQ(out->parent, HostId{3});
}

TEST(WireCodec, InfoWithNoParentRoundTrip) {
  InfoMsg i;
  i.parent = kNoHost;
  const std::string wire = encode_message(ProtocolMessage{i});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<InfoMsg>(*decoded).parent, kNoHost);
  EXPECT_EQ(std::get<InfoMsg>(*decoded).info.count(), 0u);
}

TEST(WireCodec, AttachRequestRoundTrip) {
  AttachRequest a;
  a.info = set_of({1, 9});
  const std::string wire = encode_message(ProtocolMessage{a});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<AttachRequest>(*decoded).info.count(), 2u);
}

TEST(WireCodec, AttachAcceptRoundTrip) {
  AttachAccept a;
  a.info = set_of({1, 2, 3});
  a.parent = HostId{0};
  const std::string wire = encode_message(ProtocolMessage{a});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<AttachAccept>(*decoded).parent, HostId{0});
}

TEST(WireCodec, DetachRoundTrip) {
  const std::string wire = encode_message(ProtocolMessage{DetachNotice{}});
  const auto decoded = decode_message(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<DetachNotice>(*decoded));
}

// --- malformed input: body codec --------------------------------------------

TEST(WireCodec, EmptyAndBadTagRejected) {
  EXPECT_FALSE(decode_message("", 0).has_value());
  const char bad_tag[] = {0x00};
  EXPECT_FALSE(decode_message(bad_tag, 1).has_value());
  const char unknown_tag[] = {0x7f};
  EXPECT_FALSE(decode_message(unknown_tag, 1).has_value());
}

TEST(WireCodec, EveryTruncationRejected) {
  DataMsg d;
  d.seq = 3;
  d.body = "hello";
  d.piggyback = {set_of({1, 2, 3}), HostId{4}};
  const std::string wire = encode_message(ProtocolMessage{d});
  // Every strict prefix must fail cleanly — no assert, no read past end.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(decode_message(wire.data(), n).has_value()) << "len " << n;
  }
}

TEST(WireCodec, TrailingBytesRejected) {
  std::string wire = encode_message(ProtocolMessage{DetachNotice{}});
  wire.push_back('\0');
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
}

TEST(WireCodec, HostileBodyLengthRejected) {
  DataMsg d;
  d.seq = 1;
  d.body = "ab";
  std::string wire = encode_message(ProtocolMessage{d});
  // Body length prefix lives after tag(1) + seq(8) + flags(1). Claim more
  // bytes than the buffer holds...
  wire[10] = '\xff';
  wire[11] = '\xff';
  wire[12] = '\x0f';
  wire[13] = '\x00';
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
  // ...and more than kMaxBodyBytes outright.
  wire[13] = '\x7f';
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
}

TEST(WireCodec, SeqBoundsEnforced) {
  DataMsg d;
  d.seq = 1;
  std::string wire = encode_message(ProtocolMessage{d});
  wire[1] = '\0';  // seq = 0: below the protocol's first sequence number
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
  for (int i = 1; i <= 8; ++i) wire[i] = '\xff';  // far above kMaxSeq
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
}

TEST(WireCodec, UnknownDataFlagsRejected) {
  DataMsg d;
  d.seq = 1;
  std::string wire = encode_message(ProtocolMessage{d});
  wire[9] = '\x40';  // undefined flag bit
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
}

TEST(WireCodec, HostileSeqSetRejected) {
  InfoMsg i;
  i.info = set_of({1});
  i.parent = kNoHost;
  std::string wire = encode_message(ProtocolMessage{i});
  // The SeqSet rides length-prefixed right after the tag; a hostile byte
  // count must be caught by the bound, not trusted.
  wire[1] = '\xff';
  wire[2] = '\xff';
  wire[3] = '\xff';
  wire[4] = '\x7f';
  EXPECT_FALSE(decode_message(wire.data(), wire.size()).has_value());
}

TEST(WireCodec, FuzzedMutationsNeverCrash) {
  DataMsg d;
  d.seq = 5;
  d.body = "fuzz-me";
  d.piggyback = {set_of({1, 2, 5}), HostId{2}};
  const std::string base = encode_message(ProtocolMessage{d});
  util::Rng rng(2026);
  for (int round = 0; round < 2000; ++round) {
    std::string wire = base;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    // Either outcome is fine; surviving without UB is the assertion (ASan
    // and UBSan builds make that check real).
    (void)decode_message(wire.data(), wire.size());
  }
}

// --- frame codec ------------------------------------------------------------

TEST(FrameCodec, RoundTrip) {
  transport::Frame f;
  f.from = HostId{3};
  f.to = HostId{11};
  f.expensive = true;
  f.kind = "data";
  f.trace_id = 0x1234567890abcdefULL;
  f.payload = std::string("\x01\x02\x00\x03", 4);
  const std::string wire = transport::encode_frame(f);
  const auto out = transport::decode_frame(wire.data(), wire.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->from, f.from);
  EXPECT_EQ(out->to, f.to);
  EXPECT_TRUE(out->expensive);
  EXPECT_EQ(out->kind, "data");
  EXPECT_EQ(out->trace_id, f.trace_id);
  EXPECT_EQ(out->payload, f.payload);
}

TEST(FrameCodec, MalformedFramesRejected) {
  transport::Frame f;
  f.from = HostId{0};
  f.to = HostId{1};
  f.kind = "info";
  f.payload = "p";
  const std::string good = transport::encode_frame(f);

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(transport::decode_frame(bad.data(), bad.size()).has_value());

  bad = good;
  bad[3] = static_cast<char>(transport::kWireVersion + 1);
  EXPECT_FALSE(transport::decode_frame(bad.data(), bad.size()).has_value());

  bad = good;
  bad[12] = '\x02';  // undefined flag bit
  EXPECT_FALSE(transport::decode_frame(bad.data(), bad.size()).has_value());

  bad = good;
  bad[13] = '\x7f';  // kind length far past kMaxKind
  EXPECT_FALSE(transport::decode_frame(bad.data(), bad.size()).has_value());

  bad = good + "trailing";
  EXPECT_FALSE(transport::decode_frame(bad.data(), bad.size()).has_value());

  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(transport::decode_frame(good.data(), n).has_value())
        << "len " << n;
  }
}

// --- batch container (wire version 2) ---------------------------------------

transport::Frame make_frame(int from, int to, std::string kind,
                            std::string payload) {
  transport::Frame f;
  f.from = HostId{from};
  f.to = HostId{to};
  f.kind = std::move(kind);
  f.trace_id = static_cast<net::TraceId>(from) << 32 | to;
  f.payload = std::move(payload);
  return f;
}

TEST(BatchCodec, ContainerRoundTripsSeveralFrames) {
  const std::vector<transport::Frame> frames = {
      make_frame(0, 1, "data", "first"),
      make_frame(0, 1, "info", std::string("\x00\xff", 2)),
      make_frame(2, 1, "gapfill", ""),
  };
  const auto wire = transport::encode_batch(frames, 1200);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(static_cast<unsigned char>((*wire)[3]), transport::kWireVersion);

  const auto out = transport::decode_datagram(wire->data(), wire->size());
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ((*out)[i].from, frames[i].from) << "frame " << i;
    EXPECT_EQ((*out)[i].to, frames[i].to) << "frame " << i;
    EXPECT_EQ((*out)[i].kind, frames[i].kind) << "frame " << i;
    EXPECT_EQ((*out)[i].trace_id, frames[i].trace_id) << "frame " << i;
    EXPECT_EQ((*out)[i].payload, frames[i].payload) << "frame " << i;
  }
}

TEST(BatchCodec, BatchOfOneIsABareVersion1Frame) {
  const transport::Frame f = make_frame(1, 2, "data", "solo");
  const auto wire = transport::encode_batch({f}, 1200);
  ASSERT_TRUE(wire.has_value());
  // Not a container: byte-identical to the single-frame encoder, so a
  // batch-of-one is indistinguishable from the pre-batching wire format.
  EXPECT_EQ(*wire, transport::encode_frame(f));
  const auto out = transport::decode_datagram(wire->data(), wire->size());
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].payload, "solo");
}

TEST(BatchCodec, EmptyFlushIsNoDatagram) {
  EXPECT_FALSE(transport::encode_batch({}, 1200).has_value());
}

TEST(BatchCodec, OverBudgetBatchRejectedAtEncode) {
  const std::vector<transport::Frame> frames = {
      make_frame(0, 1, "data", std::string(600, 'a')),
      make_frame(0, 1, "data", std::string(600, 'b')),
  };
  EXPECT_FALSE(transport::encode_batch(frames, 1200).has_value());
  // The same frames fit a bigger budget — the bound is the budget, not
  // the frames.
  EXPECT_TRUE(transport::encode_batch(frames, 2000).has_value());
}

TEST(BatchCodec, Version1FrameDecodesUnderTheVersion2Reader) {
  // v1/v2 compatibility matrix, old-sender direction: a pre-batching peer's
  // bare frame must decode as a batch of one under the new reader.
  const transport::Frame f = make_frame(4, 5, "attach_req", "payload");
  const std::string wire = transport::encode_frame(f);
  EXPECT_EQ(static_cast<unsigned char>(wire[3]),
            transport::kSingleFrameVersion);
  const auto out = transport::decode_datagram(wire.data(), wire.size());
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].kind, "attach_req");
  EXPECT_EQ((*out)[0].payload, "payload");
}

TEST(BatchCodec, ContainerRejectedByTheVersion1Decoder) {
  // Old-receiver direction: a pre-batching peer drops a container whole
  // (version byte 2) rather than mis-parsing it — which is why batching
  // must only be enabled toward peers that understand it.
  const auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "a"), make_frame(0, 1, "data", "b")}, 1200);
  ASSERT_TRUE(wire.has_value());
  EXPECT_FALSE(transport::decode_frame(wire->data(), wire->size()).has_value());
}

TEST(BatchCodec, TruncatedContainerDeliversNothing) {
  const auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "first"), make_frame(0, 1, "data", "second"),
       make_frame(0, 1, "data", "third")},
      1200);
  ASSERT_TRUE(wire.has_value());
  // Every strict prefix fails whole — even prefixes that still hold one or
  // two complete contained frames. No partial delivery.
  for (std::size_t n = 0; n < wire->size(); ++n) {
    EXPECT_FALSE(transport::decode_datagram(wire->data(), n).has_value())
        << "len " << n;
  }
}

TEST(BatchCodec, TrailingBytesAfterContainerRejected) {
  auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "a"), make_frame(0, 1, "data", "b")}, 1200);
  ASSERT_TRUE(wire.has_value());
  wire->push_back('\0');
  EXPECT_FALSE(
      transport::decode_datagram(wire->data(), wire->size()).has_value());
}

TEST(BatchCodec, ZeroFrameCountRejected) {
  auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "a"), make_frame(0, 1, "data", "b")}, 1200);
  ASSERT_TRUE(wire.has_value());
  (*wire)[4] = '\0';  // count u16 LE -> 0
  (*wire)[5] = '\0';
  EXPECT_FALSE(
      transport::decode_datagram(wire->data(), wire->size()).has_value());
}

TEST(BatchCodec, HostileContainedFrameLengthRejected) {
  auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "a"), make_frame(0, 1, "data", "b")}, 1200);
  ASSERT_TRUE(wire.has_value());
  // First per-frame length prefix sits right after the 6-byte header;
  // claim far more bytes than the datagram holds.
  (*wire)[6] = '\xff';
  (*wire)[7] = '\xff';
  (*wire)[8] = '\xff';
  (*wire)[9] = '\x7f';
  EXPECT_FALSE(
      transport::decode_datagram(wire->data(), wire->size()).has_value());
}

TEST(BatchCodec, CorruptContainedFrameRejectsTheWholeBatch) {
  auto wire = transport::encode_batch(
      {make_frame(0, 1, "data", "a"), make_frame(0, 1, "data", "b")}, 1200);
  ASSERT_TRUE(wire.has_value());
  (*wire)[10] = 'X';  // second frame's magic starts after header+len; this
                      // hits the FIRST contained frame's magic byte
  EXPECT_FALSE(
      transport::decode_datagram(wire->data(), wire->size()).has_value());
}

TEST(BatchCodec, FuzzedBatchMutationsNeverCrash) {
  const auto base = transport::encode_batch(
      {make_frame(0, 1, "data", "fuzz-me"),
       make_frame(2, 1, "info", std::string(40, 'x')),
       make_frame(3, 1, "gapfill", "")},
      1200);
  ASSERT_TRUE(base.has_value());
  util::Rng rng(2026);
  for (int round = 0; round < 2000; ++round) {
    std::string wire = *base;
    // Bias half the rounds at the 10-byte header region (version, count,
    // first length prefix) where the interesting parsing decisions live.
    const std::size_t limit = (round % 2 == 0) ? 10 : wire.size();
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(limit) - 1));
      wire[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    // Either outcome is fine; surviving without UB is the assertion (ASan
    // and UBSan builds make that check real).
    (void)transport::decode_datagram(wire.data(), wire.size());
  }
}

// --- the ProtocolCodec bridge and the host's decode_errors counter ----------

TEST(ProtocolCodec, EncodesAndDecodesThroughTheAbstractInterface) {
  const ProtocolCodec codec;
  DataMsg d;
  d.seq = 2;
  d.body = "abc";
  std::string wire;
  ASSERT_TRUE(codec.encode(std::any{ProtocolMessage{d}}, wire));
  const std::any back = codec.decode(wire.data(), wire.size());
  ASSERT_TRUE(back.has_value());
  const auto* m = std::any_cast<ProtocolMessage>(&back);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(std::get<DataMsg>(*m).seq, 2u);
}

TEST(ProtocolCodec, MalformedPayloadDecodesToEmptyAny) {
  const ProtocolCodec codec;
  EXPECT_FALSE(codec.decode("garbage", 7).has_value());
  // A payload that is not a ProtocolMessage is refused, not asserted on.
  std::string out;
  EXPECT_FALSE(codec.encode(std::any{42}, out));
  EXPECT_TRUE(out.empty());
}

TEST(BroadcastHostCounters, MalformedPayloadCountedAndDropped) {
  sim::Simulator sim;
  rbcast::testing::FakeHub hub(sim);
  const std::vector<HostId> all{HostId{0}, HostId{1}};
  BroadcastHost host(sim, hub.endpoint(HostId{1}), HostId{0}, all, Config{},
                     util::Rng(1));

  net::Delivery d;
  d.from = HostId{0};
  d.to = HostId{1};
  d.payload = std::any{};  // what UdpTransport delivers on codec failure
  d.bytes = 12;
  d.kind = "data";
  host.on_delivery(d);

  EXPECT_EQ(host.counters().decode_errors, 1u);
  EXPECT_EQ(host.counters().deliveries, 0u);
  // A malformed datagram must not vouch for its claimed sender: the host
  // learned nothing about host 0's cluster membership or liveness, so
  // CLUSTER is still its initial {self}.
  EXPECT_EQ(host.state().cluster(), std::set<HostId>{HostId{1}});
}

}  // namespace
}  // namespace rbcast::core
