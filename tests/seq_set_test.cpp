// Unit tests for SeqSet — the representation of the paper's INFO sets.
#include "util/seq_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <vector>

namespace rbcast::util {
namespace {

TEST(SeqSet, StartsEmpty) {
  SeqSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.max_seq(), 0u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.gaps().empty());
}

TEST(SeqSet, InsertReportsNovelty) {
  SeqSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.count(), 1u);
}

TEST(SeqSet, AdjacentInsertionsCoalesce) {
  SeqSet s;
  s.insert(3);
  s.insert(4);
  s.insert(2);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0].lo, 2u);
  EXPECT_EQ(s.intervals()[0].hi, 4u);
}

TEST(SeqSet, BridgingInsertMergesTwoIntervals) {
  SeqSet s;
  s.insert(1);
  s.insert(3);
  ASSERT_EQ(s.intervals().size(), 2u);
  s.insert(2);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SeqSet, NonAdjacentInsertionsStaySeparate) {
  SeqSet s;
  s.insert(1);
  s.insert(5);
  s.insert(9);
  EXPECT_EQ(s.intervals().size(), 3u);
  EXPECT_EQ(s.max_seq(), 9u);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SeqSet, ContiguousConstructor) {
  SeqSet s = SeqSet::contiguous(10);
  EXPECT_EQ(s.count(), 10u);
  EXPECT_EQ(s.max_seq(), 10u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(11));
  EXPECT_EQ(s.intervals().size(), 1u);

  EXPECT_TRUE(SeqSet::contiguous(0).empty());
}

TEST(SeqSet, OfConstructor) {
  SeqSet s = SeqSet::of({7, 2, 2, 9});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(7));
  EXPECT_TRUE(s.contains(9));
}

TEST(SeqSet, InsertRange) {
  SeqSet s;
  s.insert_range(3, 7);
  EXPECT_EQ(s.count(), 5u);
  s.insert_range(6, 10);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.intervals().size(), 1u);
}

TEST(SeqSet, MergeUnionsSets) {
  SeqSet a = SeqSet::of({1, 2, 5});
  SeqSet b = SeqSet::of({2, 3, 9});
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_TRUE(a.contains(3));
  EXPECT_TRUE(a.contains(9));
}

// --- the paper's partial order -----------------------------------------

TEST(SeqSet, PaperOrderComparesMaxima) {
  // A < B iff max(A) < max(B); note {5} > {1,2,3,4} despite fewer elements.
  SeqSet a = SeqSet::of({1, 2, 3, 4});
  SeqSet b = SeqSet::of({5});
  EXPECT_TRUE(a.less_than(b));
  EXPECT_FALSE(b.less_than(a));
  EXPECT_FALSE(a.max_equal(b));
}

TEST(SeqSet, PaperOrderMaxEqual) {
  SeqSet a = SeqSet::of({1, 3});
  SeqSet b = SeqSet::of({2, 3});
  EXPECT_TRUE(a.max_equal(b));
  EXPECT_FALSE(a.less_than(b));
}

TEST(SeqSet, EmptySetIsDominatedByAnyNonEmpty) {
  SeqSet empty;
  SeqSet one = SeqSet::of({1});
  EXPECT_TRUE(empty.less_than(one));
  EXPECT_TRUE(empty.max_equal(SeqSet{}));
}

// --- gap queries ------------------------------------------------------

TEST(SeqSet, GapsEnumeratesHoles) {
  SeqSet s = SeqSet::of({1, 4, 5, 8});
  EXPECT_EQ(s.gaps(), (std::vector<Seq>{2, 3, 6, 7}));
}

TEST(SeqSet, GapsRespectsLimit) {
  SeqSet s = SeqSet::of({10});
  EXPECT_EQ(s.gaps(3), (std::vector<Seq>{1, 2, 3}));
}

TEST(SeqSet, MissingFromFindsWhatPeerLacks) {
  SeqSet mine = SeqSet::contiguous(6);
  SeqSet peer = SeqSet::of({1, 3, 6});
  EXPECT_EQ(mine.missing_from(peer), (std::vector<Seq>{2, 4, 5}));
}

TEST(SeqSet, MissingFromCappedStopsAtCap) {
  SeqSet mine = SeqSet::contiguous(10);
  SeqSet peer = SeqSet::of({1, 5});
  // Cap at the peer's max: never offer sequence numbers that would raise it.
  EXPECT_EQ(mine.missing_from_capped(peer, peer.max_seq()),
            (std::vector<Seq>{2, 3, 4}));
}

TEST(SeqSet, MissingFromRespectsLimit) {
  SeqSet mine = SeqSet::contiguous(100);
  SeqSet peer;
  EXPECT_EQ(mine.missing_from(peer, 2), (std::vector<Seq>{1, 2}));
}

// --- pruning -----------------------------------------------------------

TEST(SeqSet, PruneKeepsContainment) {
  SeqSet s = SeqSet::contiguous(10);
  s.prune_below(7);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(7));
  EXPECT_TRUE(s.contains(10));
  EXPECT_EQ(s.count(), 10u);
  EXPECT_EQ(s.max_seq(), 10u);
  EXPECT_EQ(s.prune_watermark(), 7u);
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0].lo, 8u);
}

TEST(SeqSet, PruneSplitsPartialInterval) {
  SeqSet s = SeqSet::of({2, 3, 8, 9});
  s.prune_below(5);
  EXPECT_TRUE(s.contains(4));  // pruned range counts as contained
  EXPECT_TRUE(s.contains(8));
  EXPECT_EQ(s.max_seq(), 9u);
}

TEST(SeqSet, PruneEntireSetPreservesMax) {
  SeqSet s = SeqSet::contiguous(5);
  s.prune_below(5);
  EXPECT_EQ(s.max_seq(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.intervals().empty());
}

TEST(SeqSet, PruneIsMonotone) {
  SeqSet s = SeqSet::contiguous(10);
  s.prune_below(7);
  s.prune_below(3);  // lower watermark is a no-op
  EXPECT_EQ(s.prune_watermark(), 7u);
}

TEST(SeqSet, MergePropagatesWatermark) {
  SeqSet a = SeqSet::of({8});
  SeqSet b = SeqSet::contiguous(5);
  b.prune_below(5);
  a.merge(b);
  EXPECT_TRUE(a.contains(3));
  EXPECT_EQ(a.max_seq(), 8u);
}

TEST(SeqSet, MissingFromSkipsPeerPrunedRange) {
  SeqSet mine = SeqSet::contiguous(10);
  SeqSet peer;
  peer.prune_below(6);  // peer holds 1..6 by convention
  EXPECT_EQ(mine.missing_from(peer), (std::vector<Seq>{7, 8, 9, 10}));
}

TEST(SeqSet, ContiguousPrefix) {
  EXPECT_EQ(SeqSet{}.contiguous_prefix(), 0u);
  EXPECT_EQ(SeqSet::contiguous(4).contiguous_prefix(), 4u);
  EXPECT_EQ(SeqSet::of({2, 3}).contiguous_prefix(), 0u);
  SeqSet s = SeqSet::of({1, 2, 5});
  EXPECT_EQ(s.contiguous_prefix(), 2u);
  s.prune_below(2);
  EXPECT_EQ(s.contiguous_prefix(), 2u);
  s.insert(3);
  EXPECT_EQ(s.contiguous_prefix(), 3u);
}

TEST(SeqSet, WireSizeTracksFragmentation) {
  SeqSet compact = SeqSet::contiguous(1000);
  SeqSet fragmented;
  for (Seq q = 1; q <= 1000; q += 2) fragmented.insert(q);
  EXPECT_LT(compact.wire_size(), fragmented.wire_size());
}

TEST(SeqSet, ToStringReadable) {
  SeqSet s = SeqSet::of({1, 2, 3, 7});
  EXPECT_EQ(s.to_string(), "{1..3,7}");
  s.prune_below(2);
  EXPECT_EQ(s.to_string(), "{1..2(pruned),3,7}");
}

// --- wire codec ---------------------------------------------------------

TEST(SeqSetCodec, RoundTripsTypicalSets) {
  for (const SeqSet& original :
       {SeqSet{}, SeqSet::contiguous(10), SeqSet::of({1, 5, 6, 9}),
        SeqSet::of({3})}) {
    const auto bytes = original.encode();
    EXPECT_EQ(bytes.size(), original.wire_size());
    const auto decoded = SeqSet::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
  }
}

TEST(SeqSetCodec, RoundTripsPrunedSets) {
  SeqSet s = SeqSet::contiguous(20);
  s.insert(25);
  s.prune_below(18);
  const auto decoded = SeqSet::decode(s.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
  EXPECT_EQ(decoded->prune_watermark(), 18u);
  EXPECT_TRUE(decoded->contains(5));  // via the watermark
  EXPECT_TRUE(decoded->contains(25));
}

TEST(SeqSetCodec, RejectsMalformedInput) {
  // Truncated header.
  std::vector<std::uint8_t> short_buf(4, 0);
  EXPECT_FALSE(SeqSet::decode(short_buf).has_value());
  // Length not a whole number of intervals.
  std::vector<std::uint8_t> ragged(8 + 7, 0);
  EXPECT_FALSE(SeqSet::decode(ragged).has_value());
  // lo > hi.
  SeqSet good = SeqSet::of({5});
  auto bytes = good.encode();
  std::swap_ranges(bytes.begin() + 8, bytes.begin() + 16, bytes.begin() + 16);
  auto corrupt = SeqSet::of({2, 9}).encode();
  // Build an explicitly invalid buffer: interval [9, 2].
  std::vector<std::uint8_t> bad;
  bad.resize(24, 0);
  bad[8] = 9;   // lo = 9
  bad[16] = 2;  // hi = 2
  EXPECT_FALSE(SeqSet::decode(bad).has_value());
}

TEST(SeqSetCodec, RejectsOverlappingOrUnorderedIntervals) {
  // Two adjacent intervals [1,3][4,6] violate maximality.
  std::vector<std::uint8_t> adjacent(8 + 32, 0);
  adjacent[8] = 1;
  adjacent[16] = 3;
  adjacent[24] = 4;
  adjacent[32] = 6;
  EXPECT_FALSE(SeqSet::decode(adjacent).has_value());

  // Interval at or below the watermark.
  std::vector<std::uint8_t> under(8 + 16, 0);
  under[0] = 5;  // watermark 5
  under[8] = 3;  // lo = 3 <= watermark
  under[16] = 4;
  EXPECT_FALSE(SeqSet::decode(under).has_value());
}

TEST(SeqSetCodec, RandomizedRoundTrip) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    SeqSet s;
    for (int i = 0; i < 40; ++i) s.insert(1 + rng() % 100);
    if (trial % 3 == 0) s.prune_below(1 + rng() % 20);
    const auto decoded = SeqSet::decode(s.encode());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, s);
  }
}

namespace {
void put64(std::vector<std::uint8_t>& buf, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}
}  // namespace

TEST(SeqSetCodec, RejectsWatermarkAboveCeiling) {
  // Watermark UINT64_MAX would overflow count()/contiguous_prefix()
  // arithmetic (watermark + interval widths); decode must reject anything
  // above kMaxSeq rather than construct a set that traps later.
  std::vector<std::uint8_t> wm_max(8, 0xFF);
  EXPECT_FALSE(SeqSet::decode(wm_max).has_value());

  std::vector<std::uint8_t> at_ceiling(8, 0);
  put64(at_ceiling, 0, SeqSet::kMaxSeq);
  const auto ok = SeqSet::decode(at_ceiling);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->count(), SeqSet::kMaxSeq);  // no wrap
  EXPECT_EQ(ok->contiguous_prefix(), SeqSet::kMaxSeq);

  std::vector<std::uint8_t> just_above(8, 0);
  put64(just_above, 0, SeqSet::kMaxSeq + 1);
  EXPECT_FALSE(SeqSet::decode(just_above).has_value());
}

TEST(SeqSetCodec, RejectsIntervalAboveCeiling) {
  std::vector<std::uint8_t> buf(8 + 16, 0);
  put64(buf, 8, 5);
  put64(buf, 16, std::numeric_limits<std::uint64_t>::max());  // hi wraps hi+1
  EXPECT_FALSE(SeqSet::decode(buf).has_value());

  put64(buf, 8, SeqSet::kMaxSeq);
  put64(buf, 16, SeqSet::kMaxSeq);
  const auto ok = SeqSet::decode(buf);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->count(), 1u);
  EXPECT_EQ(ok->max_seq(), SeqSet::kMaxSeq);
}

// Differential test over the full interval-walk API: insert_range, merge,
// prune_below and missing_from_capped against a materialized std::set
// oracle (pruned prefixes are materialized into the oracle, matching the
// "pruned elements still count as contained" semantics), with an
// encode->decode round trip after every verification pass.
TEST(SeqSet, RandomizedDifferentialRichOps) {
  constexpr Seq kUniverse = 400;
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    SeqSet ours, aux;
    std::set<Seq> ref_ours, ref_aux;

    const auto materialize_prune = [](std::set<Seq>& ref, Seq watermark) {
      for (Seq q = 1; q <= watermark; ++q) ref.insert(q);
    };

    for (int op = 0; op < 250; ++op) {
      switch (rng() % 5) {
        case 0: {  // single insert (into either set)
          const Seq q = 1 + rng() % kUniverse;
          if (rng() % 2 == 0) {
            ASSERT_EQ(ours.insert(q), ref_ours.insert(q).second);
          } else {
            ASSERT_EQ(aux.insert(q), ref_aux.insert(q).second);
          }
          break;
        }
        case 1: {  // block insert
          const Seq lo = 1 + rng() % kUniverse;
          const Seq hi = std::min<Seq>(kUniverse, lo + rng() % 30);
          ours.insert_range(lo, hi);
          for (Seq q = lo; q <= hi; ++q) ref_ours.insert(q);
          break;
        }
        case 2: {  // prune either set (merge must propagate aux's watermark)
          const Seq w = 1 + rng() % (kUniverse / 4);
          if (rng() % 2 == 0) {
            ours.prune_below(w);
            materialize_prune(ref_ours, w);
          } else {
            aux.prune_below(w);
            materialize_prune(ref_aux, w);
          }
          break;
        }
        case 3: {  // merge aux into ours (watermark propagates)
          ours.merge(aux);
          ref_ours.insert(ref_aux.begin(), ref_aux.end());
          break;
        }
        case 4: {  // capped set difference vs the oracle
          const Seq cap = 1 + rng() % kUniverse;
          const std::size_t limit = 1 + rng() % 20;
          // Our own pruned prefix is never offered (the bodies are gone and
          // a pruned seq is by definition already at every host), so the
          // oracle difference starts above our watermark.
          std::vector<Seq> expected;
          for (Seq q = ours.prune_watermark() + 1;
               q <= cap && expected.size() < limit; ++q) {
            if (ref_ours.contains(q) && !ref_aux.contains(q)) {
              expected.push_back(q);
            }
          }
          ASSERT_EQ(ours.missing_from_capped(aux, cap, limit), expected);
          break;
        }
      }
    }

    // Full-state agreement.
    ASSERT_EQ(ours.count(), ref_ours.size());
    ASSERT_EQ(ours.max_seq(), ref_ours.empty() ? 0u : *ref_ours.rbegin());
    for (Seq q = 1; q <= kUniverse + 1; ++q) {
      ASSERT_EQ(ours.contains(q), ref_ours.contains(q)) << "q=" << q;
    }
    ASSERT_EQ(ours.missing_from(aux),
              [&] {
                std::vector<Seq> d;
                for (Seq q : ref_ours) {
                  if (q > ours.prune_watermark() && !ref_aux.contains(q)) {
                    d.push_back(q);
                  }
                }
                return d;
              }());

    // Wire round trip preserves the exact state.
    const auto decoded = SeqSet::decode(ours.encode());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, ours);
  }
}

// Differential test against std::set over random operations.
TEST(SeqSet, RandomizedDifferentialAgainstStdSet) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    SeqSet ours;
    std::set<Seq> reference;
    for (int op = 0; op < 400; ++op) {
      const Seq q = 1 + rng() % 60;
      const bool inserted_ref = reference.insert(q).second;
      const bool inserted_ours = ours.insert(q);
      ASSERT_EQ(inserted_ours, inserted_ref);
    }
    ASSERT_EQ(ours.count(), reference.size());
    ASSERT_EQ(ours.max_seq(), *reference.rbegin());
    for (Seq q = 1; q <= 61; ++q) {
      ASSERT_EQ(ours.contains(q), reference.contains(q)) << "q=" << q;
    }
    // Gap agreement.
    std::vector<Seq> expected_gaps;
    for (Seq q = 1; q < *reference.rbegin(); ++q) {
      if (!reference.contains(q)) expected_gaps.push_back(q);
    }
    ASSERT_EQ(ours.gaps(), expected_gaps);
  }
}

}  // namespace
}  // namespace rbcast::util
