#include "core/host_state.h"

#include <gtest/gtest.h>

namespace rbcast::core {
namespace {

std::vector<HostId> hosts(int n) {
  std::vector<HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(HostId{i});
  return out;
}

TEST(HostState, InitialConditionsMatchThePaper) {
  HostState s(HostId{2}, hosts(4));
  // "in the beginning each host assumes that it is in a cluster by itself"
  EXPECT_EQ(s.cluster(), (std::set<HostId>{HostId{2}}));
  EXPECT_FALSE(s.parent().valid());
  EXPECT_TRUE(s.info().empty());
  EXPECT_TRUE(s.children().empty());
}

TEST(HostState, RecordMessageStoresBodyOnce) {
  HostState s(HostId{0}, hosts(2));
  EXPECT_TRUE(s.record_message(3, "payload"));
  EXPECT_FALSE(s.record_message(3, "other"));
  ASSERT_NE(s.body_of(3), nullptr);
  EXPECT_EQ(*s.body_of(3), "payload");
  EXPECT_EQ(s.body_of(1), nullptr);
  EXPECT_TRUE(s.has_message(3));
}

TEST(HostState, MapOfSelfIsInfo) {
  HostState s(HostId{0}, hosts(2));
  s.record_message(1, "a");
  EXPECT_EQ(&s.map(HostId{0}), &s.info());
}

TEST(HostState, LearnInfoMergesMonotonically) {
  HostState s(HostId{0}, hosts(3));
  s.learn_info(HostId{1}, SeqSet::of({1, 2}));
  s.learn_info(HostId{1}, SeqSet::of({4}));
  EXPECT_EQ(s.map(HostId{1}).count(), 3u);
  EXPECT_EQ(s.map(HostId{1}).max_seq(), 4u);
  // Self-learning is ignored.
  s.learn_info(HostId{0}, SeqSet::of({9}));
  EXPECT_TRUE(s.info().empty());
}

TEST(HostState, LearnHasInsertsSingleSeq) {
  HostState s(HostId{0}, hosts(2));
  s.learn_has(HostId{1}, 7);
  EXPECT_TRUE(s.map(HostId{1}).contains(7));
}

TEST(HostState, UnknownHostMapIsEmpty) {
  HostState s(HostId{0}, hosts(3));
  EXPECT_TRUE(s.map(HostId{2}).empty());
}

TEST(HostState, CostBitRuleUpdatesCluster) {
  HostState s(HostId{0}, hosts(3));
  // Cheap delivery adds.
  s.update_cluster_from_cost_bit(HostId{1}, /*expensive=*/false);
  EXPECT_TRUE(s.in_cluster(HostId{1}));
  // Expensive delivery removes.
  s.update_cluster_from_cost_bit(HostId{1}, /*expensive=*/true);
  EXPECT_FALSE(s.in_cluster(HostId{1}));
  // Self never changes.
  s.update_cluster_from_cost_bit(HostId{0}, true);
  EXPECT_TRUE(s.in_cluster(HostId{0}));
}

TEST(HostState, SetClusterAlwaysIncludesSelf) {
  HostState s(HostId{0}, hosts(3));
  s.set_cluster({HostId{1}, HostId{2}});
  EXPECT_TRUE(s.in_cluster(HostId{0}));
  EXPECT_TRUE(s.in_cluster(HostId{1}));
}

TEST(HostState, ParentViewsAndOwnParent) {
  HostState s(HostId{0}, hosts(4));
  EXPECT_FALSE(s.parent_of(HostId{1}).valid());  // unknown -> NIL
  s.learn_parent(HostId{1}, HostId{2});
  EXPECT_EQ(s.parent_of(HostId{1}), HostId{2});
  s.set_parent(HostId{3});
  EXPECT_EQ(s.parent(), HostId{3});
  EXPECT_EQ(s.parent_of(HostId{0}), HostId{3});  // p_i[i] is own parent
  // learn_parent about self is ignored (own pointer is authoritative).
  s.learn_parent(HostId{0}, HostId{1});
  EXPECT_EQ(s.parent(), HostId{3});
}

TEST(HostState, ChildrenSetOperations) {
  HostState s(HostId{0}, hosts(4));
  s.add_child(HostId{1});
  s.add_child(HostId{1});
  s.add_child(HostId{0});  // self is never a child
  EXPECT_EQ(s.children().size(), 1u);
  EXPECT_TRUE(s.is_child(HostId{1}));
  s.remove_child(HostId{1});
  EXPECT_TRUE(s.children().empty());
}

TEST(HostState, NeighborsAreChildrenPlusParent) {
  HostState s(HostId{0}, hosts(5));
  s.add_child(HostId{1});
  s.add_child(HostId{2});
  EXPECT_EQ(s.neighbors().size(), 2u);
  s.set_parent(HostId{3});
  EXPECT_EQ(s.neighbors().size(), 3u);
  // Parent that is also listed as child is not duplicated.
  s.add_child(HostId{3});
  EXPECT_EQ(s.neighbors().size(), 3u);
}

TEST(HostState, AncestorWalkFollowsParentViews) {
  HostState s(HostId{0}, hosts(5));
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_parent(HostId{2}, HostId{3});
  const auto walk = s.ancestors_of_self();
  EXPECT_FALSE(walk.cycle);
  EXPECT_EQ(walk.ancestors,
            (std::vector<HostId>{HostId{1}, HostId{2}, HostId{3}}));
}

TEST(HostState, AncestorWalkDetectsCycleThroughSelf) {
  HostState s(HostId{0}, hosts(4));
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_parent(HostId{2}, HostId{0});  // back to self
  const auto walk = s.ancestors_of_self();
  EXPECT_TRUE(walk.cycle);
  EXPECT_EQ(walk.ancestors, (std::vector<HostId>{HostId{1}, HostId{2}}));
}

TEST(HostState, AncestorWalkToleratesForeignCycle) {
  // A stale view can contain a cycle that does not include self; the walk
  // must terminate without reporting a self-cycle.
  HostState s(HostId{0}, hosts(4));
  s.set_parent(HostId{1});
  s.learn_parent(HostId{1}, HostId{2});
  s.learn_parent(HostId{2}, HostId{1});
  const auto walk = s.ancestors_of_self();
  EXPECT_FALSE(walk.cycle);
}

TEST(HostState, SafePrefixIsMinOverAllHosts) {
  HostState s(HostId{0}, hosts(3));
  for (Seq q = 1; q <= 5; ++q) s.record_message(q, "b");
  EXPECT_EQ(s.safe_prefix(), 0u);  // nothing known about hosts 1, 2
  s.learn_info(HostId{1}, SeqSet::contiguous(4));
  EXPECT_EQ(s.safe_prefix(), 0u);  // still nothing about host 2
  s.learn_info(HostId{2}, SeqSet::contiguous(5));
  EXPECT_EQ(s.safe_prefix(), 4u);  // min(5, 4, 5)
}

TEST(HostState, SafePrefixIgnoresHolesAboveThePrefix) {
  HostState s(HostId{0}, hosts(2));
  s.record_message(1, "b");
  s.record_message(3, "b");
  s.learn_info(HostId{1}, SeqSet::of({1, 2, 3}));
  EXPECT_EQ(s.safe_prefix(), 1u);  // own hole at 2
}

TEST(HostState, PruneDropsBodiesButKeepsContainment) {
  HostState s(HostId{0}, hosts(1));
  for (Seq q = 1; q <= 10; ++q) s.record_message(q, "b");
  s.prune(7);
  EXPECT_EQ(s.body_of(7), nullptr);
  ASSERT_NE(s.body_of(8), nullptr);
  EXPECT_TRUE(s.has_message(7));
  EXPECT_EQ(s.info().max_seq(), 10u);
}

TEST(HostState, OrderIsHostIdValueWithSourcePromotedToMaximum) {
  HostState s(HostId{0}, hosts(6), HostId{2});
  EXPECT_LT(s.order(HostId{1}), s.order(HostId{5}));
  // The broadcast source outranks every peer: leader consolidation
  // (attachment option (2)) must converge toward the permanent root.
  EXPECT_LT(s.order(HostId{5}), s.order(HostId{2}));
}

TEST(HostState, RejectsSelfNotInAllHosts) {
  EXPECT_THROW(HostState(HostId{9}, hosts(3)), std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::core
