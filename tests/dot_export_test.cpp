#include "trace/dot_export.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "topo/generators.h"

namespace rbcast::trace {
namespace {

harness::ScenarioOptions fast_options() {
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 32;
  return options;
}

TEST(DotExport, ParentGraphContainsAllHostsAndEdges) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  harness::Experiment e(make_clustered_wan(wan).topology, fast_options());
  e.start();
  e.broadcast();
  e.run_for(sim::seconds(20));

  const std::string dot =
      parent_graph_dot(e.host_views(), e.network(), e.source());
  EXPECT_NE(dot.find("digraph parent_graph"), std::string::npos);
  for (int h = 0; h < 4; ++h) {
    EXPECT_NE(dot.find("h" + std::to_string(h) + " "), std::string::npos)
        << "missing node h" << h;
  }
  // The source is marked.
  EXPECT_NE(dot.find("(source)"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);
  // Two ground-truth clusters appear as subgraphs.
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  // At least one parent edge exists after convergence.
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, CrossClusterEdgesAreDashed) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 1;
  harness::Experiment e(make_clustered_wan(wan).topology, fast_options());
  e.start();
  e.broadcast();
  e.run_for(sim::seconds(20));

  // h1's parent must be h0 (other cluster): a dashed red edge.
  ASSERT_EQ(e.host(HostId{1}).parent(), HostId{0});
  const std::string dot =
      parent_graph_dot(e.host_views(), e.network(), e.source());
  EXPECT_NE(dot.find("h1 -> h0 [style=dashed, color=red]"),
            std::string::npos);
}

TEST(DotExport, TopologyListsServersHostsAndTrunks) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 2;
  const auto built = make_clustered_wan(wan);
  harness::Experiment e(built.topology, fast_options());

  const std::string dot = topology_dot(e.network());
  EXPECT_NE(dot.find("graph topology"), std::string::npos);
  EXPECT_NE(dot.find("s0 [shape=circle]"), std::string::npos);
  EXPECT_NE(dot.find("h0 [shape=box]"), std::string::npos);
  // The expensive trunk renders dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExport, DownLinksAreHighlighted) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 1;
  const auto built = make_clustered_wan(wan);
  harness::Experiment e(built.topology, fast_options());
  e.network().set_link_up(built.trunks[0], false);

  const std::string dot = topology_dot(e.network());
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExport, RejectsEmptyHostList) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 1;
  wan.hosts_per_cluster = 1;
  harness::Experiment e(make_clustered_wan(wan).topology, fast_options());
  std::vector<const core::BroadcastHost*> empty;
  EXPECT_THROW(parent_graph_dot(empty, e.network(), e.source()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::trace
