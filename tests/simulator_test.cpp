#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace rbcast::sim {
namespace {

TEST(Simulator, ClockAdvancesToRunUntilTarget) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  s.run_until(100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, EventsSeeTheirOwnTime) {
  Simulator s;
  TimePoint seen = -1;
  s.at(40, [&] { seen = s.now(); });
  s.run_until(100);
  EXPECT_EQ(seen, 40);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  s.run_until(10);
  TimePoint seen = -1;
  s.after(5, [&] { seen = s.now(); });
  s.run_until(20);
  EXPECT_EQ(seen, 15);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  std::vector<TimePoint> fired;
  s.at(10, [&] {
    fired.push_back(s.now());
    s.after(10, [&] { fired.push_back(s.now()); });
  });
  s.run_until(100);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  bool at_boundary = false;
  bool beyond = false;
  s.at(50, [&] { at_boundary = true; });
  s.at(51, [&] { beyond = true; });
  s.run_until(50);
  EXPECT_TRUE(at_boundary);
  EXPECT_FALSE(beyond);
}

TEST(Simulator, CancelPending) {
  Simulator s;
  bool fired = false;
  const EventId id = s.at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_until(20);
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepFiresOneEvent) {
  Simulator s;
  int count = 0;
  s.at(1, [&] { ++count; });
  s.at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunToCompletionDrainsEverything) {
  Simulator s;
  int count = 0;
  s.at(5, [&] {
    ++count;
    s.after(5, [&] { ++count; });
  });
  s.run_to_completion();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(PeriodicTask, FiresEveryPeriod) {
  Simulator s;
  std::vector<TimePoint> fired;
  PeriodicTask task(s, 10, [&] { fired.push_back(s.now()); });
  task.start(3);
  s.run_until(45);
  EXPECT_EQ(fired, (std::vector<TimePoint>{3, 13, 23, 33, 43}));
}

TEST(PeriodicTask, StopHalts) {
  Simulator s;
  int count = 0;
  PeriodicTask task(s, 10, [&] { ++count; });
  task.start(0);
  s.run_until(25);
  task.stop();
  s.run_until(100);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, ActionMayStopItsOwnTask) {
  Simulator s;
  int count = 0;
  PeriodicTask task(s, 10, [&] {
    ++count;
    if (count == 2) task.stop();
  });
  task.start(0);
  s.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DestructionCancelsPending) {
  Simulator s;
  int count = 0;
  {
    PeriodicTask task(s, 10, [&] { ++count; });
    task.start(5);
  }
  s.run_until(100);
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTask, SetPeriodTakesEffectNextReschedule) {
  Simulator s;
  std::vector<TimePoint> fired;
  PeriodicTask task(s, 10, [&] { fired.push_back(s.now()); });
  task.start(0);
  s.run_until(15);  // fires at 0, 10
  task.set_period(20);
  s.run_until(60);  // next from 10+10=20? No: pending was armed with old
                    // period at t=10 -> fires at 20, then 40, 60
  ASSERT_GE(fired.size(), 4u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 10);
  EXPECT_EQ(fired[2], 20);
  EXPECT_EQ(fired[3], 40);
}

TEST(PeriodicTask, RejectsBadArguments) {
  Simulator s;
  EXPECT_THROW(PeriodicTask(s, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(s, 10, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rbcast::sim
