#include "net/link.h"

#include <gtest/gtest.h>

namespace rbcast::net {
namespace {

topo::LinkSpec make_spec(double loss = 0.0, double dup = 0.0) {
  topo::LinkParams params = topo::LinkParams::cheap_defaults();
  params.loss_probability = loss;
  params.duplication_probability = dup;
  params.propagation_delay = sim::milliseconds(2);
  params.bandwidth_bytes_per_sec = 1000.0;  // 1 byte per ms: easy arithmetic
  return topo::LinkSpec{.id = LinkId{0},
                        .a = ServerId{0},
                        .b = ServerId{1},
                        .link_class = topo::LinkClass::kCheap,
                        .params = params};
}

TEST(LinkState, CleanTransmitArrivesAfterTxPlusPropagation) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  const auto r = link.transmit(100, 0, 0);
  EXPECT_EQ(r.copies, 1);
  EXPECT_EQ(r.queue_wait, 0);
  EXPECT_EQ(r.tx_time, sim::milliseconds(100));
  EXPECT_EQ(r.arrival_offset[0], sim::milliseconds(102));
}

TEST(LinkState, BackToBackTransmitsSerialize) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  const auto first = link.transmit(100, 0, 0);
  const auto second = link.transmit(100, 0, 0);
  EXPECT_EQ(first.queue_wait, 0);
  // The second message waits for the first to clock out.
  EXPECT_EQ(second.queue_wait, sim::milliseconds(100));
  EXPECT_EQ(second.arrival_offset[0], sim::milliseconds(202));
}

TEST(LinkState, DirectionsHaveIndependentQueues) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  link.transmit(100, 0, 0);
  const auto reverse = link.transmit(100, 1, 0);
  EXPECT_EQ(reverse.queue_wait, 0);
}

TEST(LinkState, QueueDrainsOverTime) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  link.transmit(100, 0, 0);  // wire busy until t = 100 ms
  const auto later = link.transmit(100, 0, sim::milliseconds(150));
  EXPECT_EQ(later.queue_wait, 0);
}

TEST(LinkState, CertainLossYieldsZeroCopiesButOccupiesWire) {
  const auto spec = make_spec(/*loss=*/1.0);
  LinkState link(spec, util::Rng(1));
  const auto r = link.transmit(100, 0, 0);
  EXPECT_EQ(r.copies, 0);
  // A following message still queues behind the doomed one.
  const auto next = link.transmit(100, 0, 0);
  EXPECT_EQ(next.queue_wait, sim::milliseconds(100));
}

TEST(LinkState, CertainDuplicationYieldsTwoStaggeredCopies) {
  const auto spec = make_spec(/*loss=*/0.0, /*dup=*/1.0);
  LinkState link(spec, util::Rng(1));
  const auto r = link.transmit(100, 0, 0);
  EXPECT_EQ(r.copies, 2);
  EXPECT_EQ(r.arrival_offset[0], sim::milliseconds(102));
  EXPECT_EQ(r.arrival_offset[1], sim::milliseconds(202));
}

TEST(LinkState, LossRateIsApproximatelyHonored) {
  const auto spec = make_spec(/*loss=*/0.25);
  LinkState link(spec, util::Rng(7));
  int lost = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    // Transmit far apart so queueing never matters.
    const auto r = link.transmit(1, 0, static_cast<sim::TimePoint>(i) *
                                           sim::seconds(1));
    if (r.copies == 0) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.03);
}

TEST(LinkState, UpDownFlagIsHonoredByCaller) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  EXPECT_TRUE(link.up());
  link.set_up(false);
  EXPECT_FALSE(link.up());
  link.set_up(true);
  EXPECT_TRUE(link.up());
}

TEST(LinkState, DirectionFromMapsEndpoints) {
  const auto spec = make_spec();
  LinkState link(spec, util::Rng(1));
  EXPECT_EQ(link.direction_from(ServerId{0}), 0);
  EXPECT_EQ(link.direction_from(ServerId{1}), 1);
}

TEST(LinkState, MinimumTransmissionTimeIsOneTick) {
  topo::LinkParams params = topo::LinkParams::cheap_defaults();
  params.bandwidth_bytes_per_sec = 1e12;  // absurdly fast
  topo::LinkSpec spec{.id = LinkId{0},
                      .a = ServerId{0},
                      .b = ServerId{1},
                      .link_class = topo::LinkClass::kCheap,
                      .params = params};
  EXPECT_GE(spec.transmission_time(1), 1);
}

}  // namespace
}  // namespace rbcast::net
