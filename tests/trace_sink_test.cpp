// TraceSink backends and the end-to-end tracing acceptance gates:
//  * JSONL formatting (escaping, typed fields, stable field order);
//  * Chrome trace_event export is structurally valid JSON with the
//    expected metadata / instant / counter phases;
//  * a deterministic replay (same seed, same topology) produces a
//    byte-identical JSONL trace;
//  * the run manifest carries everything needed to reproduce the run.
#include "trace/trace_sink.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"
#include "trace/trace_reader.h"

namespace rbcast::trace {
namespace {

harness::ScenarioOptions fast_options(std::uint64_t seed = 1) {
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.parent_timeout = sim::seconds(3);
  options.protocol.attach_ack_timeout = sim::milliseconds(400);
  options.protocol.data_bytes = 32;
  options.seed = seed;
  return options;
}

// Runs a small 4-cluster scenario streamed into `sink`; returns whether
// everything delivered.
bool run_traced(TraceSink& sink, std::uint64_t seed, double loss = 0.0,
                sim::Duration sample_period = 0) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = loss;
  harness::Experiment e(make_clustered_wan(wan).topology,
                        fast_options(seed));
  e.set_trace_sink(&sink);
  if (sample_period > 0) e.enable_metric_sampling(sample_period);
  e.start();
  e.broadcast_stream(8, sim::milliseconds(400), sim::seconds(1));
  e.run_until_delivered(sim::seconds(120));
  if (e.sampler() != nullptr) e.sampler()->sample_now();
  sink.close();
  return e.all_delivered();
}

TEST(JsonlSink, EscapesAndTypesFields) {
  std::ostringstream os;
  JsonlSink sink(os);
  TraceRecord r;
  r.at = 42;
  r.category = "net";
  r.name = "weird";
  r.host = HostId{3};
  r.field("str", std::string("a\"b\\c\nd\x01"))
      .field("neg", std::int64_t{-7})
      .field("big", std::uint64_t{1} << 50)
      .field("ratio", 0.5)
      .field("flag", true);
  sink.record(r);
  EXPECT_EQ(os.str(),
            "{\"t\":42,\"cat\":\"net\",\"ev\":\"weird\",\"host\":3,"
            "\"str\":\"a\\\"b\\\\c\\nd\\u0001\",\"neg\":-7,"
            "\"big\":1125899906842624,\"ratio\":0.5,\"flag\":true}\n");
}

TEST(JsonlSink, RunGlobalRecordsUseHostMinusOne) {
  std::ostringstream os;
  JsonlSink sink(os);
  TraceRecord r;
  r.category = "metric";
  r.name = "counters";
  sink.record(r);
  EXPECT_NE(os.str().find("\"host\":-1"), std::string::npos);
}

TEST(MultiSink, FansOutAndCloses) {
  std::ostringstream a;
  std::ostringstream b;
  JsonlSink sink_a(a);
  ChromeTraceSink sink_b(b);
  MultiSink multi;
  multi.add(&sink_a);
  multi.add(&sink_b);
  TraceRecord r;
  r.category = "protocol";
  r.name = "delivered";
  r.host = HostId{0};
  multi.record(r);
  multi.close();
  EXPECT_NE(a.str().find("delivered"), std::string::npos);
  EXPECT_NE(b.str().find("delivered"), std::string::npos);
  std::string error;
  EXPECT_TRUE(json_syntax_valid(b.str(), &error)) << error;
}

TEST(RunManifest, CarriesReproductionParameters) {
  const TraceRecord m =
      run_manifest(7, "4 clusters", "paper", "attach_period=2s");
  EXPECT_EQ(m.category, "manifest");
  ASSERT_NE(find_field(m, "seed"), nullptr);
  EXPECT_EQ(field_int(m, "seed", -1), 7);
  EXPECT_EQ(field_string(m, "topology"), "4 clusters");
  EXPECT_EQ(field_string(m, "protocol"), "paper");
  EXPECT_EQ(field_string(m, "config"), "attach_period=2s");
  EXPECT_FALSE(field_string(m, "build").empty());

  const std::string line = manifest_line(m);
  EXPECT_NE(line.find("seed=7"), std::string::npos);
  EXPECT_NE(line.find("protocol=paper"), std::string::npos);
}

TEST(TraceDeterminism, SameSeedYieldsByteIdenticalJsonl) {
  std::ostringstream first;
  std::ostringstream second;
  {
    JsonlSink sink(first);
    EXPECT_TRUE(run_traced(sink, 11, 0.1, sim::milliseconds(500)));
  }
  {
    JsonlSink sink(second);
    EXPECT_TRUE(run_traced(sink, 11, 0.1, sim::milliseconds(500)));
  }
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str())
      << "replaying the same seed/topology must reproduce the trace "
         "byte for byte";

  // Leave the trace on disk for CI failure artifacts (uploaded when a
  // ctest job fails).
  std::ofstream artifact("trace_determinism.jsonl");
  artifact << first.str();
}

TEST(TraceDeterminism, DifferentSeedChangesTheTrace) {
  std::ostringstream first;
  std::ostringstream second;
  {
    JsonlSink sink(first);
    run_traced(sink, 11);
  }
  {
    JsonlSink sink(second);
    run_traced(sink, 12);
  }
  EXPECT_NE(first.str(), second.str());
}

TEST(ChromeTrace, ExportIsStructurallyValidTraceEventJson) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    EXPECT_TRUE(run_traced(sink, 5, 0.0, sim::milliseconds(500)));
  }
  const std::string text = os.str();
  std::string error;
  ASSERT_TRUE(json_syntax_valid(text, &error)) << error;

  // The three trace_event phases the backend emits: metadata (process /
  // thread names), instant protocol/net events, and metric counters.
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"thread_name\""), std::string::npos);
  // Per-host tracks ride distinct tids (host N -> tid N+1).
  EXPECT_NE(text.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"tid\":8"), std::string::npos);
}

TEST(ChromeTrace, CloseIsIdempotentAndFinalizesArray) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  TraceRecord r;
  r.category = "protocol";
  r.name = "delivered";
  r.host = HostId{2};
  sink.record(r);
  sink.close();
  sink.close();
  const std::string text = os.str();
  std::string error;
  EXPECT_TRUE(json_syntax_valid(text, &error)) << error;
  // Records after close are ignored, not appended past the closing ']'.
  sink.record(r);
  EXPECT_EQ(os.str(), text);
}

TEST(EventLogSink, MirrorLeavesDigestUnchanged) {
  // The digest is the PR-1 determinism gate; mirroring to a sink must
  // not perturb it.
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  EventLog plain(sim_a);
  EventLog mirrored(sim_b);
  std::ostringstream os;
  JsonlSink sink(os);
  mirrored.set_sink(&sink);

  for (EventLog* log : {&plain, &mirrored}) {
    log->on_attach_requested(HostId{1}, HostId{0}, "I.1");
    log->on_attached(HostId{1}, HostId{0});
    log->on_gapfill_offered(HostId{0}, HostId{1}, 3);
    log->on_gapfill_accepted(HostId{1}, HostId{0}, 3);
    log->on_gapfill_relayed(HostId{1}, HostId{2}, 3);
    log->on_delivered(HostId{1}, 3);
  }
  EXPECT_EQ(plain.digest(), mirrored.digest());
  EXPECT_NE(os.str().find("gapfill-offered"), std::string::npos);
  EXPECT_NE(os.str().find("gapfill-accepted"), std::string::npos);
  EXPECT_NE(os.str().find("gapfill-relayed"), std::string::npos);
}

}  // namespace
}  // namespace rbcast::trace
