#include "trace/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "net/fault_plan.h"
#include "topo/generators.h"

namespace rbcast::trace {
namespace {

harness::ScenarioOptions fast_options() {
  harness::ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.parent_timeout = sim::seconds(3);
  options.protocol.attach_ack_timeout = sim::milliseconds(400);
  options.protocol.data_bytes = 32;
  return options;
}

TEST(EventLog, RecordsDirectCalls) {
  sim::Simulator simulator;
  EventLog log(simulator);
  simulator.run_until(sim::seconds(2));
  log.on_attach_requested(HostId{1}, HostId{0}, "I.1");
  log.on_attached(HostId{1}, HostId{0});
  log.on_delivered(HostId{1}, 7);

  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events()[0].type, EventType::kAttachRequested);
  EXPECT_EQ(log.events()[0].detail, "I.1");
  EXPECT_EQ(log.events()[0].at, sim::seconds(2));
  EXPECT_EQ(log.events()[2].seq, 7u);
  EXPECT_EQ(log.count(EventType::kAttached), 1u);
  EXPECT_EQ(log.events_of(HostId{1}).size(), 3u);
  EXPECT_TRUE(log.events_of(HostId{0}).empty());
}

TEST(EventLog, DescribeIsReadable) {
  sim::Simulator simulator;
  EventLog log(simulator);
  log.on_attach_requested(HostId{2}, HostId{5}, "II.3");
  const std::string line = log.events()[0].describe();
  EXPECT_NE(line.find("h2"), std::string::npos);
  EXPECT_NE(line.find("attach-requested"), std::string::npos);
  EXPECT_NE(line.find("h5"), std::string::npos);
  EXPECT_NE(line.find("II.3"), std::string::npos);
}

TEST(EventLog, AttachmentLifecycleAppearsInRealScenario) {
  harness::Experiment e(topo::make_single_cluster(3).topology,
                        fast_options());
  e.start();
  e.broadcast();
  e.run_for(sim::seconds(10));

  auto& log = e.events();
  // Both non-source hosts attached; every attach was requested first.
  EXPECT_GE(log.count(EventType::kAttached), 2u);
  EXPECT_GE(log.count(EventType::kAttachRequested),
            log.count(EventType::kAttached));
  // Every delivery produced an event (1 msg x 3 hosts incl. source).
  EXPECT_EQ(log.count(EventType::kDelivered), 3u);

  // Requests precede their completions for each host.
  for (int h = 1; h < 3; ++h) {
    const auto events = log.events_of(HostId{h});
    sim::TimePoint requested = -1;
    for (const auto& event : events) {
      if (event.type == EventType::kAttachRequested && requested < 0) {
        requested = event.at;
      }
      if (event.type == EventType::kAttached) {
        EXPECT_GE(event.at, requested);
        break;
      }
    }
  }
}

TEST(EventLog, ParentTimeoutRecordedOnCrash) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 1;
  wan.hosts_per_cluster = 3;
  wan.intra_cluster_ring = true;
  const auto built = make_clustered_wan(wan);
  harness::Experiment e(built.topology, fast_options());
  e.start();
  e.broadcast();
  e.run_for(sim::seconds(5));

  // Crash the source for a while: children must record parent timeouts.
  e.faults().host_crash_window(e.source(), sim::seconds(6),
                               sim::seconds(20));
  e.run_for(sim::seconds(15));
  EXPECT_GE(e.events().count(EventType::kParentTimeout), 1u);
}

TEST(EventLog, BetweenFiltersByTime) {
  sim::Simulator simulator;
  EventLog log(simulator);
  log.on_delivered(HostId{0}, 1);
  simulator.run_until(sim::seconds(10));
  log.on_delivered(HostId{0}, 2);
  EXPECT_EQ(log.between(0, sim::seconds(5)).size(), 1u);
  EXPECT_EQ(log.between(sim::seconds(5), sim::seconds(15)).size(), 1u);
  EXPECT_EQ(log.between(0, sim::seconds(15)).size(), 2u);
}

TEST(EventLog, DumpSummarizesDeliveries) {
  sim::Simulator simulator;
  EventLog log(simulator);
  log.on_delivered(HostId{0}, 1);
  log.on_delivered(HostId{1}, 1);
  log.on_attached(HostId{1}, HostId{0});
  std::ostringstream os;
  log.dump(os);
  EXPECT_NE(os.str().find("attached"), std::string::npos);
  EXPECT_NE(os.str().find("+ 2 delivery events"), std::string::npos);
  EXPECT_EQ(os.str().find("delivered #"), std::string::npos);

  std::ostringstream verbose;
  log.dump(verbose, /*include_deliveries=*/true);
  EXPECT_NE(verbose.str().find("delivered"), std::string::npos);
}

TEST(EventLog, GapFillEventsRecordOfferAcceptRelay) {
  sim::Simulator simulator;
  EventLog log(simulator);
  simulator.run_until(sim::seconds(3));
  log.on_gapfill_offered(HostId{0}, HostId{1}, 4);
  log.on_gapfill_accepted(HostId{1}, HostId{0}, 4);
  log.on_gapfill_relayed(HostId{1}, HostId{2}, 4);

  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.count(EventType::kGapFillOffered), 1u);
  EXPECT_EQ(log.count(EventType::kGapFillAccepted), 1u);
  EXPECT_EQ(log.count(EventType::kGapFillRelayed), 1u);

  const Event& offered = log.events()[0];
  EXPECT_EQ(offered.host, HostId{0});
  EXPECT_EQ(offered.peer, HostId{1});
  EXPECT_EQ(offered.seq, 4u);
  EXPECT_EQ(offered.at, sim::seconds(3));

  const Event& accepted = log.events()[1];
  EXPECT_EQ(accepted.host, HostId{1});
  EXPECT_EQ(accepted.peer, HostId{0});

  EXPECT_NE(log.events()[2].describe().find("gapfill-relayed"),
            std::string::npos);
}

TEST(EventLog, ToStringCoversEveryEventType) {
  for (EventType type :
       {EventType::kAttachRequested, EventType::kAttached,
        EventType::kDetached, EventType::kParentTimeout,
        EventType::kCycleBroken, EventType::kAttachTimeout,
        EventType::kNewMaxRejected, EventType::kDelivered,
        EventType::kGapFillOffered, EventType::kGapFillAccepted,
        EventType::kGapFillRelayed}) {
    const std::string name = to_string(type);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find("unknown"), std::string::npos)
        << "unnamed event type " << static_cast<int>(type);
  }
  EXPECT_STREQ(to_string(EventType::kGapFillOffered), "gapfill-offered");
  EXPECT_STREQ(to_string(EventType::kGapFillAccepted), "gapfill-accepted");
  EXPECT_STREQ(to_string(EventType::kGapFillRelayed), "gapfill-relayed");
}

TEST(EventLog, GapFillEventsAppearInLossyScenario) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = 2;
  wan.expensive.loss_probability = 0.2;
  harness::Experiment e(make_clustered_wan(wan).topology, fast_options());
  e.start();
  e.broadcast_stream(5, sim::milliseconds(400), sim::seconds(1));
  e.run_until_delivered(sim::seconds(120));
  ASSERT_TRUE(e.all_delivered());

  auto& log = e.events();
  // 20% trunk loss on a 4-cluster run must exercise the repair path, and
  // every accepted fill arrived as either an offer or a relay.
  EXPECT_GT(log.count(EventType::kGapFillOffered), 0u);
  EXPECT_GT(log.count(EventType::kGapFillAccepted), 0u);
  EXPECT_GE(log.count(EventType::kGapFillOffered) +
                log.count(EventType::kGapFillRelayed),
            log.count(EventType::kGapFillAccepted));
}

TEST(EventLog, ClearEmpties) {
  sim::Simulator simulator;
  EventLog log(simulator);
  log.on_delivered(HostId{0}, 1);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

}  // namespace
}  // namespace rbcast::trace
