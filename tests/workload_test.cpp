#include "harness/workload.h"

#include <gtest/gtest.h>

#include "topo/generators.h"

namespace rbcast::harness {
namespace {

ScenarioOptions fast_options() {
  ScenarioOptions options;
  options.protocol.attach_period = sim::milliseconds(500);
  options.protocol.info_period_intra = sim::milliseconds(200);
  options.protocol.info_period_inter = sim::seconds(1);
  options.protocol.gapfill_period_neighbor = sim::milliseconds(500);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 32;
  return options;
}

TEST(Workload, UniformSchedulesExactSpacing) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  e.start();
  WorkloadOptions w;
  w.process = ArrivalProcess::kUniform;
  w.messages = 5;
  w.interval = sim::seconds(2);
  w.first_at = sim::seconds(1);
  const sim::TimePoint last =
      schedule_workload(e, w, util::Rng(1));
  EXPECT_EQ(last, sim::seconds(9));  // 1, 3, 5, 7, 9

  e.run_until(sim::seconds(4));
  EXPECT_EQ(e.last_seq(), 2u);  // broadcasts at t=1 and t=3 fired
  e.run_until_delivered(sim::seconds(60));
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(e.last_seq(), 5u);
}

TEST(Workload, PoissonHasRoughlyTheRequestedMeanRate) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  e.start();
  WorkloadOptions w;
  w.process = ArrivalProcess::kPoisson;
  w.messages = 200;
  w.interval = sim::milliseconds(500);
  const sim::TimePoint last = schedule_workload(e, w, util::Rng(7));
  // 200 arrivals at mean 0.5 s: the last lands around t = 100 s +- noise.
  EXPECT_GT(last, sim::seconds(60));
  EXPECT_LT(last, sim::seconds(160));

  e.run_until_delivered(last + sim::seconds(120));
  EXPECT_TRUE(e.all_delivered());
}

TEST(Workload, BurstySchedulesBackToBackGroups) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  e.start();
  WorkloadOptions w;
  w.process = ArrivalProcess::kBursty;
  w.messages = 10;
  w.burst_size = 5;
  w.interval = sim::seconds(10);
  w.first_at = sim::seconds(1);
  schedule_workload(e, w, util::Rng(1));

  // After the first burst window, exactly 5 messages exist.
  e.run_until(sim::seconds(2));
  EXPECT_EQ(e.last_seq(), 5u);
  // The second burst comes ~10 s later.
  e.run_until(sim::seconds(9));
  EXPECT_EQ(e.last_seq(), 5u);
  e.run_until(sim::seconds(13));
  EXPECT_EQ(e.last_seq(), 10u);
}

TEST(Workload, AllDeliveredWaitsForScheduledWorkload) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  e.start();
  WorkloadOptions w;
  w.messages = 3;
  w.first_at = sim::seconds(30);
  schedule_workload(e, w, util::Rng(1));
  EXPECT_FALSE(e.all_delivered());  // nothing fired yet, but it is pending
}

TEST(Workload, RejectsBadOptions) {
  Experiment e(topo::make_single_cluster(2).topology, fast_options());
  WorkloadOptions bad;
  bad.interval = 0;
  EXPECT_THROW(schedule_workload(e, bad, util::Rng(1)),
               std::invalid_argument);
  bad.interval = 1;
  bad.burst_size = 0;
  EXPECT_THROW(schedule_workload(e, bad, util::Rng(1)),
               std::invalid_argument);
}

TEST(Workload, ProcessNames) {
  EXPECT_STREQ(to_string(ArrivalProcess::kUniform), "uniform");
  EXPECT_STREQ(to_string(ArrivalProcess::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalProcess::kBursty), "bursty");
}

}  // namespace
}  // namespace rbcast::harness
