// E5 — the Section 5 source-congestion claim, plus the heavy-traffic
// data-plane experiment (E5b).
//
// "the basic algorithm can cause congestion of the source host's server
//  since data messages go out separately to every host. Our algorithm does
//  not present such a problem because responsibilities for disseminating
//  data messages are distributed among all hosts."
//
// Part 1 (burst): a WAN of 4 clusters with growing cluster sizes; a burst
// of back-to-back broadcasts. We report the worst serialization backlog
// observed on the outgoing queues of the source's server (including the
// source's access pipe) and, for contrast, the worst backlog anywhere
// else.
//
// Part 2 (overload): sustained arrivals faster than the coalescer's flush
// deadline, held over a star WAN whose trunks are the bottleneck. Every
// datagram is charged a fixed per-packet framing overhead
// (NetConfig::per_packet_overhead_bytes, the UDP/IP headers) in BOTH
// modes; batching amortizes that overhead across the frames of a
// version-2 container, so the batched run pushes strictly more delivered
// messages through the same trunks with no worse tail latency. This is
// the acceptance experiment for the transport::Coalescer data plane.
#include "support/common.h"

#include "harness/workload.h"

namespace rbcast::bench {
namespace {

struct Row {
  double source_backlog_s;  // max backlog at the source's server
  double other_backlog_s;   // max backlog at any other server
  double mean_delay_s;
};

Row run_one(int hosts_per_cluster, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = hosts_per_cluster;
  wan.shape = topo::TrunkShape::kStar;
  const auto built = make_clustered_wan(wan);
  const ServerId source_server = built.topology.host(HostId{0}).server;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol =
      scaled_protocol_config(static_cast<std::size_t>(4) * hosts_per_cluster);
  options.protocol.data_bytes = 1024;  // meaty updates stress the queues
  options.basic = default_basic_config();
  options.seed = 5;

  harness::Experiment e(built.topology, options);
  warm_up(e, sim::seconds(30 + 8 * hosts_per_cluster));

  // A burst: 20 messages with no spacing at all.
  stream_and_finish(e, 20, sim::microseconds(0));

  const auto& m = e.metrics();
  double source_backlog = m.max_queue_backlog_seconds(source_server);
  double other = 0.0;
  for (const auto& server : e.topology().servers()) {
    if (server.id == source_server) continue;
    other = std::max(other, m.max_queue_backlog_seconds(server.id));
  }
  return Row{source_backlog, other, m.all_latencies().mean()};
}

// --- Part 2: sustained overload, batched vs unbatched data plane ---------

struct OverloadRow {
  double throughput;        // first deliveries per virtual second, all hosts
  double p99_s;             // 99th-percentile first-delivery latency
  double frames_per_dgram;  // coalescer amortization (1.0 when unbatched)
};

OverloadRow run_overload(sim::Duration interval, bool batched) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.shape = topo::TrunkShape::kStar;
  const auto built = make_clustered_wan(wan);

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  // Small commutative updates: framing dominates the payload, which is the
  // regime where coalescing pays (a replicated-database hot-key stream).
  options.protocol.data_bytes = 16;
  if (batched) {
    options.protocol.batch_flush_delay = sim::milliseconds(5);
    options.protocol.batch_max_bytes = 1200;
  }
  // UDP/IP-style header charge per datagram — identical in both modes;
  // batching wins by sending fewer datagrams, not by cheating the charge.
  options.net.per_packet_overhead_bytes = 28;
  options.seed = 8;

  harness::Experiment e(built.topology, options);
  warm_up(e);

  harness::WorkloadOptions w;
  w.process = harness::ArrivalProcess::kSustained;
  w.interval = interval;
  w.duration = sim::seconds(60);
  w.first_at = e.simulator().now() + sim::milliseconds(1);
  harness::schedule_workload(e, w, e.rngs().stream("workload"));

  const sim::TimePoint begin = e.simulator().now();
  // Fixed horizon: the offered load exceeds what the trunks carry
  // unbatched, so the run that wastes less capacity on per-datagram
  // framing has delivered strictly more by the same deadline.
  const sim::Duration horizon = w.duration + sim::seconds(10);
  e.run_until(begin + horizon);

  const auto lat = e.metrics().all_latencies();
  const auto stats = e.transport().coalescer_stats();
  const double amortization =
      stats.batches_flushed > 0
          ? static_cast<double>(stats.frames_enqueued) /
                static_cast<double>(stats.batches_flushed)
          : 1.0;
  return OverloadRow{
      static_cast<double>(lat.count()) / sim::to_seconds(horizon),
      lat.quantile(0.99), amortization};
}

// Google-benchmark JSON shape so tools/bench_compare.py can gate these
// rows against the committed baseline (BENCH_congestion.json). The
// "times" are deterministic virtual metrics of seeded simulations —
// identical on every machine — so the gate threshold can be tight.
void emit_json_row(std::ostream& os, bool& first, const std::string& name,
                   double value, const char* unit) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\", "
     << "\"iterations\": 1, \"real_time\": " << value << ", \"cpu_time\": "
     << value << ", \"time_unit\": \"" << unit << "\"}";
}

void run(bool json) {
  std::ostringstream rows;
  bool first = true;

  if (!json) {
    print_header(
        "E5 bench_congestion",
        "Worst outbound queue backlog (s) during a 20-message burst, 4-cluster "
        "star WAN\n(paper: basic congests the source's server; the tree "
        "distributes dissemination)");
  }
  util::Table table({"hosts/cluster", "total hosts", "protocol",
                     "source srv backlog", "worst other srv", "mean delay"});
  for (int m : {2, 4, 8, 16}) {
    for (auto kind :
         {harness::ProtocolKind::kPaper, harness::ProtocolKind::kBasic}) {
      const bool tree = kind == harness::ProtocolKind::kPaper;
      const Row row = run_one(m, kind);
      table.row()
          .cell(m)
          .cell(4 * m)
          .cell(tree ? "tree" : "basic")
          .cell(row.source_backlog_s, 3)
          .cell(row.other_backlog_s, 3)
          .cell(row.mean_delay_s, 3);
      std::ostringstream name;
      name << "congestion/hosts=" << 4 * m << "/" << (tree ? "tree" : "basic");
      // Offset by one so a zero-backlog cell cannot zero a baseline entry
      // (ratio gates cannot divide by zero).
      emit_json_row(rows, first, name.str() + "/source_backlog",
                    1.0 + row.source_backlog_s, "s");
      emit_json_row(rows, first, name.str() + "/mean_delay",
                    row.mean_delay_s, "s");
    }
  }
  if (!json) {
    table.print(std::cout);
    print_header(
        "E5b bench_congestion overload",
        "Sustained overload (60 s of arrivals + 10 s drain, 3-cluster star "
        "WAN,\n16-byte updates, 28-byte per-datagram framing in both modes):\n"
        "batching amortizes the framing, so the same trunks deliver more");
  }
  util::Table overload_table({"arrival interval ms", "data plane",
                              "delivered msg/s", "p99 delay", "frames/dgram"});
  for (sim::Duration interval :
       {sim::milliseconds(4), sim::milliseconds(2)}) {
    for (bool batched : {false, true}) {
      const OverloadRow r = run_overload(interval, batched);
      overload_table.row()
          .cell(sim::to_seconds(interval) * 1e3, 0)
          .cell(batched ? "batched" : "unbatched")
          .cell(r.throughput, 1)
          .cell(r.p99_s, 3)
          .cell(r.frames_per_dgram, 2);
      std::ostringstream name;
      name << "overload/interval_ms=" << sim::to_seconds(interval) * 1e3
           << "/" << (batched ? "batched" : "unbatched");
      // Unit is nominal ("s" like every row): bench_compare.py only
      // understands time units and compares ratios, not dimensions.
      emit_json_row(rows, first, name.str() + "/throughput", r.throughput,
                    "s");
      emit_json_row(rows, first, name.str() + "/p99", r.p99_s, "s");
    }
  }
  if (json) {
    std::cout << "{\n  \"context\": {\"virtual_time\": true},\n"
              << "  \"benchmarks\": [\n" << rows.str() << "\n  ]\n}\n";
  } else {
    overload_table.print(std::cout);
  }
}

}  // namespace
}  // namespace rbcast::bench

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::string(argv[1]) == "--json";
  rbcast::bench::run(json);
  return 0;
}
