// E5 — the Section 5 source-congestion claim.
//
// "the basic algorithm can cause congestion of the source host's server
//  since data messages go out separately to every host. Our algorithm does
//  not present such a problem because responsibilities for disseminating
//  data messages are distributed among all hosts."
//
// A WAN of 4 clusters with growing cluster sizes; a burst of back-to-back
// broadcasts. We report the worst serialization backlog observed on the
// outgoing queues of the source's server (including the source's access
// pipe) and, for contrast, the worst backlog anywhere else.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double source_backlog_s;  // max backlog at the source's server
  double other_backlog_s;   // max backlog at any other server
  double mean_delay_s;
};

Row run_one(int hosts_per_cluster, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 4;
  wan.hosts_per_cluster = hosts_per_cluster;
  wan.shape = topo::TrunkShape::kStar;
  const auto built = make_clustered_wan(wan);
  const ServerId source_server = built.topology.host(HostId{0}).server;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol =
      scaled_protocol_config(static_cast<std::size_t>(4) * hosts_per_cluster);
  options.protocol.data_bytes = 1024;  // meaty updates stress the queues
  options.basic = default_basic_config();
  options.seed = 5;

  harness::Experiment e(built.topology, options);
  warm_up(e, sim::seconds(30 + 8 * hosts_per_cluster));

  // A burst: 20 messages with no spacing at all.
  stream_and_finish(e, 20, sim::microseconds(0));

  const auto& m = e.metrics();
  double source_backlog = m.max_queue_backlog_seconds(source_server);
  double other = 0.0;
  for (const auto& server : e.topology().servers()) {
    if (server.id == source_server) continue;
    other = std::max(other, m.max_queue_backlog_seconds(server.id));
  }
  return Row{source_backlog, other, m.all_latencies().mean()};
}

void run() {
  print_header(
      "E5 bench_congestion",
      "Worst outbound queue backlog (s) during a 20-message burst, 4-cluster "
      "star WAN\n(paper: basic congests the source's server; the tree "
      "distributes dissemination)");

  util::Table table({"hosts/cluster", "total hosts", "protocol",
                     "source srv backlog", "worst other srv", "mean delay"});
  for (int m : {2, 4, 8, 16}) {
    for (auto kind :
         {harness::ProtocolKind::kPaper, harness::ProtocolKind::kBasic}) {
      const Row row = run_one(m, kind);
      table.row()
          .cell(m)
          .cell(4 * m)
          .cell(kind == harness::ProtocolKind::kPaper ? "tree" : "basic")
          .cell(row.source_backlog_s, 3)
          .cell(row.other_backlog_s, 3)
          .cell(row.mean_delay_s, 3);
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
