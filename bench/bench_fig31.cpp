// E8 — Figure 3.1: optimal broadcast is impossible with nonprogrammable
// servers.
//
// In the figure's network (three hosts on a star through switch s4), an
// in-network multicast would traverse each of the three trunks exactly
// once per broadcast: 3 link transmissions. Nonprogrammable servers cannot
// duplicate messages, so every host-level protocol pays at least 4 (two
// unicasts, each crossing two trunks). We measure actual per-message link
// transmissions for the cluster-tree protocol and the basic algorithm
// against that lower bound, plus the host-level cost metric (inter-cluster
// host-to-host transmissions), where the tree achieves its k-1 optimum.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double data_link_tx_per_msg;  // data-family trunk transmissions per msg
  double all_link_tx_per_msg;   // including control / acks
  double host_sends_per_msg;    // inter-cluster host-to-host sends per msg
};

Row run_one(harness::ProtocolKind kind) {
  const auto fig = topo::make_figure_3_1();

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = default_protocol_config();
  options.basic = default_basic_config();
  options.seed = 8;

  harness::Experiment e(fig.topology, options);
  warm_up(e);

  constexpr int kMessages = 30;
  stream_and_finish(e, kMessages, sim::seconds(1));

  const auto& m = e.metrics();
  const double data_tx =
      static_cast<double>(m.counter("link.expensive.data") +
                          m.counter("link.expensive.gapfill") +
                          m.counter("link.expensive.data_retx"));
  return Row{data_tx / kMessages,
             static_cast<double>(m.counter("link.expensive")) / kMessages,
             static_cast<double>(m.intercluster_data_sends()) / kMessages};
}

void run() {
  print_header(
      "E8 bench_fig31",
      "Figure 3.1 network: h1..h3 on a star through pure switch s4\n"
      "(paper: the server-level optimum of 3 link transmissions per message "
      "is\n unreachable without programmable servers; host-level protocols "
      "pay >= 4)");

  util::Table table({"scheme", "data trunk tx/msg", "all trunk tx/msg",
                     "inter-cluster host sends/msg"});
  table.row()
      .cell("in-network multicast (lower bound)")
      .cell(3.0, 2)
      .cell(3.0, 2)
      .cell("n/a");
  const Row tree = run_one(harness::ProtocolKind::kPaper);
  const Row basic = run_one(harness::ProtocolKind::kBasic);
  table.row()
      .cell("cluster tree (this paper)")
      .cell(tree.data_link_tx_per_msg, 2)
      .cell(tree.all_link_tx_per_msg, 2)
      .cell(std::to_string(tree.host_sends_per_msg).substr(0, 4) +
            "  (k-1 = 2 optimal)");
  table.row()
      .cell("basic algorithm")
      .cell(basic.data_link_tx_per_msg, 2)
      .cell(basic.all_link_tx_per_msg, 2)
      .cell(basic.host_sends_per_msg, 2);
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
