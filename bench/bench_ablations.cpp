// Ablations of the design choices the paper leaves open (DESIGN.md §7 and
// Section 6's "fairly obvious optimizations"):
//
//   A. parent_switch_margin — hysteresis on case II option (3): re-parent
//      churn vs. delivery delay.
//   B. piggyback_info — Section 6 piggybacking: carrying INFO on data
//      messages lets the separate INFO exchange run much slower for the
//      same delay.
//   C. far_fill_targets — how many non-neighbor targets one host serves
//      per far gap-fill round: catch-up speed vs. redundant repair
//      traffic (too many targets can congestion-collapse slow trunks).
//   D. enable_pruning — Section 6 INFO pruning: control-message size on
//      the wire with and without it.
#include "support/common.h"

namespace rbcast::bench {
namespace {

// --- A: re-parenting hysteresis ----------------------------------------

void ablate_margin() {
  std::cout
      << "\n--- A. parent_switch_margin (II.3 hysteresis) ---\n"
         "II.3 fires when a leader's parent falls behind some other host — "
         "here, after a\n60 s partition+heal cycle, when the reconnected "
         "fragment's leaders must migrate\nback toward the source side. "
         "Larger margins delay that migration. The rule\ncounts also "
         "document *which* attachment options actually fire.\n";
  util::Table table({"margin", "II.3 attempts", "I.* attempts",
                     "III.1 attempts", "post-heal mean delay s"});
  for (util::Seq margin : {0u, 5u, 20u, 100u}) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 4;
    wan.hosts_per_cluster = 2;
    wan.shape = topo::TrunkShape::kLine;
    const auto built = make_clustered_wan(wan);

    harness::ScenarioOptions options;
    options.protocol = default_protocol_config();
    options.protocol.parent_switch_margin = margin;
    options.seed = 21;

    harness::Experiment e(built.topology, options);
    warm_up(e);
    const sim::TimePoint t0 = e.simulator().now();
    const sim::TimePoint heal = t0 + sim::seconds(60);
    e.faults().partition_window({built.trunks[1]}, t0 + sim::seconds(2),
                                heal);
    // Stream spans the partition and continues well past the heal.
    e.broadcast_stream(240, sim::milliseconds(500), t0 + sim::seconds(1));
    e.run_until_delivered(t0 + sim::seconds(600));

    std::uint64_t ii3 = 0;
    std::uint64_t case_i = 0;
    std::uint64_t iii1 = 0;
    for (HostId h : e.topology().host_ids()) {
      for (const auto& [rule, n] : e.host(h).counters().attempts_by_rule) {
        if (rule == "II.3") {
          ii3 += n;
        } else if (rule == "III.1") {
          iii1 += n;
        } else {
          case_i += n;
        }
      }
    }
    // Latency of messages broadcast after the heal (seq > 120 + warmup).
    const auto latency = e.metrics().latencies_between(140, 241);
    table.row()
        .cell(static_cast<std::uint64_t>(margin))
        .cell(ii3)
        .cell(case_i)
        .cell(iii1)
        .cell(latency.mean(), 3);
  }
  table.print(std::cout);
}

// --- B: piggybacked INFO -------------------------------------------------

void ablate_piggyback() {
  std::cout << "\n--- B. piggyback_info (Section 6 piggybacking) ---\n";
  util::Table table({"piggyback", "info period scale", "control sends/s",
                     "data bytes/msg", "p95 delay s"});
  for (bool piggyback : {false, true}) {
    for (double scale : {1.0, 4.0, 16.0}) {
      util::Accumulator control_rate;
      util::Accumulator data_size;
      util::Accumulator p95;
      for (std::uint64_t seed : {22u, 122u, 222u, 322u, 422u}) {
        topo::ClusteredWanOptions wan;
        wan.clusters = 3;
        wan.hosts_per_cluster = 3;
        // Loss makes MAP freshness matter: gap detection (and thus repair
        // latency) is driven by how recently neighbors' INFO was heard.
        wan.expensive.loss_probability = 0.15;
        wan.cheap.loss_probability = 0.03;
        wan.seed = seed;

        harness::ScenarioOptions options;
        options.protocol = default_protocol_config();
        options.protocol.piggyback_info = piggyback;
        auto stretch = [&](sim::Duration d) {
          return static_cast<sim::Duration>(static_cast<double>(d) * scale);
        };
        options.protocol.info_period_intra =
            stretch(options.protocol.info_period_intra);
        options.protocol.info_period_inter =
            stretch(options.protocol.info_period_inter);
        options.seed = seed;

        harness::Experiment e(make_clustered_wan(wan).topology, options);
        warm_up(e);
        constexpr int kMessages = 60;
        const sim::TimePoint t0 = e.simulator().now();
        e.broadcast_stream(kMessages, sim::milliseconds(500),
                           t0 + sim::milliseconds(1));
        const sim::TimePoint done =
            e.run_until_delivered(t0 + sim::seconds(600));

        const auto& m = e.metrics();
        const double window = sim::to_seconds(done - t0);
        const double control =
            static_cast<double>(m.counter("send.info")) +
            static_cast<double>(m.counter("send.attach_req")) +
            static_cast<double>(m.counter("send.attach_ack")) +
            static_cast<double>(m.counter("send.detach"));
        const double data_msgs = static_cast<double>(
            m.counter("send.data") + m.counter("send.gapfill"));
        const double data_bytes =
            static_cast<double>(m.counter("send_bytes.data") +
                                m.counter("send_bytes.gapfill"));
        control_rate.add(control / window);
        data_size.add(data_msgs > 0 ? data_bytes / data_msgs : 0.0);
        p95.add(m.all_latencies().quantile(0.95));
      }
      table.row()
          .cell(piggyback ? "on" : "off")
          .cell(scale, 0)
          .cell(control_rate.mean(), 1)
          .cell(data_size.mean(), 0)
          .cell(p95.mean(), 2);
    }
  }
  table.print(std::cout);
}

// --- C: non-neighbor fill fan-out ---------------------------------------

void ablate_far_targets() {
  std::cout << "\n--- C. far_fill_targets (non-neighbor gap-fill fan-out) "
               "---\n";
  std::cout << "Holes (not backlogs) engage non-neighbor filling: heavy "
               "random loss scatters\ngaps below every host's maximum, and "
               "every up-to-date host can repair them.\nMore targets per "
               "round repair no faster — they just duplicate work.\n";
  util::Table table({"targets/round", "completion (s)", "gap-fill msgs",
                     "redundant (dup discards)"});
  for (std::size_t targets : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{16}}) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 4;
    wan.hosts_per_cluster = 2;
    wan.shape = topo::TrunkShape::kLine;
    wan.expensive.loss_probability = 0.30;
    wan.cheap.loss_probability = 0.05;

    harness::ScenarioOptions options;
    options.protocol = default_protocol_config();
    options.protocol.far_fill_targets = targets;
    options.seed = 23;

    harness::Experiment e(make_clustered_wan(wan).topology, options);
    warm_up(e);
    const double completion =
        stream_and_finish(e, 100, sim::milliseconds(500));
    std::uint64_t duplicates = 0;
    for (HostId h : e.topology().host_ids()) {
      duplicates += e.host(h).counters().duplicates_discarded;
    }
    table.row()
        .cell(static_cast<std::uint64_t>(targets))
        .cell(completion, 1)
        .cell(e.metrics().counter("send.gapfill"))
        .cell(duplicates);
  }
  table.print(std::cout);
}

// --- D: INFO pruning ---------------------------------------------------------

void ablate_pruning() {
  std::cout << "\n--- D. enable_pruning (Section 6 INFO pruning) ---\n";
  util::Table table({"pruning", "stream length", "avg info msg bytes",
                     "final INFO intervals at source"});
  for (bool pruning : {true, false}) {
    for (int messages : {100, 400}) {
      topo::ClusteredWanOptions wan;
      wan.clusters = 2;
      wan.hosts_per_cluster = 2;
      // Light loss keeps INFO sets fragmented so size differences show.
      wan.expensive.loss_probability = 0.05;

      harness::ScenarioOptions options;
      options.protocol = default_protocol_config();
      options.protocol.enable_pruning = pruning;
      options.seed = 24;

      harness::Experiment e(make_clustered_wan(wan).topology, options);
      warm_up(e);
      stream_and_finish(e, messages, sim::milliseconds(200));
      e.run_for(sim::seconds(20));  // let pruning catch up

      const auto& m = e.metrics();
      const double info_msgs = static_cast<double>(m.counter("send.info"));
      const double info_bytes =
          static_cast<double>(m.counter("send_bytes.info"));
      table.row()
          .cell(pruning ? "on" : "off")
          .cell(messages)
          .cell(info_msgs > 0 ? info_bytes / info_msgs : 0.0, 1)
          .cell(e.host(e.source()).info().intervals().size());
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::print_header(
      "E13 bench_ablations",
      "Design-choice ablations: hysteresis, piggybacking, gap-fill "
      "fan-out, pruning");
  rbcast::bench::ablate_margin();
  rbcast::bench::ablate_piggyback();
  rbcast::bench::ablate_far_targets();
  rbcast::bench::ablate_pruning();
  return 0;
}
