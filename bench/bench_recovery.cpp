// E3 — the Section 5 recovery-locality claim.
//
// "When a host misses a message ..., the message is redelivered either by
//  one of its cluster neighbors or by a host from the parent cluster,
//  which tends to be one of the 'closest' clusters ... In the basic
//  algorithm, on the other hand, the source itself would always have to
//  enact a redelivery, which, in general, is costlier."
//
// Lossy links; we measure how much of the redelivery traffic crosses
// cluster boundaries. For the tree protocol, redeliveries are gap fills —
// mostly intra-cluster. For the basic algorithm, every redelivery is a
// source retransmission; any destination outside the source's cluster
// costs an expensive transmission again.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double redeliveries;            // redelivery transmissions per message
  double intercluster_fraction;   // share of them crossing clusters
  double completion_seconds;      // stream completion time
};

Row run_one(double trunk_loss, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.shape = topo::TrunkShape::kRing;
  wan.expensive.loss_probability = trunk_loss;
  wan.cheap.loss_probability = trunk_loss / 5.0;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = default_protocol_config();
  options.basic = default_basic_config();
  options.seed = 3;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e);

  constexpr int kMessages = 40;
  const double completion = stream_and_finish(e, kMessages,
                                              sim::milliseconds(500));

  const auto& m = e.metrics();
  double redeliveries = 0;
  double intercluster = 0;
  if (kind == harness::ProtocolKind::kPaper) {
    redeliveries = static_cast<double>(m.counter("send.gapfill"));
    intercluster = static_cast<double>(m.counter("send.intercluster.gapfill"));
  } else {
    redeliveries = static_cast<double>(m.counter("send.data_retx"));
    intercluster =
        static_cast<double>(m.counter("send.intercluster.data_retx"));
  }
  return Row{redeliveries / kMessages,
             redeliveries > 0 ? intercluster / redeliveries : 0.0,
             completion};
}

void run() {
  print_header(
      "E3 bench_recovery",
      "Redelivery traffic under loss (3 clusters x 3 hosts, 40 messages)\n"
      "(paper: tree redeliveries come from cluster neighbors / the parent\n"
      " cluster; basic redeliveries always come from the source)");

  util::Table table({"trunk loss", "protocol", "redeliveries/msg",
                     "inter-cluster share", "completion s"});
  for (double loss : {0.01, 0.05, 0.10, 0.20}) {
    const Row tree = run_one(loss, harness::ProtocolKind::kPaper);
    const Row basic = run_one(loss, harness::ProtocolKind::kBasic);
    table.row()
        .cell(loss, 2)
        .cell("tree")
        .cell(tree.redeliveries, 2)
        .cell(tree.intercluster_fraction, 2)
        .cell(tree.completion_seconds, 1);
    table.row()
        .cell(loss, 2)
        .cell("basic")
        .cell(basic.redeliveries, 2)
        .cell(basic.intercluster_fraction, 2)
        .cell(basic.completion_seconds, 1);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
