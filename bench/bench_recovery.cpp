// E3 — the Section 5 recovery-locality claim.
//
// "When a host misses a message ..., the message is redelivered either by
//  one of its cluster neighbors or by a host from the parent cluster,
//  which tends to be one of the 'closest' clusters ... In the basic
//  algorithm, on the other hand, the source itself would always have to
//  enact a redelivery, which, in general, is costlier."
//
// Lossy links; we measure how much of the redelivery traffic crosses
// cluster boundaries. For the tree protocol, redeliveries are gap fills —
// mostly intra-cluster. For the basic algorithm, every redelivery is a
// source retransmission; any destination outside the source's cluster
// costs an expensive transmission again.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double redeliveries;            // redelivery transmissions per message
  double intercluster_fraction;   // share of them crossing clusters
  double completion_seconds;      // stream completion time
};

Row run_one(double trunk_loss, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.shape = topo::TrunkShape::kRing;
  wan.expensive.loss_probability = trunk_loss;
  wan.cheap.loss_probability = trunk_loss / 5.0;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = default_protocol_config();
  options.basic = default_basic_config();
  options.seed = 3;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e);

  constexpr int kMessages = 40;
  const double completion = stream_and_finish(e, kMessages,
                                              sim::milliseconds(500));

  const auto& m = e.metrics();
  double redeliveries = 0;
  double intercluster = 0;
  if (kind == harness::ProtocolKind::kPaper) {
    redeliveries = static_cast<double>(m.counter("send.gapfill"));
    intercluster = static_cast<double>(m.counter("send.intercluster.gapfill"));
  } else {
    redeliveries = static_cast<double>(m.counter("send.data_retx"));
    intercluster =
        static_cast<double>(m.counter("send.intercluster.data_retx"));
  }
  return Row{redeliveries / kMessages,
             redeliveries > 0 ? intercluster / redeliveries : 0.0,
             completion};
}

// Google-benchmark JSON shape so tools/bench_compare.py can gate these
// rows against the committed baseline (BENCH_recovery.json). The "times"
// are deterministic virtual metrics of seeded simulations — identical on
// every machine — so the gate threshold can be tight.
void emit_json_row(std::ostream& os, bool& first, const std::string& name,
                   double value, const char* unit) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": \"" << name << "\", \"run_type\": \"iteration\", "
     << "\"iterations\": 1, \"real_time\": " << value << ", \"cpu_time\": "
     << value << ", \"time_unit\": \"" << unit << "\"}";
}

void run(bool json) {
  if (!json) {
    print_header(
        "E3 bench_recovery",
        "Redelivery traffic under loss (3 clusters x 3 hosts, 40 messages)\n"
        "(paper: tree redeliveries come from cluster neighbors / the parent\n"
        " cluster; basic redeliveries always come from the source)");
  }

  util::Table table({"trunk loss", "protocol", "redeliveries/msg",
                     "inter-cluster share", "completion s"});
  std::ostringstream rows;
  bool first = true;
  for (double loss : {0.01, 0.05, 0.10, 0.20}) {
    for (auto kind :
         {harness::ProtocolKind::kPaper, harness::ProtocolKind::kBasic}) {
      const bool tree = kind == harness::ProtocolKind::kPaper;
      const Row r = run_one(loss, kind);
      table.row()
          .cell(loss, 2)
          .cell(tree ? "tree" : "basic")
          .cell(r.redeliveries, 2)
          .cell(r.intercluster_fraction, 2)
          .cell(r.completion_seconds, 1);
      std::ostringstream name;
      name << "recovery/loss=" << loss << "/" << (tree ? "tree" : "basic");
      emit_json_row(rows, first, name.str() + "/completion",
                    r.completion_seconds, "s");
      // Offset by one so a zero-redelivery cell cannot zero a baseline
      // entry (ratio gates cannot divide by zero).
      emit_json_row(rows, first, name.str() + "/redeliveries_per_msg",
                    1.0 + r.redeliveries, "s");
    }
  }
  if (json) {
    std::cout << "{\n  \"context\": {\"virtual_time\": true},\n"
              << "  \"benchmarks\": [\n" << rows.str() << "\n  ]\n}\n";
  } else {
    table.print(std::cout);
  }
}

}  // namespace
}  // namespace rbcast::bench

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::string(argv[1]) == "--json";
  rbcast::bench::run(json);
  return 0;
}
