// E12 — micro-benchmarks of the substrates (google-benchmark).
//
// Not a paper experiment: these quantify the cost of the building blocks
// (INFO-set operations, event queue, routing recompute, full simulation
// throughput) so that scenario wall-times are explainable.
#include <benchmark/benchmark.h>

#include "rbcast.h"

namespace {

using namespace rbcast;

void BM_SeqSetInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    util::SeqSet s;
    for (util::Seq q = 1; q <= static_cast<util::Seq>(state.range(0)); ++q) {
      s.insert(q);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetInsertSequential)->Arg(1000)->Arg(10000);

void BM_SeqSetInsertWithGaps(benchmark::State& state) {
  for (auto _ : state) {
    util::SeqSet s;
    for (util::Seq q = 1; q <= static_cast<util::Seq>(state.range(0)); ++q) {
      if (q % 7 != 0) s.insert(q);  // persistent fragmentation
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetInsertWithGaps)->Arg(1000)->Arg(10000);

void BM_SeqSetMissingFrom(benchmark::State& state) {
  util::SeqSet mine = util::SeqSet::contiguous(10000);
  util::SeqSet peer;
  for (util::Seq q = 1; q <= 10000; ++q) {
    if (q % 11 != 0) peer.insert(q);
  }
  for (auto _ : state) {
    auto missing = mine.missing_from(peer, 64);
    benchmark::DoNotOptimize(missing);
  }
}
BENCHMARK(BM_SeqSetMissingFrom);

void BM_SeqSetContains(benchmark::State& state) {
  util::SeqSet s;
  for (util::Seq q = 1; q <= 100000; ++q) {
    if (q % 3 != 0) s.insert(q);
  }
  util::Seq probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.contains(probe));
    probe = probe % 100000 + 1;
  }
}
BENCHMARK(BM_SeqSetContains);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule((i * 7919) % 100000, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_RoutingRecompute(benchmark::State& state) {
  topo::ClusteredWanOptions options;
  options.clusters = static_cast<int>(state.range(0));
  options.hosts_per_cluster = 4;
  options.shape = topo::TrunkShape::kRing;
  options.extra_trunk_fraction = 0.5;
  const auto wan = make_clustered_wan(options);
  sim::Simulator simulator;
  net::Routing routing(
      simulator, wan.topology, [](LinkId) { return true; }, 0);
  for (auto _ : state) {
    routing.recompute_now();
  }
  state.counters["servers"] =
      static_cast<double>(wan.topology.server_count());
}
BENCHMARK(BM_RoutingRecompute)->Arg(5)->Arg(15)->Arg(30);

void BM_FullScenarioThroughput(benchmark::State& state) {
  // Events per second of a complete 3x3 WAN scenario with a live stream.
  for (auto _ : state) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 3;
    wan.hosts_per_cluster = 3;
    harness::ScenarioOptions options;
    options.seed = 12;
    harness::Experiment e(make_clustered_wan(wan).topology, options);
    e.start();
    e.broadcast_stream(20, sim::milliseconds(500), sim::seconds(1));
    e.run_for(sim::seconds(60));
    benchmark::DoNotOptimize(e.metrics().counter_prefix_sum("send."));
  }
}
BENCHMARK(BM_FullScenarioThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
