// E12 — micro-benchmarks of the substrates (google-benchmark).
//
// Not a paper experiment: these quantify the cost of the building blocks
// (INFO-set operations, event queue, routing recompute, full simulation
// throughput) so that scenario wall-times are explainable.
//
// This binary is also the repo's perf gate: CI runs it with
// --benchmark_format=json and tools/bench_compare.py checks the result
// against the committed BENCH_micro.json baseline (see DESIGN.md §8).
// The SeqSet workloads are deliberately split into dense (few intervals,
// millions of elements — where interval-native algorithms must be
// O(intervals), not O(elements)), sparse (many small intervals) and
// adversarial (maximally fragmented, worst-case coalescing) shapes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rbcast.h"

namespace {

using namespace rbcast;

// --- SeqSet: insertion ---------------------------------------------------

void BM_SeqSetInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    util::SeqSet s;
    for (util::Seq q = 1; q <= static_cast<util::Seq>(state.range(0)); ++q) {
      s.insert(q);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetInsertSequential)->Arg(1000)->Arg(10000);

void BM_SeqSetInsertWithGaps(benchmark::State& state) {
  for (auto _ : state) {
    util::SeqSet s;
    for (util::Seq q = 1; q <= static_cast<util::Seq>(state.range(0)); ++q) {
      if (q % 7 != 0) s.insert(q);  // persistent fragmentation
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetInsertWithGaps)->Arg(1000)->Arg(10000);

// Bulk range insertion: blocks of `kBlock` arriving out of order, the shape
// of attach-time back-fill bursts. Interval-native insert_range makes each
// block O(log intervals), independent of the block length.
void BM_SeqSetInsertRangeBlocks(benchmark::State& state) {
  constexpr util::Seq kBlock = 1024;
  const auto blocks = static_cast<util::Seq>(state.range(0));
  for (auto _ : state) {
    util::SeqSet s;
    // Even blocks first, then the odd blocks that bridge them.
    for (util::Seq b = 0; b < blocks; b += 2) {
      s.insert_range(b * kBlock + 1, (b + 1) * kBlock);
    }
    for (util::Seq b = 1; b < blocks; b += 2) {
      s.insert_range(b * kBlock + 1, (b + 1) * kBlock);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(kBlock));
}
BENCHMARK(BM_SeqSetInsertRangeBlocks)->Arg(64)->Arg(1024);

// --- SeqSet: merge (the per-INFO-exchange cost) --------------------------

// Dense-large: both sides hold millions of elements in a handful of
// intervals — the caught-up steady state at production stream lengths.
// Cost must scale with the interval count, not the element count.
void BM_SeqSetMergeDenseLarge(benchmark::State& state) {
  const auto n = static_cast<util::Seq>(state.range(0));
  util::SeqSet a = util::SeqSet::contiguous(n);
  a.insert_range(n + 100, 2 * n);  // one gap near the top
  util::SeqSet b = util::SeqSet::contiguous(2 * n);
  for (auto _ : state) {
    util::SeqSet target = a;
    target.merge(b);
    benchmark::DoNotOptimize(target);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_SeqSetMergeDenseLarge)->Arg(1 << 20);

// Sparse: many disjoint runs on both sides (lossy-link fragmentation).
void BM_SeqSetMergeSparse(benchmark::State& state) {
  const auto runs = static_cast<util::Seq>(state.range(0));
  util::SeqSet a;
  util::SeqSet b;
  for (util::Seq r = 0; r < runs; ++r) {
    // Disjoint 4-element runs, interleaved between the two sets.
    a.insert_range(r * 16 + 1, r * 16 + 4);
    b.insert_range(r * 16 + 8, r * 16 + 11);
  }
  for (auto _ : state) {
    util::SeqSet target = a;
    target.merge(b);
    benchmark::DoNotOptimize(target);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_SeqSetMergeSparse)->Arg(1024)->Arg(8192);

// Adversarial: odds merged with evens — every merged interval bridges, the
// worst case for coalescing logic.
void BM_SeqSetMergeAdversarial(benchmark::State& state) {
  const auto n = static_cast<util::Seq>(state.range(0));
  util::SeqSet odds;
  util::SeqSet evens;
  for (util::Seq q = 1; q <= n; q += 2) odds.insert(q);
  for (util::Seq q = 2; q <= n; q += 2) evens.insert(q);
  for (auto _ : state) {
    util::SeqSet target = odds;
    target.merge(evens);
    benchmark::DoNotOptimize(target);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetMergeAdversarial)->Arg(1 << 14);

// --- SeqSet: gap queries (the per-gap-fill-round cost) -------------------

void BM_SeqSetMissingFrom(benchmark::State& state) {
  util::SeqSet mine = util::SeqSet::contiguous(10000);
  util::SeqSet peer;
  for (util::Seq q = 1; q <= 10000; ++q) {
    if (q % 11 != 0) peer.insert(q);
  }
  for (auto _ : state) {
    auto missing = mine.missing_from(peer, 64);
    benchmark::DoNotOptimize(missing);
  }
}
BENCHMARK(BM_SeqSetMissingFrom);

// Dense-large: a caught-up filler planning for a peer whose few holes sit
// near the top of a multi-million-message stream. An element-wise scan
// probes every element below the holes; an interval walk skips straight to
// them.
void BM_SeqSetMissingFromDenseLarge(benchmark::State& state) {
  const auto n = static_cast<util::Seq>(state.range(0));
  util::SeqSet mine = util::SeqSet::contiguous(n);
  // 64 single-element holes in the peer's top 1% of the stream.
  std::vector<util::Seq> holes;
  for (util::Seq i = 0; i < 64; ++i) holes.push_back(n - 1 - i * (n / 6400));
  std::sort(holes.begin(), holes.end());
  util::SeqSet peer;
  util::Seq cursor = 1;
  for (util::Seq h : holes) {
    if (cursor <= h - 1) peer.insert_range(cursor, h - 1);
    cursor = h + 1;
  }
  if (cursor <= n) peer.insert_range(cursor, n);
  for (auto _ : state) {
    auto missing = mine.missing_from(peer);
    benchmark::DoNotOptimize(missing);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqSetMissingFromDenseLarge)->Arg(1 << 20);

// Adversarial: maximally fragmented peer (every other element missing)
// under a small burst limit — the early-exit path must stay O(output).
void BM_SeqSetMissingFromAdversarial(benchmark::State& state) {
  const auto n = static_cast<util::Seq>(state.range(0));
  util::SeqSet mine = util::SeqSet::contiguous(n);
  util::SeqSet peer;
  for (util::Seq q = 2; q <= n; q += 2) peer.insert(q);
  for (auto _ : state) {
    auto missing = mine.missing_from(peer, 64);
    benchmark::DoNotOptimize(missing);
  }
}
BENCHMARK(BM_SeqSetMissingFromAdversarial)->Arg(1 << 16);

void BM_SeqSetGapsFragmented(benchmark::State& state) {
  const auto n = static_cast<util::Seq>(state.range(0));
  util::SeqSet s;
  for (util::Seq q = 1; q <= n; ++q) {
    if (q % 5 != 0) s.insert(q);
  }
  for (auto _ : state) {
    auto g = s.gaps(64);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_SeqSetGapsFragmented)->Arg(1 << 16);

void BM_SeqSetContains(benchmark::State& state) {
  util::SeqSet s;
  for (util::Seq q = 1; q <= 100000; ++q) {
    if (q % 3 != 0) s.insert(q);
  }
  util::Seq probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.contains(probe));
    probe = probe % 100000 + 1;
  }
}
BENCHMARK(BM_SeqSetContains);

// --- event queue ---------------------------------------------------------

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule((i * 7919) % 100000, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

// Timer churn: the protocol's dominant queue workload is arm/disarm of
// liveness and attach timers that almost never fire. A lazy-deletion heap
// with no compaction grows without bound here; the benchmark holds a small
// live set while cycling many cancelled tombstones through the queue.
void BM_EventQueueChurn(benchmark::State& state) {
  const int rearms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    constexpr int kTimers = 64;  // live timers per host-like entity
    std::vector<sim::EventId> ids(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      ids[static_cast<std::size_t>(i)] =
          q.schedule(1000000 + i, [] {});  // far future
    }
    for (int r = 0; r < rearms; ++r) {
      const std::size_t slot = static_cast<std::size_t>(r % kTimers);
      q.cancel(ids[slot]);
      ids[slot] = q.schedule(1000000 + r, [] {});
    }
    while (!q.empty()) q.pop();
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(10000)->Arg(100000);

// Interleaved schedule/cancel/pop with time progress — the simulator's
// actual access pattern, including next_time() probes.
void BM_EventQueueMixed(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> pending;
    std::uint64_t x = 88172645463325252ULL;  // xorshift, deterministic
    for (int i = 0; i < ops; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const auto r = x % 100;
      if (r < 50 || pending.empty()) {
        pending.push_back(q.schedule(static_cast<sim::TimePoint>(i + x % 64),
                                     [] {}));
      } else if (r < 80) {
        q.cancel(pending[x % pending.size()]);
      } else if (!q.empty()) {
        q.pop();
      }
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueMixed)->Arg(10000);

// --- telemetry plane ------------------------------------------------------

// The per-event cost observability adds to the data plane: one owned
// counter increment. This must stay within noise of a bare uint64_t add —
// the registry hands out a reference, so there is no lookup on the hot
// path (DESIGN.md §14).
void BM_RegistryCounterInc(benchmark::State& state) {
  util::MetricsRegistry registry;
  util::MetricsRegistry::Counter& counter =
      registry.counter("bench.hot_path");
  for (auto _ : state) {
    counter.inc();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounterInc);

// One delivery-latency observation on the shared sampler bounds: a bucket
// scan over ten bounds plus sum/count — what rbcast_node pays per
// first-delivery.
void BM_RegistryHistogramRecord(benchmark::State& state) {
  util::MetricsRegistry registry;
  util::Histogram& histogram = registry.histogram(
      "bench.latency_seconds", trace::MetricSampler::latency_bounds());
  double v = 0.0004;
  for (auto _ : state) {
    histogram.add(v);
    v = v < 50.0 ? v * 1.7 : 0.0004;  // sweeps every bucket incl. +inf
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryHistogramRecord);

// Scrape-side cost: evaluating a fleet-sized registry (32 hosts x 10
// callback series) into a snapshot, as every /metrics or /status hit does.
// Off the data plane, but it shares the node's event loop.
void BM_RegistrySnapshot(benchmark::State& state) {
  util::MetricsRegistry registry;
  std::uint64_t backing = 0;
  for (int h = 0; h < 32; ++h) {
    const std::string labels = "host=\"" + std::to_string(h) + "\"";
    for (int s = 0; s < 10; ++s) {
      registry.register_counter_fn("bench.series" + std::to_string(s),
                                   labels, "",
                                   [&backing] { return ++backing; });
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(registry.size()));
}
BENCHMARK(BM_RegistrySnapshot);

// --- routing & full scenario --------------------------------------------

void BM_RoutingRecompute(benchmark::State& state) {
  topo::ClusteredWanOptions options;
  options.clusters = static_cast<int>(state.range(0));
  options.hosts_per_cluster = 4;
  options.shape = topo::TrunkShape::kRing;
  options.extra_trunk_fraction = 0.5;
  const auto wan = make_clustered_wan(options);
  sim::Simulator simulator;
  net::Routing routing(
      simulator, wan.topology, [](LinkId) { return true; }, 0);
  for (auto _ : state) {
    routing.recompute_now();
  }
  state.counters["servers"] =
      static_cast<double>(wan.topology.server_count());
}
BENCHMARK(BM_RoutingRecompute)->Arg(5)->Arg(15)->Arg(30);

void BM_FullScenarioThroughput(benchmark::State& state) {
  // Events per second of a complete 3x3 WAN scenario with a live stream.
  for (auto _ : state) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 3;
    wan.hosts_per_cluster = 3;
    harness::ScenarioOptions options;
    options.seed = 12;
    harness::Experiment e(make_clustered_wan(wan).topology, options);
    e.start();
    e.broadcast_stream(20, sim::milliseconds(500), sim::seconds(1));
    e.run_for(sim::seconds(60));
    benchmark::DoNotOptimize(e.metrics().counter_prefix_sum("send."));
  }
}
BENCHMARK(BM_FullScenarioThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
