// E9 — Figure 3.2: the host parent graph induces the cluster tree, and the
// attachment procedure prefers the parent cluster that "receives broadcast
// messages ahead" of the alternatives.
//
// Topology: R (source) -> {C', C''} -> C, with every trunk on the C'' side
// 8x slower, so mid-stream the INFO sets order as R > C' > C'' (pipeline
// lag). While R is reachable it is legal - and delay-optimal - for every
// leader to attach directly into R, so the C'-versus-C'' choice is posed
// by partitioning R away mid-stream: C's leader must then choose between
// C' and C'', and the paper says it must pick the prompter C'. After the
// partition heals, R pulls ahead again and case II option (3) migrates C
// back toward R.
#include "support/common.h"

namespace rbcast::bench {
namespace {

// Cluster index (into fig.cluster_hosts) containing host `h`, or -1.
int cluster_of(const topo::Figure32& fig, HostId h) {
  for (std::size_t c = 0; c < fig.cluster_hosts.size(); ++c) {
    for (HostId member : fig.cluster_hosts[c]) {
      if (member == h) return static_cast<int>(c);
    }
  }
  return -1;
}

// C's current leader: the member of cluster C whose parent is outside C
// (or missing).
HostId leader_of_c(harness::Experiment& e, const topo::Figure32& fig) {
  for (HostId h : fig.cluster_hosts[3]) {
    const HostId p = e.host(h).parent();
    if (!p.valid() || cluster_of(fig, p) != 3) return h;
  }
  return kNoHost;
}

void run() {
  print_header(
      "E9 bench_fig32",
      "Figure 3.2: R -> {C', C''} -> C with the C'' side 8x slower\n"
      "(paper: C should hang off the cluster that receives messages ahead "
      "- C';\n the parent graph must keep inducing the cluster tree "
      "throughout)");

  auto fig = topo::make_figure_3_2();
  auto slow = topo::LinkParams::expensive_defaults();
  // Laggy but sufficient: the slow side must still have the capacity to
  // carry the steady stream (4 msg/s x ~290 B), or it would congestion-
  // collapse rather than merely lag.
  slow.propagation_delay *= 8;
  slow.bandwidth_bytes_per_sec /= 4;
  fig.topology.set_link_params(fig.trunk_r_cpp, slow);
  fig.topology.set_link_params(fig.trunk_cpp_c, slow);

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  options.seed = 9;
  harness::Experiment e(fig.topology, options);
  warm_up(e);

  // One continuous stream across all three phases.
  const sim::TimePoint t0 = e.simulator().now();
  e.broadcast_stream(400, sim::milliseconds(250), t0 + sim::seconds(1));

  util::Table table({"phase", "C leader", "leader's parent cluster",
                     "induces cluster tree", "leaders/cluster"});
  auto report_phase = [&](const std::string& phase) {
    const auto report = e.convergence();
    const HostId leader = leader_of_c(e, fig);
    const HostId parent = leader.valid() ? e.host(leader).parent() : kNoHost;
    const int pc = parent.valid() ? cluster_of(fig, parent) : -1;
    const char* names[] = {"R", "C'", "C''", "C"};
    std::string leaders;
    for (int n : report.leaders_per_cluster) {
      leaders += std::to_string(n) + " ";
    }
    table.row()
        .cell(phase)
        .cell(leader.valid() ? "h" + std::to_string(leader.value) : "none")
        .cell(pc >= 0 ? names[pc] : "(none)")
        .cell(report.induces_cluster_tree ? "yes" : "no")
        .cell(leaders);
  };

  // Phase 1: everything up. Leaders legally concentrate under R (the most
  // advanced INFO sets live there).
  e.run_for(sim::seconds(30));
  report_phase("all up (R visible)");

  // Phase 2: partition R away mid-stream. To pose the paper's question,
  // cluster C is first starved for a few seconds (its C'-side trunk down,
  // so its data detours over the slow C'' side and queues there), then the
  // R trunks are cut — the queued backlog dies with them — and the C'-C
  // trunk comes back. Now C is behind, C' is the most advanced host in the
  // partition and C'' lags it: C's leader must re-parent, and per the
  // paper it must pick the prompter C'.
  e.network().set_link_up(fig.trunk_cp_c, false);
  e.run_for(sim::seconds(4));
  e.network().set_link_up(fig.trunk_r_cp, false);
  e.network().set_link_up(fig.trunk_r_cpp, false);
  e.network().set_link_up(fig.trunk_cp_c, true);
  e.run_for(sim::seconds(40));
  report_phase("R partitioned away");

  // Phase 3: heal. R pulls ahead again; II.3 migrates leaders back.
  e.network().set_link_up(fig.trunk_r_cp, true);
  e.network().set_link_up(fig.trunk_r_cpp, true);
  e.run_for(sim::seconds(60));
  report_phase("partition healed");

  table.print(std::cout);

  // Let the stream finish and verify completeness.
  e.run_until_delivered(e.simulator().now() + sim::seconds(300),
                        sim::milliseconds(500));
  const auto final_report = e.convergence();
  std::cout << "\nfinal: induces cluster tree = "
            << (final_report.induces_cluster_tree ? "yes" : "no")
            << ", all caught up = "
            << (final_report.all_caught_up ? "yes" : "no") << "\n";
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
