// E1 — the Section 5 cost claim.
//
// "With the cluster tree arrangement we need only k-1 inter-cluster
//  transmissions, where k is the number of clusters, to broadcast one data
//  message. Clearly, this is optimal. In the basic algorithm, a data
//  message from the source is sent separately to each host. That would
//  require at least k-1 inter-cluster transmissions, and probably more if
//  there is more than one host per cluster."
//
// We sweep k (clusters) x m (hosts per cluster) on a failure-free WAN and
// count inter-cluster host-to-host transmissions of the data family per
// broadcast message. Expected: the cluster-tree protocol sits at ~k-1
// regardless of m; the basic algorithm sits at m*(k-1).
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  int k;
  int m;
  double tree_cost;
  double basic_cost;
};

double run_one(int k, int m, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = k;
  wan.hosts_per_cluster = m;
  wan.shape = topo::TrunkShape::kRing;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol =
      scaled_protocol_config(static_cast<std::size_t>(k) * m);
  options.basic = default_basic_config();
  options.seed = 1;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e, sim::seconds(30 + 2 * k * m));

  constexpr int kMessages = 40;
  stream_and_finish(e, kMessages, sim::milliseconds(500));
  return static_cast<double>(e.metrics().intercluster_data_sends()) /
         kMessages;
}

void run() {
  print_header(
      "E1 bench_cost",
      "Inter-cluster host-to-host data transmissions per broadcast "
      "message\n(paper: cluster tree = k-1, optimal; basic >= k-1, "
      "more with >1 host/cluster;\n gossip [Deme87] included as a "
      "cluster-oblivious epidemic reference)");

  util::Table table({"clusters k", "hosts/cluster m", "optimal (k-1)",
                     "cluster tree", "basic", "gossip"});
  for (int k : {2, 4, 6, 8, 10}) {
    for (int m : {1, 2, 4}) {
      const double tree = run_one(k, m, harness::ProtocolKind::kPaper);
      const double basic = run_one(k, m, harness::ProtocolKind::kBasic);
      const double gossip = run_one(k, m, harness::ProtocolKind::kGossip);
      table.row()
          .cell(k)
          .cell(m)
          .cell(k - 1)
          .cell(tree, 2)
          .cell(basic, 2)
          .cell(gossip, 2);
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
