// E2 — the Section 5 delay claim.
//
// "As far as the delay characteristics, our algorithm appears to be
//  comparable with the basic one. ... the tree that is dynamically
//  maintained by it tends to provide the shortest paths from the source to
//  all other hosts."
//
// Same failure-free sweep as E1; we report mean and p95 first-delivery
// latency. Expected shape: comparable delays at small scale; at larger
// host counts the basic algorithm's serial unicasting through the source's
// single access pipe inflates its delays (the congestion effect, E5),
// while the tree distributes forwarding.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Delays {
  double mean;
  double p95;
};

Delays run_one(int k, int m, harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = k;
  wan.hosts_per_cluster = m;
  wan.shape = topo::TrunkShape::kRing;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol =
      scaled_protocol_config(static_cast<std::size_t>(k) * m);
  options.basic = default_basic_config();
  options.seed = 2;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e, sim::seconds(30 + 2 * k * m));
  stream_and_finish(e, 40, sim::milliseconds(500));

  const auto latencies = e.metrics().all_latencies();
  return Delays{latencies.mean(), latencies.quantile(0.95)};
}

void run() {
  print_header("E2 bench_delay",
               "First-delivery latency (seconds), failure-free WAN\n(paper: "
               "tree delay comparable to basic; tree does not depend on "
               "network routing)");

  util::Table table({"clusters k", "hosts/cluster m", "tree mean", "tree p95",
                     "basic mean", "basic p95", "gossip mean", "gossip p95"});
  for (int k : {2, 4, 8}) {
    for (int m : {1, 4, 8}) {
      const Delays tree = run_one(k, m, harness::ProtocolKind::kPaper);
      const Delays basic = run_one(k, m, harness::ProtocolKind::kBasic);
      const Delays gossip = run_one(k, m, harness::ProtocolKind::kGossip);
      table.row()
          .cell(k)
          .cell(m)
          .cell(tree.mean, 3)
          .cell(tree.p95, 3)
          .cell(basic.mean, 3)
          .cell(basic.p95, 3)
          .cell(gossip.mean, 3)
          .cell(gossip.p95, 3);
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
