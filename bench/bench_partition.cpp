// E4 — the Section 5 partition claim.
//
// "In a partitioned network, the source, using the basic algorithm, does
//  not stop trying to send data messages to all the hosts that are cut off
//  from it, which is wasteful. In our algorithm, the hosts in the same
//  partition will tend to organize into a tree, and only the root will
//  periodically probe the network."
//
// A line of three clusters; the trunk next to the source's cluster goes
// down for a long window mid-stream. We count data-family transmissions
// that died inside the network during the partition (wasted bandwidth) and
// the time to complete the stream after repair.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  std::uint64_t wasted_data;      // data-family sends dropped in the window
  std::uint64_t wasted_control;   // control sends dropped in the window
  double catchup_seconds;         // repair -> everyone complete
  // Fraction of all (host, msg) deliveries complete over time — the
  // "delivery curve" whose flat segment is the partition.
  std::vector<std::pair<double, double>> curve;
};

Row run_one(harness::ProtocolKind kind) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  wan.shape = topo::TrunkShape::kLine;
  const auto built = make_clustered_wan(wan);

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = default_protocol_config();
  options.basic = default_basic_config();
  options.seed = 4;

  harness::Experiment e(built.topology, options);
  warm_up(e);  // ends around t=30s with metrics reset

  const sim::TimePoint t0 = e.simulator().now();
  const sim::TimePoint cut_at = t0 + sim::seconds(10);
  const sim::TimePoint heal_at = t0 + sim::seconds(70);
  e.faults().partition_window({built.trunks[0]}, cut_at, heal_at);

  // 40 messages, one per second: most of the stream happens while the
  // source's cluster is cut off from the other two.
  e.broadcast_stream(40, sim::seconds(1), t0 + sim::seconds(1));

  // Measure drops during the partition window only.
  e.run_until(cut_at);
  const auto drops_before_data = e.metrics().counter("drop_kind.data") +
                                 e.metrics().counter("drop_kind.data_retx") +
                                 e.metrics().counter("drop_kind.gapfill");
  const auto total_before = e.metrics().counter_prefix_sum("drop_kind.");
  e.run_until(heal_at);
  const auto drops_after_data = e.metrics().counter("drop_kind.data") +
                                e.metrics().counter("drop_kind.data_retx") +
                                e.metrics().counter("drop_kind.gapfill");
  const auto total_after = e.metrics().counter_prefix_sum("drop_kind.");

  const sim::TimePoint done =
      e.run_until_delivered(heal_at + sim::seconds(400),
                            sim::milliseconds(200));
  return Row{
      drops_after_data - drops_before_data,
      (total_after - total_before) - (drops_after_data - drops_before_data),
      sim::to_seconds(done - heal_at),
      e.metrics().completion_curve(5.0, e.host_count())};
}

void run() {
  print_header(
      "E4 bench_partition",
      "60 s partition isolating the source's cluster, 40-message stream\n"
      "(paper: basic wastes data transmissions on unreachable hosts for the\n"
      " whole partition; the tree only probes with control traffic, and\n"
      " catches the cut-off clusters up after repair)");

  util::Table table({"protocol", "wasted data msgs", "wasted control msgs",
                     "catch-up after repair (s)"});
  const Row tree = run_one(harness::ProtocolKind::kPaper);
  const Row basic = run_one(harness::ProtocolKind::kBasic);
  table.row()
      .cell("tree")
      .cell(tree.wasted_data)
      .cell(tree.wasted_control)
      .cell(tree.catchup_seconds, 1);
  table.row()
      .cell("basic")
      .cell(basic.wasted_data)
      .cell(basic.wasted_control)
      .cell(basic.catchup_seconds, 1);
  table.print(std::cout);

  // The delivery curve: flat through the partition (t in [40, 100] on the
  // measurement clock), then the tree catches up via gap filling while the
  // basic source grinds through retransmissions.
  std::cout << "\nDelivery curve (fraction of all host-deliveries "
               "complete; warm-up ends ~t=30, partition spans ~t=40..100):"
               "\n\n";
  util::Table curve({"sim time t (s)", "tree", "basic"});
  const std::size_t points =
      std::max(tree.curve.size(), basic.curve.size());
  for (std::size_t i = 0; i < points; ++i) {
    auto value_at = [&](const Row& row) {
      if (row.curve.empty()) return 0.0;
      if (i < row.curve.size()) return row.curve[i].second;
      return row.curve.back().second;
    };
    const double t = !tree.curve.empty() && i < tree.curve.size()
                         ? tree.curve[i].first
                         : static_cast<double>(i) * 5.0;
    curve.row().cell(t, 0).cell(value_at(tree), 3).cell(value_at(basic), 3);
  }
  curve.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
