// E10 — Figure 4.1: non-neighbor gap filling.
//
// "as i and j are not parent graph neighbors, they will not be able to
//  fill each other's gap even though they can communicate with each
//  other. To deal with this kind of situations we have to extend the
//  periodic gap filling process ... so that it takes place even among
//  hosts that are not host parent graph neighbors."
//
// We engineer the figure's exact state (complementary holes, equal INFO
// maxima, source cut off) and compare the protocol with and without the
// extension: time until both i and j are complete, or "never".
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Outcome {
  bool complete;
  double heal_seconds;   // from source cut-off to both hosts complete
  std::uint64_t nonneighbor_fills;
};

Outcome run_one(bool nonneighbor_gapfill) {
  const auto fig = topo::make_figure_4_1();

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  options.protocol.nonneighbor_gapfill = nonneighbor_gapfill;
  // i and j keep s as their parent (the figure's premise).
  options.protocol.parent_timeout = sim::seconds(100000);
  // Small bodies keep trunk transit (~35 ms) inside the toggle spacing of
  // the engineered-loss window below.
  options.protocol.data_bytes = 64;
  options.seed = 10;

  harness::Experiment e(fig.topology, options);
  auto& net = e.network();
  e.start();
  e.broadcast();  // seq 1 forms the tree s -> {i, j}
  e.run_for(sim::seconds(15));

  // Engineer the complementary losses inside one stale-routing window
  // (see tests/integration_test.cpp for the rationale); toggles are spaced
  // so a trunk going down never kills a wanted in-flight copy.
  net.set_link_up(fig.trunk_si, false);
  e.run_for(sim::milliseconds(1));
  e.broadcast();  // seq 2 -> j only
  e.run_for(sim::milliseconds(59));
  net.set_link_up(fig.trunk_si, true);
  net.set_link_up(fig.trunk_sj, false);
  e.run_for(sim::milliseconds(1));
  e.broadcast();  // seq 3 -> i only
  e.run_for(sim::milliseconds(59));
  net.set_link_up(fig.trunk_sj, true);
  e.run_for(sim::milliseconds(1));
  e.broadcast();  // seq 4 -> both
  e.run_for(sim::milliseconds(60));
  // Cut s off for good.
  net.set_link_up(e.topology().host(fig.s).access_link, false);
  e.run_for(sim::milliseconds(200));

  const std::uint64_t fills_before = e.metrics().counter("send.gapfill");
  const sim::TimePoint cut_at = e.simulator().now();
  const sim::TimePoint deadline = cut_at + sim::seconds(300);
  while (e.simulator().now() < deadline) {
    if (e.host(fig.i).info().count() == 4 &&
        e.host(fig.j).info().count() == 4) {
      return Outcome{true, sim::to_seconds(e.simulator().now() - cut_at),
                     e.metrics().counter("send.gapfill") - fills_before};
    }
    e.run_for(sim::milliseconds(200));
  }
  return Outcome{false, -1.0,
                 e.metrics().counter("send.gapfill") - fills_before};
}

void run() {
  print_header(
      "E10 bench_fig41",
      "Figure 4.1: source isolated after partial delivery; INFO_i = "
      "{1,3,4}, INFO_j = {1,2,4}\n(paper: neighbor-only gap filling cannot "
      "help — i and j are not parent-graph\n neighbors and neither INFO set "
      "dominates; the Section 4.4 extension is required)");

  util::Table table({"gap filling", "both hosts complete",
                     "heal time after cut (s)", "gap-fill msgs sent"});
  const Outcome with = run_one(true);
  const Outcome without = run_one(false);
  table.row()
      .cell("neighbor + non-neighbor (Section 4.4)")
      .cell(with.complete ? "yes" : "no")
      .cell(with.complete ? with.heal_seconds : -1.0, 1)
      .cell(with.nonneighbor_fills);
  table.row()
      .cell("neighbor only (ablation)")
      .cell(without.complete ? "yes" : "NO - stalls forever")
      .cell(without.complete ? without.heal_seconds : -1.0, 1)
      .cell(without.nonneighbor_fills);
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
