// E11 — the Section 6 cluster-knowledge discussion.
//
// "even if such [dynamic] information is unavailable, but instead there is
//  a static knowledge of clusters, the latter can be used in the
//  algorithm, albeit with less satisfying performance results.
//  Furthermore, if no cluster information at all is available, the
//  algorithm still can be used, with the assumption that every host is in
//  a separate cluster by itself."
//
// Same WAN, same stream, three knowledge modes. Expected: dynamic and
// static track the k-1 inter-cluster optimum; "none" treats every host as
// its own cluster, so the tree spans hosts rather than clusters and the
// expensive-transmission count rises toward n-1.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double intercluster_per_msg;
  double mean_delay_s;
  double control_per_s;
};

Row run_one(core::Config::ClusterKnowledge mode) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 4;
  wan.shape = topo::TrunkShape::kRing;

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  options.protocol.cluster_knowledge = mode;
  options.seed = 11;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e, sim::seconds(40));

  constexpr int kMessages = 40;
  constexpr double kWindow = 120.0;
  const sim::TimePoint t0 = e.simulator().now();
  e.broadcast_stream(kMessages, sim::seconds(1), t0 + sim::seconds(1));
  e.run_until(t0 + sim::from_seconds(kWindow));

  const auto& m = e.metrics();
  const double data = static_cast<double>(m.counter("send.data") +
                                          m.counter("send.gapfill"));
  const double control =
      static_cast<double>(m.counter_prefix_sum("send.")) - data -
      static_cast<double>(m.counter_prefix_sum("send.intercluster."));
  return Row{
      static_cast<double>(m.intercluster_data_sends()) / kMessages,
      m.all_latencies().mean(), control / kWindow};
}

void run() {
  print_header(
      "E11 bench_cluster_knowledge",
      "Cluster-knowledge modes on a 3x4 WAN (k-1 = 2 optimal, n-1 = 11 "
      "worst case)\n(paper: static knowledge works with less satisfying "
      "results; no knowledge\n degenerates to per-host 'clusters' yet still "
      "broadcasts reliably)");

  util::Table table({"cluster knowledge", "inter-cluster data/msg",
                     "mean delay s", "control sends/s"});
  const char* names[] = {"dynamic (cost bit)", "static (fixed at start)",
                         "none (every host alone)"};
  const core::Config::ClusterKnowledge modes[] = {
      core::Config::ClusterKnowledge::kDynamic,
      core::Config::ClusterKnowledge::kStatic,
      core::Config::ClusterKnowledge::kNone};
  for (int i = 0; i < 3; ++i) {
    const Row row = run_one(modes[i]);
    table.row()
        .cell(names[i])
        .cell(row.intercluster_per_msg, 2)
        .cell(row.mean_delay_s, 3)
        .cell(row.control_per_s, 1);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
