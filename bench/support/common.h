// Shared plumbing for the experiment benches.
//
// Every bench regenerates one row/figure of the paper's evaluation: it
// builds a scenario through harness::Experiment, runs a warm-up phase (the
// protocol's tree must form before steady-state numbers mean anything),
// resets the metrics, streams a measured workload, and prints a table.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "rbcast.h"

namespace rbcast::bench {

// Steady-state protocol parameters used across benches (one place so the
// experiments are comparable). Deliberately mid-range: Section 6 points
// out these are the cost/reliability tuning knobs; bench_tradeoff sweeps
// them explicitly.
inline core::Config default_protocol_config() {
  core::Config c;
  c.attach_period = sim::seconds(1);
  c.info_period_intra = sim::milliseconds(500);
  c.info_period_inter = sim::seconds(2);
  c.gapfill_period_neighbor = sim::seconds(1);
  c.gapfill_period_far = sim::seconds(4);
  c.parent_timeout = sim::seconds(6);
  // Must comfortably exceed the worst host-to-host round trip (slow trunks
  // plus queueing), or a host behind a slow link livelocks cycling through
  // candidates whose accepts keep arriving "late".
  c.attach_ack_timeout = sim::seconds(2);
  c.data_bytes = 256;
  return c;
}

// Section 6: the exchange frequencies "can be tuned according to specific
// cost-reliability requirements". A real deployment must keep the
// aggregate control traffic inside the expensive-trunk capacity, which
// grows with the host count (INFO exchange is all-pairs). This helper
// applies that tuning: beyond 16 hosts, the inter-cluster periods stretch
// proportionally so control load per trunk stays roughly constant.
inline core::Config scaled_protocol_config(std::size_t host_count) {
  core::Config c = default_protocol_config();
  const double factor =
      std::max(1.0, static_cast<double>(host_count) / 16.0);
  auto scale = [&](sim::Duration d) {
    return static_cast<sim::Duration>(static_cast<double>(d) * factor);
  };
  c.info_period_inter = scale(c.info_period_inter);
  c.gapfill_period_far = scale(c.gapfill_period_far);
  return c;
}

inline core::BasicConfig default_basic_config() {
  core::BasicConfig c;
  c.retransmit_period = sim::seconds(2);
  return c;
}

// Runs one warm-up broadcast and lets the host parent graph converge.
inline void warm_up(harness::Experiment& e,
                    sim::Duration settle = sim::seconds(30)) {
  e.start();
  e.broadcast();
  e.run_for(settle);
  e.metrics().reset();
}

// Streams `count` messages `interval` apart, then runs until every host
// has everything (or the deadline passes). Returns the virtual completion
// time measured from the start of the stream.
inline double stream_and_finish(harness::Experiment& e, int count,
                                sim::Duration interval,
                                sim::Duration deadline = sim::seconds(600)) {
  const sim::TimePoint begin = e.simulator().now();
  e.broadcast_stream(count, interval, begin + sim::milliseconds(1));
  const sim::TimePoint done =
      e.run_until_delivered(begin + deadline, sim::milliseconds(200));
  return sim::to_seconds(done - begin);
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

}  // namespace rbcast::bench
