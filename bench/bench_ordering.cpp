// E14 — the Section 1 unordered-delivery claim.
//
// "it is not essential that broadcast messages be always delivered in the
//  order they were dispatched. ... this relaxation of requirements on a
//  reliable broadcast gives potentially more flexibility to the protocol
//  and may improve its average delay characteristic."
//
// We run the identical lossy scenario twice: once delivering messages to
// the application as they arrive (the paper's discipline) and once through
// a FIFO reorder buffer. The delay difference — especially in the tail,
// where one lost message holds back everything behind it — is the measured
// value of the relaxation. The reorder buffer's peak occupancy is its
// memory price.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double mean_delay;
  double p95_delay;
  double max_delay;
  std::size_t max_buffered;  // reorder-buffer peak (0 when unordered)
};

Row run_one(double trunk_loss, bool ordered) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.expensive.loss_probability = trunk_loss;
  wan.cheap.loss_probability = trunk_loss / 5.0;

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  options.ordered_delivery = ordered;
  options.seed = 14;

  harness::Experiment e(make_clustered_wan(wan).topology, options);
  warm_up(e);
  stream_and_finish(e, 80, sim::milliseconds(400));

  std::size_t max_buffered = 0;
  if (ordered) {
    for (HostId h : e.topology().host_ids()) {
      if (h == e.source()) continue;
      max_buffered =
          std::max(max_buffered, e.ordered_adapter(h).max_buffered());
    }
  }
  const auto latency = e.metrics().all_latencies();
  return Row{latency.mean(), latency.quantile(0.95), latency.max(),
             max_buffered};
}

void run() {
  print_header(
      "E14 bench_ordering",
      "Application-visible delay: unordered (the paper's choice) vs FIFO "
      "reorder buffer\n(Section 1: relaxing order \"may improve its average "
      "delay characteristic\")");

  util::Table table({"trunk loss", "delivery", "mean delay s", "p95 s",
                     "max s", "peak reorder buffer"});
  for (double loss : {0.0, 0.05, 0.15, 0.30}) {
    for (bool ordered : {false, true}) {
      const Row row = run_one(loss, ordered);
      table.row()
          .cell(loss, 2)
          .cell(ordered ? "in-order" : "unordered")
          .cell(row.mean_delay, 3)
          .cell(row.p95_delay, 3)
          .cell(row.max_delay, 3)
          .cell(static_cast<std::uint64_t>(row.max_buffered));
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
