// E16 — the protocol on its native habitat (extension).
//
// The paper's opening example is the ARPANET: nonprogrammable IMPs,
// 56 kbit/s trunks, campus LANs growing at the big sites. This bench runs
// all three protocols on a stylized c. 1980 ARPANET map (20 sites, 27
// trunks, 18 hosts, LANs at MIT/BBN/SRI/UCLA/ISI) with the source at MIT,
// and reports the paper's headline metrics side by side.
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Row {
  double intercluster_per_msg;
  double mean_delay;
  double p95_delay;
  double source_imp_backlog;
  double completion;
};

Row run_one(harness::ProtocolKind kind) {
  const topo::Arpanet net = topo::make_arpanet();
  const HostId source = net.hosts_at.at("MIT").front();
  const ServerId source_imp = net.topology.host(source).server;

  harness::ScenarioOptions options;
  options.protocol_kind = kind;
  options.protocol = scaled_protocol_config(net.hosts.size());
  options.basic = default_basic_config();
  options.gossip.gossip_period = sim::seconds(1);
  options.gossip.fanout = 2;
  options.source = source;
  options.seed = 17;

  harness::Experiment e(net.topology, options);
  warm_up(e, sim::seconds(45));

  constexpr int kMessages = 40;
  const double completion =
      stream_and_finish(e, kMessages, sim::milliseconds(500));
  const auto latency = e.metrics().all_latencies();
  return Row{
      static_cast<double>(e.metrics().intercluster_data_sends()) / kMessages,
      latency.mean(), latency.quantile(0.95),
      e.metrics().max_queue_backlog_seconds(source_imp), completion};
}

void run() {
  print_header(
      "E16 bench_arpanet",
      "All three protocols on a stylized c.1980 ARPANET (20 sites, 27 "
      "trunks at 56 kbit/s,\n 18 hosts, campus LANs at MIT/BBN/SRI/UCLA/ISI; "
      "source at MIT; k = 12 clusters,\n so the inter-cluster optimum is "
      "k-1 = 11)");

  util::Table table({"protocol", "inter-cluster data/msg", "mean delay s",
                     "p95 delay s", "MIT IMP backlog s", "completion s"});
  struct Entry {
    const char* name;
    harness::ProtocolKind kind;
  };
  for (const Entry& entry :
       {Entry{"cluster tree (paper)", harness::ProtocolKind::kPaper},
        Entry{"basic", harness::ProtocolKind::kBasic},
        Entry{"gossip", harness::ProtocolKind::kGossip}}) {
    const Row row = run_one(entry.kind);
    table.row()
        .cell(entry.name)
        .cell(row.intercluster_per_msg, 2)
        .cell(row.mean_delay, 3)
        .cell(row.p95_delay, 3)
        .cell(row.source_imp_backlog, 3)
        .cell(row.completion, 1);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
