// E7 — the Section 6 reliability-cost trade-off.
//
// "The more frequently this is done, the more chance we will have to use
//  the brief interval to deliver the message, and, at the same time, the
//  more costly the algorithm will be."
//
// Flapping trunks plus loss create brief communication opportunities. We
// sweep one knob — the scale of all four exchange periods — and report the
// trade-off frontier: control cost (sends/s) against reliability
// (fraction of messages delivered everywhere within a fixed deadline, and
// mean delay of those delivered).
#include "support/common.h"

namespace rbcast::bench {
namespace {

struct Point {
  double control_per_s;
  double delivered_fraction;  // (host, msg) pairs delivered by the deadline
  double mean_delay_s;
};

Point run_one(double period_scale) {
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 2;
  // A line: every trunk is a cut edge, so a down-phase really is a
  // partition — the brief up-phases are the "communication opportunities"
  // Section 6 talks about.
  wan.shape = topo::TrunkShape::kLine;
  wan.expensive.loss_probability = 0.10;
  const auto built = make_clustered_wan(wan);

  harness::ScenarioOptions options;
  options.protocol = default_protocol_config();
  auto scale = [&](sim::Duration d) {
    return std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(d) * period_scale));
  };
  options.protocol.info_period_intra = scale(options.protocol.info_period_intra);
  options.protocol.info_period_inter = scale(options.protocol.info_period_inter);
  options.protocol.gapfill_period_neighbor =
      scale(options.protocol.gapfill_period_neighbor);
  options.protocol.gapfill_period_far =
      scale(options.protocol.gapfill_period_far);
  options.seed = 7;

  harness::Experiment e(built.topology, options);
  warm_up(e);

  const sim::TimePoint t0 = e.simulator().now();
  constexpr double kWindow = 240.0;
  // Trunks flap: up ~4 s, down ~16 s — connectivity comes in brief
  // windows that a slow exchange schedule will often miss entirely.
  e.faults().flapping(built.trunks, sim::seconds(4), sim::seconds(16),
                      t0 + sim::from_seconds(kWindow) + sim::seconds(3600),
                      e.rngs());

  constexpr int kMessages = 60;
  e.broadcast_stream(kMessages, sim::seconds(2), t0 + sim::seconds(1));
  e.run_until(t0 + sim::from_seconds(kWindow));  // hard deadline

  const auto& m = e.metrics();
  const double expected_deliveries =
      static_cast<double>(kMessages) * static_cast<double>(e.host_count());
  double delivered = 0;
  for (util::Seq q = 2; q <= kMessages + 1; ++q) {  // skip the warm-up msg
    delivered += static_cast<double>(m.delivered_count(q));
  }
  const double data = static_cast<double>(m.counter("send.data") +
                                          m.counter("send.gapfill") +
                                          m.counter("send.data_retx"));
  const double control =
      static_cast<double>(m.counter_prefix_sum("send.")) - data -
      static_cast<double>(m.counter_prefix_sum("send.intercluster."));
  return Point{control / kWindow, delivered / expected_deliveries,
               m.all_latencies().mean()};
}

void run() {
  print_header(
      "E7 bench_tradeoff",
      "Reliability vs control cost under flapping trunks + 5% loss\n"
      "(paper: exchange/gap-fill frequency buys the ability to exploit "
      "brief\n connectivity windows, at proportional control cost)");

  util::Table table({"period scale", "control sends/s",
                     "delivered by deadline", "mean delay s"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const Point p = run_one(scale);
    table.row()
        .cell(scale, 2)
        .cell(p.control_per_s, 1)
        .cell(p.delivered_fraction, 3)
        .cell(p.mean_delay_s, 2);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::run();
  return 0;
}
