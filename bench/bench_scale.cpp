// E15 — scalability and workload-shape sweep (extension; the paper argues
// but never measures scale).
//
// Part 1: host-count sweep. The per-host control load and the delivery
// delay should grow mildly with system size (the tree distributes
// forwarding; control periods are tuned to system size exactly as
// Section 6 prescribes).
//
// Part 2: arrival-process sweep at a fixed mean rate. Bursty workloads
// stress the source's uplink; the cluster tree absorbs bursts noticeably
// better than a flat unicast fan-out would (compare E5).
#include "support/common.h"

namespace rbcast::bench {
namespace {

std::size_t tree_depth(harness::Experiment& e) {
  std::size_t depth = 0;
  for (HostId h : e.topology().host_ids()) {
    std::size_t steps = 0;
    HostId cursor = h;
    while (e.host(cursor).parent().valid() && steps <= e.host_count()) {
      cursor = e.host(cursor).parent();
      ++steps;
    }
    depth = std::max(depth, steps);
  }
  return depth;
}

void sweep_scale() {
  std::cout << "\n--- host-count sweep (clusters x 4 hosts, ring) ---\n";
  util::Table table({"hosts", "completion s", "mean delay s", "p95 delay s",
                     "control sends/s/host", "tree depth"});
  for (int clusters : {2, 4, 8, 16, 24}) {
    const int hosts = clusters * 4;
    topo::ClusteredWanOptions wan;
    wan.clusters = clusters;
    wan.hosts_per_cluster = 4;
    wan.shape = topo::TrunkShape::kRing;

    harness::ScenarioOptions options;
    options.protocol =
        scaled_protocol_config(static_cast<std::size_t>(hosts));
    options.seed = 15;

    harness::Experiment e(make_clustered_wan(wan).topology, options);
    warm_up(e, sim::seconds(30 + 2 * hosts));

    const sim::TimePoint t0 = e.simulator().now();
    const double completion =
        stream_and_finish(e, 40, sim::milliseconds(500));
    const double window =
        sim::to_seconds(e.simulator().now() - t0);

    const auto& m = e.metrics();
    const double data = static_cast<double>(m.counter("send.data") +
                                            m.counter("send.gapfill"));
    const double control =
        static_cast<double>(m.counter_prefix_sum("send.")) - data -
        static_cast<double>(m.counter_prefix_sum("send.intercluster."));
    const auto latency = e.metrics().all_latencies();
    table.row()
        .cell(hosts)
        .cell(completion, 1)
        .cell(latency.mean(), 3)
        .cell(latency.quantile(0.95), 3)
        .cell(control / window / hosts, 2)
        .cell(static_cast<std::uint64_t>(tree_depth(e)));
  }
  table.print(std::cout);
}

void sweep_workload() {
  std::cout << "\n--- arrival-process sweep (4x4 WAN, 60 msgs, mean 0.5 "
               "s spacing) ---\n";
  util::Table table({"arrivals", "completion s", "mean delay s",
                     "p95 delay s", "max source backlog s"});
  for (auto process :
       {harness::ArrivalProcess::kUniform, harness::ArrivalProcess::kPoisson,
        harness::ArrivalProcess::kBursty}) {
    topo::ClusteredWanOptions wan;
    wan.clusters = 4;
    wan.hosts_per_cluster = 4;
    const auto built = make_clustered_wan(wan);
    const ServerId source_server = built.topology.host(HostId{0}).server;

    harness::ScenarioOptions options;
    options.protocol = scaled_protocol_config(16);
    options.protocol.data_bytes = 1024;
    options.seed = 16;

    harness::Experiment e(built.topology, options);
    warm_up(e);

    harness::WorkloadOptions w;
    w.process = process;
    w.messages = 60;
    w.interval = process == harness::ArrivalProcess::kBursty
                     ? sim::milliseconds(2500)  // 5-msg bursts every 2.5 s
                     : sim::milliseconds(500);
    w.burst_size = 5;
    w.first_at = e.simulator().now() + sim::milliseconds(1);
    const sim::TimePoint t0 = e.simulator().now();
    schedule_workload(e, w, util::Rng(16));
    const sim::TimePoint done =
        e.run_until_delivered(t0 + sim::seconds(600));

    const auto latency = e.metrics().all_latencies();
    table.row()
        .cell(harness::to_string(process))
        .cell(sim::to_seconds(done - t0), 1)
        .cell(latency.mean(), 3)
        .cell(latency.quantile(0.95), 3)
        .cell(e.metrics().max_queue_backlog_seconds(source_server), 3);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace rbcast::bench

int main() {
  rbcast::bench::print_header(
      "E15 bench_scale",
      "Scalability and workload-shape sweeps (extension beyond the paper's "
      "evaluation)");
  rbcast::bench::sweep_scale();
  rbcast::bench::sweep_workload();
  return 0;
}
