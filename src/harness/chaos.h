// Chaos harness: serializable fault-schedule specs, seeded expansion into
// concrete schedules, monitored execution, and auto-shrinking reproducers.
//
// A ChaosSpec is a two-line reproducible artifact: the JSON spec plus a
// seed fully determine a run. A spec starts *abstract* — generator knobs
// (how many outages, crashes, partitions, which trunks flap) that
// concretize() expands, with seeded streams, into an explicit list of
// ChaosEvents plus drawn topology/config jitter. A *concrete* spec
// replays its event list verbatim, which is what makes delta-debugging
// possible: shrink_chaos() removes events, shrinks the topology and the
// workload while the run keeps failing, yielding a minimal repro spec.
//
// Every chaos run executes under the online InvariantMonitor
// (src/harness/invariant_monitor.h): the model checker's I1-I5 plus the
// C1-C3 liveness conditions, with faults declared quiet at fault_end_s.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/invariant_monitor.h"
#include "trace/trace_sink.h"

namespace rbcast::harness {

// One concrete fault. Targets are mapped modulo the relevant entity count
// at apply time (trunk index for outages, host id for crashes, cluster
// index for partitions, non-source host index for byz_* behaviors), so a
// schedule stays valid when the topology is shrunk underneath it.
//
// The byz_* types are Byzantine behavior windows (harness/byzantine.h):
// "byz_equivocate" | "byz_corrupt" | "byz_lie_info" | "byz_offer". Each
// behavior is its own event so ddmin can strip them one by one.
struct ChaosEvent {
  std::string type;  // "outage" | "crash" | "partition" | "byz_*"
  int target{0};
  double from_s{0};
  double to_s{0};
};

struct ChaosSpec {
  // --- topology (jittered by concretize when jitter_topology) -----------
  int clusters{4};
  int hosts_per_cluster{3};
  std::string shape{"ring"};  // line | ring | star | random_tree

  // --- workload ----------------------------------------------------------
  int broadcasts{10};
  double interval_s{2.0};
  double first_at_s{5.0};

  // --- horizon and liveness deadlines ------------------------------------
  // All faults end by fault_end_s; the monitor's liveness clocks (C1-C3)
  // start there. horizon_s <= 0 means fault_end + converge_deadline + 10.
  double fault_end_s{60.0};
  double orphan_limit_s{45.0};
  double converge_deadline_s{90.0};
  double horizon_s{0.0};

  // --- generator knobs (ignored once concrete) ---------------------------
  int outages{3};
  int crashes{1};
  int partitions{1};
  int flap_links{2};
  double flap_mean_up_s{8.0};
  double flap_mean_down_s{3.0};
  double min_window_s{2.0};
  double max_window_s{12.0};
  bool jitter_topology{false};
  bool jitter_config{true};

  // Byzantine adversary family: how many non-source hosts turn malicious,
  // and which behaviors each draws a window for. 0 (the default) keeps the
  // faithful honest-host model — no adversary wiring is created at all.
  int byzantine{0};
  bool byz_equivocate{true};
  bool byz_corrupt{true};
  bool byz_lie_info{true};
  bool byz_bogus_offer{true};

  // --- protocol config overrides (drawn by concretize under
  // jitter_config; absent fields keep core::Config defaults) --------------
  std::optional<double> attach_period_s;
  std::optional<double> info_period_inter_s;
  std::optional<double> gapfill_period_neighbor_s;
  std::optional<bool> piggyback_info;
  // Data-plane coalescing (0 ms = batching off, the protocol default).
  std::optional<double> batch_flush_ms;
  std::optional<int> batch_max_bytes;
  // Per-source authentication (core/auth.h) — the Byzantine defense.
  std::optional<bool> auth_enabled;

  // --- concrete schedule --------------------------------------------------
  // `concrete` marks an expanded spec; it stays true even when shrinking
  // empties the event list (a failure that needs no faults at all).
  bool concrete{false};
  std::vector<ChaosEvent> events;
};

// --- (de)serialization ----------------------------------------------------

// Serializes round-trippably: parse_chaos_spec(to_json(s)) == s.
[[nodiscard]] std::string to_json(const ChaosSpec& spec);

// Throws std::invalid_argument on malformed JSON or unknown fields that
// matter; unknown keys are ignored for forward compatibility.
[[nodiscard]] ChaosSpec parse_chaos_spec(const std::string& json);

// Reads and parses a spec file; throws std::invalid_argument on I/O error.
[[nodiscard]] ChaosSpec load_chaos_spec(const std::string& path);

// --- expansion and execution ----------------------------------------------

// Expands an abstract spec into a concrete one: draws topology/config
// jitter and the full fault schedule from streams seeded by `seed`.
// Deterministic; returns concrete specs unchanged.
[[nodiscard]] ChaosSpec concretize(const ChaosSpec& spec, std::uint64_t seed);

struct ChaosRunResult {
  std::vector<InvariantViolation> violations;
  bool delivered_all{false};
  // Virtual time when every host held every message (horizon if never).
  double completion_s{0};
  // The run's reproduction line (seed, topology, protocol, build).
  std::string manifest;
  // Blast-radius summary (meaningful when the spec scheduled Byzantine
  // hosts; empty sets otherwise).
  ContainmentReport containment;
  // Fleet-wide sum of Counters::auth_rejects at end of run.
  std::uint64_t auth_rejects{0};
  [[nodiscard]] bool violated() const { return !violations.empty(); }
};

// Concretizes (if needed) and runs one monitored scenario. `seed` drives
// both the expansion and the simulation. When `sink` is given the whole
// run is traced into it (manifest, protocol events, network events).
[[nodiscard]] ChaosRunResult run_chaos(const ChaosSpec& spec,
                                       std::uint64_t seed,
                                       trace::TraceSink* sink = nullptr);

// The equivalence key a shrink candidate must reproduce and the label
// rbcast_chaos reports per failure: the invariant name, qualified with
// "/byzantine" when the violation is attributed to a lying relay — so
// Byzantine repros are never conflated with crash/partition repros of the
// same invariant.
[[nodiscard]] std::string violation_signature(const InvariantViolation& v);

// --- auto-shrinking --------------------------------------------------------

struct ShrinkResult {
  ChaosSpec spec;  // minimized, concrete
  std::vector<InvariantViolation> violations;  // of the minimized repro
  int attempts{0};       // re-runs spent
  int events_before{0};
  int events_after{0};
};

// Delta-debugs a failing spec to a smaller reproducer: ddmin over the
// concrete event list, then greedy shrinking of topology, workload and
// fault horizon — keeping every candidate only if it still violates the
// same invariant as the original failure. Precondition: run_chaos(spec,
// seed) reports at least one violation (checked; throws otherwise).
[[nodiscard]] ShrinkResult shrink_chaos(const ChaosSpec& failing,
                                        std::uint64_t seed,
                                        int max_attempts = 200);

}  // namespace rbcast::harness
