// Experiment — one-call wiring of a complete scenario.
//
// Owns the simulator, the network built over a given topology, the metrics
// registry, a fault plan, and a full set of protocol hosts (either the
// paper's protocol or the basic baseline). Tests, examples and every bench
// binary are written against this class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/basic_protocol.h"
#include "core/broadcast_host.h"
#include "core/config.h"
#include "core/gossip_protocol.h"
#include "core/ordered_delivery.h"
#include "core/protocol_observer.h"
#include "harness/byzantine.h"
#include "harness/invariant_monitor.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "trace/convergence.h"
#include "transport/sim_transport.h"
#include "trace/event_log.h"
#include "trace/metric_sampler.h"
#include "trace/metrics.h"
#include "trace/net_tap.h"
#include "trace/trace_sink.h"
#include "util/rng.h"

namespace rbcast::harness {

enum class ProtocolKind {
  kPaper,   // the paper's cluster-tree protocol (core::BroadcastHost)
  kBasic,   // the Section-1 baseline (core::BasicSource/BasicReceiver)
  kGossip,  // anti-entropy epidemic baseline (core::GossipNode, [Deme87])
};

struct ScenarioOptions {
  ProtocolKind protocol_kind{ProtocolKind::kPaper};
  core::Config protocol{};
  core::BasicConfig basic{};
  core::GossipConfig gossip{};
  net::NetConfig net{};
  HostId source{0};
  std::uint64_t seed{1};
  // When true (paper protocol only), applications see messages in strict
  // sequence order through core::OrderedDeliveryAdapter; delivery metrics
  // then measure in-order availability rather than first receipt. The
  // paper's Section 1 argues unordered delivery is the cheaper default.
  bool ordered_delivery{false};
  // When true (paper protocol only), an InvariantMonitor shadows the run,
  // checking the model checker's safety invariants I1-I5 online plus the
  // C1-C3 liveness conditions (armed via monitor()->set_faults_quiet_at).
  // Read-only: enabling it does not change the protocol event digest.
  bool monitor_invariants{false};
  MonitorOptions monitor{};
  // Byzantine adversary schedule (paper protocol only): hosts named here
  // send through a mutating ByzantineTransport interposer. Empty (the
  // default) leaves the transport wiring untouched, so the determinism
  // digests are unaffected unless an adversary is actually scheduled.
  ByzantineSchedule byzantine{};
};

class Experiment {
 public:
  // The topology is moved in and must be fully built.
  Experiment(topo::Topology topology, ScenarioOptions options);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Arms all hosts' periodic activities. Call once before running.
  void start();

  // --- tracing -------------------------------------------------------------

  // Streams the run into `sink` (nullptr to stop): the run manifest is
  // emitted immediately, then every protocol event (EventLog mirror) and
  // every host-level network event (trace::NetTap) as they happen.
  // Install before start() so the trace covers the whole run.
  void set_trace_sink(trace::TraceSink* sink);

  // Starts periodic metric sampling (counter deltas, backlog, latency
  // distribution, tree shape) into the installed sink, every `period`.
  // Requires a sink; call after set_trace_sink and before running.
  void enable_metric_sampling(sim::Duration period);

  // The manifest record describing this run (seed, topology, protocol,
  // config, build) — what set_trace_sink writes first, also useful for
  // printing the reproduction line to stdout.
  [[nodiscard]] trace::TraceRecord manifest() const;

  // The sampler, when enabled (sample_now() at run end closes the series).
  [[nodiscard]] trace::MetricSampler* sampler() { return sampler_.get(); }

  // --- workload -----------------------------------------------------------

  // Broadcasts one message now (body auto-generated to the configured
  // size unless given). Records broadcast time in the metrics.
  util::Seq broadcast(std::string body = {});

  // Schedules `count` broadcasts, one every `interval`, starting at
  // `first_at`.
  void broadcast_stream(int count, sim::Duration interval,
                        sim::TimePoint first_at);

  // Schedules a single broadcast at an absolute time (building block for
  // arbitrary workloads; see harness/workload.h).
  void schedule_broadcast_at(sim::TimePoint t);

  // --- execution ------------------------------------------------------------

  void run_until(sim::TimePoint t) { simulator_.run_until(t); }
  void run_for(sim::Duration d) { simulator_.run_for(d); }

  // Runs until every host holds every broadcast message, polling every
  // `poll`; gives up at `deadline`. Returns the completion time, or
  // `deadline` if incomplete.
  sim::TimePoint run_until_delivered(sim::TimePoint deadline,
                                     sim::Duration poll = sim::seconds(1));

  // --- state queries -----------------------------------------------------

  [[nodiscard]] bool all_delivered() const;
  [[nodiscard]] trace::ConvergenceReport convergence() const;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  // The transport the paper hosts run over — benches read its coalescer
  // stats to report datagram amortization when batching is on.
  [[nodiscard]] transport::SimTransport& transport() { return *transport_; }
  // The Byzantine decorator, when a schedule was given (else nullptr).
  [[nodiscard]] ByzantineTransport* byzantine() {
    return byzantine_transport_.get();
  }
  [[nodiscard]] net::FaultPlan& faults() { return *faults_; }
  [[nodiscard]] trace::Metrics& metrics() { return *metrics_; }
  // The runtime metrics registry: the sim transport's coalescer stats are
  // registered at construction, and enable_metric_sampling() folds its
  // counters into the trace as "registry" records. Observation-only.
  [[nodiscard]] util::MetricsRegistry& registry() { return registry_; }
  // Protocol event timeline (paper protocol only; empty for the baseline).
  [[nodiscard]] trace::EventLog& events() { return *events_; }
  // The online invariant monitor (nullptr unless monitor_invariants).
  [[nodiscard]] InvariantMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const util::RngFactory& rngs() const { return rngs_; }
  [[nodiscard]] HostId source() const { return options_.source; }
  [[nodiscard]] std::size_t host_count() const {
    return topology_.host_count();
  }

  // Paper-protocol accessors (precondition: protocol_kind == kPaper).
  [[nodiscard]] core::BroadcastHost& host(HostId id);
  [[nodiscard]] std::vector<const core::BroadcastHost*> host_views() const;

  // Baseline accessors (precondition: protocol_kind == kBasic).
  [[nodiscard]] core::BasicSource& basic_source();

  // Gossip accessors (precondition: protocol_kind == kGossip).
  [[nodiscard]] core::GossipNode& gossip_node(HostId id);

  // Ordered-delivery accessor (precondition: ordered_delivery was set and
  // `id` is not the source).
  [[nodiscard]] core::OrderedDeliveryAdapter& ordered_adapter(HostId id);

  [[nodiscard]] util::Seq last_seq() const { return last_seq_; }

 private:
  topo::Topology topology_;
  ScenarioOptions options_;
  util::RngFactory rngs_;
  sim::Simulator simulator_;
  // Declared before the transport (which registers callbacks into it) so
  // registrations never dangle while snapshots are possible.
  util::MetricsRegistry registry_;
  std::unique_ptr<net::Network> network_;
  // Paper hosts run over the Transport seam (SimTransport is a pure
  // forwarding adapter, so the wiring change is digest-invisible);
  // declared before the hosts so it outlives them.
  std::unique_ptr<transport::SimTransport> transport_;
  // Byzantine decorator over transport_ (ScenarioOptions::byzantine);
  // declared after the transport it wraps and before the hosts that
  // attach through it.
  std::unique_ptr<ByzantineTransport> byzantine_transport_;
  std::unique_ptr<trace::Metrics> metrics_;
  std::unique_ptr<trace::EventLog> events_;
  std::unique_ptr<net::FaultPlan> faults_;

  // Tracing (optional). The fanout lets metrics, the net tap and the
  // sampler observe one network; rebuilt whenever the sink changes.
  trace::TraceSink* sink_{nullptr};
  net::NetObserverFanout observer_fanout_;
  std::unique_ptr<trace::NetTap> net_tap_;
  std::unique_ptr<trace::MetricSampler> sampler_;

  [[nodiscard]] trace::MetricSampler::TreeShape tree_shape() const;
  [[nodiscard]] const char* protocol_name() const;
  void install_observers();

  // Invariant monitoring (optional). The protocol fanout lets the event
  // log and the monitor watch the same hosts; declared before the hosts so
  // it outlives them.
  core::ProtocolObserverFanout proto_fanout_;
  std::unique_ptr<InvariantMonitor> monitor_;

  std::vector<std::unique_ptr<core::BroadcastHost>> paper_hosts_;
  std::vector<std::unique_ptr<core::OrderedDeliveryAdapter>> ordered_;
  std::unique_ptr<core::BasicSource> basic_source_;
  std::vector<std::unique_ptr<core::BasicReceiver>> basic_receivers_;
  std::vector<std::unique_ptr<core::GossipNode>> gossip_nodes_;

  util::Seq last_seq_{0};
  // Stream broadcasts scheduled but not yet generated; all_delivered() is
  // false while any are outstanding (otherwise a poll before the stream
  // starts would report vacuous success).
  int pending_stream_broadcasts_{0};

  [[nodiscard]] std::string make_body() const;
};

}  // namespace rbcast::harness
