#include "harness/invariant_monitor.h"

#include <algorithm>
#include <sstream>
#include <string_view>

#include "model/invariants.h"
#include "trace/convergence.h"
#include "util/assert.h"

namespace rbcast::harness {

namespace inv = model::invariants;

InvariantMonitor::InvariantMonitor(
    sim::Simulator& simulator, std::vector<const core::BroadcastHost*> hosts,
    const net::Network& network, HostId source, MonitorOptions options)
    : simulator_(simulator),
      hosts_(std::move(hosts)),
      network_(network),
      source_(source),
      options_(options),
      delivery_counts_(hosts_.size()),
      delivered_bodies_(hosts_.size()),
      proto_delivered_(hosts_.size()),
      orphan_since_(hosts_.size()),
      sweep_task_(simulator, options.sweep_period, [this] { sweep_now(); }) {
  RBCAST_CHECK_ARG(!hosts_.empty(), "monitor needs at least one host");
  RBCAST_CHECK_ARG(options_.sweep_period > 0, "sweep period must be positive");
  // Every non-source host starts orphaned (parent = NIL) at t=0.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->self() != source_) orphan_since_[i] = sim::TimePoint{0};
  }
}

void InvariantMonitor::start() { sweep_task_.start(options_.sweep_period); }

void InvariantMonitor::set_faults_quiet_at(sim::TimePoint t) {
  quiet_at_ = t;
  liveness_anchor_.reset();
  cycle_since_.reset();
  converge_checked_ = false;
}

void InvariantMonitor::set_byzantine_hosts(std::set<HostId> hosts) {
  byzantine_hosts_ = std::move(hosts);
}

void InvariantMonitor::on_source_broadcast(util::Seq seq,
                                           std::string_view body) {
  RBCAST_CHECK_ARG(seq == source_bodies_.size() + 1,
                   "source broadcasts must be reported in sequence order");
  source_bodies_.emplace_back(body);
  if (quiet_at_.has_value() && !liveness_anchor_.has_value() &&
      simulator_.now() >= *quiet_at_) {
    liveness_anchor_ = simulator_.now();
  }
}

void InvariantMonitor::on_app_delivery(HostId host, util::Seq seq,
                                       std::string_view body) {
  const auto i = static_cast<std::size_t>(host.value);
  RBCAST_CHECK_ARG(host.valid() && i < hosts_.size(), "unknown host");
  ++delivery_counts_[i][seq];
  delivered_bodies_[i].emplace(seq, std::string(body));  // keep the first body seen
  // Blast radius: a delivery of a body the source never generated (wrong
  // bytes, or a sequence beyond the stream) marks this host corrupted; the
  // hop distance to the nearest adversary is measured now, while the
  // parent graph that carried the bad data is still standing. The source
  // itself is exempt: its local delivery IS the ground truth and races
  // the on_source_broadcast report by one event.
  if (!byzantine_hosts_.empty() && host != source_) {
    const bool invented = seq > source_bodies_.size();
    const bool wrong_body = !invented && body != source_bodies_[seq - 1];
    if (invented || wrong_body) note_corruption(host);
  }
}

void InvariantMonitor::note_corruption(HostId host) {
  if (!corrupted_hosts_.insert(host).second) return;  // hosts, not frames
  const int hops = hops_to_byzantine(host);
  // An unreachable host still counts as corrupted; bucket it at the host
  // count so it reads as "farther than any real path".
  const int bucket = hops >= 0 ? hops : static_cast<int>(hosts_.size());
  ++corrupted_by_hops_[bucket];
  max_corruption_hops_ = std::max(max_corruption_hops_, bucket);
}

int InvariantMonitor::hops_to_byzantine(HostId host) const {
  if (byzantine_hosts_.empty()) return -1;
  if (byzantine_hosts_.contains(host)) return 0;
  // Undirected BFS over the current parent edges {i, parent(i)}.
  const std::size_t n = hosts_.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    const HostId parent = hosts_[i]->parent();
    if (!parent.valid()) continue;
    const auto p = static_cast<std::size_t>(parent.value);
    if (p >= n) continue;
    adj[i].push_back(p);
    adj[p].push_back(i);
  }
  std::vector<int> dist(n, -1);
  std::vector<std::size_t> frontier{static_cast<std::size_t>(host.value)};
  dist[static_cast<std::size_t>(host.value)] = 0;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : frontier) {
      if (byzantine_hosts_.contains(hosts_[i]->self())) return dist[i];
      for (const std::size_t j : adj[i]) {
        if (dist[j] >= 0) continue;
        dist[j] = dist[i] + 1;
        next.push_back(j);
      }
    }
    frontier = std::move(next);
  }
  return -1;
}

ContainmentReport InvariantMonitor::containment() const {
  ContainmentReport r;
  r.byzantine = byzantine_hosts_;
  r.corrupted_hosts = corrupted_hosts_;
  r.max_hops = max_corruption_hops_;
  r.hosts_by_hops = corrupted_by_hops_;
  for (const InvariantViolation& v : violations_) {
    if (std::find(r.invariants.begin(), r.invariants.end(), v.invariant) ==
        r.invariants.end()) {
      r.invariants.push_back(v.invariant);
    }
  }
  return r;
}

std::string to_string(const ContainmentReport& r) {
  std::ostringstream os;
  auto put_set = [&os](const std::set<HostId>& s) {
    os << "{";
    bool first = true;
    for (HostId h : s) {
      if (!first) os << ",";
      os << h.value;
      first = false;
    }
    os << "}";
  };
  os << "byzantine=";
  put_set(r.byzantine);
  os << " corrupted=";
  put_set(r.corrupted_hosts);
  os << " max_hops=" << r.max_hops << " by_hops={";
  bool first = true;
  for (const auto& [hops, count] : r.hosts_by_hops) {
    if (!first) os << ",";
    os << hops << ":" << count;
    first = false;
  }
  os << "} invariants=[";
  first = true;
  for (const std::string& id : r.invariants) {
    if (!first) os << ",";
    os << id;
    first = false;
  }
  os << "] contained=" << (r.contained() ? "yes" : "no");
  return os.str();
}

void InvariantMonitor::on_attached(HostId host, HostId /*parent*/) {
  orphan_since_[static_cast<std::size_t>(host.value)].reset();
}

void InvariantMonitor::on_detached(HostId host, HostId /*old_parent*/,
                                   bool /*timeout*/) {
  orphan_since_[static_cast<std::size_t>(host.value)] = simulator_.now();
}

void InvariantMonitor::on_delivered(HostId host, util::Seq seq) {
  // The protocol layer announces each first receipt exactly once; a repeat
  // means a duplicate slipped past the INFO bookkeeping (I1 at the
  // protocol layer, before the application even sees it).
  const auto i = static_cast<std::size_t>(host.value);
  if (!proto_delivered_[i].insert(seq).second) {
    std::ostringstream os;
    os << host << " announced first receipt of message " << seq << " twice";
    record(inv::kExactlyOnce, "I1p#" + std::to_string(host.value), os.str());
  }
}

void InvariantMonitor::on_deliver(const net::Delivery& d) {
  if (d.trace_id == 0 || net::trace_source(d.trace_id) != source_) return;
  const auto seq = static_cast<util::Seq>(net::trace_seq(d.trace_id));
  if (seq > source_bodies_.size()) {
    // Under a Byzantine schedule, forged frames reaching a host are the
    // adversary exercising its assumed power (it owns its own sends); the
    // invariant is over host STATE, and the census/delivery I3 checks
    // decide whether any host actually accepted the invention.
    if (!byzantine_hosts_.empty()) return;
    std::ostringstream os;
    os << "a copy of message " << seq << " reached " << d.to << " but only "
       << source_bodies_.size() << " messages were generated";
    record(inv::kNoInvention, "I3w#" + std::to_string(d.to.value), os.str());
  }
}

void InvariantMonitor::record(const char* invariant,
                              const std::string& dedup_key,
                              const std::string& description) {
  if (!seen_.insert(dedup_key).second) return;
  if (violations_.size() >= options_.max_violations) {
    ++dropped_;
    return;
  }
  // I2/I3 are the invariants bad data breaks; under a Byzantine schedule
  // they are attributed to the adversary class so downstream consumers
  // (the ddmin signature, repro reports) can tell lying relays apart from
  // crash/partition failures.
  std::string category;
  if (!byzantine_hosts_.empty() &&
      (std::string_view(invariant) == inv::kIntegrity ||
       std::string_view(invariant) == inv::kNoInvention)) {
    category = "byzantine";
  }
  violations_.push_back(InvariantViolation{invariant, description,
                                           simulator_.now(),
                                           std::move(category)});
}

void InvariantMonitor::sweep_now() {
  ++sweeps_;
  check_safety();
  check_liveness();
}

void InvariantMonitor::finish() {
  sweep_now();
  sweep_task_.stop();
}

void InvariantMonitor::check_safety() {
  auto report = [&](const char* id, std::size_t i,
                    const std::optional<std::string>& what) {
    if (what.has_value()) {
      record(id, std::string(id) + "#" + std::to_string(i), *what);
    }
  };
  const auto generated = static_cast<util::Seq>(source_bodies_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const core::BroadcastHost& host = *hosts_[i];
    const HostId self = host.self();
    report(inv::kExactlyOnce, i,
           inv::check_exactly_once(self, delivery_counts_[i]));
    report(inv::kIntegrity, i,
           inv::check_integrity(self, delivered_bodies_[i], source_bodies_));
    report(inv::kNoInvention, i,
           inv::check_no_invention(self, host.info().max_seq(), generated));
    report(inv::kInfoConsistency, i,
           inv::check_info_consistency(self, delivery_counts_[i].size(),
                                       host.info().count()));
    report(inv::kSaneParent, i, inv::check_sane_parent(self, host.parent()));
  }
}

void InvariantMonitor::check_liveness() {
  const sim::TimePoint now = simulator_.now();
  if (!quiet_at_.has_value() || now < *quiet_at_) {
    cycle_since_.reset();
    return;
  }

  // C1: a parent cycle may exist transiently (the Section 4.3 rule breaks
  // it within a round); one persisting for the whole orphan bound is a
  // liveness failure.
  if (const auto on_cycle = find_parent_cycle(); on_cycle.has_value()) {
    if (!cycle_since_.has_value()) cycle_since_ = now;
    if (now - *cycle_since_ >= options_.orphan_limit) {
      std::ostringstream os;
      os << "parent cycle through " << *on_cycle << " has persisted since t="
         << sim::to_seconds(*cycle_since_) << "s";
      record(kCycleAfterQuiet, "C1", os.str());
    }
  } else {
    cycle_since_.reset();
  }

  // C2/C3 run only once new information has flowed after quiescence (see
  // the header: a caught-up orphan has no attach candidate without it).
  if (!liveness_anchor_.has_value()) return;
  const sim::TimePoint anchor = *liveness_anchor_;

  // C2: every non-source host must re-attach within the orphan bound.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!orphan_since_[i].has_value()) continue;
    const sim::TimePoint since = std::max(*orphan_since_[i], anchor);
    if (now - since > options_.orphan_limit) {
      std::ostringstream os;
      os << hosts_[i]->self() << " has been orphaned since t="
         << sim::to_seconds(since) << "s (limit "
         << sim::to_seconds(options_.orphan_limit) << "s)";
      record(kOrphanBound, "C2#" + std::to_string(i), os.str());
    }
  }

  // C3: checked once, at the deadline.
  if (converge_checked_ || now < anchor + options_.converge_deadline) {
    return;
  }
  converge_checked_ = true;
  const trace::ConvergenceReport report =
      trace::analyze_convergence(hosts_, network_, source_);
  if (!report.fully_converged()) {
    record(kConvergeDeadline, "C3",
           "parent graph is not a source-rooted cluster tree at the "
           "convergence deadline: " +
               report.detail);
  }
  const auto generated = static_cast<util::Seq>(source_bodies_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const auto& info = hosts_[i]->info();
    if (info.count() < generated || info.max_seq() < generated) {
      std::ostringstream os;
      os << hosts_[i]->self() << " holds " << info.count() << " of "
         << generated << " messages at the convergence deadline";
      record(kConvergeDeadline, "C3#" + std::to_string(i), os.str());
    }
  }
}

std::optional<HostId> InvariantMonitor::find_parent_cycle() const {
  const std::size_t n = hosts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    HostId cursor = hosts_[i]->self();
    std::size_t steps = 0;
    while (steps <= n) {
      const HostId up = hosts_[static_cast<std::size_t>(cursor.value)]->parent();
      if (!up.valid()) break;
      cursor = up;
      ++steps;
    }
    if (steps > n) return hosts_[i]->self();
  }
  return std::nullopt;
}

}  // namespace rbcast::harness
