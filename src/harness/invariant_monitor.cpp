#include "harness/invariant_monitor.h"

#include <algorithm>
#include <sstream>

#include "model/invariants.h"
#include "trace/convergence.h"
#include "util/assert.h"

namespace rbcast::harness {

namespace inv = model::invariants;

InvariantMonitor::InvariantMonitor(
    sim::Simulator& simulator, std::vector<const core::BroadcastHost*> hosts,
    const net::Network& network, HostId source, MonitorOptions options)
    : simulator_(simulator),
      hosts_(std::move(hosts)),
      network_(network),
      source_(source),
      options_(options),
      delivery_counts_(hosts_.size()),
      delivered_bodies_(hosts_.size()),
      proto_delivered_(hosts_.size()),
      orphan_since_(hosts_.size()),
      sweep_task_(simulator, options.sweep_period, [this] { sweep_now(); }) {
  RBCAST_CHECK_ARG(!hosts_.empty(), "monitor needs at least one host");
  RBCAST_CHECK_ARG(options_.sweep_period > 0, "sweep period must be positive");
  // Every non-source host starts orphaned (parent = NIL) at t=0.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->self() != source_) orphan_since_[i] = sim::TimePoint{0};
  }
}

void InvariantMonitor::start() { sweep_task_.start(options_.sweep_period); }

void InvariantMonitor::set_faults_quiet_at(sim::TimePoint t) {
  quiet_at_ = t;
  liveness_anchor_.reset();
  cycle_since_.reset();
  converge_checked_ = false;
}

void InvariantMonitor::on_source_broadcast(util::Seq seq,
                                           std::string_view body) {
  RBCAST_CHECK_ARG(seq == source_bodies_.size() + 1,
                   "source broadcasts must be reported in sequence order");
  source_bodies_.emplace_back(body);
  if (quiet_at_.has_value() && !liveness_anchor_.has_value() &&
      simulator_.now() >= *quiet_at_) {
    liveness_anchor_ = simulator_.now();
  }
}

void InvariantMonitor::on_app_delivery(HostId host, util::Seq seq,
                                       std::string_view body) {
  const auto i = static_cast<std::size_t>(host.value);
  RBCAST_CHECK_ARG(host.valid() && i < hosts_.size(), "unknown host");
  ++delivery_counts_[i][seq];
  delivered_bodies_[i].emplace(seq, std::string(body));  // keep the first body seen
}

void InvariantMonitor::on_attached(HostId host, HostId /*parent*/) {
  orphan_since_[static_cast<std::size_t>(host.value)].reset();
}

void InvariantMonitor::on_detached(HostId host, HostId /*old_parent*/,
                                   bool /*timeout*/) {
  orphan_since_[static_cast<std::size_t>(host.value)] = simulator_.now();
}

void InvariantMonitor::on_delivered(HostId host, util::Seq seq) {
  // The protocol layer announces each first receipt exactly once; a repeat
  // means a duplicate slipped past the INFO bookkeeping (I1 at the
  // protocol layer, before the application even sees it).
  const auto i = static_cast<std::size_t>(host.value);
  if (!proto_delivered_[i].insert(seq).second) {
    std::ostringstream os;
    os << host << " announced first receipt of message " << seq << " twice";
    record(inv::kExactlyOnce, "I1p#" + std::to_string(host.value), os.str());
  }
}

void InvariantMonitor::on_deliver(const net::Delivery& d) {
  if (d.trace_id == 0 || net::trace_source(d.trace_id) != source_) return;
  const auto seq = static_cast<util::Seq>(net::trace_seq(d.trace_id));
  if (seq > source_bodies_.size()) {
    std::ostringstream os;
    os << "a copy of message " << seq << " reached " << d.to << " but only "
       << source_bodies_.size() << " messages were generated";
    record(inv::kNoInvention, "I3w#" + std::to_string(d.to.value), os.str());
  }
}

void InvariantMonitor::record(const char* invariant,
                              const std::string& dedup_key,
                              const std::string& description) {
  if (!seen_.insert(dedup_key).second) return;
  if (violations_.size() >= options_.max_violations) {
    ++dropped_;
    return;
  }
  violations_.push_back(
      InvariantViolation{invariant, description, simulator_.now()});
}

void InvariantMonitor::sweep_now() {
  ++sweeps_;
  check_safety();
  check_liveness();
}

void InvariantMonitor::finish() {
  sweep_now();
  sweep_task_.stop();
}

void InvariantMonitor::check_safety() {
  auto report = [&](const char* id, std::size_t i,
                    const std::optional<std::string>& what) {
    if (what.has_value()) {
      record(id, std::string(id) + "#" + std::to_string(i), *what);
    }
  };
  const auto generated = static_cast<util::Seq>(source_bodies_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const core::BroadcastHost& host = *hosts_[i];
    const HostId self = host.self();
    report(inv::kExactlyOnce, i,
           inv::check_exactly_once(self, delivery_counts_[i]));
    report(inv::kIntegrity, i,
           inv::check_integrity(self, delivered_bodies_[i], source_bodies_));
    report(inv::kNoInvention, i,
           inv::check_no_invention(self, host.info().max_seq(), generated));
    report(inv::kInfoConsistency, i,
           inv::check_info_consistency(self, delivery_counts_[i].size(),
                                       host.info().count()));
    report(inv::kSaneParent, i, inv::check_sane_parent(self, host.parent()));
  }
}

void InvariantMonitor::check_liveness() {
  const sim::TimePoint now = simulator_.now();
  if (!quiet_at_.has_value() || now < *quiet_at_) {
    cycle_since_.reset();
    return;
  }

  // C1: a parent cycle may exist transiently (the Section 4.3 rule breaks
  // it within a round); one persisting for the whole orphan bound is a
  // liveness failure.
  if (const auto on_cycle = find_parent_cycle(); on_cycle.has_value()) {
    if (!cycle_since_.has_value()) cycle_since_ = now;
    if (now - *cycle_since_ >= options_.orphan_limit) {
      std::ostringstream os;
      os << "parent cycle through " << *on_cycle << " has persisted since t="
         << sim::to_seconds(*cycle_since_) << "s";
      record(kCycleAfterQuiet, "C1", os.str());
    }
  } else {
    cycle_since_.reset();
  }

  // C2/C3 run only once new information has flowed after quiescence (see
  // the header: a caught-up orphan has no attach candidate without it).
  if (!liveness_anchor_.has_value()) return;
  const sim::TimePoint anchor = *liveness_anchor_;

  // C2: every non-source host must re-attach within the orphan bound.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!orphan_since_[i].has_value()) continue;
    const sim::TimePoint since = std::max(*orphan_since_[i], anchor);
    if (now - since > options_.orphan_limit) {
      std::ostringstream os;
      os << hosts_[i]->self() << " has been orphaned since t="
         << sim::to_seconds(since) << "s (limit "
         << sim::to_seconds(options_.orphan_limit) << "s)";
      record(kOrphanBound, "C2#" + std::to_string(i), os.str());
    }
  }

  // C3: checked once, at the deadline.
  if (converge_checked_ || now < anchor + options_.converge_deadline) {
    return;
  }
  converge_checked_ = true;
  const trace::ConvergenceReport report =
      trace::analyze_convergence(hosts_, network_, source_);
  if (!report.fully_converged()) {
    record(kConvergeDeadline, "C3",
           "parent graph is not a source-rooted cluster tree at the "
           "convergence deadline: " +
               report.detail);
  }
  const auto generated = static_cast<util::Seq>(source_bodies_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const auto& info = hosts_[i]->info();
    if (info.count() < generated || info.max_seq() < generated) {
      std::ostringstream os;
      os << hosts_[i]->self() << " holds " << info.count() << " of "
         << generated << " messages at the convergence deadline";
      record(kConvergeDeadline, "C3#" + std::to_string(i), os.str());
    }
  }
}

std::optional<HostId> InvariantMonitor::find_parent_cycle() const {
  const std::size_t n = hosts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    HostId cursor = hosts_[i]->self();
    std::size_t steps = 0;
    while (steps <= n) {
      const HostId up = hosts_[static_cast<std::size_t>(cursor.value)]->parent();
      if (!up.valid()) break;
      cursor = up;
      ++steps;
    }
    if (steps > n) return hosts_[i]->self();
  }
  return std::nullopt;
}

}  // namespace rbcast::harness
