// Online invariant monitor — the model checker's safety net attached to
// full-scale simulation runs.
//
// The bounded model checker (src/model/checker.*) proves invariants I1-I5
// on tiny instances; this monitor re-checks the same shared predicates
// (src/model/invariants.*) continuously against real scenarios, plus three
// liveness conditions the checker's bounded horizon cannot reach:
//
//   C1  no parent-graph cycle persists once faults have quiesced,
//   C2  no host stays orphaned (parent = NIL) longer than a bound,
//   C3  within a configurable deadline, the parent graph is a
//       source-rooted cluster tree and every host holds every message.
//
// C2 and C3 are clocked from the first broadcast at or after quiescence,
// not from quiescence itself: the paper's attachment rules re-form the
// tree only when new information flows (case I.3 needs a strictly greater
// INFO set, so an orphan that is already caught up has no attach candidate
// in a quiescent stream). Without a post-quiescence broadcast they are
// never judged; run_chaos schedules a probe broadcast to guarantee one.
//
// Read-only contract: the monitor observes (ProtocolObserver, NetObserver
// and an app-delivery hook) and schedules only its own sweep timer; it
// never sends, never mutates hosts and never consumes a host RNG stream,
// so enabling it leaves the protocol event digest of a seeded run
// byte-identical (asserted by tests/invariant_monitor_test.cpp).
//
// Liveness checks are armed by set_faults_quiet_at(); until then only the
// safety invariants run, so the monitor is safe to enable in scenarios
// with open-ended fault schedules.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/protocol_observer.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/ids.h"

namespace rbcast::harness {

// Liveness condition identifiers; the safety identifiers are
// model::invariants::kExactlyOnce .. kSaneParent ("I1".."I5").
inline constexpr const char* kCycleAfterQuiet = "C1";
inline constexpr const char* kOrphanBound = "C2";
inline constexpr const char* kConvergeDeadline = "C3";

struct MonitorOptions {
  // Cadence of the safety/liveness sweep.
  sim::Duration sweep_period{sim::milliseconds(500)};
  // C1/C2 bound: how long a parent cycle may persist (after quiescence),
  // or a host may stay orphaned (after the post-quiescence liveness
  // anchor), before it counts as a violation.
  sim::Duration orphan_limit{sim::seconds(60)};
  // C3 deadline: time after the liveness anchor by which the parent graph
  // must be a source-rooted cluster tree with every message delivered.
  sim::Duration converge_deadline{sim::seconds(120)};
  // Reports are deduplicated per (invariant, subject) and capped.
  std::size_t max_violations{64};
};

struct InvariantViolation {
  std::string invariant;  // "I1".."I5" / "C1".."C3"
  std::string description;
  sim::TimePoint at{0};
  // Failure class the violation is attributed to: "byzantine" when a
  // Byzantine adversary was scheduled and the invariant is one bad data
  // can break (I2/I3); empty otherwise. The ddmin shrinker keys its
  // first-violation signature on (invariant, category) so a Byzantine
  // repro cannot silently degrade into a crash/partition repro.
  std::string category;
};

// Blast radius of the scheduled Byzantine hosts: who delivered corrupt or
// invented data, and how far (in parent-graph hops) it traveled from the
// nearest adversary. The Bonomi/Farina/Tixeuil containment criterion:
// with authentication on, bad data must die on the adversary's direct
// edges — no host beyond hop 1 may deliver it, and in this protocol even
// the direct neighbors reject it, so corrupted_hosts stays empty.
struct ContainmentReport {
  std::set<HostId> byzantine;        // scheduled adversaries
  std::set<HostId> corrupted_hosts;  // delivered corrupt/invented data
  int max_hops{0};                   // farthest corrupted host (hops)
  std::map<int, int> hosts_by_hops;  // distance -> corrupted host count
  std::vector<std::string> invariants;  // distinct invariant ids broken
  [[nodiscard]] bool contained() const {
    return corrupted_hosts.empty() || max_hops <= 1;
  }
};

// One line per aspect, human-readable ("byzantine={3} corrupted=...").
[[nodiscard]] std::string to_string(const ContainmentReport& r);

class InvariantMonitor final : public core::ProtocolObserver,
                               public net::NetObserver {
 public:
  // `hosts` has one entry per host, indexed by HostId value; all borrowed
  // references must outlive the monitor.
  InvariantMonitor(sim::Simulator& simulator,
                   std::vector<const core::BroadcastHost*> hosts,
                   const net::Network& network, HostId source,
                   MonitorOptions options = {});

  // Arms the periodic sweep. Call alongside Experiment::start().
  void start();

  // Declares that no further faults will be injected after `t`, arming the
  // liveness conditions C1-C3 (measured from `t`). Calling again re-arms
  // them from the new quiescence point.
  void set_faults_quiet_at(sim::TimePoint t);

  // Declares which hosts run under a Byzantine schedule. Arms blast-radius
  // tracking (containment()) and the "byzantine" violation category; call
  // before the run starts.
  void set_byzantine_hosts(std::set<HostId> hosts);

  // Source-side hook: message `seq` was generated with `body`. Bodies are
  // the I2/I3 ground truth; every broadcast must be reported here.
  void on_source_broadcast(util::Seq seq, std::string_view body);

  // Application-side hook: `host` handed `body` to the application as
  // message `seq` (first receipt).
  void on_app_delivery(HostId host, util::Seq seq, std::string_view body);

  // Runs one safety+liveness sweep immediately.
  void sweep_now();

  // Final sweep + stops the periodic task. Call at end of run.
  void finish();

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  // Distinct violations suppressed once max_violations was reached.
  [[nodiscard]] std::size_t dropped_violations() const { return dropped_; }
  [[nodiscard]] std::uint64_t sweeps_run() const { return sweeps_; }

  // Blast-radius summary over the run so far (meaningful once
  // set_byzantine_hosts was called; empty report otherwise).
  [[nodiscard]] ContainmentReport containment() const;

  // --- ProtocolObserver ----------------------------------------------------
  void on_attached(HostId host, HostId parent) override;
  void on_detached(HostId host, HostId old_parent, bool timeout) override;
  void on_delivered(HostId host, util::Seq seq) override;

  // --- NetObserver ---------------------------------------------------------
  // Wire-level I3: a traced copy of a source message whose sequence number
  // the source never generated.
  void on_deliver(const net::Delivery& d) override;

 private:
  void record(const char* invariant, const std::string& dedup_key,
              const std::string& description);
  void check_safety();
  void check_liveness();
  // A host on a parent cycle, if any exists right now.
  [[nodiscard]] std::optional<HostId> find_parent_cycle() const;
  // Notes that `host` delivered corrupt/invented data (blast radius).
  void note_corruption(HostId host);
  // Parent-graph distance (undirected edges, current pointers) from `host`
  // to the nearest Byzantine host; -1 when unreachable.
  [[nodiscard]] int hops_to_byzantine(HostId host) const;

  sim::Simulator& simulator_;
  std::vector<const core::BroadcastHost*> hosts_;
  const net::Network& network_;
  HostId source_;
  MonitorOptions options_;

  // Ground truth and per-host observation state, indexed by HostId value.
  std::vector<std::string> source_bodies_;
  std::vector<std::map<util::Seq, int>> delivery_counts_;
  std::vector<std::map<util::Seq, std::string>> delivered_bodies_;
  std::vector<std::set<util::Seq>> proto_delivered_;
  std::vector<std::optional<sim::TimePoint>> orphan_since_;

  // Blast-radius tracking (set_byzantine_hosts).
  std::set<HostId> byzantine_hosts_;
  std::set<HostId> corrupted_hosts_;
  std::map<int, int> corrupted_by_hops_;
  int max_corruption_hops_{0};

  std::optional<sim::TimePoint> quiet_at_;
  // The first broadcast at or after quiet_at_ — the C2/C3 clock origin.
  std::optional<sim::TimePoint> liveness_anchor_;
  // First sweep at which the currently-standing parent cycle was seen.
  std::optional<sim::TimePoint> cycle_since_;
  bool converge_checked_{false};

  std::vector<InvariantViolation> violations_;
  std::set<std::string> seen_;
  std::size_t dropped_{0};
  std::uint64_t sweeps_{0};

  // Declared last: captures `this`.
  sim::PeriodicTask sweep_task_;
};

}  // namespace rbcast::harness
