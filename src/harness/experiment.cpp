#include "harness/experiment.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::harness {

Experiment::Experiment(topo::Topology topology, ScenarioOptions options)
    : topology_(std::move(topology)),
      options_(options),
      rngs_(options.seed) {
  RBCAST_CHECK_ARG(topology_.host_count() >= 1, "topology has no hosts");
  RBCAST_CHECK_ARG(
      options_.source.valid() &&
          static_cast<std::size_t>(options_.source.value) <
              topology_.host_count(),
      "source is not a host of the topology");
  RBCAST_CHECK_ARG(!options_.monitor_invariants ||
                       options_.protocol_kind == ProtocolKind::kPaper,
                   "monitor_invariants applies to the paper protocol");

  network_ = std::make_unique<net::Network>(simulator_, topology_,
                                            options_.net, rngs_);
  // Config::batch_flush_delay > 0 turns on transport-level coalescing;
  // the default (0) keeps SimTransport on its zero-overhead forwarding
  // path, which the determinism digests are pinned under.
  transport_ = std::make_unique<transport::SimTransport>(
      simulator_, *network_,
      transport::CoalescerConfig{options_.protocol.batch_flush_delay,
                                 options_.protocol.batch_max_bytes});
  transport_->register_metrics(registry_);
  if (!options_.byzantine.empty()) {
    RBCAST_CHECK_ARG(options_.protocol_kind == ProtocolKind::kPaper,
                     "byzantine schedule applies to the paper protocol");
    byzantine_transport_ = std::make_unique<ByzantineTransport>(
        *transport_, options_.byzantine, options_.source);
  }
  metrics_ = std::make_unique<trace::Metrics>(simulator_, *network_);
  metrics_->attach();
  events_ = std::make_unique<trace::EventLog>(simulator_);
  faults_ = std::make_unique<net::FaultPlan>(simulator_, *network_);

  const auto all_hosts = topology_.host_ids();

  if (options_.protocol_kind == ProtocolKind::kPaper) {
    // Static cluster knowledge mode seeds CLUSTER_i with ground truth.
    const auto ground_clusters = network_->clusters();

    paper_hosts_.resize(all_hosts.size());
    if (options_.ordered_delivery) ordered_.resize(all_hosts.size());
    for (HostId h : all_hosts) {
      core::BroadcastHost::AppDeliverFn deliver =
          [this, h](util::Seq seq, std::string_view) {
            metrics_->record_delivery(h, seq);
          };
      if (options_.ordered_delivery && h != options_.source) {
        // Metrics then record the moment a message becomes deliverable in
        // order, not its first receipt.
        ordered_[static_cast<std::size_t>(h.value)] =
            std::make_unique<core::OrderedDeliveryAdapter>(
                std::move(deliver));
        deliver = [this, h](util::Seq seq, std::string_view body) {
          ordered_[static_cast<std::size_t>(h.value)]->on_message(seq, body);
        };
      }
      if (options_.monitor_invariants) {
        // The monitor observes first receipts (what the protocol promises),
        // upstream of any ordering adapter. monitor_ is created after the
        // hosts; deliveries only happen once the simulation runs.
        deliver = [this, h, inner = std::move(deliver)](
                      util::Seq seq, std::string_view body) {
          if (monitor_ != nullptr) monitor_->on_app_delivery(h, seq, body);
          inner(seq, body);
        };
      }
      // Byzantine hosts attach through the mutating decorator; with no
      // schedule the wrapper does not exist and wiring is unchanged.
      transport::Transport& host_transport =
          byzantine_transport_ != nullptr
              ? static_cast<transport::Transport&>(*byzantine_transport_)
              : *transport_;
      auto node = std::make_unique<core::BroadcastHost>(
          host_transport, h, options_.source, all_hosts, options_.protocol,
          rngs_.stream("host.jitter", h.value), std::move(deliver));
      if (options_.protocol.cluster_knowledge ==
          core::Config::ClusterKnowledge::kStatic) {
        for (const auto& cluster : ground_clusters) {
          if (std::find(cluster.begin(), cluster.end(), h) != cluster.end()) {
            node->seed_cluster({cluster.begin(), cluster.end()});
            break;
          }
        }
      }
      node->set_observer(events_.get());
      paper_hosts_[static_cast<std::size_t>(h.value)] = std::move(node);
    }
    if (options_.monitor_invariants) {
      monitor_ = std::make_unique<InvariantMonitor>(
          simulator_, host_views(), *network_, options_.source,
          options_.monitor);
      proto_fanout_.add(events_.get());
      proto_fanout_.add(monitor_.get());
      for (auto& host : paper_hosts_) host->set_observer(&proto_fanout_);
      install_observers();
    }
  } else if (options_.protocol_kind == ProtocolKind::kGossip) {
    gossip_nodes_.resize(all_hosts.size());
    for (HostId h : all_hosts) {
      auto deliver = [this, h](util::Seq seq, const std::string&) {
        metrics_->record_delivery(h, seq);
      };
      gossip_nodes_[static_cast<std::size_t>(h.value)] =
          std::make_unique<core::GossipNode>(
              simulator_, network_->endpoint(h), options_.source, all_hosts,
              options_.gossip, rngs_.stream("host.jitter", h.value),
              std::move(deliver));
      network_->register_host(h, [this, h](const net::Delivery& d) {
        gossip_nodes_[static_cast<std::size_t>(h.value)]->on_delivery(d);
      });
    }
  } else {
    basic_receivers_.resize(all_hosts.size());
    for (HostId h : all_hosts) {
      if (h == options_.source) {
        basic_source_ = std::make_unique<core::BasicSource>(
            simulator_, network_->endpoint(h), all_hosts, options_.basic,
            rngs_.stream("host.jitter", h.value));
        network_->register_host(h, [this](const net::Delivery& d) {
          basic_source_->on_delivery(d);
        });
      } else {
        auto deliver = [this, h](util::Seq seq, const std::string&) {
          metrics_->record_delivery(h, seq);
        };
        basic_receivers_[static_cast<std::size_t>(h.value)] =
            std::make_unique<core::BasicReceiver>(network_->endpoint(h),
                                                  std::move(deliver));
        network_->register_host(h, [this, h](const net::Delivery& d) {
          basic_receivers_[static_cast<std::size_t>(h.value)]->on_delivery(d);
        });
      }
    }
  }
}

Experiment::~Experiment() = default;

const char* Experiment::protocol_name() const {
  switch (options_.protocol_kind) {
    case ProtocolKind::kPaper:
      return "paper";
    case ProtocolKind::kBasic:
      return "basic";
    case ProtocolKind::kGossip:
      return "gossip";
  }
  return "?";
}

trace::TraceRecord Experiment::manifest() const {
  return trace::run_manifest(options_.seed, topology_.describe(),
                             protocol_name(),
                             trace::describe_config(options_.protocol));
}

void Experiment::install_observers() {
  if (sink_ == nullptr && sampler_ == nullptr && monitor_ == nullptr) {
    network_->set_observer(metrics_.get());
    return;
  }
  observer_fanout_ = net::NetObserverFanout{};
  observer_fanout_.add(metrics_.get());
  observer_fanout_.add(net_tap_.get());
  observer_fanout_.add(sampler_.get());
  observer_fanout_.add(monitor_.get());
  network_->set_observer(&observer_fanout_);
}

void Experiment::set_trace_sink(trace::TraceSink* sink) {
  sink_ = sink;
  events_->set_sink(sink);
  net_tap_ = sink != nullptr
                 ? std::make_unique<trace::NetTap>(simulator_, *sink)
                 : nullptr;
  install_observers();
  if (sink_ != nullptr) sink_->record(manifest());
}

void Experiment::enable_metric_sampling(sim::Duration period) {
  RBCAST_CHECK_ARG(sink_ != nullptr,
                   "enable_metric_sampling needs a trace sink installed");
  trace::MetricSampler::TreeShapeFn shape_fn;
  if (options_.protocol_kind == ProtocolKind::kPaper) {
    shape_fn = [this] { return tree_shape(); };
  }
  sampler_ = std::make_unique<trace::MetricSampler>(
      simulator_, *metrics_, *sink_, period, std::move(shape_fn));
  sampler_->set_registry(&registry_);
  install_observers();
  sampler_->start();
}

trace::MetricSampler::TreeShape Experiment::tree_shape() const {
  trace::MetricSampler::TreeShape shape;
  const std::vector<int> cluster = network_->host_cluster_index();
  const std::size_t n = paper_hosts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const core::BroadcastHost& host = *paper_hosts_[i];
    const HostId parent = host.parent();
    if (host.is_source()) continue;
    if (!parent.valid()) {
      ++shape.orphans;
      ++shape.leaders;
      continue;
    }
    if (cluster[i] != cluster[static_cast<std::size_t>(parent.value)]) {
      ++shape.leaders;
    }
    // Parent-chain length in edges, capped at n so a transient cycle
    // cannot loop forever (cycles read as a depth-n anomaly spike).
    int depth = 0;
    HostId cursor{static_cast<HostId::value_type>(i)};
    while (depth < static_cast<int>(n)) {
      const HostId up =
          paper_hosts_[static_cast<std::size_t>(cursor.value)]->parent();
      if (!up.valid()) break;
      ++depth;
      cursor = up;
    }
    shape.depth = std::max(shape.depth, depth);
  }
  return shape;
}

void Experiment::start() {
  if (options_.protocol_kind == ProtocolKind::kPaper) {
    for (auto& host : paper_hosts_) host->start();
    if (monitor_ != nullptr) monitor_->start();
  } else if (options_.protocol_kind == ProtocolKind::kGossip) {
    for (auto& node : gossip_nodes_) node->start();
  } else {
    basic_source_->start();
  }
}

std::string Experiment::make_body() const {
  return std::string(options_.protocol.data_bytes, 'x');
}

util::Seq Experiment::broadcast(std::string body) {
  if (body.empty()) body = make_body();
  util::Seq seq = 0;
  if (options_.protocol_kind == ProtocolKind::kPaper) {
    if (monitor_ != nullptr) {
      // The monitor needs the body as I2/I3 ground truth. Registration
      // happens right after broadcast() returns (the seq is assigned
      // inside), before any further simulator event can observe the gap.
      std::string copy = body;
      seq = host(options_.source).broadcast(std::move(body));
      monitor_->on_source_broadcast(seq, copy);
    } else {
      seq = host(options_.source).broadcast(std::move(body));
    }
  } else if (options_.protocol_kind == ProtocolKind::kGossip) {
    seq = gossip_node(options_.source).broadcast(std::move(body));
  } else {
    seq = basic_source_->broadcast(std::move(body));
  }
  last_seq_ = std::max(last_seq_, seq);
  metrics_->record_broadcast(seq);
  metrics_->record_delivery(options_.source, seq);
  return seq;
}

void Experiment::broadcast_stream(int count, sim::Duration interval,
                                  sim::TimePoint first_at) {
  RBCAST_CHECK_ARG(count >= 0 && interval >= 0, "bad stream parameters");
  for (int k = 0; k < count; ++k) {
    schedule_broadcast_at(first_at + k * interval);
  }
}

void Experiment::schedule_broadcast_at(sim::TimePoint t) {
  ++pending_stream_broadcasts_;
  simulator_.at(t, [this] {
    --pending_stream_broadcasts_;
    broadcast();
  });
}

bool Experiment::all_delivered() const {
  if (pending_stream_broadcasts_ > 0) return false;
  if (last_seq_ == 0) return true;
  if (options_.protocol_kind == ProtocolKind::kPaper) {
    for (const auto& host : paper_hosts_) {
      const auto& info = host->info();
      if (info.count() < last_seq_ || info.max_seq() < last_seq_) return false;
    }
    return true;
  }
  if (options_.protocol_kind == ProtocolKind::kGossip) {
    for (const auto& node : gossip_nodes_) {
      const auto& info = node->info();
      if (info.count() < last_seq_ || info.max_seq() < last_seq_) return false;
    }
    return true;
  }
  for (std::size_t i = 0; i < basic_receivers_.size(); ++i) {
    const auto& receiver = basic_receivers_[i];
    if (receiver == nullptr) continue;  // the source slot
    const auto& got = receiver->received();
    if (got.count() < last_seq_ || got.max_seq() < last_seq_) return false;
  }
  return true;
}

sim::TimePoint Experiment::run_until_delivered(sim::TimePoint deadline,
                                               sim::Duration poll) {
  RBCAST_CHECK_ARG(poll > 0, "poll period must be positive");
  while (simulator_.now() < deadline) {
    if (all_delivered()) return simulator_.now();
    simulator_.run_until(
        std::min<sim::TimePoint>(deadline, simulator_.now() + poll));
  }
  return deadline;
}

trace::ConvergenceReport Experiment::convergence() const {
  RBCAST_ASSERT_MSG(options_.protocol_kind == ProtocolKind::kPaper,
                    "convergence() applies to the paper protocol");
  return trace::analyze_convergence(host_views(), *network_, options_.source);
}

core::BroadcastHost& Experiment::host(HostId id) {
  RBCAST_ASSERT_MSG(options_.protocol_kind == ProtocolKind::kPaper,
                    "host() applies to the paper protocol");
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < paper_hosts_.size());
  return *paper_hosts_[static_cast<std::size_t>(id.value)];
}

std::vector<const core::BroadcastHost*> Experiment::host_views() const {
  std::vector<const core::BroadcastHost*> out;
  out.reserve(paper_hosts_.size());
  for (const auto& host : paper_hosts_) out.push_back(host.get());
  return out;
}

core::OrderedDeliveryAdapter& Experiment::ordered_adapter(HostId id) {
  RBCAST_ASSERT_MSG(options_.ordered_delivery,
                    "ordered_delivery was not enabled");
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < ordered_.size() &&
                ordered_[static_cast<std::size_t>(id.value)] != nullptr);
  return *ordered_[static_cast<std::size_t>(id.value)];
}

core::BasicSource& Experiment::basic_source() {
  RBCAST_ASSERT_MSG(options_.protocol_kind == ProtocolKind::kBasic,
                    "basic_source() applies to the baseline");
  return *basic_source_;
}

core::GossipNode& Experiment::gossip_node(HostId id) {
  RBCAST_ASSERT_MSG(options_.protocol_kind == ProtocolKind::kGossip,
                    "gossip_node() applies to the gossip baseline");
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < gossip_nodes_.size());
  return *gossip_nodes_[static_cast<std::size_t>(id.value)];
}

}  // namespace rbcast::harness
