// Workload generators: how the source produces its broadcast stream.
//
// The paper's premise is that "broadcast applications usually operate on
// streams of many messages" (Section 1); the *shape* of the stream matters
// for queueing and for the tunability results, so benches and the CLI can
// pick from several arrival processes:
//   * uniform  — one message every T (the default used by most benches);
//   * poisson  — exponential inter-arrival times with a given rate;
//   * bursty   — on/off: bursts of back-to-back messages separated by
//                silence (models batched database updates);
//   * sustained — fixed-rate arrivals held for a span of virtual time
//                (heavy-traffic/overload experiments: pick an interval
//                whose offered load exceeds the bottleneck capacity and
//                hold it for minutes — `messages` is derived from
//                duration/interval, so runs at different intervals offer
//                load for the same wall of virtual time).
#pragma once

#include <string>

#include "harness/experiment.h"
#include "util/rng.h"

namespace rbcast::harness {

enum class ArrivalProcess { kUniform, kPoisson, kBursty, kSustained };

struct WorkloadOptions {
  ArrivalProcess process{ArrivalProcess::kUniform};
  int messages{30};
  // Uniform: exact spacing. Poisson: mean spacing. Bursty: spacing
  // between bursts.
  sim::Duration interval{sim::milliseconds(500)};
  // Bursty only: messages per burst.
  int burst_size{5};
  // Sustained only: how long to hold the arrival rate. Overrides
  // `messages` (the count becomes duration / interval).
  sim::Duration duration{sim::seconds(60)};
  sim::TimePoint first_at{sim::seconds(1)};
};

// Schedules the whole stream on the experiment's simulator. Returns the
// time of the last scheduled broadcast.
sim::TimePoint schedule_workload(Experiment& experiment,
                                 const WorkloadOptions& options,
                                 util::Rng rng);

[[nodiscard]] const char* to_string(ArrivalProcess process);

}  // namespace rbcast::harness
