#include "harness/byzantine.h"

#include <string>
#include <utility>

#include "core/messages.h"
#include "util/time.h"

namespace rbcast::harness {

namespace {

using core::DataMsg;
using core::InfoMsg;
using core::ProtocolMessage;

// Deterministic body mutation: flip one byte, position and mask chosen by
// (seq, variant) so every replay of the same schedule alters the same
// bits. `variant` separates the equivocation personas: variant 0 is the
// plain corruption, variants 1/2 are the two faces a split-brain sender
// shows to odd/even destinations.
core::Payload mutate_body(const core::Payload& body, util::Seq seq,
                          unsigned variant) {
  std::string bytes(body.view());
  if (bytes.empty()) bytes.push_back('\0');
  const std::size_t pos = static_cast<std::size_t>(seq + variant) % bytes.size();
  bytes[pos] = static_cast<char>(bytes[pos] ^ (0x5a + 0x33 * variant));
  return {bytes};
}

}  // namespace

// Interposing endpoint for one Byzantine host. Forwards through the inner
// endpoint; protocol messages sent while a behavior window is active are
// mutated first (and bogus_offer additionally injects a forged frame).
class ByzantineTransport::Endpoint final : public net::HostEndpoint {
 public:
  Endpoint(ByzantineTransport& owner, net::HostEndpoint& inner,
           const std::vector<ByzantineBehavior>& behaviors)
      : owner_(owner), inner_(inner), behaviors_(behaviors) {}

  [[nodiscard]] HostId self() const override { return inner_.self(); }

  void send(HostId to, std::any payload, std::size_t bytes, std::string kind,
            net::TraceId trace_id) override {
    auto* message = std::any_cast<ProtocolMessage>(&payload);
    if (message == nullptr) {
      inner_.send(to, std::move(payload), bytes, std::move(kind), trace_id);
      return;
    }

    const double now_s =
        util::to_seconds(owner_.inner_.scheduler().now());
    bool mutated = false;
    bool offer_bogus = false;
    for (const ByzantineBehavior& b : behaviors_) {
      const bool active =
          now_s >= b.from_s && (b.to_s <= b.from_s || now_s < b.to_s);
      if (!active) continue;
      switch (b.kind) {
        case ByzantineBehavior::Kind::kCorrupt:
          mutated |= corrupt(*message);
          break;
        case ByzantineBehavior::Kind::kEquivocate:
          mutated |= equivocate(*message, to);
          break;
        case ByzantineBehavior::Kind::kLieInfo:
          mutated |= lie_info(*message, to);
          break;
        case ByzantineBehavior::Kind::kBogusOffer:
          // Ride along with INFO reports: one forged frame per report.
          offer_bogus |= std::holds_alternative<InfoMsg>(*message);
          break;
      }
    }

    if (mutated) {
      ++owner_.mutations_;
      // The wire charges what actually travels; the kind label follows
      // the (possibly re-flagged) message.
      bytes = core::wire_size(*message);
      kind = core::kind_of(*message);
    }
    // Capture what bogus_offer needs before the message is moved out.
    util::Seq forged_seq = 0;
    if (offer_bogus) {
      const auto& info = std::get<InfoMsg>(*message);
      forged_seq = info.info.max_seq() + 5;
    }
    inner_.send(to, std::move(payload), bytes, std::move(kind), trace_id);

    if (offer_bogus) {
      ++owner_.mutations_;
      DataMsg forged;
      forged.seq = forged_seq;
      forged.body = "byzantine-bogus-offer";
      forged.gap_fill = true;
      // An honest-looking trace id: the monitor attributes the frame to
      // the real source's stream and flags the invented sequence (I3).
      const net::TraceId forged_trace =
          net::make_trace_id(owner_.source_, forged.seq);
      ProtocolMessage m{std::move(forged)};
      const std::size_t forged_bytes = core::wire_size(m);
      const char* forged_kind = core::kind_of(m);
      inner_.send(to, std::any(std::move(m)), forged_bytes, forged_kind,
                  forged_trace);
    }
  }

 private:
  // Flip a body byte in every outbound data frame; the stale tag rides
  // along unchanged (the adversary cannot re-sign).
  static bool corrupt(ProtocolMessage& m) {
    auto* data = std::get_if<DataMsg>(&m);
    if (data == nullptr) return false;
    data->body = mutate_body(data->body, data->seq, 0);
    return true;
  }

  // Different bodies for the same (source, seq) depending on the
  // destination's parity — children compare notes and disagree.
  static bool equivocate(ProtocolMessage& m, HostId to) {
    auto* data = std::get_if<DataMsg>(&m);
    if (data == nullptr) return false;
    data->body = mutate_body(data->body, data->seq,
                             (to.value % 2 == 0) ? 1 : 2);
    return true;
  }

  // Inflate the reported watermark past anything the host really has and
  // claim the recipient as parent. Applies to standalone INFO reports and
  // to the piggybacked copy on data frames.
  static bool lie_info(ProtocolMessage& m, HostId to) {
    if (auto* info = std::get_if<InfoMsg>(&m)) {
      const util::Seq top = info->info.max_seq();
      info->info.insert_range(top + 1, top + 8);
      info->parent = to;
      return true;
    }
    if (auto* data = std::get_if<DataMsg>(&m);
        data != nullptr && data->piggyback.has_value()) {
      const util::Seq top = data->piggyback->first.max_seq();
      data->piggyback->first.insert_range(top + 1, top + 8);
      data->piggyback->second = to;
      return true;
    }
    return false;
  }

  ByzantineTransport& owner_;
  net::HostEndpoint& inner_;
  const std::vector<ByzantineBehavior>& behaviors_;
};

ByzantineTransport::ByzantineTransport(transport::Transport& inner,
                                       ByzantineSchedule schedule,
                                       HostId source)
    : inner_(inner), schedule_(std::move(schedule)), source_(source) {}

ByzantineTransport::~ByzantineTransport() = default;

util::Scheduler& ByzantineTransport::scheduler() { return inner_.scheduler(); }

net::HostEndpoint& ByzantineTransport::attach(HostId host,
                                              net::DeliveryFn deliver) {
  net::HostEndpoint& inner_endpoint = inner_.attach(host, std::move(deliver));
  auto it = schedule_.find(host);
  if (it == schedule_.end() || it->second.empty()) return inner_endpoint;
  auto endpoint = std::make_unique<Endpoint>(*this, inner_endpoint, it->second);
  Endpoint& ref = *endpoint;
  endpoints_[host] = std::move(endpoint);
  return ref;
}

void ByzantineTransport::detach(HostId host) {
  endpoints_.erase(host);
  inner_.detach(host);
}

std::set<HostId> ByzantineTransport::byzantine_hosts() const {
  std::set<HostId> hosts;
  for (const auto& [host, behaviors] : schedule_) {
    if (!behaviors.empty()) hosts.insert(host);
  }
  return hosts;
}

}  // namespace rbcast::harness
