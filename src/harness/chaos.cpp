#include "harness/chaos.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/experiment.h"
#include "topo/generators.h"
#include "util/assert.h"
#include "util/json.h"

namespace rbcast::harness {
namespace {

// Chaos specs nest objects and arrays, so they use the shared
// recursive-descent reader (util/json.h); "chaos spec" contexts keep the
// error messages this file always produced.

using util::Json;

constexpr const char* kJsonContext = "chaos spec";

double num_or(const Json& obj, const char* key, double fallback) {
  return util::json_num_or(obj, key, fallback, kJsonContext);
}

int int_or(const Json& obj, const char* key, int fallback) {
  return util::json_int_or(obj, key, fallback, kJsonContext);
}

bool bool_or(const Json& obj, const char* key, bool fallback) {
  return util::json_bool_or(obj, key, fallback, kJsonContext);
}

std::string str_or(const Json& obj, const char* key, std::string fallback) {
  return util::json_str_or(obj, key, std::move(fallback), kJsonContext);
}

// --- JSON writing ----------------------------------------------------------

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

topo::TrunkShape shape_from_string(const std::string& name) {
  if (name == "line") return topo::TrunkShape::kLine;
  if (name == "ring") return topo::TrunkShape::kRing;
  if (name == "star") return topo::TrunkShape::kStar;
  if (name == "random_tree") return topo::TrunkShape::kRandomTree;
  throw std::invalid_argument("chaos spec: unknown trunk shape '" + name +
                              "'");
}

std::size_t mod_index(int target, std::size_t n) {
  RBCAST_ASSERT(n > 0);
  const auto m = static_cast<int>(n);
  return static_cast<std::size_t>(((target % m) + m) % m);
}

bool is_byzantine_event(const std::string& type) {
  return type == "byz_equivocate" || type == "byz_corrupt" ||
         type == "byz_lie_info" || type == "byz_offer";
}

void validate_event_type(const std::string& type) {
  if (type != "outage" && type != "crash" && type != "partition" &&
      !is_byzantine_event(type)) {
    throw std::invalid_argument("chaos spec: unknown event type '" + type +
                                "'");
  }
}

ByzantineBehavior::Kind byzantine_kind(const std::string& type) {
  if (type == "byz_equivocate") return ByzantineBehavior::Kind::kEquivocate;
  if (type == "byz_corrupt") return ByzantineBehavior::Kind::kCorrupt;
  if (type == "byz_lie_info") return ByzantineBehavior::Kind::kLieInfo;
  RBCAST_ASSERT(type == "byz_offer");
  return ByzantineBehavior::Kind::kBogusOffer;
}

}  // namespace

// The (invariant, category) pair a shrink candidate must reproduce. The
// category keeps failure classes apart: stripping every byz_* event from a
// Byzantine repro turns its I2/I3 violations into uncategorized ones, so
// such a candidate is correctly rejected instead of conflating the repro
// with an ordinary crash/partition failure.
std::string violation_signature(const InvariantViolation& v) {
  return v.category.empty() ? v.invariant : v.invariant + "/" + v.category;
}

std::string to_json(const ChaosSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"version\": 1,\n";
  os << "  \"topology\": {\"clusters\": " << spec.clusters
     << ", \"hosts_per_cluster\": " << spec.hosts_per_cluster
     << ", \"shape\": \"" << spec.shape << "\"},\n";
  os << "  \"workload\": {\"broadcasts\": " << spec.broadcasts
     << ", \"interval_s\": " << fmt(spec.interval_s)
     << ", \"first_at_s\": " << fmt(spec.first_at_s) << "},\n";
  os << "  \"horizon\": {\"fault_end_s\": " << fmt(spec.fault_end_s)
     << ", \"orphan_limit_s\": " << fmt(spec.orphan_limit_s)
     << ", \"converge_deadline_s\": " << fmt(spec.converge_deadline_s)
     << ", \"horizon_s\": " << fmt(spec.horizon_s) << "},\n";
  os << "  \"generate\": {\"outages\": " << spec.outages
     << ", \"crashes\": " << spec.crashes
     << ", \"partitions\": " << spec.partitions
     << ", \"flap_links\": " << spec.flap_links
     << ", \"flap_mean_up_s\": " << fmt(spec.flap_mean_up_s)
     << ", \"flap_mean_down_s\": " << fmt(spec.flap_mean_down_s)
     << ", \"min_window_s\": " << fmt(spec.min_window_s)
     << ", \"max_window_s\": " << fmt(spec.max_window_s)
     << ", \"jitter_topology\": " << (spec.jitter_topology ? "true" : "false")
     << ", \"jitter_config\": " << (spec.jitter_config ? "true" : "false")
     << "}";
  const bool has_byzantine = spec.byzantine != 0 || !spec.byz_equivocate ||
                             !spec.byz_corrupt || !spec.byz_lie_info ||
                             !spec.byz_bogus_offer;
  if (has_byzantine) {
    os << ",\n  \"byzantine\": {\"count\": " << spec.byzantine
       << ", \"equivocate\": " << (spec.byz_equivocate ? "true" : "false")
       << ", \"corrupt\": " << (spec.byz_corrupt ? "true" : "false")
       << ", \"lie_info\": " << (spec.byz_lie_info ? "true" : "false")
       << ", \"bogus_offer\": " << (spec.byz_bogus_offer ? "true" : "false")
       << "}";
  }
  const bool has_config =
      spec.attach_period_s.has_value() || spec.info_period_inter_s.has_value() ||
      spec.gapfill_period_neighbor_s.has_value() ||
      spec.piggyback_info.has_value() || spec.batch_flush_ms.has_value() ||
      spec.batch_max_bytes.has_value() || spec.auth_enabled.has_value();
  if (has_config) {
    os << ",\n  \"config\": {";
    const char* sep = "";
    if (spec.attach_period_s.has_value()) {
      os << sep << "\"attach_period_s\": " << fmt(*spec.attach_period_s);
      sep = ", ";
    }
    if (spec.info_period_inter_s.has_value()) {
      os << sep
         << "\"info_period_inter_s\": " << fmt(*spec.info_period_inter_s);
      sep = ", ";
    }
    if (spec.gapfill_period_neighbor_s.has_value()) {
      os << sep << "\"gapfill_period_neighbor_s\": "
         << fmt(*spec.gapfill_period_neighbor_s);
      sep = ", ";
    }
    if (spec.piggyback_info.has_value()) {
      os << sep << "\"piggyback_info\": "
         << (*spec.piggyback_info ? "true" : "false");
      sep = ", ";
    }
    if (spec.batch_flush_ms.has_value()) {
      os << sep << "\"batch_flush_ms\": " << fmt(*spec.batch_flush_ms);
      sep = ", ";
    }
    if (spec.batch_max_bytes.has_value()) {
      os << sep << "\"batch_max_bytes\": " << *spec.batch_max_bytes;
      sep = ", ";
    }
    if (spec.auth_enabled.has_value()) {
      os << sep << "\"auth_enabled\": "
         << (*spec.auth_enabled ? "true" : "false");
    }
    os << "}";
  }
  if (spec.concrete) {
    os << ",\n  \"concrete\": true,\n  \"events\": [";
    for (std::size_t i = 0; i < spec.events.size(); ++i) {
      const ChaosEvent& e = spec.events[i];
      if (i > 0) os << ",";
      os << "\n    {\"type\": \"" << e.type << "\", \"target\": " << e.target
         << ", \"from_s\": " << fmt(e.from_s)
         << ", \"to_s\": " << fmt(e.to_s) << "}";
    }
    if (!spec.events.empty()) os << "\n  ";
    os << "]";
  }
  os << "\n}\n";
  return os.str();
}

ChaosSpec parse_chaos_spec(const std::string& json) {
  const Json root = util::parse_json(json, kJsonContext);
  if (root.type != Json::Type::kObject) {
    throw std::invalid_argument("chaos spec: top level must be an object");
  }
  ChaosSpec spec;
  if (const Json* t = root.find("topology"); t != nullptr) {
    spec.clusters = int_or(*t, "clusters", spec.clusters);
    spec.hosts_per_cluster =
        int_or(*t, "hosts_per_cluster", spec.hosts_per_cluster);
    spec.shape = str_or(*t, "shape", spec.shape);
    (void)shape_from_string(spec.shape);  // validate early
  }
  if (const Json* w = root.find("workload"); w != nullptr) {
    spec.broadcasts = int_or(*w, "broadcasts", spec.broadcasts);
    spec.interval_s = num_or(*w, "interval_s", spec.interval_s);
    spec.first_at_s = num_or(*w, "first_at_s", spec.first_at_s);
  }
  if (const Json* h = root.find("horizon"); h != nullptr) {
    spec.fault_end_s = num_or(*h, "fault_end_s", spec.fault_end_s);
    spec.orphan_limit_s = num_or(*h, "orphan_limit_s", spec.orphan_limit_s);
    spec.converge_deadline_s =
        num_or(*h, "converge_deadline_s", spec.converge_deadline_s);
    spec.horizon_s = num_or(*h, "horizon_s", spec.horizon_s);
  }
  if (const Json* g = root.find("generate"); g != nullptr) {
    spec.outages = int_or(*g, "outages", spec.outages);
    spec.crashes = int_or(*g, "crashes", spec.crashes);
    spec.partitions = int_or(*g, "partitions", spec.partitions);
    spec.flap_links = int_or(*g, "flap_links", spec.flap_links);
    spec.flap_mean_up_s = num_or(*g, "flap_mean_up_s", spec.flap_mean_up_s);
    spec.flap_mean_down_s =
        num_or(*g, "flap_mean_down_s", spec.flap_mean_down_s);
    spec.min_window_s = num_or(*g, "min_window_s", spec.min_window_s);
    spec.max_window_s = num_or(*g, "max_window_s", spec.max_window_s);
    spec.jitter_topology = bool_or(*g, "jitter_topology", spec.jitter_topology);
    spec.jitter_config = bool_or(*g, "jitter_config", spec.jitter_config);
  }
  if (const Json* b = root.find("byzantine"); b != nullptr) {
    spec.byzantine = int_or(*b, "count", spec.byzantine);
    spec.byz_equivocate = bool_or(*b, "equivocate", spec.byz_equivocate);
    spec.byz_corrupt = bool_or(*b, "corrupt", spec.byz_corrupt);
    spec.byz_lie_info = bool_or(*b, "lie_info", spec.byz_lie_info);
    spec.byz_bogus_offer = bool_or(*b, "bogus_offer", spec.byz_bogus_offer);
  }
  if (const Json* c = root.find("config"); c != nullptr) {
    if (c->find("attach_period_s") != nullptr) {
      spec.attach_period_s = num_or(*c, "attach_period_s", 0);
    }
    if (c->find("info_period_inter_s") != nullptr) {
      spec.info_period_inter_s = num_or(*c, "info_period_inter_s", 0);
    }
    if (c->find("gapfill_period_neighbor_s") != nullptr) {
      spec.gapfill_period_neighbor_s =
          num_or(*c, "gapfill_period_neighbor_s", 0);
    }
    if (c->find("piggyback_info") != nullptr) {
      spec.piggyback_info = bool_or(*c, "piggyback_info", false);
    }
    if (c->find("batch_flush_ms") != nullptr) {
      spec.batch_flush_ms = num_or(*c, "batch_flush_ms", 0);
    }
    if (c->find("batch_max_bytes") != nullptr) {
      spec.batch_max_bytes = int_or(*c, "batch_max_bytes", 0);
    }
    if (c->find("auth_enabled") != nullptr) {
      spec.auth_enabled = bool_or(*c, "auth_enabled", false);
    }
  }
  spec.concrete = bool_or(root, "concrete", false);
  if (const Json* evs = root.find("events"); evs != nullptr) {
    if (evs->type != Json::Type::kArray) {
      throw std::invalid_argument("chaos spec: 'events' must be an array");
    }
    for (const Json& item : evs->items) {
      if (item.type != Json::Type::kObject) {
        throw std::invalid_argument("chaos spec: each event must be an object");
      }
      ChaosEvent e;
      e.type = str_or(item, "type", "");
      validate_event_type(e.type);
      e.target = int_or(item, "target", 0);
      e.from_s = num_or(item, "from_s", 0);
      e.to_s = num_or(item, "to_s", 0);
      spec.events.push_back(std::move(e));
    }
  }
  if (spec.clusters < 1 || spec.hosts_per_cluster < 1) {
    throw std::invalid_argument("chaos spec: topology must be non-empty");
  }
  if (spec.fault_end_s <= 0 || spec.converge_deadline_s <= 0 ||
      spec.orphan_limit_s <= 0) {
    throw std::invalid_argument("chaos spec: horizon fields must be positive");
  }
  return spec;
}

ChaosSpec load_chaos_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open chaos spec: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_chaos_spec(buffer.str());
}

ChaosSpec concretize(const ChaosSpec& spec, std::uint64_t seed) {
  if (spec.concrete) return spec;
  ChaosSpec out = spec;
  const util::RngFactory rngs(seed);

  if (out.jitter_topology) {
    util::Rng rng = rngs.stream("chaos.topology");
    out.clusters =
        static_cast<int>(rng.uniform_int(2, std::max(2, spec.clusters)));
    out.hosts_per_cluster = static_cast<int>(
        rng.uniform_int(1, std::max(1, spec.hosts_per_cluster)));
    static constexpr const char* kShapes[] = {"line", "ring", "star"};
    out.shape = kShapes[rng.uniform_int(0, 2)];
  }
  if (out.jitter_config) {
    util::Rng rng = rngs.stream("chaos.config");
    out.attach_period_s = 1.0 + rng.uniform() * 2.0;
    out.info_period_inter_s = 2.0 + rng.uniform() * 4.0;
    out.gapfill_period_neighbor_s = 0.5 + rng.uniform() * 1.5;
    out.piggyback_info = rng.chance(0.5);
  }

  // Upper bounds for modulo-mapped targets; exact counts do not matter.
  const int trunk_targets = std::max(1, out.clusters);
  const int host_targets = std::max(1, out.clusters * out.hosts_per_cluster);
  const double window_floor = std::max(0.5, out.min_window_s);
  const double window_ceil = std::max(window_floor, out.max_window_s);
  const double latest_start = std::max(1.0, out.fault_end_s - window_floor);

  auto draw_window = [&](util::Rng& rng, const char* type, int target) {
    ChaosEvent e;
    e.type = type;
    e.target = target;
    e.from_s = 1.0 + rng.uniform() * (latest_start - 1.0);
    const double len =
        window_floor + rng.uniform() * (window_ceil - window_floor);
    e.to_s = std::min(e.from_s + len, out.fault_end_s);
    return e;
  };

  {
    util::Rng rng = rngs.stream("chaos.outage");
    for (int k = 0; k < out.outages; ++k) {
      out.events.push_back(draw_window(
          rng, "outage",
          static_cast<int>(rng.uniform_int(0, trunk_targets - 1))));
    }
  }
  {
    util::Rng rng = rngs.stream("chaos.crash");
    for (int k = 0; k < out.crashes; ++k) {
      out.events.push_back(draw_window(
          rng, "crash", static_cast<int>(rng.uniform_int(0, host_targets - 1))));
    }
  }
  {
    util::Rng rng = rngs.stream("chaos.partition");
    for (int k = 0; k < out.partitions; ++k) {
      out.events.push_back(draw_window(
          rng, "partition",
          static_cast<int>(rng.uniform_int(0, out.clusters - 1))));
    }
  }
  {
    // Each adversary draws a target and one window per enabled behavior.
    // Separate events per behavior keep ddmin granularity fine: a shrunk
    // repro names exactly the behaviors needed to reproduce.
    util::Rng rng = rngs.stream("chaos.byzantine");
    for (int k = 0; k < out.byzantine; ++k) {
      const int target =
          static_cast<int>(rng.uniform_int(0, host_targets - 1));
      if (out.byz_equivocate) {
        out.events.push_back(draw_window(rng, "byz_equivocate", target));
      }
      if (out.byz_corrupt) {
        out.events.push_back(draw_window(rng, "byz_corrupt", target));
      }
      if (out.byz_lie_info) {
        out.events.push_back(draw_window(rng, "byz_lie_info", target));
      }
      if (out.byz_bogus_offer) {
        out.events.push_back(draw_window(rng, "byz_offer", target));
      }
    }
  }
  // Flapping becomes explicit outage windows, so the whole schedule is one
  // shrinkable event list.
  for (int i = 0; i < out.flap_links; ++i) {
    util::Rng rng = rngs.stream("chaos.flap", i);
    const int target = static_cast<int>(rng.uniform_int(0, trunk_targets - 1));
    double t = 1.0;
    while (true) {
      t += std::max(0.2, rng.exponential(std::max(0.5, out.flap_mean_up_s)));
      const double down =
          std::max(0.2, rng.exponential(std::max(0.5, out.flap_mean_down_s)));
      if (t + down >= out.fault_end_s) break;
      out.events.push_back(ChaosEvent{"outage", target, t, t + down});
      t += down;
    }
  }

  // Drop degenerate windows, order by start time (stable tie-break on the
  // full event tuple keeps expansion deterministic).
  std::erase_if(out.events, [&](const ChaosEvent& e) {
    return e.to_s <= e.from_s || e.from_s >= out.fault_end_s;
  });
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     if (a.from_s != b.from_s) return a.from_s < b.from_s;
                     if (a.to_s != b.to_s) return a.to_s < b.to_s;
                     if (a.type != b.type) return a.type < b.type;
                     return a.target < b.target;
                   });
  out.concrete = true;
  return out;
}

ChaosRunResult run_chaos(const ChaosSpec& spec, std::uint64_t seed,
                         trace::TraceSink* sink) {
  const ChaosSpec c = concretize(spec, seed);

  topo::ClusteredWanOptions wan_options;
  wan_options.clusters = std::max(2, c.clusters);
  wan_options.hosts_per_cluster = std::max(1, c.hosts_per_cluster);
  wan_options.shape = shape_from_string(c.shape);
  wan_options.seed = seed;
  const topo::Wan wan = topo::make_clustered_wan(wan_options);

  ScenarioOptions options;
  options.seed = seed;
  options.monitor_invariants = true;
  options.monitor.orphan_limit = sim::from_seconds(c.orphan_limit_s);
  options.monitor.converge_deadline = sim::from_seconds(c.converge_deadline_s);
  if (c.attach_period_s.has_value()) {
    options.protocol.attach_period = sim::from_seconds(*c.attach_period_s);
  }
  if (c.info_period_inter_s.has_value()) {
    options.protocol.info_period_inter =
        sim::from_seconds(*c.info_period_inter_s);
  }
  if (c.gapfill_period_neighbor_s.has_value()) {
    options.protocol.gapfill_period_neighbor =
        sim::from_seconds(*c.gapfill_period_neighbor_s);
  }
  if (c.piggyback_info.has_value()) {
    options.protocol.piggyback_info = *c.piggyback_info;
  }
  if (c.batch_flush_ms.has_value()) {
    options.protocol.batch_flush_delay =
        sim::from_seconds(*c.batch_flush_ms / 1000.0);
  }
  if (c.batch_max_bytes.has_value()) {
    options.protocol.batch_max_bytes =
        static_cast<std::size_t>(*c.batch_max_bytes);
  }
  if (c.auth_enabled.has_value()) {
    options.protocol.auth_enabled = *c.auth_enabled;
  }

  // Byzantine behavior windows become a per-host schedule before the
  // experiment is wired (the decorator interposes at host attach time).
  // Targets map onto non-source hosts: an adversarial source would trivially
  // violate everything, which is not the containment question.
  const std::size_t total_hosts = wan.topology.host_count();
  for (const ChaosEvent& ev : c.events) {
    if (!is_byzantine_event(ev.type)) continue;
    if (ev.to_s <= ev.from_s || total_hosts < 2) continue;
    const auto victim = static_cast<HostId::value_type>(
        1 + mod_index(ev.target, total_hosts - 1));
    options.byzantine[HostId{victim}].push_back(
        ByzantineBehavior{byzantine_kind(ev.type), ev.from_s, ev.to_s});
  }

  Experiment e(wan.topology, options);
  if (!options.byzantine.empty()) {
    e.monitor()->set_byzantine_hosts(e.byzantine()->byzantine_hosts());
  }
  if (sink != nullptr) e.set_trace_sink(sink);

  for (const ChaosEvent& ev : c.events) {
    const auto from = sim::from_seconds(std::max(0.001, ev.from_s));
    const auto to =
        sim::from_seconds(std::max(0.002, std::min(ev.to_s, c.fault_end_s)));
    if (to <= from) continue;
    if (ev.type == "outage") {
      if (wan.trunks.empty()) continue;
      e.faults().outage_window(wan.trunks[mod_index(ev.target,
                                                    wan.trunks.size())],
                               from, to);
    } else if (ev.type == "crash") {
      const auto victim = static_cast<HostId::value_type>(
          mod_index(ev.target, e.host_count()));
      e.faults().host_crash_window(HostId{victim}, from, to);
    } else if (ev.type == "partition") {
      const std::size_t cluster =
          mod_index(ev.target, wan.cluster_head_server.size());
      const auto cut = net::FaultPlan::trunks_incident_to(
          e.topology(), wan.cluster_head_server[cluster]);
      if (!cut.empty()) e.faults().partition_window(cut, from, to);
    } else if (is_byzantine_event(ev.type)) {
      // Already folded into options.byzantine above.
    } else {
      throw std::invalid_argument("chaos spec: unknown event type '" +
                                  ev.type + "'");
    }
  }

  e.monitor()->set_faults_quiet_at(sim::from_seconds(c.fault_end_s));
  e.start();
  e.broadcast_stream(c.broadcasts, sim::from_seconds(c.interval_s),
                     sim::from_seconds(c.first_at_s));
  // Post-quiescence probe: the attachment rules only re-form the tree when
  // new information flows, so every chaos run guarantees one broadcast
  // after faults end. The monitor clocks C2/C3 from this anchor.
  e.schedule_broadcast_at(sim::from_seconds(c.fault_end_s + 2.0));

  const double horizon_s = c.horizon_s > 0
                               ? c.horizon_s
                               : c.fault_end_s + c.converge_deadline_s + 10.0;
  const sim::TimePoint horizon = sim::from_seconds(horizon_s);
  const sim::TimePoint done = e.run_until_delivered(horizon);
  // Keep running to the horizon so the C3 convergence deadline is actually
  // crossed and judged even when delivery finished early.
  e.run_until(horizon);
  e.monitor()->finish();

  ChaosRunResult result;
  result.violations = e.monitor()->violations();
  result.delivered_all = e.all_delivered();
  result.completion_s = sim::to_seconds(done);
  result.manifest = trace::manifest_line(e.manifest());
  result.containment = e.monitor()->containment();
  for (const core::BroadcastHost* host : e.host_views()) {
    result.auth_rejects += host->counters().auth_rejects;
  }
  return result;
}

ShrinkResult shrink_chaos(const ChaosSpec& failing, std::uint64_t seed,
                          int max_attempts) {
  RBCAST_CHECK_ARG(max_attempts >= 1, "max_attempts must be positive");
  ChaosSpec best = concretize(failing, seed);
  int attempts = 0;

  const ChaosRunResult original = run_chaos(best, seed);
  ++attempts;
  RBCAST_CHECK_ARG(original.violated(),
                   "shrink_chaos requires a spec that fails under this seed");
  const std::string signature = violation_signature(original.violations.front());

  // A candidate is kept only if it still violates the *same* invariant in
  // the *same* failure class — shrinking must preserve the failure, not
  // find a different one (see violation_signature).
  auto fails = [&](const ChaosSpec& candidate) {
    if (attempts >= max_attempts) return false;
    ++attempts;
    const ChaosRunResult r = run_chaos(candidate, seed);
    return std::any_of(r.violations.begin(), r.violations.end(),
                       [&](const InvariantViolation& v) {
                         return violation_signature(v) == signature;
                       });
  };

  ShrinkResult result;
  result.events_before = static_cast<int>(best.events.size());

  // 1. ddmin over the concrete event list.
  std::size_t granularity = 2;
  while (!best.events.empty() && attempts < max_attempts) {
    const std::size_t n = best.events.size();
    granularity = std::min(granularity, n);
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < n && attempts < max_attempts;
         start += chunk) {
      ChaosSpec candidate = best;
      const auto first =
          candidate.events.begin() + static_cast<std::ptrdiff_t>(start);
      const auto last = candidate.events.begin() +
                        static_cast<std::ptrdiff_t>(std::min(start + chunk, n));
      candidate.events.erase(first, last);
      if (candidate.events.size() < n && fails(candidate)) {
        best = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= n) break;  // 1-minimal
      granularity = std::min(n, granularity * 2);
    }
  }

  // 2. Shrink the topology (event targets are modulo-mapped, so they stay
  // valid as entity counts drop).
  while (best.clusters > 2 && attempts < max_attempts) {
    ChaosSpec candidate = best;
    --candidate.clusters;
    if (!fails(candidate)) break;
    best = std::move(candidate);
  }
  while (best.hosts_per_cluster > 1 && attempts < max_attempts) {
    ChaosSpec candidate = best;
    --candidate.hosts_per_cluster;
    if (!fails(candidate)) break;
    best = std::move(candidate);
  }

  // 3. Shrink the workload.
  while (best.broadcasts > 1 && attempts < max_attempts) {
    ChaosSpec candidate = best;
    candidate.broadcasts = std::max(1, candidate.broadcasts / 2);
    if (candidate.broadcasts == best.broadcasts || !fails(candidate)) break;
    best = std::move(candidate);
  }

  // 4. Pull the fault horizon in to just past the last surviving event (and
  // the end of the workload), shortening the whole run.
  if (attempts < max_attempts) {
    double last_event = 0;
    for (const ChaosEvent& e : best.events) {
      last_event = std::max(last_event, e.to_s);
    }
    const double workload_end =
        best.first_at_s + best.broadcasts * best.interval_s;
    const double tight = std::max(last_event, workload_end) + 1.0;
    if (tight < best.fault_end_s) {
      ChaosSpec candidate = best;
      candidate.fault_end_s = tight;
      if (fails(candidate)) best = std::move(candidate);
    }
  }

  result.spec = best;
  result.attempts = attempts;
  result.events_after = static_cast<int>(best.events.size());
  result.violations = run_chaos(best, seed).violations;
  return result;
}

}  // namespace rbcast::harness
