// Byzantine adversary layer — a Transport decorator that makes seeded
// hosts actively malicious instead of merely crashed or partitioned.
//
// The chaos harness (chaos.h) injects omission faults: outages, crashes,
// partitions. The Byzantine reliable-broadcast literature (Bonomi/Farina/
// Tixeuil arXiv 1811.01770, Imbs-Raynal arXiv 1510.06882 — PAPERS.md)
// asks a harder question: what happens when a *relay* lies? This layer
// answers it without touching the protocol: a ByzantineTransport wraps the
// real transport and interposes on the seeded hosts' outbound endpoints,
// mutating their protocol messages in flight. Honest hosts, the network
// model, and the protocol core are all unmodified — exactly the paper's
// "nonprogrammable" stance applied to the adversary: it can only use the
// same single-destination send everyone else has.
//
// Four behaviors, matching the chaos event types "byz_equivocate",
// "byz_corrupt", "byz_lie_info" and "byz_offer":
//  * equivocate — different bodies for the same (source, seq) to different
//    destinations (the classic split-brain sender);
//  * corrupt    — deterministic byte flip in every relayed data body;
//  * lie_info   — inflate the INFO watermark by claiming sequences the
//    host never received, and tell every peer "you are my parent"
//    (poisons MAPs, attracts attachments, suppresses gap fills);
//  * bogus_offer — piggyback a forged gap-fill DATA frame (a sequence the
//    source never sent) onto each INFO report.
//
// Every mutation is a pure function of (behavior window, message, source,
// destination) — no RNG at interpose time — so same-seed replays stay
// bit-identical, and mutated frames keep whatever stale authentication
// tag the original carried: the adversary cannot re-sign (core/auth.h).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/message.h"
#include "transport/transport.h"
#include "util/ids.h"

namespace rbcast::harness {

struct ByzantineBehavior {
  enum class Kind { kEquivocate, kCorrupt, kLieInfo, kBogusOffer };
  Kind kind{Kind::kCorrupt};
  // Active window in virtual seconds; to_s <= from_s means "forever".
  double from_s{0};
  double to_s{0};
};

// Per-host behavior schedule. Ordered so iteration (and thus any derived
// event order) is deterministic.
using ByzantineSchedule = std::map<HostId, std::vector<ByzantineBehavior>>;

// Decorates `inner`: hosts named in `schedule` send through a mutating
// interposer, everyone else passes through untouched. `source` is the
// broadcast source id (needed to forge trace ids the invariant monitor
// can attribute). The inner transport must outlive this object.
class ByzantineTransport final : public transport::Transport {
 public:
  ByzantineTransport(transport::Transport& inner, ByzantineSchedule schedule,
                     HostId source);
  ~ByzantineTransport() override;

  [[nodiscard]] util::Scheduler& scheduler() override;
  net::HostEndpoint& attach(HostId host, net::DeliveryFn deliver) override;
  void detach(HostId host) override;

  [[nodiscard]] const ByzantineSchedule& schedule() const { return schedule_; }
  [[nodiscard]] std::set<HostId> byzantine_hosts() const;

  // Frames altered or injected so far (telemetry for chaos reports).
  [[nodiscard]] std::uint64_t mutations() const { return mutations_; }

 private:
  class Endpoint;

  transport::Transport& inner_;
  ByzantineSchedule schedule_;
  HostId source_;
  std::uint64_t mutations_{0};
  std::map<HostId, std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace rbcast::harness
