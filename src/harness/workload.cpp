#include "harness/workload.h"

#include "util/assert.h"

namespace rbcast::harness {

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kSustained:
      return "sustained";
  }
  return "?";
}

sim::TimePoint schedule_workload(Experiment& experiment,
                                 const WorkloadOptions& options,
                                 util::Rng rng) {
  RBCAST_CHECK_ARG(options.messages >= 0, "negative message count");
  RBCAST_CHECK_ARG(options.interval > 0, "interval must be positive");
  RBCAST_CHECK_ARG(options.burst_size >= 1, "burst size must be >= 1");

  sim::TimePoint at = options.first_at;
  sim::TimePoint last = at;
  int scheduled = 0;
  int in_burst = 0;

  // Sustained overload: the message count is the rate held for the whole
  // duration, so two runs at different intervals stress the network for
  // the same span of virtual time at different offered loads.
  int messages = options.messages;
  if (options.process == ArrivalProcess::kSustained) {
    RBCAST_CHECK_ARG(options.duration > 0, "duration must be positive");
    messages = static_cast<int>(options.duration / options.interval);
  }

  while (scheduled < messages) {
    experiment.schedule_broadcast_at(at);
    last = at;
    ++scheduled;

    switch (options.process) {
      case ArrivalProcess::kUniform:
        at += options.interval;
        break;
      case ArrivalProcess::kPoisson: {
        const double gap_s =
            rng.exponential(sim::to_seconds(options.interval));
        at += std::max<sim::Duration>(1, sim::from_seconds(gap_s));
        break;
      }
      case ArrivalProcess::kSustained:
        at += options.interval;
        break;
      case ArrivalProcess::kBursty:
        ++in_burst;
        if (in_burst >= options.burst_size) {
          in_burst = 0;
          at += options.interval;  // silence between bursts
        } else {
          at += sim::microseconds(100);  // back-to-back within the burst
        }
        break;
    }
  }
  return last;
}

}  // namespace rbcast::harness
