// MetricsRegistry — the one naming authority for runtime telemetry.
//
// Every subsystem that keeps ad-hoc stat structs (BroadcastHost::Counters,
// UdpTransport::Stats, Coalescer::Stats...) registers them here under a
// stable dotted name plus an optional pre-rendered label set, and every
// consumer — the Prometheus text exposition served by the node admin
// endpoint, the /status JSON snapshot, and trace::MetricSampler's per-run
// time series — reads the same snapshot. One name, three views; the
// naming contract is documented in DESIGN.md §14.
//
// Two registration styles:
//
//  * owned instruments (counter()/histogram()) hand back a reference the
//    caller increments on its hot path — a single add on a std::uint64_t
//    or one util::Histogram::add, benchmarked in bench_micro so
//    observability never silently taxes the data plane;
//  * callback instruments (register_*_fn) adapt the pre-existing stat
//    structs without touching their layout: the callable is invoked only
//    at snapshot time, so registration costs the running system nothing.
//
// Determinism: instruments live in a std::map ordered by (name, labels),
// so snapshot() iteration — and therefore every exposition format and the
// sampler's field order — is stable across runs (rbcast_lint compliant).
// Registration is single-threaded like everything else in the repo; the
// "lock-free-ish" property is simply that reads never take a lock because
// there is none to take.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace rbcast::util {

// One metric's value at snapshot time. For histograms `cumulative` holds
// the less-or-equal count per bound (the le_* schema MetricSampler and the
// Prometheus exposition share); samples above the last bound show only in
// `count`.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;    // dotted ("transport.datagrams_sent")
  std::string labels;  // pre-rendered Prometheus label body ("host=\"3\"")
  std::string help;    // one-line description (# HELP)
  Kind kind{Kind::kCounter};

  std::uint64_t counter{0};
  double gauge{0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count{0};
  double sum{0};
};

class MetricsRegistry {
 public:
  // Owned monotonic counter; inc() is the whole hot-path API.
  class Counter {
   public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_{0};
  };

  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;
  // Borrowed pointer, read at snapshot time; may return nullptr while the
  // source is gone (the metric then reads as empty).
  using HistogramFn = std::function<const Histogram*()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- owned instruments --------------------------------------------------
  // References stay valid for the registry's lifetime. Registering the
  // same (name, labels) twice throws std::invalid_argument.

  Counter& counter(const std::string& name, const std::string& labels = {},
                   const std::string& help = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& labels = {},
                       const std::string& help = {});

  // --- callback instruments ----------------------------------------------

  void register_counter_fn(const std::string& name, const std::string& labels,
                           const std::string& help, CounterFn fn);
  void register_gauge_fn(const std::string& name, const std::string& labels,
                         const std::string& help, GaugeFn fn);
  void register_histogram_fn(const std::string& name,
                             const std::string& labels,
                             const std::string& help, HistogramFn fn);

  // Removes every instrument whose (name, labels) key matches; callback
  // sources use this before their backing struct dies.
  void unregister(const std::string& name, const std::string& labels = {});

  // --- reading ------------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }

  // Evaluates every instrument, ordered by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  // Counters only, summed across label sets per name and ordered by name —
  // the flat delta source trace::MetricSampler folds into its time series.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_totals() const;

 private:
  struct Instrument {
    MetricSnapshot::Kind kind{MetricSnapshot::Kind::kCounter};
    std::string help;
    // Exactly one of these is set, matching `kind`.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Histogram> owned_histogram;
    CounterFn counter_fn;
    GaugeFn gauge_fn;
    HistogramFn histogram_fn;
  };

  using Key = std::pair<std::string, std::string>;  // (name, labels)

  Instrument& emplace(const std::string& name, const std::string& labels,
                      const std::string& help, MetricSnapshot::Kind kind);

  // Ordered: snapshot() iteration order is the exposition order.
  std::map<Key, Instrument> instruments_;
};

}  // namespace rbcast::util
