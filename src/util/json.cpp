#include "util/json.h"

#include <cctype>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace rbcast::util {

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(context_ + " JSON, offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.type = Json::Type::kString;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Json v;
      v.type = Json::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return Json{};
    return number();
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape in string");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_{0};
};

}  // namespace

Json parse_json(const std::string& text, const std::string& context) {
  return JsonParser(text, context).parse();
}

double json_num_or(const Json& obj, const char* key, double fallback,
                   const std::string& context) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != Json::Type::kNumber) {
    throw std::invalid_argument(context + ": '" + key + "' must be a number");
  }
  return v->number;
}

int json_int_or(const Json& obj, const char* key, int fallback,
                const std::string& context) {
  return static_cast<int>(json_num_or(obj, key, fallback, context));
}

bool json_bool_or(const Json& obj, const char* key, bool fallback,
                  const std::string& context) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != Json::Type::kBool) {
    throw std::invalid_argument(context + ": '" + key + "' must be a boolean");
  }
  return v->boolean;
}

std::string json_str_or(const Json& obj, const char* key, std::string fallback,
                        const std::string& context) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != Json::Type::kString) {
    throw std::invalid_argument(context + ": '" + key + "' must be a string");
  }
  return v->str;
}

}  // namespace rbcast::util
