#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace rbcast::util {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::quantile(double q) const {
  RBCAST_ASSERT(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[std::min(idx, xs_.size() - 1)];
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  RBCAST_CHECK_ARG(!bounds_.empty(), "histogram needs at least one bucket");
  RBCAST_CHECK_ARG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::vector<std::uint64_t> out(bounds_.size(), 0);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    running += counts_[i];
    out[i] = running;
  }
  return out;
}

double Histogram::quantile(double q) const {
  RBCAST_ASSERT(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    running += counts_[i];
    if (static_cast<double>(running) >= target && running > 0) {
      return bounds_[i];
    }
  }
  return bounds_.back();
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

std::uint64_t CounterMap::get(const std::string& name) const {
  auto it = m_.find(name);
  return it != m_.end() ? it->second : 0;
}

}  // namespace rbcast::util
