#include "util/scheduler.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace rbcast::util {

PeriodicTask::PeriodicTask(Scheduler& scheduler, Duration period,
                           std::function<void()> action)
    : scheduler_(scheduler), period_(period), action_(std::move(action)) {
  RBCAST_CHECK_ARG(period > 0, "periodic task needs a positive period");
  RBCAST_CHECK_ARG(action_ != nullptr, "periodic task needs an action");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(Duration first_delay) {
  RBCAST_ASSERT_MSG(!pending_.valid(), "task already running");
  RBCAST_ASSERT(first_delay >= 0);
  pending_ = scheduler_.after(first_delay, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (pending_.valid()) {
    scheduler_.cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTask::set_period(Duration period) {
  RBCAST_CHECK_ARG(period > 0, "periodic task needs a positive period");
  period_ = period;
}

void PeriodicTask::fire() {
  // Reschedule before running the action so the action may stop() us.
  pending_ = scheduler_.after(period_, [this] { fire(); });
  action_();
}

Duration phase_jitter(Rng& rng, Duration period) {
  // max() keeps the degenerate period == 1 (or 0) case a valid draw range;
  // the formula predates this helper, so seeded draw sequences are
  // unchanged by the extraction.
  return rng.uniform_int(0, std::max<Duration>(period - 1, 0));
}

}  // namespace rbcast::util
