// A minimal JSON document reader.
//
// trace::TraceReader parses only flat single-level JSONL records; anything
// that nests objects and arrays — chaos specs, rbcast_node topology
// configs — uses this small recursive-descent parser instead. Numbers are
// doubles, object member order is preserved (writers emit members in a
// fixed order, so round-trips are byte-stable).
//
// Lives in util (not harness) so both the chaos harness and the transport
// tooling can parse configs without an upward layer edge.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rbcast::util {

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type{Type::kNull};
  bool boolean{false};
  double number{0};
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> members;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Parses exactly one JSON value (trailing garbage rejected). Throws
// std::invalid_argument on malformed input; `context` prefixes the error
// ("<context> JSON, offset N: ...") so callers name their document kind.
[[nodiscard]] Json parse_json(const std::string& text,
                              const std::string& context);

// Typed member access with a fallback for absent keys. A present key of
// the wrong type throws std::invalid_argument ("<context>: 'key' must be
// a ...") — silently coercing a typo'd config is worse than failing.
[[nodiscard]] double json_num_or(const Json& obj, const char* key,
                                 double fallback, const std::string& context);
[[nodiscard]] int json_int_or(const Json& obj, const char* key, int fallback,
                              const std::string& context);
[[nodiscard]] bool json_bool_or(const Json& obj, const char* key,
                                bool fallback, const std::string& context);
[[nodiscard]] std::string json_str_or(const Json& obj, const char* key,
                                      std::string fallback,
                                      const std::string& context);

}  // namespace rbcast::util
