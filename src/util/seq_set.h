// SeqSet: an interval-compressed set of message sequence numbers.
//
// This is the concrete representation of the paper's INFO sets: "for each
// host i, a set INFO_i contains the sequence numbers of all messages
// received by i" (Section 4.2). Because broadcast streams are mostly
// contiguous with occasional gaps, we store maximal closed intervals
// [lo, hi]; a fully caught-up host uses one interval regardless of stream
// length, and the serialized footprint (what INFO-exchange control messages
// carry) is proportional to the number of gaps, not the number of messages.
//
// The paper's partial order on INFO sets (Section 4.2) is exposed as
// SeqSet::less_than / SeqSet::max_equal:
//     A <  B  iff  max(A) < max(B)
//     A ~= B  iff  max(A) = max(B)
// with the convention that an empty set has maximum 0 (sequence numbers
// start at 1), which matches the paper's initial condition where a host
// that has seen nothing is dominated by every host that has seen anything.
//
// Pruning (Section 6: "INFO sets can be pruned of messages 1..n when it
// becomes known that all hosts have safely received them") is supported via
// prune_below(); pruned elements still count as contained.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rbcast::util {

// Broadcast data messages are numbered 1, 2, 3, ... by the source.
using Seq = std::uint64_t;

class SeqSet {
 public:
  // A maximal run [lo, hi] (inclusive) of contained sequence numbers.
  struct Interval {
    Seq lo{0};
    Seq hi{0};
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  // Ceiling on any sequence number or prune watermark the set will hold.
  // Far above any real stream length, but low enough that hi + 1 and the
  // count()/contiguous_prefix() arithmetic can never wrap — decode()
  // rejects wire input above it rather than trusting the network.
  static constexpr Seq kMaxSeq = Seq{1} << 62;

  SeqSet() = default;

  // Constructs {1..n} — the INFO set of a host that has messages 1..n.
  static SeqSet contiguous(Seq n);

  // Constructs from an arbitrary list of elements (test convenience).
  static SeqSet of(std::initializer_list<Seq> seqs);

  // Inserts one sequence number. Returns true if it was newly added.
  // Precondition: 1 <= seq <= kMaxSeq.
  bool insert(Seq seq);

  // Inserts every element of [lo, hi] in one interval splice — O(log
  // intervals + intervals absorbed), independent of hi - lo.
  // Precondition: 1 <= lo <= hi <= kMaxSeq.
  void insert_range(Seq lo, Seq hi);

  // Union with another set: a linear two-pointer interval walk,
  // O(intervals(this) + intervals(other)) regardless of element counts.
  void merge(const SeqSet& other);

  [[nodiscard]] bool contains(Seq seq) const;

  // True iff no element was ever inserted (pruning does not make a
  // non-empty set empty: pruned elements remain contained).
  [[nodiscard]] bool empty() const;

  // Largest contained sequence number; 0 when empty. This is the max(.)
  // that the paper's < and ~= orders compare.
  [[nodiscard]] Seq max_seq() const;

  // Number of contained sequence numbers (including pruned ones).
  [[nodiscard]] std::uint64_t count() const;

  // Largest n such that every element of {1..n} is contained; 0 when the
  // set does not contain 1. Drives pruning: 1..n is the "safe prefix".
  [[nodiscard]] Seq contiguous_prefix() const;

  // --- The paper's partial order on INFO sets ---------------------------

  // this < other  iff  max(this) < max(other).
  [[nodiscard]] bool less_than(const SeqSet& other) const {
    return max_seq() < other.max_seq();
  }
  // this ~= other  iff  max(this) == max(other).
  [[nodiscard]] bool max_equal(const SeqSet& other) const {
    return max_seq() == other.max_seq();
  }

  // --- Gap queries (drive the gap-filling machinery, Section 4.4) ------

  // Sequence numbers missing from this set in [1, max_seq()] — the "gaps"
  // a host knows it has. At most `limit` results.
  [[nodiscard]] std::vector<Seq> gaps(std::size_t limit = SIZE_MAX) const;

  // Elements contained in *this but not in `other`, at most `limit` of
  // them, in increasing order. Used by a gap filler to decide which of its
  // messages a peer is missing.
  [[nodiscard]] std::vector<Seq> missing_from(const SeqSet& other,
                                              std::size_t limit = SIZE_MAX) const;

  // Like missing_from but only considers elements <= cap. Non-neighbor gap
  // filling must not push sequence numbers above the recipient's own max
  // (a host accepts *new* maxima only from its parent), so callers cap at
  // the recipient's max_seq().
  [[nodiscard]] std::vector<Seq> missing_from_capped(
      const SeqSet& other, Seq cap, std::size_t limit = SIZE_MAX) const;

  // --- Pruning ----------------------------------------------------------

  // Declares every sequence number <= watermark as permanently contained
  // (safe at all hosts). Intervals at or below the watermark are released.
  void prune_below(Seq watermark);

  [[nodiscard]] Seq prune_watermark() const { return pruned_below_; }

  // --- Introspection ----------------------------------------------------

  // Maximal intervals above the prune watermark, in increasing order.
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

  // Approximate serialized size in bytes, for network accounting: the
  // watermark plus 16 bytes per interval.
  [[nodiscard]] std::size_t wire_size() const {
    return 8 + 16 * intervals_.size();
  }

  // --- wire codec ---------------------------------------------------------
  //
  // Real serialization (not just size accounting): watermark, interval
  // count, then [lo, hi] pairs, all little-endian fixed-width. encode()'s
  // output length equals wire_size(). decode() validates invariants and
  // returns nullopt on malformed input — never trust the network.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<SeqSet> decode(
      const std::uint8_t* data, std::size_t size);
  [[nodiscard]] static std::optional<SeqSet> decode(
      const std::vector<std::uint8_t>& bytes) {
    return decode(bytes.data(), bytes.size());
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SeqSet& a, const SeqSet& b) = default;

 private:
  // Invariants: intervals_ sorted by lo; non-overlapping; non-adjacent
  // (gap of at least one between consecutive intervals); every lo >= 1;
  // every interval lies strictly above pruned_below_.
  std::vector<Interval> intervals_;
  Seq pruned_below_{0};

  void check_invariants() const;
};

}  // namespace rbcast::util
