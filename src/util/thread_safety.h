// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The simulator is single-threaded today, so nothing in src/ takes a lock
// — but the shared-mutable-state census (rbcast_analyze) exists precisely
// because the sharded parallel-DES work will change that. When a waived
// census hit grows a mutex, annotate it with these macros so Clang's
// -Wthread-safety analysis (-DRBCAST_THREAD_SAFETY=ON, Clang only) proves
// every access holds the right lock:
//
//   std::mutex mu_;
//   int shared_ RBCAST_GUARDED_BY(mu_);
//   void touch() RBCAST_REQUIRES(mu_);
//
// Under GCC (which has no -Wthread-safety) and in plain Clang builds the
// macros expand to nothing, so annotated code compiles everywhere.
#pragma once

#if defined(__clang__) && defined(RBCAST_THREAD_SAFETY_ENABLED)
#define RBCAST_TS_ATTR(x) __attribute__((x))
#else
#define RBCAST_TS_ATTR(x)
#endif

// A mutex-like type (wraps std::mutex or a shard lock).
#define RBCAST_CAPABILITY(name) RBCAST_TS_ATTR(capability(name))

// Data member readable/writable only while `mu` is held.
#define RBCAST_GUARDED_BY(mu) RBCAST_TS_ATTR(guarded_by(mu))

// Pointer member whose pointee is guarded by `mu`.
#define RBCAST_PT_GUARDED_BY(mu) RBCAST_TS_ATTR(pt_guarded_by(mu))

// Function that must be called with `mu` held (respectively not held).
#define RBCAST_REQUIRES(mu) RBCAST_TS_ATTR(requires_capability(mu))
#define RBCAST_EXCLUDES(mu) RBCAST_TS_ATTR(locks_excluded(mu))

// Function that acquires/releases `mu` (lock-wrapper methods).
#define RBCAST_ACQUIRE(mu) RBCAST_TS_ATTR(acquire_capability(mu))
#define RBCAST_RELEASE(mu) RBCAST_TS_ATTR(release_capability(mu))

// RAII guard types (std::scoped_lock equivalents).
#define RBCAST_SCOPED_CAPABILITY RBCAST_TS_ATTR(scoped_lockable)

// Escape hatch for code the analysis cannot see through; pair with a
// comment saying why it is safe.
#define RBCAST_NO_THREAD_SAFETY_ANALYSIS \
  RBCAST_TS_ATTR(no_thread_safety_analysis)
