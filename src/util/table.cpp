#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace rbcast::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  RBCAST_CHECK_ARG(!columns_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  RBCAST_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  RBCAST_ASSERT_MSG(rows_.back().size() < columns_.size(),
                    "more cells than columns");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return cell(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << "| " << std::setw(static_cast<int>(widths[c])) << std::left << v
         << ' ';
    }
    os << "|\n";
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rbcast::util
