// Virtual time.
//
// The simulation uses integer microsecond ticks. Integer time (rather than
// floating point) makes event ordering exact and runs reproducible across
// platforms; a microsecond resolves every delay the network model produces
// (transmission times down to single bytes on multi-megabit links).
//
// The types live in util (not sim) so the protocol layer can talk about
// time without depending on the discrete-event simulator: a real-socket
// backend measures the same microsecond ticks against a wall clock.
// src/sim/time.h re-exports these names into rbcast::sim for the layers
// that sit above the simulator.
#pragma once

#include <cstdint>

namespace rbcast::util {

// Absolute virtual time in microseconds since simulation start.
using TimePoint = std::int64_t;
// Relative virtual duration in microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t n) { return n; }
constexpr Duration milliseconds(std::int64_t n) { return n * 1000; }
constexpr Duration seconds(std::int64_t n) { return n * 1'000'000; }

// Converts a floating-point second count (e.g. a random exponential draw)
// to ticks, rounding to the nearest microsecond, never below zero.
constexpr Duration from_seconds(double s) {
  const double us = s * 1e6;
  return us <= 0.0 ? 0 : static_cast<Duration>(us + 0.5);
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e6;
}

}  // namespace rbcast::util
