// Aligned text tables and CSV output for the benchmark harness.
//
// Every bench binary regenerates one experiment from the paper and prints
// its result both as a human-readable table (stdout) and, optionally, CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rbcast::util {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  // Fixed-point with `decimals` digits.
  Table& cell(double v, int decimals = 2);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rbcast::util
