// RealTimeScheduler — util::Scheduler over the wall clock and poll(2).
//
// The real-network counterpart of sim::Simulator: the same now/after/cancel
// surface the protocol layer runs on, but `now()` reads CLOCK_MONOTONIC
// (microseconds since construction, so real traces start near t=0 exactly
// like simulated ones) and the run loop blocks in poll() until the next
// timer deadline or a watched file descriptor becomes readable. Transports
// register their sockets with watch_fd(); timers and fd callbacks all fire
// on the single thread that calls run_for()/run_until() — no locks, no
// background threads, no global state.
//
// Timer ordering matches the simulator's event queue: earliest deadline
// first, FIFO among equal deadlines. Wall-clock firing is of course only
// as punctual as the OS makes it; the contract is "not before the
// deadline, as soon after as the loop gets scheduled".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "util/scheduler.h"
#include "util/time.h"

namespace rbcast::util {

class RealTimeScheduler final : public Scheduler {
 public:
  using FdCallback = std::function<void()>;

  RealTimeScheduler();
  ~RealTimeScheduler() override;

  RealTimeScheduler(const RealTimeScheduler&) = delete;
  RealTimeScheduler& operator=(const RealTimeScheduler&) = delete;

  // Microseconds of CLOCK_MONOTONIC elapsed since construction.
  [[nodiscard]] TimePoint now() const override;

  EventId after(Duration d, Action action) override;
  bool cancel(EventId id) override;

  // Invokes `on_readable` (from inside the run loop) whenever `fd` is
  // readable. One callback per fd; watching an already-watched fd replaces
  // the callback.
  void watch_fd(int fd, FdCallback on_readable);
  void unwatch_fd(int fd);

  // Runs timers and fd callbacks until the wall clock reaches `t` (in
  // this scheduler's epoch). Returns when the deadline passes; callbacks
  // in flight complete first.
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now() + d); }

  // Makes the innermost run_until() return after the current callback.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_timers() const { return timers_.size(); }

 private:
  // (deadline, sequence) orders the timer map: earliest deadline first,
  // FIFO among ties — the same ordering the simulator's event queue gives.
  using TimerKey = std::pair<TimePoint, std::uint64_t>;

  // Fires every timer whose deadline has passed; returns the delay until
  // the next pending deadline (or `horizon` if that is sooner / no timer).
  Duration fire_due_timers(Duration horizon);

  TimePoint epoch_{0};  // CLOCK_MONOTONIC µs at construction
  std::uint64_t next_id_{1};
  std::map<TimerKey, Action> timers_;
  std::unordered_map<std::uint64_t, TimePoint> deadlines_;  // id -> deadline
  // Sorted so the poll set is built in a reproducible fd order.
  std::map<int, FdCallback> watched_;
  bool stopped_{false};
};

}  // namespace rbcast::util
