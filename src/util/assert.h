// Internal invariant checking.
//
// RBCAST_ASSERT is used for conditions that must hold if the library itself
// is correct; violations indicate a bug, not a user error, so we abort with
// a diagnostic rather than throw. User-facing argument validation uses
// exceptions (see RBCAST_CHECK_ARG).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rbcast::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rbcast: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rbcast::util

#define RBCAST_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::rbcast::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                    \
  } while (false)

#define RBCAST_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::rbcast::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                    \
  } while (false)

// Validates a user-supplied argument; throws std::invalid_argument.
#define RBCAST_CHECK_ARG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      throw std::invalid_argument(std::string("rbcast: ") + (msg));      \
    }                                                                    \
  } while (false)

// Paranoid invariant checks: whole-structure sweeps that are too expensive
// for hot paths in normal builds (full container scans, cross-structure
// consistency). Compiled in when RBCAST_PARANOID is defined — the
// asan-ubsan preset turns it on — and compiled out (but still
// type-checked) otherwise.
#if defined(RBCAST_PARANOID)
#define RBCAST_PARANOID_ASSERT(expr) RBCAST_ASSERT(expr)
#define RBCAST_PARANOID_ASSERT_MSG(expr, msg) RBCAST_ASSERT_MSG(expr, msg)
#else
#define RBCAST_PARANOID_ASSERT(expr) \
  do {                               \
    if (false) {                     \
      (void)(expr);                  \
    }                                \
  } while (false)
#define RBCAST_PARANOID_ASSERT_MSG(expr, msg) \
  do {                                        \
    if (false) {                              \
      (void)(expr);                           \
      (void)(msg);                            \
    }                                         \
  } while (false)
#endif
