#include "util/real_time_scheduler.h"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace rbcast::util {

namespace {

TimePoint monotonic_micros() {
  timespec ts{};
  RBCAST_ASSERT_MSG(clock_gettime(CLOCK_MONOTONIC, &ts) == 0,
                    "CLOCK_MONOTONIC unavailable");
  return static_cast<TimePoint>(ts.tv_sec) * 1'000'000 +
         static_cast<TimePoint>(ts.tv_nsec) / 1'000;
}

}  // namespace

RealTimeScheduler::RealTimeScheduler() : epoch_(monotonic_micros()) {}

RealTimeScheduler::~RealTimeScheduler() = default;

TimePoint RealTimeScheduler::now() const { return monotonic_micros() - epoch_; }

EventId RealTimeScheduler::after(Duration d, Action action) {
  RBCAST_CHECK_ARG(d >= 0, "cannot schedule in the past");
  RBCAST_CHECK_ARG(action != nullptr, "scheduled action must be callable");
  const std::uint64_t id = next_id_++;
  const TimePoint deadline = now() + d;
  timers_.emplace(TimerKey{deadline, id}, std::move(action));
  deadlines_.emplace(id, deadline);
  return EventId{id};
}

bool RealTimeScheduler::cancel(EventId id) {
  const auto it = deadlines_.find(id.value);
  if (it == deadlines_.end()) return false;
  timers_.erase(TimerKey{it->second, id.value});
  deadlines_.erase(it);
  return true;
}

void RealTimeScheduler::watch_fd(int fd, FdCallback on_readable) {
  RBCAST_CHECK_ARG(fd >= 0, "watch_fd needs a valid descriptor");
  RBCAST_CHECK_ARG(on_readable != nullptr, "watch_fd needs a callback");
  watched_[fd] = std::move(on_readable);
}

void RealTimeScheduler::unwatch_fd(int fd) { watched_.erase(fd); }

Duration RealTimeScheduler::fire_due_timers(Duration horizon) {
  // Pop one due timer at a time: the action may schedule or cancel other
  // timers, so no iterator may live across a call into it.
  while (!timers_.empty()) {
    const auto it = timers_.begin();
    const TimePoint deadline = it->first.first;
    const Duration wait = deadline - now();
    if (wait > 0) return std::min(wait, horizon);
    Action action = std::move(it->second);
    deadlines_.erase(it->first.second);
    timers_.erase(it);
    action();
    if (stopped_) break;
  }
  return horizon;
}

void RealTimeScheduler::run_until(TimePoint t) {
  stopped_ = false;
  while (!stopped_) {
    const Duration remaining = t - now();
    if (remaining <= 0) return;
    const Duration wait = fire_due_timers(remaining);
    if (stopped_ || t - now() <= 0) return;

    std::vector<pollfd> fds;
    fds.reserve(watched_.size());
    for (const auto& [fd, cb] : watched_) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    // Round the poll timeout up to whole milliseconds so we never spin
    // sub-millisecond waits, and cap it to keep the int conversion safe.
    const Duration wait_ms =
        std::min<Duration>((std::max<Duration>(wait, 0) + 999) / 1000,
                           60 * 1000);
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(wait_ms));
    if (rc < 0) continue;  // EINTR: just re-derive deadlines and retry
    for (const pollfd& p : fds) {
      if (stopped_) return;
      if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      // The callback may unwatch fds (including its own); look it up
      // fresh and skip if it vanished.
      const auto it = watched_.find(p.fd);
      if (it != watched_.end()) it->second();
    }
  }
}

}  // namespace rbcast::util
