#include "util/logging.h"

#include <cstdio>

namespace rbcast::util {

Logger& Logger::instance() {
  static Logger logger;  // analyze:allow(singleton) observation-only, level-gated logger; parallel-DES shards must inject per-shard sinks
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kNone:
      return;
  }
  if (now_us_ != nullptr) {
    std::fprintf(stderr, "[%c %10.6fs] %s\n", *tag,
                 static_cast<double>(*now_us_) / 1e6, msg.c_str());
  } else {
    std::fprintf(stderr, "[%c] %s\n", *tag, msg.c_str());
  }
}

}  // namespace rbcast::util
