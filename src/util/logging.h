// Minimal leveled logger.
//
// The simulator injects the current virtual time into every record so a
// trace reads like a network event log. Logging is off by default (level
// kNone) so tests and benches run silently; examples turn it up.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "util/thread_safety.h"

namespace rbcast::util {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  // The simulator registers a clock so records carry virtual time (us).
  void set_clock(const std::int64_t* now_us) { now_us_ = now_us; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  // The logger is the one process-wide singleton the shared-state census
  // waives (see logging.cpp). Single-threaded today; the parallel-DES
  // shard work must either inject per-shard sinks or guard these with a
  // mutex and RBCAST_GUARDED_BY so -Wthread-safety proves every access.
  LogLevel level_{LogLevel::kNone};
  const std::int64_t* now_us_{nullptr};
};

}  // namespace rbcast::util

#define RBCAST_LOG(level, expr)                                            \
  do {                                                                     \
    auto& rbcast_logger = ::rbcast::util::Logger::instance();              \
    if (rbcast_logger.enabled(level)) {                                    \
      std::ostringstream rbcast_log_os;                                    \
      rbcast_log_os << expr;                                               \
      rbcast_logger.write(level, rbcast_log_os.str());                     \
    }                                                                      \
  } while (false)

#define RBCAST_INFO(expr) RBCAST_LOG(::rbcast::util::LogLevel::kInfo, expr)
#define RBCAST_DEBUG(expr) RBCAST_LOG(::rbcast::util::LogLevel::kDebug, expr)
#define RBCAST_ERROR(expr) RBCAST_LOG(::rbcast::util::LogLevel::kError, expr)
