// Scheduler — the abstract clock-and-timer surface the protocol runs on.
//
// BroadcastHost and the comparison protocols need exactly three services
// from their runtime: the current time, one-shot timers, and timer
// cancellation. This interface captures those three and nothing else, so
// the protocol layer (src/core) does not depend on the discrete-event
// simulator: sim::Simulator implements Scheduler for simulated runs, and a
// future real-socket backend implements it with wall-clock timers — the
// Transport extraction planned in ROADMAP.md. rbcast_analyze enforces the
// resulting layer boundary (core must not include sim/ headers).
//
// PeriodicTask, the self-rescheduling activity wrapper the paper's
// "periodically activated" procedures use, lives here too because it needs
// only the Scheduler surface.
#pragma once

#include <cstdint>
#include <functional>

#include "util/time.h"

namespace rbcast::util {

class Rng;

// Handle to a scheduled (pending) timer. Value 0 is "no timer".
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  virtual ~Scheduler() = default;

  [[nodiscard]] virtual TimePoint now() const = 0;

  // Schedules `action` to fire `d` ticks from now (d >= 0). Returns a
  // handle usable with cancel().
  virtual EventId after(Duration d, Action action) = 0;

  // Cancels a pending timer; false if it already fired.
  virtual bool cancel(EventId id) = 0;
};

// A self-rescheduling periodic activity (the paper's "periodically
// activated" procedures: attachment, INFO exchange, gap filling).
//
// The first firing can be offset (jittered) so that hosts do not act in
// lock-step; after that the task fires every `period` ticks until stopped
// or destroyed. Destroying the task cancels the pending event (RAII).
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& scheduler, Duration period,
               std::function<void()> action);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // Arms the task; the first firing happens `first_delay` from now.
  void start(Duration first_delay);
  void stop();

  [[nodiscard]] bool running() const { return pending_.valid(); }
  [[nodiscard]] Duration period() const { return period_; }

  // Changes the period; takes effect at the next (re)scheduling.
  void set_period(Duration period);

 private:
  void fire();

  Scheduler& scheduler_;
  Duration period_;
  std::function<void()> action_;
  EventId pending_{};
};

// The phase offset for a periodic task's first firing: uniform in
// [0, period), drawn from the caller's named stream. This is THE jitter
// policy for both schedulers — protocols pass the result to
// PeriodicTask::start() whether they run under sim::Simulator or
// util::RealTimeScheduler, so sim and real runs de-phase identically for
// the same seed. Exactly one uniform_int draw per call (the sequence pin
// in real_time_scheduler_test relies on this).
[[nodiscard]] Duration phase_jitter(Rng& rng, Duration period);

}  // namespace rbcast::util
