#include "util/seq_set.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace rbcast::util {

SeqSet SeqSet::contiguous(Seq n) {
  SeqSet s;
  if (n >= 1) s.insert_range(1, n);
  return s;
}

SeqSet SeqSet::of(std::initializer_list<Seq> seqs) {
  SeqSet s;
  for (Seq q : seqs) s.insert(q);  // analyze:allow(hot-alloc) test-only convenience constructor, never on the event path
  return s;
}

bool SeqSet::insert(Seq seq) {
  RBCAST_ASSERT_MSG(seq >= 1, "sequence numbers start at 1");
  RBCAST_ASSERT_MSG(seq <= kMaxSeq, "sequence number above ceiling");
  if (seq <= pruned_below_) return false;

  // First interval with hi >= seq - 1 can absorb or abut seq.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), seq,
      [](const Interval& iv, Seq q) { return iv.hi + 1 < q; });

  if (it != intervals_.end() && it->lo <= seq && seq <= it->hi) {
    return false;  // already present
  }

  if (it != intervals_.end() && it->hi + 1 == seq) {
    // Extend *it upward; may merge with the next interval.
    it->hi = seq;
    auto next = it + 1;
    if (next != intervals_.end() && next->lo == seq + 1) {
      it->hi = next->hi;
      intervals_.erase(next);
    }
    return true;
  }
  if (it != intervals_.end() && seq + 1 == it->lo) {
    it->lo = seq;  // extend downward; cannot merge with previous (checked above)
    return true;
  }
  intervals_.insert(it, Interval{seq, seq});  // analyze:allow(hot-alloc) interval-vector splice, amortized O(1) per new gap edge
  return true;
}

void SeqSet::insert_range(Seq lo, Seq hi) {
  RBCAST_ASSERT_MSG(lo >= 1 && lo <= hi, "insert_range requires 1 <= lo <= hi");
  RBCAST_ASSERT_MSG(hi <= kMaxSeq, "sequence number above ceiling");
  if (hi <= pruned_below_) return;
  lo = std::max<Seq>(lo, pruned_below_ + 1);

  // One splice: [first, last) is the run of intervals that [lo, hi] overlaps
  // or abuts (they all coalesce with it into a single interval).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, Seq q) { return iv.hi + 1 < q; });
  auto last = first;
  Seq new_lo = lo;
  Seq new_hi = hi;
  while (last != intervals_.end() && last->lo <= hi + 1) {
    new_lo = std::min<Seq>(new_lo, last->lo);
    new_hi = std::max<Seq>(new_hi, last->hi);
    ++last;
  }
  if (first == last) {
    intervals_.insert(first, Interval{new_lo, new_hi});  // analyze:allow(hot-alloc) interval-vector splice, amortized O(1) per new gap edge
  } else {
    first->lo = new_lo;
    first->hi = new_hi;
    intervals_.erase(first + 1, last);
  }
}

void SeqSet::merge(const SeqSet& other) {
  if (other.pruned_below_ > pruned_below_) prune_below(other.pruned_below_);
  if (other.intervals_.empty()) return;
  if (intervals_.empty()) {
    // Copy other's intervals, clamped above our (possibly higher) watermark.
    for (const Interval& iv : other.intervals_) {
      if (iv.hi <= pruned_below_) continue;
      intervals_.push_back(  // analyze:allow(hot-alloc) bounded by the peer's interval count (gap edges), not stream length
          Interval{std::max<Seq>(iv.lo, pruned_below_ + 1), iv.hi});
    }
    return;
  }

  // Linear two-pointer union: repeatedly take the lower-starting interval
  // from either input and coalesce it onto the output tail.
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());  // analyze:allow(hot-alloc) single exact-size reserve per merge; scratch arena planned with the zero-alloc pass
  auto a = intervals_.cbegin();
  auto b = other.intervals_.cbegin();
  const auto append = [&](Seq lo, Seq hi) {
    if (hi <= pruned_below_) return;
    lo = std::max<Seq>(lo, pruned_below_ + 1);
    if (!merged.empty() && lo <= merged.back().hi + 1) {
      merged.back().hi = std::max<Seq>(merged.back().hi, hi);
    } else {
      merged.push_back(Interval{lo, hi});  // analyze:allow(hot-alloc) writes into the reserved scratch vector above
    }
  };
  while (a != intervals_.cend() || b != other.intervals_.cend()) {
    if (b == other.intervals_.cend() ||
        (a != intervals_.cend() && a->lo <= b->lo)) {
      append(a->lo, a->hi);
      ++a;
    } else {
      append(b->lo, b->hi);
      ++b;
    }
  }
  intervals_ = std::move(merged);
}

bool SeqSet::contains(Seq seq) const {
  if (seq == 0) return false;
  if (seq <= pruned_below_) return true;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), seq,
      [](const Interval& iv, Seq q) { return iv.hi < q; });
  return it != intervals_.end() && it->lo <= seq;
}

bool SeqSet::empty() const {
  return pruned_below_ == 0 && intervals_.empty();
}

Seq SeqSet::max_seq() const {
  if (!intervals_.empty()) return intervals_.back().hi;
  return pruned_below_;
}

std::uint64_t SeqSet::count() const {
  std::uint64_t n = pruned_below_;
  for (const Interval& iv : intervals_) n += iv.hi - iv.lo + 1;
  return n;
}

Seq SeqSet::contiguous_prefix() const {
  if (intervals_.empty()) return pruned_below_;
  const Interval& first = intervals_.front();
  if (first.lo == pruned_below_ + 1) return first.hi;
  return pruned_below_;
}

std::vector<Seq> SeqSet::gaps(std::size_t limit) const {
  // Interval walk: each hole between consecutive intervals is materialized
  // directly, so the cost is O(intervals + output), never O(max_seq).
  std::vector<Seq> out;
  if (limit == 0) return out;
  Seq cursor = pruned_below_ + 1;
  for (const Interval& iv : intervals_) {
    for (Seq q = cursor; q < iv.lo; ++q) {
      out.push_back(q);  // analyze:allow(hot-alloc) query API returns a fresh bounded vector; limit caps growth
      if (out.size() >= limit) return out;
    }
    cursor = iv.hi + 1;
  }
  return out;
}

std::vector<Seq> SeqSet::missing_from(const SeqSet& other,
                                      std::size_t limit) const {
  return missing_from_capped(other, max_seq(), limit);
}

std::vector<Seq> SeqSet::missing_from_capped(const SeqSet& other, Seq cap,
                                             std::size_t limit) const {
  std::vector<Seq> out;
  if (limit == 0) return out;
  // Everything <= other's prune watermark is contained there by convention.
  const Seq floor = other.pruned_below_;
  // Interval walk with a monotone cursor into other's intervals: covered
  // stretches are skipped in one step, so the cost is O(intervals(this) +
  // intervals(other) + output) instead of one contains() probe per element.
  auto ot = other.intervals_.cbegin();
  for (const Interval& iv : intervals_) {
    if (iv.lo > cap) break;
    const Seq hi = std::min<Seq>(iv.hi, cap);
    Seq q = std::max<Seq>(iv.lo, floor + 1);
    while (q <= hi) {
      while (ot != other.intervals_.cend() && ot->hi < q) ++ot;
      if (ot != other.intervals_.cend() && ot->lo <= q) {
        q = ot->hi + 1;  // covered by other: jump past its interval
        continue;
      }
      Seq run_hi = hi;
      if (ot != other.intervals_.cend()) {
        run_hi = std::min<Seq>(run_hi, ot->lo - 1);
      }
      for (; q <= run_hi; ++q) {
        out.push_back(q);  // analyze:allow(hot-alloc) query API returns a fresh bounded vector; limit caps growth
        if (out.size() >= limit) return out;
      }
    }
  }
  // Note: elements of *this* below our own watermark are all <= floor
  // candidates only when other.pruned_below_ < pruned_below_; those are by
  // definition safe at all hosts, so never worth offering.
  return out;
}

void SeqSet::prune_below(Seq watermark) {
  RBCAST_ASSERT_MSG(watermark <= kMaxSeq, "prune watermark above ceiling");
  if (watermark <= pruned_below_) return;
  pruned_below_ = watermark;
  auto it = intervals_.begin();
  while (it != intervals_.end()) {
    if (it->hi <= watermark) {
      it = intervals_.erase(it);
    } else {
      if (it->lo <= watermark) it->lo = watermark + 1;
      ++it;
    }
  }
}

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> SeqSet::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());  // analyze:allow(hot-alloc) exact-size reserve; wire encode runs on the control path, not the event loop
  // Header packs the watermark (56 bits are plenty for sequence numbers)
  // with the interval count in the top byte's... keep it simple and
  // explicit instead: watermark, then one [lo, hi] pair per interval.
  // The interval count is implied by the buffer length.
  put_u64(out, pruned_below_);
  for (const Interval& iv : intervals_) {
    put_u64(out, iv.lo);
    put_u64(out, iv.hi);
  }
  RBCAST_ASSERT(out.size() == wire_size());
  return out;
}

std::optional<SeqSet> SeqSet::decode(const std::uint8_t* data,
                                     std::size_t size) {
  if (data == nullptr && size > 0) return std::nullopt;
  if (size < 8 || (size - 8) % 16 != 0) return std::nullopt;

  SeqSet out;
  out.pruned_below_ = get_u64(data);
  // An absurd watermark (e.g. UINT64_MAX) would make every later
  // pruned_below_ + 1 / count() / contiguous_prefix() computation wrap;
  // nothing legitimate ever gets near the ceiling, so reject outright.
  if (out.pruned_below_ > kMaxSeq) return std::nullopt;
  const std::size_t count = (size - 8) / 16;
  Seq prev_hi = out.pruned_below_;
  bool first = true;
  for (std::size_t i = 0; i < count; ++i) {
    const Seq lo = get_u64(data + 8 + 16 * i);
    const Seq hi = get_u64(data + 8 + 16 * i + 8);
    // Enforce the class invariants on untrusted input: ordered, maximal,
    // non-overlapping intervals strictly above the watermark, below the
    // arithmetic-safety ceiling.
    if (lo < 1 || lo > hi || hi > kMaxSeq) return std::nullopt;
    if (lo <= out.pruned_below_) return std::nullopt;
    if (!first && lo <= prev_hi + 1) return std::nullopt;
    first = false;
    prev_hi = hi;
    out.intervals_.push_back(Interval{lo, hi});  // analyze:allow(hot-alloc) decode builds a new set from the wire; control path only
  }
  return out;
}

std::string SeqSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  if (pruned_below_ > 0) {
    os << "1.." << pruned_below_ << "(pruned)";
    first = false;
  }
  for (const Interval& iv : intervals_) {
    if (!first) os << ',';
    first = false;
    if (iv.lo == iv.hi) {
      os << iv.lo;
    } else {
      os << iv.lo << ".." << iv.hi;
    }
  }
  os << '}';
  return os.str();
}

void SeqSet::check_invariants() const {
  Seq prev_hi = pruned_below_;
  bool first = true;
  for (const Interval& iv : intervals_) {
    RBCAST_ASSERT(iv.lo >= 1 && iv.lo <= iv.hi && iv.hi <= kMaxSeq);
    RBCAST_ASSERT(iv.lo > pruned_below_);
    if (!first) RBCAST_ASSERT_MSG(iv.lo > prev_hi + 1, "intervals must be maximal");
    first = false;
    prev_hi = iv.hi;
  }
}

}  // namespace rbcast::util
