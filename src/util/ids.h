// Strong identifier types for the entities in the system.
//
// Hosts, servers and links live in different index spaces; using a distinct
// type for each prevents the classic "passed a host index where a server
// index was expected" bug at compile time (C++ Core Guidelines I.4).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace rbcast {

namespace detail {

// CRTP-free strong integer id. Tag makes each instantiation a unique type.
template <typename Tag>
struct StrongId {
  using value_type = std::int32_t;

  // Sentinel for "no such entity" (e.g. a NIL parent pointer).
  static constexpr value_type kInvalidValue = -1;

  value_type value{kInvalidValue};

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << Tag::prefix() << "<nil>";
    return os << Tag::prefix() << id.value;
  }
};

}  // namespace detail

struct HostTag {
  static constexpr const char* prefix() { return "h"; }
};
struct ServerTag {
  static constexpr const char* prefix() { return "s"; }
};
struct LinkTag {
  static constexpr const char* prefix() { return "l"; }
};

// A host participating in the broadcast application.
using HostId = detail::StrongId<HostTag>;
// A communication server (switch); hosts attach to exactly one server.
using ServerId = detail::StrongId<ServerTag>;
// A bidirectional point-to-point link between two servers (or host-server).
using LinkId = detail::StrongId<LinkTag>;

inline constexpr HostId kNoHost{};
inline constexpr ServerId kNoServer{};
inline constexpr LinkId kNoLink{};

}  // namespace rbcast

template <typename Tag>
struct std::hash<rbcast::detail::StrongId<Tag>> {
  std::size_t operator()(rbcast::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
