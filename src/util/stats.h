// Lightweight statistics collection used by the metrics layer and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rbcast::util {

// Streaming mean/variance/min/max (Welford's algorithm); O(1) memory.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const Accumulator& other);

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

// Keeps all samples; supports exact quantiles. Use for delivery-latency
// distributions where p95/p99 matter and sample counts are modest.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  // Exact empirical quantile, q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_{false};
  void ensure_sorted() const;
};

// Fixed-bucket histogram with cumulative ("less-or-equal") bucket counts,
// Prometheus-style. The metric sampler uses it to export delivery-latency
// distributions as a compact time series; exact quantiles stay with
// Samples. Bucket upper bounds must be strictly increasing; an implicit
// +inf bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  // Cumulative count of samples <= upper_bounds()[i]. Size equals
  // upper_bounds().size(); samples above the last bound only show in
  // count().
  [[nodiscard]] std::vector<std::uint64_t> cumulative_counts() const;

  // Quantile estimate from the bucket counts, q in [0, 1]: the smallest
  // bucket bound whose cumulative count covers q of all samples, or the
  // last bound when the target falls in the +inf bucket. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  void clear();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // per-bucket, bounds_ size + 1 (+inf)
  std::uint64_t count_{0};
  double sum_{0.0};
};

// Named monotonically increasing counters (message counts, byte counts...).
class CounterMap {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) { m_[name] += by; }
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return m_;
  }
  void clear() { m_.clear(); }

 private:
  std::map<std::string, std::uint64_t> m_;
};

}  // namespace rbcast::util
