#include "util/metrics_registry.h"

#include <stdexcept>

namespace rbcast::util {

MetricsRegistry::Instrument& MetricsRegistry::emplace(
    const std::string& name, const std::string& labels,
    const std::string& help, MetricSnapshot::Kind kind) {
  if (name.empty()) {
    throw std::invalid_argument("metric name must not be empty");
  }
  auto [it, inserted] = instruments_.try_emplace(Key{name, labels});
  if (!inserted) {
    throw std::invalid_argument("metric already registered: " + name +
                                (labels.empty() ? "" : "{" + labels + "}"));
  }
  it->second.kind = kind;
  it->second.help = help;
  return it->second;
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name,
                                                   const std::string& labels,
                                                   const std::string& help) {
  Instrument& i = emplace(name, labels, help, MetricSnapshot::Kind::kCounter);
  i.owned_counter = std::make_unique<Counter>();
  return *i.owned_counter;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& labels,
                                      const std::string& help) {
  Instrument& i =
      emplace(name, labels, help, MetricSnapshot::Kind::kHistogram);
  i.owned_histogram = std::make_unique<Histogram>(std::move(bounds));
  return *i.owned_histogram;
}

void MetricsRegistry::register_counter_fn(const std::string& name,
                                          const std::string& labels,
                                          const std::string& help,
                                          CounterFn fn) {
  if (fn == nullptr) throw std::invalid_argument("counter fn must be set");
  emplace(name, labels, help, MetricSnapshot::Kind::kCounter).counter_fn =
      std::move(fn);
}

void MetricsRegistry::register_gauge_fn(const std::string& name,
                                        const std::string& labels,
                                        const std::string& help, GaugeFn fn) {
  if (fn == nullptr) throw std::invalid_argument("gauge fn must be set");
  emplace(name, labels, help, MetricSnapshot::Kind::kGauge).gauge_fn =
      std::move(fn);
}

void MetricsRegistry::register_histogram_fn(const std::string& name,
                                            const std::string& labels,
                                            const std::string& help,
                                            HistogramFn fn) {
  if (fn == nullptr) throw std::invalid_argument("histogram fn must be set");
  emplace(name, labels, help, MetricSnapshot::Kind::kHistogram).histogram_fn =
      std::move(fn);
}

void MetricsRegistry::unregister(const std::string& name,
                                 const std::string& labels) {
  instruments_.erase(Key{name, labels});
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    MetricSnapshot s;
    s.name = key.first;
    s.labels = key.second;
    s.help = instrument.help;
    s.kind = instrument.kind;
    switch (instrument.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.counter = instrument.owned_counter != nullptr
                        ? instrument.owned_counter->value()
                        : instrument.counter_fn();
        break;
      case MetricSnapshot::Kind::kGauge:
        s.gauge = instrument.gauge_fn();
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram* h = instrument.owned_histogram != nullptr
                                 ? instrument.owned_histogram.get()
                                 : instrument.histogram_fn();
        if (h != nullptr) {
          s.bounds = h->upper_bounds();
          s.cumulative = h->cumulative_counts();
          s.count = h->count();
          s.sum = h->sum();
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_totals() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, instrument] : instruments_) {
    if (instrument.kind != MetricSnapshot::Kind::kCounter) continue;
    out[key.first] += instrument.owned_counter != nullptr
                          ? instrument.owned_counter->value()
                          : instrument.counter_fn();
  }
  return out;
}

}  // namespace rbcast::util
