// Deterministic random-number streams.
//
// Every source of randomness in the simulation (per-link loss draws,
// per-host jitter, workload generation, fault schedules, ...) pulls from a
// named stream derived from a single experiment seed. Two properties follow:
//   1. the same seed reproduces a run bit-for-bit, and
//   2. adding a new consumer of randomness does not perturb the draws seen
//      by existing consumers (streams are independent by name).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace rbcast::util {

// One independent random stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponential with the given mean (> 0). Used for Poisson inter-arrival
  // times in workload generators and random fault schedules.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Derives independent named streams from one root seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t root_seed) : root_seed_(root_seed) {}

  // Stream for a purpose ("link.loss", "workload", ...) and an optional
  // entity index (link id, host id, ...).
  [[nodiscard]] Rng stream(std::string_view purpose,
                           std::int64_t index = 0) const {
    return Rng(mix(root_seed_, purpose, index));
  }

  [[nodiscard]] std::uint64_t root_seed() const { return root_seed_; }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::string_view purpose,
                           std::int64_t index);

  std::uint64_t root_seed_;
};

}  // namespace rbcast::util
