#include "util/rng.h"

namespace rbcast::util {

namespace {

// 64-bit FNV-1a over bytes; good enough to decorrelate stream seeds.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// splitmix64 finalizer: spreads low-entropy inputs over all 64 bits.
std::uint64_t finalize(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t RngFactory::mix(std::uint64_t seed, std::string_view purpose,
                              std::int64_t index) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  h = fnv1a(h, purpose.data(), purpose.size());
  h = fnv1a(h, &index, sizeof(index));
  return finalize(h);
}

}  // namespace rbcast::util
