// The safety invariants I1-I5, as predicates shared between the bounded
// model checker (src/model/checker.*) and the runtime invariant monitor
// (src/harness/invariant_monitor.*).
//
// Both callers project their state into the plain arguments below, so the
// definition of "exactly-once", "integrity", "no invention", "INFO
// consistency" and "sane parents" is written down exactly once. A predicate
// returns a human-readable description of the violation, or nullopt when
// the invariant holds.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/seq_set.h"

namespace rbcast::model::invariants {

using Seq = util::Seq;

// Stable invariant identifiers, used in violation reports, repro files and
// the DESIGN.md §10 mapping.
inline constexpr const char* kExactlyOnce = "I1";
inline constexpr const char* kIntegrity = "I2";
inline constexpr const char* kNoInvention = "I3";
inline constexpr const char* kInfoConsistency = "I4";
inline constexpr const char* kSaneParent = "I5";

// I1 exactly-once: no application delivers any message twice.
// `deliveries` maps seq -> number of application deliveries at `self`.
[[nodiscard]] std::optional<std::string> check_exactly_once(
    HostId self, const std::map<Seq, int>& deliveries);

// I2 integrity: every delivered body equals what the source sent.
// `source_bodies[q-1]` is the body of message q; `delivered` maps
// seq -> body as handed to the application at `self`.
[[nodiscard]] std::optional<std::string> check_integrity(
    HostId self, const std::map<Seq, std::string>& delivered,
    const std::vector<std::string>& source_bodies);

// I3 no invention: no INFO set contains a sequence number the source has
// not generated.
[[nodiscard]] std::optional<std::string> check_no_invention(
    HostId self, Seq info_max_seq, Seq broadcasts_done);

// I4 consistency: a host's delivered set equals its INFO set.
[[nodiscard]] std::optional<std::string> check_info_consistency(
    HostId self, std::size_t distinct_deliveries, std::uint64_t info_count);

// I5 sane parents: no host is its own parent.
[[nodiscard]] std::optional<std::string> check_sane_parent(HostId self,
                                                           HostId parent);

}  // namespace rbcast::model::invariants
