// Abstract protocol model for exhaustive checking.
//
// The paper's companion technical report [Garc87] gives a formal
// specification of the algorithm; this module provides the executable
// counterpart: a timer-free, side-effect-free model of one protocol host
// whose *pure* pieces are the production ones (HostState, run_attachment,
// the gap-fill planners) and whose message handlers mirror
// core::BroadcastHost line for line. The checker (src/model/checker.h)
// explores interleavings of these handlers under an adversarial network —
// any delivery order, loss and duplication at any point — and verifies
// safety invariants in every reachable state.
//
// Differences from the simulator host, by design:
//  * periodic activities are explicit transitions the explorer fires at
//    arbitrary times (a superset of any timer schedule);
//  * INFO exchange and gap filling target one peer per transition (the
//    explorer composes broadcasts out of them);
//  * no pruning (the checker compares full INFO contents);
//  * cluster ground truth is a static map, and the cost bit of a delivery
//    derives from it — equivalent to the paper's assumption that the
//    network marks inter-cluster deliveries.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/host_state.h"
#include "core/messages.h"

namespace rbcast::model {

using core::ProtocolMessage;
using core::Seq;

struct ModelConfig {
  int hosts{3};
  // cluster_of[h] = ground-truth cluster index of host h.
  std::vector<int> cluster_of{0, 0, 0};
  HostId source{0};
  // The source may generate up to this many messages.
  int max_broadcasts{2};
  // In-flight message capacity; sends beyond it are lost (loss is legal
  // in the model, so capacity pruning never hides behaviours, it only
  // bounds the state space).
  std::size_t max_inflight{4};
  Seq parent_switch_margin{0};

  // --- mutations (checker self-tests) ------------------------------------
  // Deliver duplicates to the application (breaks exactly-once).
  bool mutant_double_delivery{false};
  // Accept new maxima from any host, not just the parent (breaks the
  // acceptance rule; surfaces as INFO divergence ahead of the parent).
  bool mutant_accept_from_anyone{false};

  [[nodiscard]] bool same_cluster(HostId a, HostId b) const {
    return cluster_of[static_cast<std::size_t>(a.value)] ==
           cluster_of[static_cast<std::size_t>(b.value)];
  }
};

// A message in the adversarial network.
struct ModelMessage {
  HostId from;
  HostId to;
  ProtocolMessage payload;

  [[nodiscard]] std::string describe() const;
};

// One protocol host, timer-free.
class ModelNode {
 public:
  ModelNode(HostId self, const ModelConfig& config);

  // Copyable: the checker clones system states freely.
  ModelNode(const ModelNode&) = default;
  ModelNode& operator=(const ModelNode&) = default;

  [[nodiscard]] HostId self() const { return state_.self(); }
  [[nodiscard]] const core::HostState& state() const { return state_; }
  [[nodiscard]] HostId pending_attach() const { return pending_attach_; }

  // Application-level delivery counts per sequence number (the
  // exactly-once invariant is |count| <= 1 for every seq).
  [[nodiscard]] const std::map<Seq, int>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] const std::map<Seq, std::string>& delivered_bodies() const {
    return delivered_bodies_;
  }

  // --- transitions; each returns the messages it sends -------------------

  // Source only: generate the next data message.
  std::vector<ModelMessage> broadcast(Seq seq, const std::string& body);

  // Deliver one network message to this node. `expensive` is the cost
  // bit, derived from the static cluster map by the caller.
  std::vector<ModelMessage> on_message(HostId from,
                                       const ProtocolMessage& message,
                                       bool expensive,
                                       const ModelConfig& config);

  // The periodic activities as explicit steps.
  std::vector<ModelMessage> attachment_step(const ModelConfig& config);
  std::vector<ModelMessage> info_step(HostId to);
  std::vector<ModelMessage> gapfill_step(HostId to, const ModelConfig& config);
  std::vector<ModelMessage> parent_timeout_step();
  void give_up_attach_step();

  // Canonical serialization for state deduplication.
  [[nodiscard]] std::string fingerprint() const;

 private:
  std::vector<ModelMessage> handle_data(HostId from, const core::DataMsg& m,
                                        const ModelConfig& config);
  void handle_info(HostId from, const core::InfoMsg& m);
  std::vector<ModelMessage> handle_attach_request(
      HostId from, const core::AttachRequest& m);
  std::vector<ModelMessage> handle_attach_accept(HostId from,
                                                 const core::AttachAccept& m);
  void deliver_to_app(Seq seq, std::string_view body);
  [[nodiscard]] ModelMessage make(HostId to, ProtocolMessage m) const;

  core::HostState state_;
  HostId source_;
  HostId pending_attach_{kNoHost};
  std::map<Seq, int> deliveries_;
  std::map<Seq, std::string> delivered_bodies_;
};

}  // namespace rbcast::model
