#include "model/checker.h"

#include <deque>
#include <sstream>
#include <unordered_set>

#include "model/invariants.h"
#include "util/assert.h"

namespace rbcast::model {

std::string SystemState::fingerprint() const {
  std::ostringstream os;
  os << 'b' << broadcasts_done << ';';
  for (const ModelNode& node : nodes) os << node.fingerprint();
  // In-flight messages form a multiset: order-independent canonical form.
  std::vector<std::string> wire;
  wire.reserve(inflight.size());
  for (const ModelMessage& m : inflight) wire.push_back(m.describe());
  std::sort(wire.begin(), wire.end());
  for (const std::string& w : wire) os << w << ';';
  return os.str();
}

Checker::Checker(ModelConfig config) : config_(std::move(config)) {
  RBCAST_CHECK_ARG(config_.hosts >= 1, "need at least one host");
  RBCAST_CHECK_ARG(
      config_.cluster_of.size() == static_cast<std::size_t>(config_.hosts),
      "cluster_of must cover every host");
  RBCAST_CHECK_ARG(config_.source.value < config_.hosts, "bad source");
}

SystemState Checker::initial_state() const {
  SystemState state;
  for (int i = 0; i < config_.hosts; ++i) {
    state.nodes.emplace_back(HostId{i}, config_);
  }
  return state;
}

void Checker::enqueue_sends(SystemState& state,
                            std::vector<ModelMessage> messages) const {
  for (ModelMessage& m : messages) {
    if (state.inflight.size() >= config_.max_inflight) {
      // Over capacity: the send is lost. Loss at any point is part of the
      // model, so this prunes no behaviour class.
      continue;
    }
    state.inflight.push_back(std::move(m));
  }
}

std::vector<std::pair<std::string, SystemState>> Checker::successors(
    const SystemState& state) const {
  std::vector<std::pair<std::string, SystemState>> out;

  auto node_of = [](SystemState& s, HostId h) -> ModelNode& {
    return s.nodes[static_cast<std::size_t>(h.value)];
  };

  // 1. Source generates the next message.
  if (state.broadcasts_done < config_.max_broadcasts) {
    SystemState next = state;
    const Seq seq = static_cast<Seq>(next.broadcasts_done) + 1;
    const std::string body = "m" + std::to_string(seq);
    next.bodies.push_back(body);
    ++next.broadcasts_done;
    enqueue_sends(next, node_of(next, config_.source).broadcast(seq, body));
    out.emplace_back("broadcast#" + std::to_string(seq), std::move(next));
  }

  // 2-4. Network adversary: deliver / drop / duplicate each message.
  for (std::size_t i = 0; i < state.inflight.size(); ++i) {
    const ModelMessage& m = state.inflight[i];
    {
      SystemState next = state;
      ModelMessage moving = next.inflight[i];
      next.inflight.erase(next.inflight.begin() +
                          static_cast<std::ptrdiff_t>(i));
      const bool expensive = !config_.same_cluster(moving.from, moving.to);
      auto sends = node_of(next, moving.to)
                       .on_message(moving.from, moving.payload, expensive,
                                   config_);
      enqueue_sends(next, std::move(sends));
      out.emplace_back("deliver " + m.describe(), std::move(next));
    }
    {
      SystemState next = state;
      next.inflight.erase(next.inflight.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.emplace_back("drop " + m.describe(), std::move(next));
    }
    if (state.inflight.size() < config_.max_inflight) {
      SystemState next = state;
      next.inflight.push_back(next.inflight[i]);
      out.emplace_back("duplicate " + m.describe(), std::move(next));
    }
  }

  // 5-9. Host steps.
  for (const ModelNode& node : state.nodes) {
    const HostId h = node.self();
    if (h != config_.source && !node.pending_attach().valid()) {
      SystemState next = state;
      auto sends = node_of(next, h).attachment_step(config_);
      if (!sends.empty()) {
        enqueue_sends(next, std::move(sends));
        std::ostringstream os;
        os << h << " attach-step";
        out.emplace_back(os.str(), std::move(next));
      }
    }
    for (const ModelNode& peer : state.nodes) {
      const HostId j = peer.self();
      if (j == h) continue;
      {
        SystemState next = state;
        enqueue_sends(next, node_of(next, h).info_step(j));
        std::ostringstream os;
        os << h << " info-> " << j;
        out.emplace_back(os.str(), std::move(next));
      }
      {
        SystemState next = state;
        auto sends = node_of(next, h).gapfill_step(j, config_);
        if (!sends.empty()) {
          enqueue_sends(next, std::move(sends));
          std::ostringstream os;
          os << h << " gapfill-> " << j;
          out.emplace_back(os.str(), std::move(next));
        }
      }
    }
    if (node.state().parent().valid()) {
      SystemState next = state;
      node_of(next, h).parent_timeout_step();
      std::ostringstream os;
      os << h << " parent-timeout";
      out.emplace_back(os.str(), std::move(next));
    }
    if (node.pending_attach().valid()) {
      SystemState next = state;
      node_of(next, h).give_up_attach_step();
      std::ostringstream os;
      os << h << " attach-timeout";
      out.emplace_back(os.str(), std::move(next));
    }
  }
  return out;
}

void Checker::check_invariants(const SystemState& state,
                               const std::vector<std::string>& trace,
                               std::vector<Violation>& violations) const {
  namespace inv = invariants;
  auto report = [&](const char* id,
                    const std::optional<std::string>& what) {
    if (what.has_value()) {
      violations.push_back(Violation{id, *what, trace});
    }
  };

  // The predicates themselves are shared with the runtime monitor
  // (src/harness/invariant_monitor.*); see src/model/invariants.h.
  for (const ModelNode& node : state.nodes) {
    report(inv::kExactlyOnce,
           inv::check_exactly_once(node.self(), node.deliveries()));
    report(inv::kIntegrity,
           inv::check_integrity(node.self(), node.delivered_bodies(),
                                state.bodies));
    report(inv::kNoInvention,
           inv::check_no_invention(node.self(), node.state().info().max_seq(),
                                   static_cast<Seq>(state.broadcasts_done)));
    report(inv::kInfoConsistency,
           inv::check_info_consistency(node.self(), node.deliveries().size(),
                                       node.state().info().count()));
    report(inv::kSaneParent,
           inv::check_sane_parent(node.self(), node.state().parent()));
  }
}

ExplorationReport Checker::explore_bfs(int max_depth,
                                       std::uint64_t max_states) {
  ExplorationReport report;
  std::unordered_set<std::string> visited;

  struct Item {
    SystemState state;
    int depth;
    std::vector<std::string> trace;
  };
  std::deque<Item> frontier;

  SystemState init = initial_state();
  visited.insert(init.fingerprint());
  check_invariants(init, {}, report.violations);
  frontier.push_back(Item{std::move(init), 0, {}});
  ++report.states_explored;

  while (!frontier.empty() && report.violations.empty()) {
    Item item = std::move(frontier.front());
    frontier.pop_front();
    if (item.depth >= max_depth) {
      report.truncated = true;
      continue;
    }
    for (auto& [description, next] : successors(item.state)) {
      ++report.transitions_fired;
      const std::string key = next.fingerprint();
      if (!visited.insert(key).second) continue;
      if (report.states_explored >= max_states) {
        report.truncated = true;
        return report;
      }
      ++report.states_explored;
      auto trace = item.trace;
      trace.push_back(description);
      check_invariants(next, trace, report.violations);
      if (!report.violations.empty()) return report;
      frontier.push_back(Item{std::move(next), item.depth + 1,
                              std::move(trace)});
    }
  }
  return report;
}

Checker::LivenessReport Checker::explore_liveness(int walks, int max_steps,
                                                  std::uint64_t seed) {
  LivenessReport report;
  report.walks = walks;
  util::RngFactory rngs(seed);
  double total_steps = 0.0;

  auto complete = [&](const SystemState& state) {
    if (state.broadcasts_done < config_.max_broadcasts) return false;
    for (const ModelNode& node : state.nodes) {
      if (node.deliveries().size() !=
          static_cast<std::size_t>(config_.max_broadcasts)) {
        return false;
      }
    }
    return true;
  };

  for (int walk = 0; walk < walks && report.violations.empty(); ++walk) {
    util::Rng rng = rngs.stream("liveness", walk);
    SystemState state = initial_state();
    std::vector<std::string> trace;
    for (int step = 0; step < max_steps; ++step) {
      if (complete(state)) {
        ++report.completed;
        total_steps += step;
        break;
      }
      auto options = successors(state);
      if (options.empty()) break;
      // Fairness: adversarial moves (drop/duplicate) are excluded —
      // liveness is claimed only for intervals where communication works
      // (the paper promises nothing under unbounded loss). Deliveries are
      // weighted up so queued messages actually move.
      std::vector<int> weights;
      int total = 0;
      weights.reserve(options.size());
      for (const auto& [description, next] : options) {
        const bool adversarial = description.rfind("drop ", 0) == 0 ||
                                 description.rfind("duplicate ", 0) == 0;
        const bool delivery = description.rfind("deliver ", 0) == 0;
        weights.push_back(adversarial ? 0 : (delivery ? 16 : 4));
        total += weights.back();
      }
      if (total == 0) break;
      std::int64_t roll = rng.uniform_int(0, total - 1);
      std::size_t pick = 0;
      while (roll >= weights[pick]) {
        roll -= weights[pick];
        ++pick;
      }
      trace.push_back(options[pick].first);
      state = std::move(options[pick].second);
      check_invariants(state, trace, report.violations);
      if (!report.violations.empty()) return report;
    }
  }
  if (report.completed > 0) {
    report.mean_steps_to_complete = total_steps / report.completed;
  }
  return report;
}

ExplorationReport Checker::explore_random(int walks, int steps,
                                          std::uint64_t seed) {
  ExplorationReport report;
  util::RngFactory rngs(seed);

  for (int walk = 0; walk < walks && report.violations.empty(); ++walk) {
    util::Rng rng = rngs.stream("walk", walk);
    SystemState state = initial_state();
    std::vector<std::string> trace;
    for (int step = 0; step < steps; ++step) {
      auto options = successors(state);
      if (options.empty()) break;
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1));
      trace.push_back(options[pick].first);
      state = std::move(options[pick].second);
      ++report.transitions_fired;
      ++report.states_explored;
      check_invariants(state, trace, report.violations);
      if (!report.violations.empty()) return report;
    }
  }
  return report;
}

}  // namespace rbcast::model
