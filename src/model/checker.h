// Exhaustive and randomized exploration of the protocol model.
//
// The adversarial network is a bounded multiset of in-flight messages; the
// explorer may, at any state:
//   * deliver any in-flight message (arbitrary delay / reordering),
//   * drop any in-flight message (silent loss),
//   * duplicate any in-flight message,
//   * fire any host's attachment / INFO / gap-fill step toward any peer,
//   * expire any host's parent (timeout) or pending attach (ack timeout),
//   * let the source generate the next broadcast.
// This transition set strictly contains every schedule the discrete-event
// simulator can produce, so an invariant proven here over a bounded
// configuration holds for every such simulation of that configuration.
//
// Safety invariants checked in every reachable state:
//   I1 exactly-once — no application delivers any message twice;
//   I2 integrity    — every delivered body equals what the source sent;
//   I3 no invention — no INFO set contains a sequence number the source
//                     has not generated;
//   I4 consistency  — a host's delivered set equals its INFO set;
//   I5 sane parents — no host is its own parent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/model_node.h"
#include "util/rng.h"

namespace rbcast::model {

// Complete system state; value type (the explorer clones it freely).
struct SystemState {
  std::vector<ModelNode> nodes;
  std::vector<ModelMessage> inflight;
  int broadcasts_done{0};
  // body of message q is bodies[q-1]
  std::vector<std::string> bodies;

  [[nodiscard]] std::string fingerprint() const;
};

struct Violation {
  std::string invariant;   // "I1".."I5"
  std::string description;
  std::vector<std::string> trace;  // transition descriptions from init
};

struct ExplorationReport {
  std::uint64_t states_explored{0};
  std::uint64_t transitions_fired{0};
  bool truncated{false};  // hit a bound before exhausting the space
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

class Checker {
 public:
  explicit Checker(ModelConfig config);

  // Exhaustive BFS from the initial state, bounded by depth and by the
  // number of distinct states. Stops at the first violation.
  [[nodiscard]] ExplorationReport explore_bfs(int max_depth,
                                              std::uint64_t max_states);

  // Many random schedules of bounded length; cheaper and deeper than BFS.
  [[nodiscard]] ExplorationReport explore_random(int walks, int steps,
                                                 std::uint64_t seed);

  struct LivenessReport {
    int walks{0};
    int completed{0};  // walks where every host got every broadcast
    double mean_steps_to_complete{0.0};
    std::vector<Violation> violations;
    [[nodiscard]] bool clean() const { return violations.empty(); }
  };

  // Liveness smoke test: random walks under a *fair* scheduler — protocol
  // steps and deliveries are weighted far above adversarial drops and
  // duplications, approximating the paper's "given sufficient time,
  // communication opportunities recur" assumption. Counts how many walks
  // reach full dissemination (every host holds every broadcast) within
  // `max_steps`. Safety invariants are still checked throughout.
  [[nodiscard]] LivenessReport explore_liveness(int walks, int max_steps,
                                                std::uint64_t seed);

  [[nodiscard]] SystemState initial_state() const;

  // All transitions enabled in `state`, as (description, successor) pairs.
  [[nodiscard]] std::vector<std::pair<std::string, SystemState>> successors(
      const SystemState& state) const;

  // Checks the invariants; appends to `violations`.
  void check_invariants(const SystemState& state,
                        const std::vector<std::string>& trace,
                        std::vector<Violation>& violations) const;

 private:
  void enqueue_sends(SystemState& state,
                     std::vector<ModelMessage> messages) const;

  ModelConfig config_;
};

}  // namespace rbcast::model
