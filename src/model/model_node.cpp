#include "model/model_node.h"

#include <sstream>

#include "core/attachment.h"
#include "core/gap_filling.h"
#include "util/assert.h"

namespace rbcast::model {

namespace {

std::vector<HostId> make_hosts(int n) {
  std::vector<HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(HostId{i});
  return out;
}

}  // namespace

std::string ModelMessage::describe() const {
  std::ostringstream os;
  os << from << "->" << to << ":" << core::kind_of(payload);
  if (const auto* data = std::get_if<core::DataMsg>(&payload)) {
    os << "#" << data->seq;
  } else if (const auto* info = std::get_if<core::InfoMsg>(&payload)) {
    os << info->info.to_string() << "/p=" << info->parent.value;
  } else if (const auto* req = std::get_if<core::AttachRequest>(&payload)) {
    os << req->info.to_string();
  } else if (const auto* acc = std::get_if<core::AttachAccept>(&payload)) {
    os << acc->info.to_string() << "/p=" << acc->parent.value;
  }
  return os.str();
}

ModelNode::ModelNode(HostId self, const ModelConfig& config)
    : state_(self, make_hosts(config.hosts), config.source),
      source_(config.source) {}

ModelMessage ModelNode::make(HostId to, ProtocolMessage m) const {
  return ModelMessage{self(), to, std::move(m)};
}

void ModelNode::deliver_to_app(Seq seq, std::string_view body) {
  ++deliveries_[seq];
  delivered_bodies_[seq] = std::string(body);
}

std::vector<ModelMessage> ModelNode::broadcast(Seq seq,
                                               const std::string& body) {
  RBCAST_ASSERT(self() == source_);
  const bool fresh = state_.record_message(seq, body);
  RBCAST_ASSERT(fresh);
  deliver_to_app(seq, body);
  std::vector<ModelMessage> out;
  for (HostId child : state_.children()) {
    if (!state_.map(child).contains(seq)) {
      out.push_back(make(child, core::DataMsg{seq, body, false, {}}));
    }
  }
  return out;
}

std::vector<ModelMessage> ModelNode::on_message(HostId from,
                                                const ProtocolMessage& message,
                                                bool expensive,
                                                const ModelConfig& config) {
  // Mirrors BroadcastHost::on_delivery: cost-bit cluster update first.
  state_.update_cluster_from_cost_bit(from, expensive);

  std::vector<ModelMessage> out;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, core::DataMsg>) {
          out = handle_data(from, m, config);
        } else if constexpr (std::is_same_v<T, core::InfoMsg>) {
          handle_info(from, m);
        } else if constexpr (std::is_same_v<T, core::AttachRequest>) {
          out = handle_attach_request(from, m);
        } else if constexpr (std::is_same_v<T, core::AttachAccept>) {
          out = handle_attach_accept(from, m);
        } else {
          static_assert(std::is_same_v<T, core::DetachNotice>);
          state_.remove_child(from);
        }
      },
      message);
  return out;
}

std::vector<ModelMessage> ModelNode::handle_data(HostId from,
                                                 const core::DataMsg& m,
                                                 const ModelConfig& config) {
  state_.learn_has(from, m.seq);

  if (state_.has_message(m.seq)) {
    // Duplicate. The double-delivery mutant "forgets" the discard rule.
    if (config.mutant_double_delivery) {
      deliver_to_app(m.seq, m.body.view());
    }
    return {};
  }
  if (self() == source_) return {};

  const bool new_max = m.seq > state_.info().max_seq();
  if (new_max && from != state_.parent() &&
      !config.mutant_accept_from_anyone) {
    return {};  // acceptance rule: new maxima only from the parent
  }

  const bool fresh = state_.record_message(m.seq, m.body);
  RBCAST_ASSERT(fresh);
  deliver_to_app(m.seq, m.body.view());

  std::vector<ModelMessage> out;
  if (new_max) {
    for (HostId child : state_.children()) {
      if (child == from) continue;
      if (state_.map(child).contains(m.seq)) continue;
      out.push_back(make(child, core::DataMsg{m.seq, m.body, false, {}}));
    }
  } else {
    for (HostId n : state_.neighbors()) {
      if (n == from) continue;
      if (state_.map(n).contains(m.seq)) continue;
      out.push_back(make(n, core::DataMsg{m.seq, m.body, true, {}}));
    }
  }
  return out;
}

void ModelNode::handle_info(HostId from, const core::InfoMsg& m) {
  state_.learn_info(from, m.info);
  state_.learn_parent(from, m.parent);
  if (m.parent == self()) {
    state_.add_child(from);
  } else {
    state_.remove_child(from);
  }
}

std::vector<ModelMessage> ModelNode::handle_attach_request(
    HostId from, const core::AttachRequest& m) {
  state_.learn_info(from, m.info);
  state_.add_child(from);
  state_.learn_parent(from, self());

  std::vector<ModelMessage> out;
  out.push_back(make(from, core::AttachAccept{state_.info(), state_.parent()}));
  for (Seq seq : core::plan_attach_backfill(state_, m.info, /*burst=*/64)) {
    out.push_back(
        make(from, core::DataMsg{seq, *state_.body_of(seq), true, {}}));
  }
  return out;
}

std::vector<ModelMessage> ModelNode::handle_attach_accept(
    HostId from, const core::AttachAccept& m) {
  state_.learn_info(from, m.info);
  state_.learn_parent(from, m.parent);

  std::vector<ModelMessage> out;
  if (pending_attach_ == from) {
    pending_attach_ = kNoHost;
    const HostId old_parent = state_.parent();
    state_.set_parent(from);
    state_.remove_child(from);
    if (old_parent.valid() && old_parent != from) {
      out.push_back(make(old_parent, core::DetachNotice{}));
    }
  } else if (from != state_.parent()) {
    out.push_back(make(from, core::DetachNotice{}));
  }
  return out;
}

std::vector<ModelMessage> ModelNode::attachment_step(
    const ModelConfig& config) {
  if (self() == source_) return {};
  if (pending_attach_.valid()) return {};

  auto decision =
      core::run_attachment(state_, {}, config.parent_switch_margin);
  std::vector<ModelMessage> out;
  if (decision.action == core::AttachmentDecision::Action::kBreakCycle) {
    const HostId old_parent = state_.parent();
    state_.set_parent(kNoHost);
    if (old_parent.valid()) out.push_back(make(old_parent, core::DetachNotice{}));
    decision = core::run_attachment(state_, {}, config.parent_switch_margin);
  }
  if (decision.action == core::AttachmentDecision::Action::kAttach) {
    pending_attach_ = decision.candidate;
    out.push_back(
        make(decision.candidate, core::AttachRequest{state_.info()}));
  }
  return out;
}

std::vector<ModelMessage> ModelNode::info_step(HostId to) {
  if (to == self()) return {};
  return {make(to, core::InfoMsg{state_.info(), state_.parent()})};
}

std::vector<ModelMessage> ModelNode::gapfill_step(HostId to,
                                                  const ModelConfig&) {
  if (to == self()) return {};
  std::vector<Seq> plan;
  if (state_.is_child(to) || to == state_.parent()) {
    plan = core::plan_neighbor_gapfill(state_, to, state_.is_child(to),
                                       /*burst=*/8);
  } else {
    plan = core::plan_far_gapfill(state_, to, /*burst=*/8);
  }
  std::vector<ModelMessage> out;
  for (Seq seq : plan) {
    out.push_back(
        make(to, core::DataMsg{seq, *state_.body_of(seq), true, {}}));
  }
  return out;
}

std::vector<ModelMessage> ModelNode::parent_timeout_step() {
  if (!state_.parent().valid()) return {};
  state_.set_parent(kNoHost);
  return {};
}

void ModelNode::give_up_attach_step() { pending_attach_ = kNoHost; }

std::string ModelNode::fingerprint() const {
  std::ostringstream os;
  os << self() << "{i=" << state_.info().to_string()
     << ";p=" << state_.parent().value << ";pa=" << pending_attach_.value
     << ";c=";
  for (HostId child : state_.children()) os << child.value << ',';
  os << ";cl=";
  for (HostId member : state_.cluster()) os << member.value << ',';
  os << ";m=";
  for (HostId h : state_.all_hosts()) {
    if (h == self()) continue;
    os << h.value << '=' << state_.map(h).to_string() << '|'
       << state_.parent_of(h).value << ',';
  }
  os << ";d=";
  for (const auto& [seq, count] : deliveries_) os << seq << 'x' << count << ',';
  os << '}';
  return os.str();
}

}  // namespace rbcast::model
