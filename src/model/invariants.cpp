#include "model/invariants.h"

#include <sstream>

namespace rbcast::model::invariants {

std::optional<std::string> check_exactly_once(
    HostId self, const std::map<Seq, int>& deliveries) {
  for (const auto& [seq, count] : deliveries) {
    if (count > 1) {
      std::ostringstream os;
      os << self << " delivered message " << seq << " " << count << " times";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_integrity(
    HostId self, const std::map<Seq, std::string>& delivered,
    const std::vector<std::string>& source_bodies) {
  for (const auto& [seq, body] : delivered) {
    if (seq == 0 || seq > source_bodies.size() ||
        source_bodies[static_cast<std::size_t>(seq - 1)] != body) {
      std::ostringstream os;
      os << self << " delivered a corrupted body for message " << seq;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_no_invention(HostId self, Seq info_max_seq,
                                              Seq broadcasts_done) {
  if (info_max_seq > broadcasts_done) {
    std::ostringstream os;
    os << self << " INFO contains seq " << info_max_seq << " but only "
       << broadcasts_done << " were generated";
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_info_consistency(
    HostId self, std::size_t distinct_deliveries, std::uint64_t info_count) {
  if (distinct_deliveries != info_count) {
    std::ostringstream os;
    os << self << " delivered " << distinct_deliveries
       << " distinct messages but INFO holds " << info_count;
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_sane_parent(HostId self, HostId parent) {
  if (parent == self) {
    std::ostringstream os;
    os << self << " is its own parent";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace rbcast::model::invariants
