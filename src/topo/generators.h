// Topology generators: parameterized WANs plus the exact scenarios of the
// paper's Figures 3.1, 3.2 and 4.1.
//
// The canonical shape (Section 2's motivation) is a set of local clusters —
// hosts joined by cheap high-bandwidth links — integrated into a long-haul
// network of expensive low-bandwidth trunks.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "topo/topology.h"
#include "util/rng.h"

namespace rbcast::topo {

// How the expensive trunks connect cluster gateways.
enum class TrunkShape {
  kLine,        // c0 - c1 - c2 - ...
  kRing,        // line plus a closing trunk
  kStar,        // all clusters attached to cluster 0
  kRandomTree,  // uniform random spanning tree
};

struct ClusteredWanOptions {
  int clusters{3};
  int hosts_per_cluster{3};
  TrunkShape shape{TrunkShape::kRing};
  // Extra random expensive trunks added on top of the base shape, as a
  // fraction of `clusters` (adds path diversity for partition experiments).
  double extra_trunk_fraction{0.0};
  // Intra-cluster wiring: star around the cluster head; if true, also close
  // a cheap ring so single cheap-link failures do not split the cluster.
  bool intra_cluster_ring{false};
  LinkParams cheap{LinkParams::cheap_defaults()};
  LinkParams expensive{LinkParams::expensive_defaults()};
  std::uint64_t seed{1};
};

// A generated WAN with its intended cluster structure.
struct Wan {
  Topology topology;
  // Planned clusters (ground truth when all links are up), host ids sorted.
  std::vector<std::vector<HostId>> cluster_hosts;
  // The server hosting cluster c's head (first host).
  std::vector<ServerId> cluster_head_server;
  // All inter-cluster (expensive) trunks.
  std::vector<LinkId> trunks;
};

[[nodiscard]] Wan make_clustered_wan(const ClusteredWanOptions& options);

// One cluster of `hosts` hosts on a cheap star — the source-congestion
// scenario (E5) and a minimal playground.
[[nodiscard]] Wan make_single_cluster(int hosts,
                                      LinkParams cheap = LinkParams::cheap_defaults());

// --- A stylized ARPANET ----------------------------------------------
//
// The paper's environment is explicitly the ARPANET ("Arpanet users cannot
// program that network's servers (IMPs)"). This generator builds a
// stylized circa-1980 ARPANET: ~20 named sites wired with 56 kbit/s
// trunks (all expensive — exactly the historical line speed the defaults
// model), plus campus LANs (cheap) at the big sites. Geography is
// simplified; the shape — two coasts bridged by a few long-haul paths —
// is the real thing, and it is exactly the topology class the paper's
// cluster machinery was designed for.
struct Arpanet {
  Topology topology;
  // Site name -> IMP (server). Every trunk connects two of these.
  std::map<std::string, ServerId> sites;
  std::vector<LinkId> trunks;
  // All participating hosts; hosts_at maps a site to its hosts.
  std::vector<HostId> hosts;
  std::map<std::string, std::vector<HostId>> hosts_at;
};
[[nodiscard]] Arpanet make_arpanet();

// --- Figure 3.1 (Section 3) -------------------------------------------
// Three hosts h1..h3 on servers s1..s3, joined through a pure switch s4:
//     h1-s1 --- s4 --- s2-h2
//                |
//               s3-h3
// All trunks expensive; each host is its own cluster. The optimal
// (in-network multicast) broadcast of one message uses each of the three
// trunks exactly once; nonprogrammable servers cannot achieve that.
struct Figure31 {
  Topology topology;
  HostId h1, h2, h3;
  ServerId s1, s2, s3, s4;
  LinkId s1s4, s2s4, s3s4;
};
[[nodiscard]] Figure31 make_figure_3_1();

// --- Figure 3.2 (Sections 3-4) ------------------------------------------
// Four clusters: R (source's cluster), C' and C'' (children of R), and C,
// which can reach both C' and C'' over expensive trunks and must pick the
// prompter parent.
//
//        R (source + 1)
//       /  \            trunks: R-C', R-C'', C'-C, C''-C
//      C'   C''         all inter-cluster links expensive
//       \   /
//        C (3 hosts)
struct Figure32 {
  Topology topology;
  std::vector<std::vector<HostId>> cluster_hosts;  // [R, C', C'', C]
  HostId source;
  LinkId trunk_r_cp, trunk_r_cpp, trunk_cp_c, trunk_cpp_c;
};
[[nodiscard]] Figure32 make_figure_3_2();

// --- Figure 4.1 (Section 4.4) -------------------------------------------
// Three single-host clusters s, i, j on an expensive triangle, so that when
// the source s is cut off, i and j can still communicate and must fill each
// other's gaps without being parent-graph neighbors.
struct Figure41 {
  Topology topology;
  HostId s, i, j;
  LinkId trunk_si, trunk_sj, trunk_ij;
};
[[nodiscard]] Figure41 make_figure_4_1();

}  // namespace rbcast::topo
