#include "topo/generators.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/assert.h"

namespace rbcast::topo {

namespace {

// Builds one cluster: `m` hosts, each on its own server, servers wired as a
// cheap star around the first (head) server, optionally closed into a ring.
// Returns the hosts and the head server.
std::pair<std::vector<HostId>, ServerId> build_cluster(
    Topology& t, int m, const LinkParams& cheap, bool ring) {
  RBCAST_CHECK_ARG(m >= 1, "cluster needs at least one host");
  std::vector<ServerId> servers;
  std::vector<HostId> hosts;
  servers.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const ServerId s = t.add_server();
    servers.push_back(s);
    hosts.push_back(t.add_host(s));
    if (i > 0) {
      t.add_link(servers[0], s, LinkClass::kCheap, cheap);
    }
  }
  if (ring && m > 2) {
    for (int i = 1; i < m; ++i) {
      const ServerId u = servers[static_cast<std::size_t>(i)];
      const ServerId v = servers[static_cast<std::size_t>((i % (m - 1)) + 1)];
      if (u != v) t.add_link(u, v, LinkClass::kCheap, cheap);
    }
  }
  return {hosts, servers[0]};
}

}  // namespace

Wan make_clustered_wan(const ClusteredWanOptions& options) {
  RBCAST_CHECK_ARG(options.clusters >= 1, "need at least one cluster");
  RBCAST_CHECK_ARG(options.hosts_per_cluster >= 1,
                   "need at least one host per cluster");

  Wan wan;
  Topology& t = wan.topology;
  const int k = options.clusters;

  for (int c = 0; c < k; ++c) {
    auto [hosts, head] = build_cluster(t, options.hosts_per_cluster,
                                       options.cheap,
                                       options.intra_cluster_ring);
    wan.cluster_hosts.push_back(std::move(hosts));
    wan.cluster_head_server.push_back(head);
  }

  util::Rng rng{options.seed};
  auto trunk = [&](int c1, int c2) {
    const LinkId id = t.add_link(wan.cluster_head_server[static_cast<std::size_t>(c1)],
                                 wan.cluster_head_server[static_cast<std::size_t>(c2)],
                                 LinkClass::kExpensive, options.expensive);
    wan.trunks.push_back(id);
  };

  switch (options.shape) {
    case TrunkShape::kLine:
      for (int c = 1; c < k; ++c) trunk(c - 1, c);
      break;
    case TrunkShape::kRing:
      for (int c = 1; c < k; ++c) trunk(c - 1, c);
      if (k > 2) trunk(k - 1, 0);
      break;
    case TrunkShape::kStar:
      for (int c = 1; c < k; ++c) trunk(0, c);
      break;
    case TrunkShape::kRandomTree:
      for (int c = 1; c < k; ++c) {
        trunk(static_cast<int>(rng.uniform_int(0, c - 1)), c);
      }
      break;
  }

  // Extra random trunks for path diversity.
  const int extras = static_cast<int>(options.extra_trunk_fraction * k);
  std::set<std::pair<int, int>> existing;
  for (LinkId lid : wan.trunks) {
    const LinkSpec& l = t.link(lid);
    existing.insert({std::min(l.a.value, l.b.value),
                     std::max(l.a.value, l.b.value)});
  }
  int added = 0;
  int attempts = 0;
  while (added < extras && attempts < 100 * (extras + 1) && k > 2) {
    ++attempts;
    const int c1 = static_cast<int>(rng.uniform_int(0, k - 1));
    const int c2 = static_cast<int>(rng.uniform_int(0, k - 1));
    if (c1 == c2) continue;
    const ServerId a = wan.cluster_head_server[static_cast<std::size_t>(c1)];
    const ServerId b = wan.cluster_head_server[static_cast<std::size_t>(c2)];
    const auto key = std::make_pair(std::min(a.value, b.value),
                                    std::max(a.value, b.value));
    if (!existing.insert(key).second) continue;
    trunk(c1, c2);
    ++added;
  }
  return wan;
}

Wan make_single_cluster(int hosts, LinkParams cheap) {
  ClusteredWanOptions options;
  options.clusters = 1;
  options.hosts_per_cluster = hosts;
  options.cheap = cheap;
  return make_clustered_wan(options);
}

Arpanet make_arpanet() {
  Arpanet net;
  Topology& t = net.topology;

  // IMPs. One per site; trunk wiring below follows the familiar two-coast
  // shape of the c. 1980 logical maps (simplified).
  const char* site_names[] = {
      // West
      "SRI", "UCLA", "UCSB", "STANFORD", "AMES", "RAND", "SDC", "ISI",
      "UTAH",
      // Middle
      "ILLINOIS", "GWC", "CASE", "CMU",
      // East
      "BBN", "MIT", "HARVARD", "LINCOLN", "NBS", "MITRE", "ARPA"};
  for (const char* name : site_names) {
    net.sites.emplace(name, t.add_server());
  }
  auto imp = [&](const char* name) { return net.sites.at(name); };
  auto trunk = [&](const char* a, const char* b) {
    net.trunks.push_back(
        t.add_link(imp(a), imp(b), LinkClass::kExpensive));
  };

  // West-coast mesh.
  trunk("SRI", "UCLA");
  trunk("SRI", "STANFORD");
  trunk("SRI", "AMES");
  trunk("SRI", "UTAH");
  trunk("UCLA", "UCSB");
  trunk("UCLA", "RAND");
  trunk("UCSB", "AMES");
  trunk("RAND", "SDC");
  trunk("SDC", "ISI");
  trunk("ISI", "UCLA");
  trunk("STANFORD", "AMES");
  // Cross-country paths.
  trunk("UTAH", "ILLINOIS");
  trunk("UTAH", "GWC");
  trunk("RAND", "GWC");
  trunk("ILLINOIS", "MIT");
  trunk("GWC", "CASE");
  trunk("CASE", "CMU");
  trunk("CMU", "LINCOLN");
  trunk("ISI", "MITRE");
  // East-coast mesh.
  trunk("MIT", "BBN");
  trunk("MIT", "LINCOLN");
  trunk("BBN", "HARVARD");
  trunk("HARVARD", "ARPA");
  trunk("LINCOLN", "NBS");
  trunk("NBS", "MITRE");
  trunk("MITRE", "ARPA");
  trunk("ARPA", "BBN");

  // Hosts. Big sites run a campus LAN (extra servers on cheap links, one
  // host each — a mid-80s cluster); small sites attach a single host to
  // their IMP; the rest are pure switches.
  auto lan = [&](const char* site, int machines) {
    std::vector<HostId>& here = net.hosts_at[site];
    here.push_back(t.add_host(imp(site)));
    net.hosts.push_back(here.back());
    for (int k = 1; k < machines; ++k) {
      const ServerId lan_switch = t.add_server();
      t.add_link(imp(site), lan_switch, LinkClass::kCheap);
      here.push_back(t.add_host(lan_switch));
      net.hosts.push_back(here.back());
    }
  };
  lan("MIT", 3);
  lan("BBN", 2);
  lan("SRI", 2);
  lan("UCLA", 2);
  lan("ISI", 2);
  for (const char* site :
       {"UTAH", "STANFORD", "RAND", "ILLINOIS", "CMU", "HARVARD", "NBS"}) {
    lan(site, 1);
  }
  return net;
}

Figure31 make_figure_3_1() {
  Figure31 fig;
  Topology& t = fig.topology;
  fig.s1 = t.add_server();
  fig.s2 = t.add_server();
  fig.s3 = t.add_server();
  fig.s4 = t.add_server();  // pure switch, no host
  fig.h1 = t.add_host(fig.s1);
  fig.h2 = t.add_host(fig.s2);
  fig.h3 = t.add_host(fig.s3);
  fig.s1s4 = t.add_link(fig.s1, fig.s4, LinkClass::kExpensive);
  fig.s2s4 = t.add_link(fig.s2, fig.s4, LinkClass::kExpensive);
  fig.s3s4 = t.add_link(fig.s3, fig.s4, LinkClass::kExpensive);
  return fig;
}

Figure32 make_figure_3_2() {
  Figure32 fig;
  Topology& t = fig.topology;

  auto cheap = LinkParams::cheap_defaults();
  auto [r_hosts, r_head] = build_cluster(t, 2, cheap, false);
  auto [cp_hosts, cp_head] = build_cluster(t, 2, cheap, false);
  auto [cpp_hosts, cpp_head] = build_cluster(t, 2, cheap, false);
  auto [c_hosts, c_head] = build_cluster(t, 3, cheap, false);

  fig.cluster_hosts = {r_hosts, cp_hosts, cpp_hosts, c_hosts};
  fig.source = r_hosts.front();

  fig.trunk_r_cp = t.add_link(r_head, cp_head, LinkClass::kExpensive);
  fig.trunk_r_cpp = t.add_link(r_head, cpp_head, LinkClass::kExpensive);
  fig.trunk_cp_c = t.add_link(cp_head, c_head, LinkClass::kExpensive);
  fig.trunk_cpp_c = t.add_link(cpp_head, c_head, LinkClass::kExpensive);
  return fig;
}

Figure41 make_figure_4_1() {
  Figure41 fig;
  Topology& t = fig.topology;
  const ServerId ss = t.add_server();
  const ServerId si = t.add_server();
  const ServerId sj = t.add_server();
  fig.s = t.add_host(ss);
  fig.i = t.add_host(si);
  fig.j = t.add_host(sj);
  fig.trunk_si = t.add_link(ss, si, LinkClass::kExpensive);
  fig.trunk_sj = t.add_link(ss, sj, LinkClass::kExpensive);
  fig.trunk_ij = t.add_link(si, sj, LinkClass::kExpensive);
  return fig;
}

}  // namespace rbcast::topo
