#include "topo/topology.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>

#include "util/assert.h"

namespace rbcast::topo {

LinkParams LinkParams::cheap_defaults() {
  return LinkParams{
      .propagation_delay = sim::milliseconds(1),
      .bandwidth_bytes_per_sec = 10e6 / 8,  // 10 Mbit/s
      .loss_probability = 0.0,
      .duplication_probability = 0.0,
  };
}

LinkParams LinkParams::expensive_defaults() {
  return LinkParams{
      .propagation_delay = sim::milliseconds(20),
      .bandwidth_bytes_per_sec = 56e3 / 8,  // 56 kbit/s trunk
      .loss_probability = 0.0,
      .duplication_probability = 0.0,
  };
}

sim::Duration LinkSpec::transmission_time(std::size_t bytes) const {
  RBCAST_ASSERT(params.bandwidth_bytes_per_sec > 0);
  const double secs =
      static_cast<double>(bytes) / params.bandwidth_bytes_per_sec;
  return std::max<sim::Duration>(1, sim::from_seconds(secs));
}

ServerId Topology::add_server() {
  const ServerId id{static_cast<std::int32_t>(servers_.size())};
  servers_.push_back(ServerSpec{.id = id, .has_host = false});
  trunks_by_server_.emplace_back();
  return id;
}

LinkId Topology::add_link(ServerId a, ServerId b, LinkClass link_class,
                          LinkParams params) {
  RBCAST_CHECK_ARG(a.valid() && static_cast<std::size_t>(a.value) < servers_.size(),
                   "add_link: bad endpoint a");
  RBCAST_CHECK_ARG(b.valid() && static_cast<std::size_t>(b.value) < servers_.size(),
                   "add_link: bad endpoint b");
  RBCAST_CHECK_ARG(a != b, "add_link: self-loop");
  const LinkId id{static_cast<std::int32_t>(links_.size())};
  links_.push_back(LinkSpec{.id = id,
                            .a = a,
                            .b = b,
                            .link_class = link_class,
                            .params = params,
                            .is_access = false});
  trunks_by_server_[static_cast<std::size_t>(a.value)].push_back(id);
  trunks_by_server_[static_cast<std::size_t>(b.value)].push_back(id);
  return id;
}

LinkId Topology::add_link(ServerId a, ServerId b, LinkClass link_class) {
  return add_link(a, b, link_class,
                  link_class == LinkClass::kCheap
                      ? LinkParams::cheap_defaults()
                      : LinkParams::expensive_defaults());
}

HostId Topology::add_host(ServerId server) {
  LinkParams p = LinkParams::cheap_defaults();
  p.propagation_delay = sim::microseconds(100);  // host NIC, essentially local
  return add_host(server, p);
}

HostId Topology::add_host(ServerId server, LinkParams access_params) {
  RBCAST_CHECK_ARG(
      server.valid() && static_cast<std::size_t>(server.value) < servers_.size(),
      "add_host: bad server");
  ServerSpec& sv = servers_[static_cast<std::size_t>(server.value)];
  RBCAST_CHECK_ARG(!sv.has_host, "add_host: server already has a host");
  sv.has_host = true;

  const HostId hid{static_cast<std::int32_t>(hosts_.size())};
  const LinkId lid{static_cast<std::int32_t>(links_.size())};
  // The access link is cheap by definition: a host and its server are
  // co-located. It is a real link so that it can fail (host crash model),
  // but it is not a trunk and never appears in routing.
  links_.push_back(LinkSpec{.id = lid,
                            .a = server,
                            .b = server,  // degenerate: host side
                            .link_class = LinkClass::kCheap,
                            .params = access_params,
                            .is_access = true});
  hosts_.push_back(HostSpec{.id = hid, .server = server, .access_link = lid});
  return hid;
}

void Topology::set_link_params(LinkId link, LinkParams params) {
  RBCAST_CHECK_ARG(
      link.valid() && static_cast<std::size_t>(link.value) < links_.size(),
      "set_link_params: unknown link");
  links_[static_cast<std::size_t>(link.value)].params = params;
}

const ServerSpec& Topology::server(ServerId id) const {
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < servers_.size());
  return servers_[static_cast<std::size_t>(id.value)];
}

const HostSpec& Topology::host(HostId id) const {
  RBCAST_ASSERT(id.valid() && static_cast<std::size_t>(id.value) < hosts_.size());
  return hosts_[static_cast<std::size_t>(id.value)];
}

const LinkSpec& Topology::link(LinkId id) const {
  RBCAST_ASSERT(id.valid() && static_cast<std::size_t>(id.value) < links_.size());
  return links_[static_cast<std::size_t>(id.value)];
}

std::vector<HostId> Topology::host_ids() const {
  std::vector<HostId> out;
  out.reserve(hosts_.size());
  for (const HostSpec& h : hosts_) out.push_back(h.id);
  return out;
}

const std::vector<LinkId>& Topology::trunk_links_of(ServerId s) const {
  RBCAST_ASSERT(s.valid() &&
                static_cast<std::size_t>(s.value) < trunks_by_server_.size());
  return trunks_by_server_[static_cast<std::size_t>(s.value)];
}

namespace {

// Union-find over server indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<std::vector<HostId>> Topology::clusters(
    const std::function<bool(LinkId)>& is_up) const {
  // Servers joined by operational cheap trunks form cheap components; a
  // host belongs to its server's component iff its access link is up.
  UnionFind uf(servers_.size());
  for (const LinkSpec& l : links_) {
    if (l.is_access) continue;
    if (l.link_class != LinkClass::kCheap) continue;
    if (!is_up(l.id)) continue;
    uf.unite(static_cast<std::size_t>(l.a.value),
             static_cast<std::size_t>(l.b.value));
  }

  std::vector<std::vector<HostId>> by_root(servers_.size());
  std::vector<std::vector<HostId>> out;
  for (const HostSpec& h : hosts_) {
    if (!is_up(h.access_link)) {
      // A crashed host is unreachable; the paper treats it as absent. It
      // still forms a singleton cluster from its own point of view.
      out.push_back({h.id});
      continue;
    }
    by_root[uf.find(static_cast<std::size_t>(h.server.value))].push_back(h.id);
  }
  for (auto& group : by_root) {
    if (!group.empty()) {
      std::sort(group.begin(), group.end());
      out.push_back(std::move(group));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

std::vector<int> Topology::host_cluster_index(
    const std::function<bool(LinkId)>& is_up) const {
  const auto groups = clusters(is_up);
  std::vector<int> idx(hosts_.size(), -1);
  for (std::size_t c = 0; c < groups.size(); ++c) {
    for (HostId h : groups[c]) idx[static_cast<std::size_t>(h.value)] =
        static_cast<int>(c);
  }
  return idx;
}

bool Topology::connected(HostId x, HostId y,
                         const std::function<bool(LinkId)>& is_up) const {
  const HostSpec& hx = host(x);
  const HostSpec& hy = host(y);
  if (!is_up(hx.access_link) || !is_up(hy.access_link)) return false;
  if (hx.server == hy.server) return true;

  std::vector<bool> seen(servers_.size(), false);
  std::queue<ServerId> frontier;
  frontier.push(hx.server);
  seen[static_cast<std::size_t>(hx.server.value)] = true;
  while (!frontier.empty()) {
    const ServerId s = frontier.front();
    frontier.pop();
    if (s == hy.server) return true;
    for (LinkId lid : trunk_links_of(s)) {
      if (!is_up(lid)) continue;
      const ServerId t = link(lid).other_end(s);
      if (!seen[static_cast<std::size_t>(t.value)]) {
        seen[static_cast<std::size_t>(t.value)] = true;
        frontier.push(t);
      }
    }
  }
  return false;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << server_count() << " servers, " << host_count() << " hosts, ";
  std::size_t cheap = 0;
  std::size_t expensive = 0;
  for (const LinkSpec& l : links_) {
    if (l.is_access) continue;
    (l.link_class == LinkClass::kCheap ? cheap : expensive)++;
  }
  os << cheap << " cheap + " << expensive << " expensive trunks";
  return os.str();
}

}  // namespace rbcast::topo
