// Static description of a network: servers, links, hosts.
//
// Mirrors the paper's Section 2 environment. Hosts are computers running
// the broadcast application; each is attached to exactly one server through
// an *access link*. Servers are interconnected by point-to-point
// bidirectional links. Every link is either *cheap* (high bandwidth, e.g. a
// LAN segment) or *expensive* (low bandwidth, e.g. a long-haul trunk); a
// *cluster* is a maximal group of hosts that can reach each other over
// cheap operational links only.
//
// Modelling the host-server attachment as a link of its own lets a host
// "crash" exactly the way the paper prescribes: "if a host crashes, the
// effect ... is the same as if the link connecting the host to its server
// went down".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace rbcast::topo {

enum class LinkClass { kCheap, kExpensive };

[[nodiscard]] constexpr const char* to_string(LinkClass c) {
  return c == LinkClass::kCheap ? "cheap" : "expensive";
}

// Delay/loss parameters of one link. Defaults below model a mid-80s
// internetwork: 10 Mbit/s LAN segments vs 56 kbit/s long-haul trunks.
struct LinkParams {
  sim::Duration propagation_delay{sim::milliseconds(1)};
  double bandwidth_bytes_per_sec{10e6 / 8};
  double loss_probability{0.0};
  double duplication_probability{0.0};

  static LinkParams cheap_defaults();
  static LinkParams expensive_defaults();
};

struct LinkSpec {
  LinkId id;
  ServerId a;
  ServerId b;
  LinkClass link_class{LinkClass::kCheap};
  LinkParams params;
  bool is_access{false};  // host-server attachment link

  [[nodiscard]] ServerId other_end(ServerId s) const {
    return s == a ? b : a;
  }

  // Time to clock one message of `bytes` onto the wire.
  [[nodiscard]] sim::Duration transmission_time(std::size_t bytes) const;
};

struct HostSpec {
  HostId id;
  ServerId server;   // the server this host is attached to
  LinkId access_link;
};

struct ServerSpec {
  ServerId id;
  bool has_host{false};  // pure switches have no host
};

class Topology {
 public:
  // --- construction -----------------------------------------------------

  ServerId add_server();

  // Adds a server-to-server link. a != b, both must exist.
  LinkId add_link(ServerId a, ServerId b, LinkClass link_class,
                  LinkParams params);
  LinkId add_link(ServerId a, ServerId b, LinkClass link_class);

  // Adds a host attached to `server` (at most one host per server), with a
  // dedicated cheap access link.
  HostId add_host(ServerId server);
  HostId add_host(ServerId server, LinkParams access_params);

  // Replaces a link's delay/loss parameters (scenario biasing, e.g. one
  // deliberately slow trunk). Only valid before the network is built.
  void set_link_params(LinkId link, LinkParams params);

  // --- accessors --------------------------------------------------------

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const ServerSpec& server(ServerId id) const;
  [[nodiscard]] const HostSpec& host(HostId id) const;
  [[nodiscard]] const LinkSpec& link(LinkId id) const;

  [[nodiscard]] const std::vector<ServerSpec>& servers() const {
    return servers_;
  }
  [[nodiscard]] const std::vector<HostSpec>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<LinkSpec>& links() const { return links_; }

  [[nodiscard]] std::vector<HostId> host_ids() const;

  // Server-to-server links incident to `s` (excludes access links).
  [[nodiscard]] const std::vector<LinkId>& trunk_links_of(ServerId s) const;

  // --- derived structure ------------------------------------------------

  // Ground-truth clusters: connected components of hosts under *cheap*
  // links only, where a link participates iff is_up(link). Returns one
  // sorted vector of HostIds per cluster, ordered by smallest member.
  [[nodiscard]] std::vector<std::vector<HostId>> clusters(
      const std::function<bool(LinkId)>& is_up) const;

  // Cluster index per host (aligned with clusters()); -1 never occurs.
  [[nodiscard]] std::vector<int> host_cluster_index(
      const std::function<bool(LinkId)>& is_up) const;

  // True iff a path of operational links (any class) connects the hosts'
  // servers, including both access links.
  [[nodiscard]] bool connected(HostId x, HostId y,
                               const std::function<bool(LinkId)>& is_up) const;

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<ServerSpec> servers_;
  std::vector<HostSpec> hosts_;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<LinkId>> trunks_by_server_;
};

}  // namespace rbcast::topo
