// Runtime state of one link: up/down, per-direction serialization queue,
// loss and duplication draws.
//
// Failure semantics follow the paper exactly: messages "can ... be lost at
// any point (even when the link over which the lost message was sent is
// perceived to be operational), or be spontaneously duplicated", and
// neither loss nor link failure is reported to anyone.
#pragma once

#include "sim/time.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace rbcast::net {

class LinkState {
 public:
  LinkState(const topo::LinkSpec& spec, util::Rng rng);

  [[nodiscard]] const topo::LinkSpec& spec() const { return *spec_; }
  [[nodiscard]] bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  // Which direction a transmission from server `from` uses (trunks only).
  [[nodiscard]] int direction_from(ServerId from) const {
    return from == spec_->a ? 0 : 1;
  }

  struct TxResult {
    // Copies that will actually arrive: 0 = lost, 1 = normal,
    // 2 = spontaneously duplicated.
    int copies{0};
    // Wait until the wire is free (serialization backlog at enqueue).
    sim::Duration queue_wait{0};
    // Time to clock the message onto the wire.
    sim::Duration tx_time{0};
    // One-way arrival offsets from `now` for each copy (queue + tx + prop).
    sim::Duration arrival_offset[2]{0, 0};
  };

  // Serialization backlog a message enqueued now in direction `dir` would
  // wait behind (0 when the wire is idle). Lets the owner implement
  // finite buffers: real store-and-forward servers tail-drop rather than
  // queue unboundedly.
  [[nodiscard]] sim::Duration queue_backlog(int dir,
                                            sim::TimePoint now) const {
    return next_free_[dir] > now ? next_free_[dir] - now : 0;
  }

  // Attempts to transmit `bytes` in direction `dir` at time `now`.
  // Precondition: up(). Occupies the wire even for copies that are lost
  // (the bits were sent; they just never arrived).
  TxResult transmit(std::size_t bytes, int dir, sim::TimePoint now);

 private:
  const topo::LinkSpec* spec_;
  bool up_{true};
  sim::TimePoint next_free_[2]{0, 0};
  util::Rng rng_;
};

}  // namespace rbcast::net
