#include "net/network.h"

#include <utility>

#include "util/assert.h"
#include "util/logging.h"

namespace rbcast::net {

class Network::Endpoint final : public HostEndpoint {
 public:
  Endpoint(Network& network, HostId self) : network_(network), self_(self) {}

  [[nodiscard]] HostId self() const override { return self_; }

  void send(HostId to, std::any payload, std::size_t bytes,
            std::string kind, TraceId trace_id) override {
    network_.send(self_, to, std::move(payload), bytes, std::move(kind),
                  trace_id);
  }

 private:
  Network& network_;
  HostId self_;
};

Network::Network(sim::Simulator& simulator, const topo::Topology& topology,
                 NetConfig config, const util::RngFactory& rngs)
    : simulator_(simulator),
      topology_(topology),
      config_(config),
      routing_(simulator, topology,
               [this](LinkId id) { return link_up(id); },
               config.convergence_lag),
      jitter_rng_(rngs.stream("net.jitter")) {
  RBCAST_CHECK_ARG(config.ttl >= 1, "ttl must be at least 1");
  RBCAST_CHECK_ARG(config.jitter_max >= 0, "negative jitter");
  RBCAST_CHECK_ARG(config.max_queue_delay > 0,
                   "max_queue_delay must be positive");
  links_.reserve(topology.link_count());
  for (const topo::LinkSpec& spec : topology.links()) {
    links_.emplace_back(spec, rngs.stream("net.link", spec.id.value));
  }
  routing_.recompute_now();
  servers_.reserve(topology.server_count());
  for (const topo::ServerSpec& s : topology.servers()) {
    servers_.emplace_back(s.id, topology, routing_);
  }
  deliver_.resize(topology.host_count());
  endpoints_.resize(topology.host_count());
  inflight_.resize(topology.link_count());
  for (const topo::HostSpec& h : topology.hosts()) {
    endpoints_[static_cast<std::size_t>(h.id.value)] =
        std::make_unique<Endpoint>(*this, h.id);
  }
}

Network::~Network() = default;

void Network::register_host(HostId host, DeliveryFn deliver) {
  RBCAST_CHECK_ARG(
      host.valid() && static_cast<std::size_t>(host.value) < deliver_.size(),
      "register_host: unknown host");
  RBCAST_CHECK_ARG(deliver != nullptr, "register_host: null delivery fn");
  deliver_[static_cast<std::size_t>(host.value)] = std::move(deliver);
}

HostEndpoint& Network::endpoint(HostId host) {
  RBCAST_ASSERT(host.valid() &&
                static_cast<std::size_t>(host.value) < endpoints_.size());
  return *endpoints_[static_cast<std::size_t>(host.value)];
}

LinkState& Network::link_state(LinkId id) {
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < links_.size());
  return links_[static_cast<std::size_t>(id.value)];
}

const LinkState& Network::link_state(LinkId id) const {
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < links_.size());
  return links_[static_cast<std::size_t>(id.value)];
}

sim::Duration Network::jitter() {
  if (config_.jitter_max <= 0) return 0;
  return jitter_rng_.uniform_int(0, config_.jitter_max);
}

void Network::schedule_on_link(LinkId link, sim::Duration delay,
                               std::function<void()> action) {
  auto& pending = inflight_[static_cast<std::size_t>(link.value)];
  // The cell lets the event remove its own registration when it fires.
  auto cell = std::make_shared<sim::EventId>();
  *cell = simulator_.after(
      delay, [this, link, cell, action = std::move(action)] {
        inflight_[static_cast<std::size_t>(link.value)].erase(cell->value);
        action();
      });
  pending.insert(cell->value);
}

void Network::send(HostId from, HostId to, std::any payload,
                   std::size_t bytes, std::string kind, TraceId trace_id) {
  RBCAST_CHECK_ARG(from.valid() && to.valid() && from != to,
                   "send: bad endpoints");
  Packet p;
  p.d = Delivery{.from = from,
                 .to = to,
                 .expensive = false,
                 .payload = std::move(payload),
                 .bytes = bytes,
                 .kind = std::move(kind),
                 .sent_at = simulator_.now(),
                 .hops = 0,
                 .trace_id = trace_id};
  p.ttl = config_.ttl;

  if (observer_ != nullptr) observer_->on_host_send(p.d);

  const topo::HostSpec& hs = topology_.host(from);
  LinkState& access = link_state(hs.access_link);
  if (!access.up()) {
    drop(p.d, DropReason::kLinkDown);
    return;
  }
  if (access.queue_backlog(0, simulator_.now()) > config_.max_queue_delay) {
    drop(p.d, DropReason::kQueueOverflow);
    return;
  }
  // Direction 0 of an access link is host -> server. Every hop charges
  // the payload plus the fixed per-datagram framing overhead.
  const auto tx = access.transmit(bytes + config_.per_packet_overhead_bytes,
                                  0, simulator_.now());
  if (observer_ != nullptr) {
    observer_->on_queue_backlog(hs.server, hs.access_link, tx.queue_wait);
  }
  if (tx.copies == 0) {
    drop(p.d, DropReason::kRandomLoss);
    return;
  }
  p.at = hs.server;
  ++p.d.hops;
  for (int c = 0; c < tx.copies; ++c) {
    Packet copy = p;
    schedule_on_link(hs.access_link, tx.arrival_offset[c] + jitter(),
                     [this, q = std::move(copy)]() mutable {
                       arrive_at_server(std::move(q));
                     });
  }
}

void Network::arrive_at_server(Packet p) {
  const topo::HostSpec& dst = topology_.host(p.d.to);
  if (p.at == dst.server) {
    deliver_to_host(std::move(p));
    return;
  }
  if (--p.ttl <= 0) {
    drop(p.d, DropReason::kTtlExceeded);
    return;
  }
  Server& here = servers_[static_cast<std::size_t>(p.at.value)];
  const auto choice = here.choose_link(
      dst.server, [this](LinkId id) { return link_up(id); });
  if (!choice.link.valid()) {
    drop(p.d, choice.had_route ? DropReason::kLinkDown : DropReason::kNoRoute);
    return;
  }
  here.count_forwarded();

  LinkState& ls = link_state(choice.link);
  const int dir = ls.direction_from(p.at);
  if (ls.queue_backlog(dir, simulator_.now()) > config_.max_queue_delay) {
    drop(p.d, DropReason::kQueueOverflow);
    return;
  }
  const auto tx = ls.transmit(p.d.bytes + config_.per_packet_overhead_bytes,
                              dir, simulator_.now());
  if (observer_ != nullptr) {
    observer_->on_queue_backlog(p.at, choice.link, tx.queue_wait);
    observer_->on_link_transmit(choice.link, p.d);
  }
  if (tx.copies == 0) {
    drop(p.d, DropReason::kRandomLoss);
    return;
  }
  const bool expensive =
      ls.spec().link_class == topo::LinkClass::kExpensive;
  const ServerId next = ls.spec().other_end(p.at);
  for (int c = 0; c < tx.copies; ++c) {
    Packet copy = p;
    copy.at = next;
    copy.d.expensive = copy.d.expensive || expensive;
    ++copy.d.hops;
    schedule_on_link(choice.link, tx.arrival_offset[c] + jitter(),
                     [this, q = std::move(copy)]() mutable {
                       arrive_at_server(std::move(q));
                     });
  }
}

void Network::deliver_to_host(Packet p) {
  const topo::HostSpec& dst = topology_.host(p.d.to);
  LinkState& access = link_state(dst.access_link);
  if (!access.up()) {
    drop(p.d, DropReason::kLinkDown);
    return;
  }
  // Direction 1 of an access link is server -> host.
  const auto tx = access.transmit(p.d.bytes, 1, simulator_.now());
  if (tx.copies == 0) {
    drop(p.d, DropReason::kRandomLoss);
    return;
  }
  // Spontaneous duplication on the last hop delivers the message twice —
  // the protocol must cope, so keep both copies.
  for (int c = 0; c < tx.copies; ++c) {
    Packet copy = p;
    ++copy.d.hops;
    schedule_on_link(
        dst.access_link, tx.arrival_offset[c] + jitter(),
        [this, q = std::move(copy)] {
          const auto idx = static_cast<std::size_t>(q.d.to.value);
          RBCAST_ASSERT_MSG(deliver_[idx] != nullptr,
                            "message addressed to unregistered host");
          if (observer_ != nullptr) observer_->on_deliver(q.d);
          deliver_[idx](q.d);
        });
  }
}

void Network::drop(const Delivery& d, DropReason reason) {
  RBCAST_DEBUG("drop " << d.kind << " " << d.from << "->" << d.to << ": "
                       << to_string(reason));
  if (observer_ != nullptr) observer_->on_drop(d, reason);
}

void Network::set_link_up(LinkId link, bool up) {
  LinkState& ls = link_state(link);
  if (ls.up() == up) return;
  ls.set_up(up);
  ++epoch_;
  if (!up) {
    // A failing link loses everything in flight on it, silently — the
    // paper's failure model ("messages can ... be lost at any point").
    auto& pending = inflight_[static_cast<std::size_t>(link.value)];
    for (std::uint64_t event : pending) {
      simulator_.cancel(sim::EventId{event});
    }
    pending.clear();
  }
  if (!ls.spec().is_access) {
    routing_.notify_change();
  }
}

bool Network::link_up(LinkId link) const { return link_state(link).up(); }

std::vector<std::vector<HostId>> Network::clusters() const {
  return topology_.clusters([this](LinkId id) { return link_up(id); });
}

std::vector<int> Network::host_cluster_index() const {
  return topology_.host_cluster_index(
      [this](LinkId id) { return link_up(id); });
}

bool Network::same_cluster(HostId x, HostId y) const {
  const auto idx = host_cluster_index();
  return idx[static_cast<std::size_t>(x.value)] ==
         idx[static_cast<std::size_t>(y.value)];
}

bool Network::connected(HostId x, HostId y) const {
  return topology_.connected(x, y, [this](LinkId id) { return link_up(id); });
}

const Server& Network::server(ServerId id) const {
  RBCAST_ASSERT(id.valid() &&
                static_cast<std::size_t>(id.value) < servers_.size());
  return servers_[static_cast<std::size_t>(id.value)];
}

}  // namespace rbcast::net
