// What the network carries between hosts.
//
// Per the paper's Section 2, the only service hosts get is single-
// destination delivery: a host hands its server a message for one other
// host. The network annotates each delivery with the *cost bit* — "whether
// the message ... traversed an expensive link on its way" — which is the
// only dynamic information the broadcast application may use.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.h"
#include "util/ids.h"

namespace rbcast::net {

// A message as seen by the receiving host.
struct Delivery {
  HostId from;
  HostId to;
  // The cost bit: true iff any hop of the path was an expensive link.
  bool expensive{false};
  // Protocol-defined content; the network treats it as opaque.
  std::any payload;
  // Wire size used for transmission-time and accounting purposes.
  std::size_t bytes{0};
  // Metrics label chosen by the sender ("data", "info", "gapfill", ...).
  std::string kind;
  sim::TimePoint sent_at{0};
  int hops{0};
};

using DeliveryFn = std::function<void(const Delivery&)>;

enum class DropReason {
  kLinkDown,       // the link was down when the packet reached it
  kRandomLoss,     // silent loss on an operational link
  kNoRoute,        // routing has no path (partition or pre-convergence)
  kTtlExceeded,    // routing transient caused a loop
  kQueueOverflow,  // finite output buffer full (tail drop)
};

[[nodiscard]] constexpr const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kLinkDown:
      return "link_down";
    case DropReason::kRandomLoss:
      return "random_loss";
    case DropReason::kNoRoute:
      return "no_route";
    case DropReason::kTtlExceeded:
      return "ttl_exceeded";
    case DropReason::kQueueOverflow:
      return "queue_overflow";
  }
  return "?";
}

// Observation hooks for the metrics layer. All methods have empty default
// implementations so observers override only what they need.
class NetObserver {
 public:
  virtual ~NetObserver() = default;
  // A host handed a message to its server.
  virtual void on_host_send(const Delivery&) {}
  // A message reached its destination host.
  virtual void on_deliver(const Delivery&) {}
  // A message (or a copy of it) died in the network. Silent: the paper's
  // network reports nothing to the application.
  virtual void on_drop(const Delivery&, DropReason) {}
  // One transmission of the message over one link (per copy).
  virtual void on_link_transmit(LinkId, const Delivery&) {}
  // Serialization backlog observed when a packet was queued on an outgoing
  // link direction of `server` (source-congestion experiment, E5).
  virtual void on_queue_backlog(ServerId, LinkId,
                                sim::Duration /*backlog*/) {}
};

// The sending interface a protocol host holds. Production hosts get the
// Network-backed implementation; protocol unit tests plug in a scripted
// fake (tests/support/fake_network.h).
class HostEndpoint {
 public:
  virtual ~HostEndpoint() = default;
  [[nodiscard]] virtual HostId self() const = 0;
  // Requests unicast delivery of `payload` to host `to`. Fire-and-forget:
  // there is no error result, because the paper's network never reports
  // loss or failure to the application.
  virtual void send(HostId to, std::any payload, std::size_t bytes,
                    std::string kind) = 0;
};

}  // namespace rbcast::net
