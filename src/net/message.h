// What the network carries between hosts.
//
// Per the paper's Section 2, the only service hosts get is single-
// destination delivery: a host hands its server a message for one other
// host. The network annotates each delivery with the *cost bit* — "whether
// the message ... traversed an expensive link on its way" — which is the
// only dynamic information the broadcast application may use.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace rbcast::net {

// Causal trace id: tags every copy, relay and gap-fill of one broadcast
// message so its full lineage can be reconstructed from a trace. Packed
// as (source host + 1) in the high bits and the sequence number in the
// low 40; 0 means "untraced" (control traffic). Purely observational —
// the protocol itself never reads it.
using TraceId = std::uint64_t;

inline constexpr int kTraceSeqBits = 40;

[[nodiscard]] constexpr TraceId make_trace_id(HostId source,
                                              std::uint64_t seq) {
  return (static_cast<TraceId>(source.value + 1) << kTraceSeqBits) |
         (seq & ((TraceId{1} << kTraceSeqBits) - 1));
}

[[nodiscard]] constexpr std::uint64_t trace_seq(TraceId id) {
  return id & ((TraceId{1} << kTraceSeqBits) - 1);
}

[[nodiscard]] constexpr HostId trace_source(TraceId id) {
  return HostId{static_cast<HostId::value_type>(id >> kTraceSeqBits) - 1};
}

// A message as seen by the receiving host.
struct Delivery {
  HostId from;
  HostId to;
  // The cost bit: true iff any hop of the path was an expensive link.
  bool expensive{false};
  // Protocol-defined content; the network treats it as opaque.
  std::any payload;
  // Wire size used for transmission-time and accounting purposes.
  std::size_t bytes{0};
  // Metrics label chosen by the sender ("data", "info", "gapfill", ...).
  std::string kind;
  sim::TimePoint sent_at{0};
  int hops{0};
  // Causal trace id chosen by the sender; 0 when untraced.
  TraceId trace_id{0};
};

using DeliveryFn = std::function<void(const Delivery&)>;

enum class DropReason {
  kLinkDown,       // the link was down when the packet reached it
  kRandomLoss,     // silent loss on an operational link
  kNoRoute,        // routing has no path (partition or pre-convergence)
  kTtlExceeded,    // routing transient caused a loop
  kQueueOverflow,  // finite output buffer full (tail drop)
};

[[nodiscard]] constexpr const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kLinkDown:
      return "link_down";
    case DropReason::kRandomLoss:
      return "random_loss";
    case DropReason::kNoRoute:
      return "no_route";
    case DropReason::kTtlExceeded:
      return "ttl_exceeded";
    case DropReason::kQueueOverflow:
      return "queue_overflow";
  }
  return "?";
}

// Observation hooks for the metrics layer. All methods have empty default
// implementations so observers override only what they need.
class NetObserver {
 public:
  virtual ~NetObserver() = default;
  // A host handed a message to its server.
  virtual void on_host_send(const Delivery&) {}
  // A message reached its destination host.
  virtual void on_deliver(const Delivery&) {}
  // A message (or a copy of it) died in the network. Silent: the paper's
  // network reports nothing to the application.
  virtual void on_drop(const Delivery&, DropReason) {}
  // One transmission of the message over one link (per copy).
  virtual void on_link_transmit(LinkId, const Delivery&) {}
  // Serialization backlog observed when a packet was queued on an outgoing
  // link direction of `server` (source-congestion experiment, E5).
  virtual void on_queue_backlog(ServerId, LinkId,
                                sim::Duration /*backlog*/) {}
};

// Broadcasts every network event to several observers in registration
// order; lets the metrics registry and a trace tap watch the same network.
// Observers are borrowed and must outlive the fanout's installation.
class NetObserverFanout final : public NetObserver {
 public:
  void add(NetObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void on_host_send(const Delivery& d) override {
    for (NetObserver* o : observers_) o->on_host_send(d);
  }
  void on_deliver(const Delivery& d) override {
    for (NetObserver* o : observers_) o->on_deliver(d);
  }
  void on_drop(const Delivery& d, DropReason reason) override {
    for (NetObserver* o : observers_) o->on_drop(d, reason);
  }
  void on_link_transmit(LinkId link, const Delivery& d) override {
    for (NetObserver* o : observers_) o->on_link_transmit(link, d);
  }
  void on_queue_backlog(ServerId server, LinkId link,
                        sim::Duration backlog) override {
    for (NetObserver* o : observers_) o->on_queue_backlog(server, link, backlog);
  }

 private:
  std::vector<NetObserver*> observers_;
};

// The sending interface a protocol host holds. Production hosts get the
// Network-backed implementation; protocol unit tests plug in a scripted
// fake (tests/support/fake_network.h).
class HostEndpoint {
 public:
  virtual ~HostEndpoint() = default;
  [[nodiscard]] virtual HostId self() const = 0;
  // Requests unicast delivery of `payload` to host `to`. Fire-and-forget:
  // there is no error result, because the paper's network never reports
  // loss or failure to the application. `trace_id` (0 = untraced) is
  // carried on the Delivery for causal tracing; it never affects routing
  // or protocol behavior.
  virtual void send(HostId to, std::any payload, std::size_t bytes,
                    std::string kind, TraceId trace_id = 0) = 0;
};

}  // namespace rbcast::net
