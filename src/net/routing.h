// Adaptive shortest-path routing over the server subnetwork.
//
// The paper assumes "networks with adaptive routing" (Section 2) — that is
// what makes the communication-transitivity assumption hold: if x can talk
// to y and y to z for long enough, routing eventually discovers an x-z
// path. We model ARPANET-style link-state routing: every server forwards
// along the globally shortest path, where path cost is the expected one-hop
// delay (propagation + typical transmission time). Expensive links have
// transmission times orders of magnitude above cheap ones, so routes prefer
// cheap paths whenever one exists — exactly the behaviour the cost bit and
// the cluster definition rely on.
//
// Adaptivity lag: after any topology change, new routes take effect only
// `convergence_lag` later (routing protocols need time to flood and
// recompute). In the window, packets follow stale routes and may be dropped
// or loop — the protocol above must tolerate that, per the paper's failure
// model.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace rbcast::net {

class Routing {
 public:
  Routing(sim::Simulator& simulator, const topo::Topology& topology,
          std::function<bool(LinkId)> link_up, sim::Duration convergence_lag);

  // Next server on the current route from `from` toward `to`; kNoServer
  // when no route is known. from == to returns `to`.
  [[nodiscard]] ServerId next_hop(ServerId from, ServerId to) const;

  // Full server path from `from` to `to` per the current routes, both
  // endpoints included; empty when no route exists. Debug/analysis helper
  // — forwarding itself is hop by hop.
  [[nodiscard]] std::vector<ServerId> path(ServerId from, ServerId to) const;

  // Informs routing that some link changed state; new routes take effect
  // after the convergence lag (multiple changes coalesce into one update).
  void notify_change();

  // Recomputes immediately. Must be called once after construction, as soon
  // as the link_up predicate is usable (the constructor defers it).
  void recompute_now();

  [[nodiscard]] sim::Duration convergence_lag() const { return lag_; }

  // Number of recomputations performed (observability for tests).
  [[nodiscard]] int recompute_count() const { return recomputes_; }

 private:
  void recompute();

  sim::Simulator& simulator_;
  const topo::Topology& topology_;
  std::function<bool(LinkId)> link_up_;
  sim::Duration lag_;
  bool update_pending_{false};
  int recomputes_{0};

  // next_hop_[from][to]; kNoServer when unreachable.
  std::vector<std::vector<ServerId>> next_hop_;
};

}  // namespace rbcast::net
