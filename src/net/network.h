// The complete communication subnetwork, as the hosts see it.
//
// Ties together links, servers and routing into the service interface the
// paper postulates: a host can request delivery of a message to a single
// destination, and a received message carries the cost bit. Everything else
// — loss, duplication, reordering, link failures, routing transients — is
// invisible to the application, exactly as assumed in Section 2.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "net/link.h"
#include "net/message.h"
#include "net/routing.h"
#include "net/server.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace rbcast::net {

struct NetConfig {
  // Delay between a link state change and routes reflecting it.
  sim::Duration convergence_lag{sim::milliseconds(200)};
  // Per-hop uniform random extra delay in [0, jitter_max]; produces the
  // out-of-order arrivals the paper's failure model includes.
  sim::Duration jitter_max{sim::microseconds(500)};
  // Hop budget; loops during routing transients die here.
  int ttl{64};
  // Finite output buffering: a packet whose serialization backlog on a
  // link direction would exceed this is tail-dropped (real servers do not
  // queue unboundedly). Generous default so only genuine congestion
  // collapse triggers it.
  sim::Duration max_queue_delay{sim::seconds(60)};
  // Fixed per-datagram framing cost (UDP/IP-style headers) added to every
  // transmission's byte charge. 0 — the default, and what the determinism
  // digests are pinned under — models the pre-batching world where only
  // payload bytes count; the overload benchmarks set ~28 so that
  // coalescing many small frames into one datagram actually amortizes
  // something, as it does on real networks.
  std::size_t per_packet_overhead_bytes{0};
};

class Network {
 public:
  Network(sim::Simulator& simulator, const topo::Topology& topology,
          NetConfig config, const util::RngFactory& rngs);

  ~Network();  // out of line: Endpoint is an incomplete type here

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- host side ----------------------------------------------------------

  // Registers the delivery upcall for `host`. Must be called once per host
  // before any message addressed to it is sent.
  void register_host(HostId host, DeliveryFn deliver);

  // The sending interface handed to the protocol instance running on
  // `host`. Valid for the lifetime of the Network.
  [[nodiscard]] HostEndpoint& endpoint(HostId host);

  // Requests unicast delivery (what endpoint() forwards to).
  void send(HostId from, HostId to, std::any payload, std::size_t bytes,
            std::string kind, TraceId trace_id = 0);

  // --- fault control (used by FaultPlan) -----------------------------------

  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;

  // Bumped on every effective link state change; lets observers cache
  // cluster/connectivity computations between changes.
  [[nodiscard]] std::uint64_t topology_epoch() const { return epoch_; }

  // --- ground truth queries (metrics, tests, benches — NOT the protocol) ---

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] std::vector<std::vector<HostId>> clusters() const;
  [[nodiscard]] std::vector<int> host_cluster_index() const;
  [[nodiscard]] bool same_cluster(HostId x, HostId y) const;
  [[nodiscard]] bool connected(HostId x, HostId y) const;

  [[nodiscard]] Routing& routing() { return routing_; }
  [[nodiscard]] const Server& server(ServerId id) const;

  // Installs the metrics observer (nullptr to remove).
  void set_observer(NetObserver* observer) { observer_ = observer; }

 private:
  struct Packet {
    Delivery d;
    ServerId at{kNoServer};
    int ttl{0};
  };

  class Endpoint;

  LinkState& link_state(LinkId id);
  [[nodiscard]] const LinkState& link_state(LinkId id) const;
  void arrive_at_server(Packet packet);
  void deliver_to_host(Packet packet);
  void drop(const Delivery& d, DropReason reason);
  [[nodiscard]] sim::Duration jitter();

  // Schedules `action` to fire after `delay`, tied to `link`: if the link
  // goes down first, the event is cancelled — a failing link loses
  // everything in flight on it.
  void schedule_on_link(LinkId link, sim::Duration delay,
                        std::function<void()> action);

  sim::Simulator& simulator_;
  const topo::Topology& topology_;
  NetConfig config_;
  NetObserver* observer_{nullptr};

  std::vector<LinkState> links_;
  Routing routing_;
  std::vector<Server> servers_;
  std::vector<DeliveryFn> deliver_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  util::Rng jitter_rng_;
  std::uint64_t epoch_{0};
  // In-flight arrival events per link; killed when the link goes down.
  std::vector<std::set<std::uint64_t>> inflight_;
};

}  // namespace rbcast::net
