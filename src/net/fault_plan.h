// Scripted and randomized fault injection.
//
// The paper's failure model lets links "fail and recover at any time";
// hosts never fail, but a host crash is simulated by taking down its
// access link (Section 2). FaultPlan schedules exactly these events on the
// simulator: one-shot windows, permanent failures, network partitions and
// random flapping.
//
// Overlap semantics: link-down state is a per-link *hold count*. Every
// down transition acquires a hold, every up transition releases one, and
// the link is operational iff no holds remain. This makes overlapping and
// nested fault windows compose correctly — the `link_up_at` scheduled by a
// short outage window cannot resurrect a link that a longer, later window
// (or an active flapping down-phase) still holds down.
#pragma once

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace rbcast::net {

class FaultPlan {
 public:
  FaultPlan(sim::Simulator& simulator, Network& network);

  // --- one-shot events ------------------------------------------------

  // Acquires a down-hold on `link` at `t` (the link goes down if it was
  // up). Pair with link_up_at to schedule a repair; unpaired, this is a
  // permanent failure.
  void link_down_at(sim::TimePoint t, LinkId link);
  // Releases one down-hold on `link` at `t`; the link comes back up when
  // the last hold is released. Releasing with no hold outstanding is a
  // no-op (the link is already up).
  void link_up_at(sim::TimePoint t, LinkId link);

  // Link is held down during [from, to), released at `to`.
  void outage_window(LinkId link, sim::TimePoint from, sim::TimePoint to);

  // Simulates a crash of `host` during [from, to) by failing its access
  // link (the paper's host-crash model).
  void host_crash_window(HostId host, sim::TimePoint from, sim::TimePoint to);

  // Takes down every listed link during [from, to). Used to create
  // partitions: pass all trunks crossing the desired cut.
  void partition_window(const std::vector<LinkId>& cut, sim::TimePoint from,
                        sim::TimePoint to);

  // --- random flapping --------------------------------------------------
  //
  // Each listed link alternates between up-phases (exponential, mean
  // `mean_up`) and down-phases (exponential, mean `mean_down`), starting
  // up, until `until`. Each link gets an independent stream from `rngs`.
  // Down-phases hold the link down through the same hold counter as the
  // windows above, so flapping composes with concurrent outage windows.
  void flapping(const std::vector<LinkId>& links, sim::Duration mean_up,
                sim::Duration mean_down, sim::TimePoint until,
                const util::RngFactory& rngs);

  // Outstanding down-holds on `link` right now (0 = operational unless
  // something else took it down). Exposed for tests.
  [[nodiscard]] int holds(LinkId link) const;

  // All expensive trunks that connect different ground-truth clusters of
  // `wan_clusters` — the natural cut set for partition experiments.
  [[nodiscard]] static std::vector<LinkId> trunks_incident_to(
      const topo::Topology& topology, ServerId server);

 private:
  struct Flapper {
    LinkId link;
    sim::Duration mean_up;
    sim::Duration mean_down;
    sim::TimePoint until;
    util::Rng rng;
  };

  void flap_next(std::size_t flapper_index, bool currently_up);
  void acquire(LinkId link);
  void release(LinkId link);

  sim::Simulator& simulator_;
  Network& network_;
  std::vector<Flapper> flappers_;
  // Down-hold depth per link, indexed by LinkId value.
  std::vector<int> holds_;
};

}  // namespace rbcast::net
