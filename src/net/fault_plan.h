// Scripted and randomized fault injection.
//
// The paper's failure model lets links "fail and recover at any time";
// hosts never fail, but a host crash is simulated by taking down its
// access link (Section 2). FaultPlan schedules exactly these events on the
// simulator: one-shot windows, permanent failures, network partitions and
// random flapping.
#pragma once

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace rbcast::net {

class FaultPlan {
 public:
  FaultPlan(sim::Simulator& simulator, Network& network);

  // --- one-shot events ------------------------------------------------

  void link_down_at(sim::TimePoint t, LinkId link);
  void link_up_at(sim::TimePoint t, LinkId link);

  // Link is down during [from, to), up again at `to`.
  void outage_window(LinkId link, sim::TimePoint from, sim::TimePoint to);

  // Simulates a crash of `host` during [from, to) by failing its access
  // link (the paper's host-crash model).
  void host_crash_window(HostId host, sim::TimePoint from, sim::TimePoint to);

  // Takes down every listed link during [from, to). Used to create
  // partitions: pass all trunks crossing the desired cut.
  void partition_window(const std::vector<LinkId>& cut, sim::TimePoint from,
                        sim::TimePoint to);

  // --- random flapping --------------------------------------------------
  //
  // Each listed link alternates between up-phases (exponential, mean
  // `mean_up`) and down-phases (exponential, mean `mean_down`), starting
  // up, until `until`. Each link gets an independent stream from `rngs`.
  void flapping(const std::vector<LinkId>& links, sim::Duration mean_up,
                sim::Duration mean_down, sim::TimePoint until,
                const util::RngFactory& rngs);

  // All expensive trunks that connect different ground-truth clusters of
  // `wan_clusters` — the natural cut set for partition experiments.
  [[nodiscard]] static std::vector<LinkId> trunks_incident_to(
      const topo::Topology& topology, ServerId server);

 private:
  struct Flapper {
    LinkId link;
    sim::Duration mean_up;
    sim::Duration mean_down;
    sim::TimePoint until;
    util::Rng rng;
  };

  void flap_next(std::size_t flapper_index, bool currently_up);

  sim::Simulator& simulator_;
  Network& network_;
  std::vector<Flapper> flappers_;
};

}  // namespace rbcast::net
