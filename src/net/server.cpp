#include "net/server.h"

namespace rbcast::net {

Server::Server(ServerId id, const topo::Topology& topology,
               const Routing& routing)
    : id_(id), routing_(&routing) {
  for (LinkId lid : topology.trunk_links_of(id)) {
    const topo::LinkSpec& l = topology.link(lid);
    links_by_neighbor_[l.other_end(id)].push_back(lid);
  }
}

Server::ForwardChoice Server::choose_link(
    ServerId dst_server, const std::function<bool(LinkId)>& link_up) const {
  ForwardChoice choice;
  const ServerId hop = routing_->next_hop(id_, dst_server);
  if (!hop.valid()) return choice;
  choice.had_route = true;
  auto it = links_by_neighbor_.find(hop);
  if (it == links_by_neighbor_.end()) return choice;
  for (LinkId lid : it->second) {
    if (link_up(lid)) {
      choice.link = lid;
      return choice;
    }
  }
  return choice;
}

}  // namespace rbcast::net
