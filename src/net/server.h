// A communication server (switch).
//
// Servers are *nonprogrammable*: all a server does is store-and-forward
// individually addressed packets along routes computed by the routing
// layer. There is deliberately no broadcast support, no duplication on
// behalf of the application, and no failure reporting — that is the entire
// premise of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/routing.h"
#include "topo/topology.h"

namespace rbcast::net {

class Server {
 public:
  Server(ServerId id, const topo::Topology& topology, const Routing& routing);

  [[nodiscard]] ServerId id() const { return id_; }

  struct ForwardChoice {
    LinkId link{kNoLink};   // valid iff an operational link was found
    bool had_route{false};  // routing knew a next hop (link may be down)
  };

  // Picks the outgoing link toward `dst_server` per the current routes.
  // `link_up` reflects the live link states.
  [[nodiscard]] ForwardChoice choose_link(
      ServerId dst_server,
      const std::function<bool(LinkId)>& link_up) const;

  // --- accounting ---------------------------------------------------------
  void count_forwarded() { ++forwarded_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  ServerId id_;
  const Routing* routing_;
  // Incident trunks grouped by neighbor server (ordered by neighbor id;
  // within a neighbor, insertion order).
  std::map<ServerId, std::vector<LinkId>> links_by_neighbor_;
  std::uint64_t forwarded_{0};
};

}  // namespace rbcast::net
