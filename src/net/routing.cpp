#include "net/routing.h"

#include <limits>
#include <queue>

#include "util/assert.h"

namespace rbcast::net {

namespace {

// Probe size used to weight links: a typical data packet. The exact value
// only matters relatively — expensive links must dominate cheap paths.
constexpr std::size_t kProbeBytes = 512;

double link_weight(const topo::LinkSpec& l) {
  return sim::to_seconds(l.params.propagation_delay) +
         sim::to_seconds(l.transmission_time(kProbeBytes));
}

}  // namespace

Routing::Routing(sim::Simulator& simulator, const topo::Topology& topology,
                 std::function<bool(LinkId)> link_up,
                 sim::Duration convergence_lag)
    : simulator_(simulator),
      topology_(topology),
      link_up_(std::move(link_up)),
      lag_(convergence_lag) {
  RBCAST_CHECK_ARG(convergence_lag >= 0, "negative convergence lag");
  // No initial recompute here: the link_up predicate may not be ready yet
  // (Network wires it to link states it builds after this). The owner calls
  // recompute_now() once link states exist.
}

ServerId Routing::next_hop(ServerId from, ServerId to) const {
  RBCAST_ASSERT(from.valid() && to.valid());
  if (from == to) return to;
  return next_hop_[static_cast<std::size_t>(from.value)]
                  [static_cast<std::size_t>(to.value)];
}

std::vector<ServerId> Routing::path(ServerId from, ServerId to) const {
  std::vector<ServerId> out{from};
  ServerId at = from;
  while (at != to) {
    const ServerId next = next_hop(at, to);
    if (!next.valid()) return {};  // unreachable
    at = next;
    out.push_back(at);
    if (out.size() > topology_.server_count()) return {};  // stale loop
  }
  return out;
}

void Routing::notify_change() {
  if (update_pending_) return;
  update_pending_ = true;
  simulator_.after(lag_, [this] {
    update_pending_ = false;
    recompute();
  });
}

void Routing::recompute_now() { recompute(); }

void Routing::recompute() {
  ++recomputes_;
  const std::size_t n = topology_.server_count();
  next_hop_.assign(n, std::vector<ServerId>(n, kNoServer));

  // Dijkstra from every server. Networks here are small (tens to a couple
  // hundred servers); an all-sources recompute per topology change is the
  // straightforward faithful model.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<ServerId> first_hop(n, kNoServer);
    using QEntry = std::pair<double, std::int32_t>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    dist[src] = 0.0;
    pq.push({0.0, static_cast<std::int32_t>(src)});

    while (!pq.empty()) {
      auto [d, uv] = pq.top();
      pq.pop();
      const auto u = static_cast<std::size_t>(uv);
      if (d > dist[u]) continue;
      for (LinkId lid : topology_.trunk_links_of(ServerId{uv})) {
        if (!link_up_(lid)) continue;
        const topo::LinkSpec& l = topology_.link(lid);
        const ServerId wv = l.other_end(ServerId{uv});
        const auto w = static_cast<std::size_t>(wv.value);
        const double nd = d + link_weight(l);
        if (nd < dist[w]) {
          dist[w] = nd;
          // Record which neighbor of src this route leaves through.
          first_hop[w] = (u == src) ? wv : first_hop[u];
          pq.push({nd, wv.value});
        }
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      next_hop_[src][dst] = first_hop[dst];
    }
  }
}

}  // namespace rbcast::net
