#include "net/fault_plan.h"

#include "util/assert.h"
#include "util/logging.h"

namespace rbcast::net {

FaultPlan::FaultPlan(sim::Simulator& simulator, Network& network)
    : simulator_(simulator),
      network_(network),
      holds_(network.topology().link_count(), 0) {}

int FaultPlan::holds(LinkId link) const {
  RBCAST_CHECK_ARG(link.valid() &&
                       static_cast<std::size_t>(link.value) < holds_.size(),
                   "unknown link");
  return holds_[static_cast<std::size_t>(link.value)];
}

void FaultPlan::acquire(LinkId link) {
  int& depth = holds_[static_cast<std::size_t>(link.value)];
  if (++depth == 1) {
    RBCAST_INFO("fault: " << link << " down");
    network_.set_link_up(link, false);
  }
}

void FaultPlan::release(LinkId link) {
  int& depth = holds_[static_cast<std::size_t>(link.value)];
  if (depth == 0) return;  // unpaired repair of an operational link
  if (--depth == 0) {
    RBCAST_INFO("fault: " << link << " up");
    network_.set_link_up(link, true);
  }
}

void FaultPlan::link_down_at(sim::TimePoint t, LinkId link) {
  RBCAST_CHECK_ARG(link.valid() &&
                       static_cast<std::size_t>(link.value) < holds_.size(),
                   "unknown link");
  simulator_.at(t, [this, link] { acquire(link); });
}

void FaultPlan::link_up_at(sim::TimePoint t, LinkId link) {
  RBCAST_CHECK_ARG(link.valid() &&
                       static_cast<std::size_t>(link.value) < holds_.size(),
                   "unknown link");
  simulator_.at(t, [this, link] { release(link); });
}

void FaultPlan::outage_window(LinkId link, sim::TimePoint from,
                              sim::TimePoint to) {
  RBCAST_CHECK_ARG(from < to, "outage window must have positive length");
  link_down_at(from, link);
  link_up_at(to, link);
}

void FaultPlan::host_crash_window(HostId host, sim::TimePoint from,
                                  sim::TimePoint to) {
  const LinkId access = network_.topology().host(host).access_link;
  outage_window(access, from, to);
}

void FaultPlan::partition_window(const std::vector<LinkId>& cut,
                                 sim::TimePoint from, sim::TimePoint to) {
  for (LinkId link : cut) outage_window(link, from, to);
}

void FaultPlan::flapping(const std::vector<LinkId>& links,
                         sim::Duration mean_up, sim::Duration mean_down,
                         sim::TimePoint until, const util::RngFactory& rngs) {
  RBCAST_CHECK_ARG(mean_up > 0 && mean_down > 0, "flapping means must be > 0");
  for (LinkId link : links) {
    flappers_.push_back(Flapper{.link = link,
                                .mean_up = mean_up,
                                .mean_down = mean_down,
                                .until = until,
                                .rng = rngs.stream("fault.flap", link.value)});
    flap_next(flappers_.size() - 1, /*currently_up=*/true);
  }
}

void FaultPlan::flap_next(std::size_t flapper_index, bool currently_up) {
  Flapper& f = flappers_[flapper_index];
  const sim::Duration mean = currently_up ? f.mean_up : f.mean_down;
  const sim::Duration phase =
      std::max<sim::Duration>(1, sim::from_seconds(f.rng.exponential(
                                     sim::to_seconds(mean))));
  const sim::TimePoint next = simulator_.now() + phase;
  if (next >= f.until) {
    // End of the flapping schedule: release the hold of an unfinished
    // down-phase so the scenario can quiesce deterministically. (In an
    // up-phase there is nothing to release.)
    if (!currently_up) {
      simulator_.at(f.until, [this, link = f.link] { release(link); });
    }
    return;
  }
  simulator_.at(next, [this, flapper_index, currently_up] {
    Flapper& g = flappers_[flapper_index];
    if (currently_up) {
      acquire(g.link);
    } else {
      release(g.link);
    }
    flap_next(flapper_index, !currently_up);
  });
}

std::vector<LinkId> FaultPlan::trunks_incident_to(
    const topo::Topology& topology, ServerId server) {
  std::vector<LinkId> out;
  for (LinkId lid : topology.trunk_links_of(server)) out.push_back(lid);
  return out;
}

}  // namespace rbcast::net
