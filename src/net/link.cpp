#include "net/link.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::net {

LinkState::LinkState(const topo::LinkSpec& spec, util::Rng rng)
    : spec_(&spec), rng_(rng) {}

LinkState::TxResult LinkState::transmit(std::size_t bytes, int dir,
                                        sim::TimePoint now) {
  RBCAST_ASSERT_MSG(up_, "transmit on a down link");
  RBCAST_ASSERT(dir == 0 || dir == 1);

  TxResult r;
  r.tx_time = spec_->transmission_time(bytes);

  const sim::TimePoint start = std::max(now, next_free_[dir]);
  r.queue_wait = start - now;
  next_free_[dir] = start + r.tx_time;

  if (rng_.chance(spec_->params.loss_probability)) {
    r.copies = 0;  // the wire was busy, but nothing arrives
    return r;
  }
  r.copies = rng_.chance(spec_->params.duplication_probability) ? 2 : 1;

  const sim::Duration base =
      r.queue_wait + r.tx_time + spec_->params.propagation_delay;
  r.arrival_offset[0] = base;
  if (r.copies == 2) {
    // The duplicate trails the original by one extra transmission slot.
    next_free_[dir] += r.tx_time;
    r.arrival_offset[1] = base + r.tx_time;
  }
  return r;
}

}  // namespace rbcast::net
