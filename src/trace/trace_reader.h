// Reading traces back: JSONL parsing and the analysis queries behind the
// rbcast_trace CLI.
//
// The reader understands exactly the flat one-object-per-line format
// JsonlSink writes (schema in PROTOCOL.md) and reconstructs TraceRecords,
// so the write path and the read path share one type. The query layer
// answers the questions an experimenter asks of a finished run:
//
//  * summarize   — record counts per category/event, hosts seen, time
//                  span, delivery/drop totals;
//  * timeline    — everything one host did, in time order;
//  * lineage     — the full causal relay + gap-fill path of one broadcast
//                  sequence number, reconstructed from trace ids;
//  * convergence — the attachment/cycle-break timeline and when the tree
//                  last changed shape.
//
// json_syntax_valid() is a standalone structural JSON checker used to
// verify Chrome/Perfetto exports parse (tests and the CLI's --check).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "trace/trace_sink.h"

namespace rbcast::trace {

// --- parsing ---------------------------------------------------------------

// Parses one JSONL trace line into `out`. Returns false (and sets
// `error`) on malformed input. Unknown top-level keys become fields, so
// the reader tolerates schema extensions.
[[nodiscard]] bool parse_jsonl_line(const std::string& line, TraceRecord* out,
                                    std::string* error);

// Reads a whole JSONL stream; empty lines are skipped. Returns false on
// the first malformed line (error names the line number).
[[nodiscard]] bool read_jsonl(std::istream& is,
                              std::vector<TraceRecord>* out,
                              std::string* error);

// Structural syntax check: `text` must be exactly one valid JSON value
// (the Chrome trace_event export is one JSON array). Rejects trailing
// garbage; does not validate any schema.
[[nodiscard]] bool json_syntax_valid(const std::string& text,
                                     std::string* error);

// Field access helpers (nullptr / fallback when absent or wrong type).
[[nodiscard]] const FieldValue* find_field(const TraceRecord& r,
                                           const std::string& key);
[[nodiscard]] std::int64_t field_int(const TraceRecord& r,
                                     const std::string& key,
                                     std::int64_t fallback = -1);
[[nodiscard]] std::string field_string(const TraceRecord& r,
                                       const std::string& key);

// --- queries ---------------------------------------------------------------

// The head-of-trace manifest record, or nullptr when the trace lacks one.
[[nodiscard]] const TraceRecord* find_manifest(
    const std::vector<TraceRecord>& records);

struct TraceSummary {
  sim::TimePoint first_at{0};
  sim::TimePoint last_at{0};
  std::size_t records{0};
  std::size_t host_count{0};
  std::map<std::string, std::size_t> by_category;
  // "category/event" -> count.
  std::map<std::string, std::size_t> by_event;
  std::size_t deliveries{0};  // protocol first receipts
  std::size_t drops{0};       // network drops
  std::uint64_t max_seq{0};   // highest sequence number seen
};

[[nodiscard]] TraceSummary summarize(const std::vector<TraceRecord>& records);

// Records on host `host`'s track, in trace order.
[[nodiscard]] std::vector<TraceRecord> timeline(
    const std::vector<TraceRecord>& records, std::int32_t host);

// One hop (or protocol event) in the life of a traced broadcast message.
struct LineageStep {
  sim::TimePoint at{0};
  std::string event;  // host_send / deliver / drop / delivered / gapfill-*
  std::int32_t host{-1};  // the acting host (sender, receiver, offerer)
  std::int32_t peer{-1};  // counterpart host, -1 when none
  std::string detail;     // message kind or drop reason
};

// Every record about sequence number `seq` — network hops carrying its
// trace id plus protocol delivered/gap-fill events — in time order.
[[nodiscard]] std::vector<LineageStep> lineage(
    const std::vector<TraceRecord>& records, std::uint64_t seq);

// True when the delivery edges in `steps` connect `source` to every host
// in `hosts` (the lineage reaches the whole network).
[[nodiscard]] bool lineage_covers(const std::vector<LineageStep>& steps,
                                  std::int32_t source,
                                  const std::vector<std::int32_t>& hosts);

struct ConvergenceTimeline {
  std::size_t attaches{0};
  std::size_t detaches{0};
  std::size_t cycles_broken{0};
  std::size_t attach_timeouts{0};
  // Time of the last event that changed tree shape (attach/detach/cycle);
  // 0 when the trace has none.
  sim::TimePoint last_change_at{0};
};

[[nodiscard]] ConvergenceTimeline convergence_timeline(
    const std::vector<TraceRecord>& records);

// --- sim-vs-real divergence -------------------------------------------------
//
// Aligns two traces of the same topology/workload — canonically one
// simulated and one over real sockets — on what the protocol promised:
// which sequence numbers each host delivered. Timings are reported but
// never compared (virtual and wall clocks are different animals); the
// verdict is about delivery sets.

// Per-host protocol/delivered sets extracted from one trace.
struct DeliveryMap {
  // host -> delivered sequence numbers (first receipts).
  std::map<std::int32_t, std::vector<std::uint64_t>> by_host;
  std::uint64_t max_seq{0};
  sim::TimePoint last_delivery_at{0};
};

[[nodiscard]] DeliveryMap delivery_map(
    const std::vector<TraceRecord>& records);

struct TraceComparison {
  bool match{false};  // same host set, identical delivery set per host
  DeliveryMap left;
  DeliveryMap right;
  ConvergenceTimeline left_tree;
  ConvergenceTimeline right_tree;
  // Human-readable divergences (missing hosts, per-host set differences),
  // capped so a totally different pair of traces stays readable.
  std::vector<std::string> divergences;
};

[[nodiscard]] TraceComparison compare_traces(
    const std::vector<TraceRecord>& left,
    const std::vector<TraceRecord>& right);

// --- rendering (shared by rbcast_trace and tests) --------------------------

// One human-readable line per record: "[12.000s] h3 net/deliver ...".
void print_record(std::ostream& os, const TraceRecord& r);
void print_summary(std::ostream& os, const std::vector<TraceRecord>& records);
void print_lineage(std::ostream& os, const std::vector<LineageStep>& steps,
                   std::uint64_t seq);
void print_convergence(std::ostream& os,
                       const std::vector<TraceRecord>& records);
// Labels name the two traces in the report (e.g. file paths).
void print_comparison(std::ostream& os, const TraceComparison& cmp,
                      const std::string& left_label,
                      const std::string& right_label);

}  // namespace rbcast::trace
