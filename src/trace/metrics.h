// Metrics collection: everything the evaluation section measures.
//
// Two sources feed one registry:
//  * the network (via NetObserver) — transmission counts and bytes, split
//    by message kind, link class and intra/inter-cluster crossing; drops;
//    per-server queue backlogs (the congestion experiment);
//  * the application callbacks (wired by the harness) — broadcast times
//    and first-delivery times per (host, seq), giving delivery latency and
//    completeness.
//
// The paper's Section 5 cost metric — "the number of inter-cluster
// host-to-host transmissions" — is the `send.intercluster.*` counter
// family: a host-to-host send whose endpoints sit in different
// ground-truth clusters at the moment of sending.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/seq_set.h"
#include "util/stats.h"

namespace rbcast::trace {

using util::Seq;

class Metrics : public net::NetObserver {
 public:
  Metrics(sim::Simulator& simulator, net::Network& network);

  // Registers itself as the network observer.
  void attach();

  // --- NetObserver -------------------------------------------------------
  void on_host_send(const net::Delivery& d) override;
  void on_deliver(const net::Delivery& d) override;
  void on_drop(const net::Delivery& d, net::DropReason reason) override;
  void on_link_transmit(LinkId link, const net::Delivery& d) override;
  void on_queue_backlog(ServerId server, LinkId link,
                        sim::Duration backlog) override;

  // --- application-level hooks -----------------------------------------

  void record_broadcast(Seq seq);
  void record_delivery(HostId host, Seq seq);

  // --- queries ------------------------------------------------------------

  [[nodiscard]] const util::CounterMap& counters() const { return counters_; }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    return counters_.get(name);
  }

  // Sum over a counter family: every counter whose name starts with
  // `prefix`.
  [[nodiscard]] std::uint64_t counter_prefix_sum(
      const std::string& prefix) const;

  // Data-family transmissions crossing cluster boundaries (the paper's
  // cost metric). Includes first sends, forwards, gap fills and baseline
  // retransmissions; excludes control traffic.
  [[nodiscard]] std::uint64_t intercluster_data_sends() const;
  // Control-family equivalents (info/attach/detach/ack).
  [[nodiscard]] std::uint64_t intercluster_control_sends() const;

  // First-delivery latency (seconds) of message `seq` at `host`; negative
  // when not delivered.
  [[nodiscard]] double delivery_latency(HostId host, Seq seq) const;

  // Latencies of all recorded first deliveries, in seconds.
  [[nodiscard]] util::Samples all_latencies() const;
  // Latencies restricted to sequence numbers in [lo, hi].
  [[nodiscard]] util::Samples latencies_between(Seq lo, Seq hi) const;

  // How many hosts have received `seq` so far (including the source).
  [[nodiscard]] std::size_t delivered_count(Seq seq) const;

  // Queue congestion (serialization backlog, seconds) at one server.
  [[nodiscard]] const util::Accumulator& queue_backlog(ServerId server) const;
  [[nodiscard]] double max_queue_backlog_seconds(ServerId server) const;

  // Total wire time consumed on a link (both directions) since the last
  // reset — the numerator of its utilization.
  [[nodiscard]] sim::Duration link_busy_time(LinkId link) const;
  // Busy fraction of a link since the last reset (0 when no time passed).
  [[nodiscard]] double link_utilization(LinkId link) const;
  // The busiest trunk by utilization (kNoLink when nothing was sent).
  [[nodiscard]] LinkId busiest_trunk() const;

  // Completion curve: for each bucket boundary t (multiples of
  // `bucket_seconds` since time 0 up to the last recorded delivery),
  // the fraction of all expected (host, seq) deliveries — `host_count`
  // per broadcast message — that had happened by t. The time series the
  // partition experiment plots.
  [[nodiscard]] std::vector<std::pair<double, double>> completion_curve(
      double bucket_seconds, std::size_t host_count) const;

  // --- CSV export (scripting / plotting) -----------------------------------

  // name,value for every counter.
  void write_counters_csv(std::ostream& os) const;
  // seq,host,latency_seconds for every recorded first delivery.
  void write_latencies_csv(std::ostream& os) const;

  // Clears everything (measurement-window scoping in benches).
  void reset();

 private:
  [[nodiscard]] bool crosses_clusters(HostId a, HostId b);
  [[nodiscard]] static bool is_data_kind(const std::string& kind);

  sim::Simulator& simulator_;
  net::Network& network_;

  util::CounterMap counters_;
  // Ordered: busiest_trunk() iterates link_busy_ and breaks utilization
  // ties by iteration order, which must be stable across runs.
  std::map<ServerId, util::Accumulator> backlog_;
  std::map<LinkId, sim::Duration> link_busy_;
  sim::TimePoint window_start_{0};

  std::map<Seq, sim::TimePoint> broadcast_at_;
  std::map<Seq, std::map<HostId, sim::TimePoint>> first_delivery_;

  // Cached ground-truth cluster index, refreshed when links change.
  std::vector<int> cluster_index_;
  std::uint64_t cluster_epoch_{~0ULL};
};

}  // namespace rbcast::trace
