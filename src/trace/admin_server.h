// AdminServer — the node's out-of-band observation socket.
//
// A minimal HTTP/1.1 GET server bound to 127.0.0.1 (never a routable
// address) and driven entirely by util::RealTimeScheduler's poll loop: no
// threads, no blocking calls, so protocol timers and admin requests
// interleave on the one event loop rbcast_node already runs. The node
// registers a handler per path — /metrics (Prometheus text), /status
// (JSON snapshot), /healthz (convergence-aware readiness) — and the
// server does the transport: accept, buffered nonblocking reads with a
// request-size cap and an idle deadline, defensive request-line parsing,
// and chunk-at-a-time nonblocking writes.
//
// Hostile-input contract: a malformed, oversized, slow or half-closed
// request must never take the node down — it is answered with a 4xx/5xx
// or the connection is dropped, and the failure is counted in Stats.
// Handler exceptions become 500s for the same reason.
//
// The admin plane is strictly out of band: it shares no socket, codec or
// state with the protocol's wire format (PROTOCOL.md §13) and only reads
// what the handlers expose.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/real_time_scheduler.h"

namespace rbcast::trace {

class AdminServer {
 public:
  struct Response {
    int status{200};
    std::string content_type{"text/plain; charset=utf-8"};
    std::string body;
  };
  using Handler = std::function<Response()>;

  struct Stats {
    std::uint64_t connections{0};
    std::uint64_t requests{0};      // well-formed GETs routed to a handler
    std::uint64_t bad_requests{0};  // parse failures, caps, non-GET
    std::uint64_t not_found{0};
    std::uint64_t handler_errors{0};  // handler threw -> 500
    std::uint64_t timeouts{0};        // idle connections dropped
  };

  // Binds 127.0.0.1:`port` (0 = ephemeral; read the result back with
  // port()). Throws std::runtime_error when the socket cannot be bound.
  // `scheduler` must outlive this object.
  AdminServer(util::RealTimeScheduler& scheduler, std::uint16_t port);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Registers `handler` for exact-match `path` (query strings are stripped
  // before matching). Re-registering a path replaces the handler.
  void handle(const std::string& path, Handler handler);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

 private:
  struct Conn {
    std::string in;        // bytes read so far (capped)
    std::string out;       // encoded response
    std::size_t written{0};
    bool responding{false};  // request parsed, now draining `out`
    util::EventId idle_timer{};
  };

  void on_acceptable();
  void on_readable(int fd);
  void process_request(int fd, Conn& conn);
  void start_response(int fd, Conn& conn, const Response& response);
  void continue_write(int fd);
  void close_conn(int fd);
  void arm_idle_timer(int fd, Conn& conn);

  util::RealTimeScheduler& scheduler_;
  int listen_fd_{-1};
  std::uint16_t port_{0};
  // Ordered (determinism lint); keyed by connection fd.
  std::map<int, Conn> conns_;
  std::map<std::string, Handler> handlers_;
  Stats stats_;
};

}  // namespace rbcast::trace
