#include "trace/admin_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace rbcast::trace {

namespace {

// A request head larger than this is hostile or broken; drop it with 400
// rather than buffering without bound.
constexpr std::size_t kMaxRequestBytes = 8192;

// Connections idle longer than this (no complete request, or a write the
// peer never drains) are closed — a stuck scraper must not pin memory.
constexpr util::Duration kIdleTimeout = util::seconds(5);

// Write retry cadence when the socket buffer is full (localhost: rare).
constexpr util::Duration kWriteRetryDelay = util::milliseconds(1);

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string encode_response(const AdminServer::Response& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << " "
     << reason_phrase(response.status) << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  return os.str();
}

AdminServer::Response plain(int status, const std::string& body) {
  AdminServer::Response r;
  r.status = status;
  r.body = body;
  return r;
}

}  // namespace

AdminServer::AdminServer(util::RealTimeScheduler& scheduler,
                         std::uint16_t port)
    : scheduler_(scheduler) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("admin: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0 || !set_nonblocking(listen_fd_)) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + error);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: getsockname failed: " + error);
  }
  port_ = ntohs(bound.sin_port);

  scheduler_.watch_fd(listen_fd_, [this] { on_acceptable(); });
}

AdminServer::~AdminServer() {
  while (!conns_.empty()) close_conn(conns_.begin()->first);
  if (listen_fd_ >= 0) {
    scheduler_.unwatch_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void AdminServer::handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void AdminServer::on_acceptable() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error: poll again
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    ++stats_.connections;
    Conn& conn = conns_[fd];
    arm_idle_timer(fd, conn);
    scheduler_.watch_fd(fd, [this, fd] { on_readable(fd); });
  }
}

void AdminServer::arm_idle_timer(int fd, Conn& conn) {
  if (conn.idle_timer.valid()) scheduler_.cancel(conn.idle_timer);
  conn.idle_timer = scheduler_.after(kIdleTimeout, [this, fd] {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    it->second.idle_timer = util::EventId{};
    ++stats_.timeouts;
    close_conn(fd);
  });
}

void AdminServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.idle_timer.valid()) scheduler_.cancel(it->second.idle_timer);
  conns_.erase(it);
  scheduler_.unwatch_fd(fd);
  ::close(fd);
}

void AdminServer::on_readable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  char buf[2048];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      // Bytes after the response started draining are ignored (we answer
      // the first request only, HTTP/1.0-style), but must still be read so
      // poll() does not spin on a readable fd.
      if (!conn.responding) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxRequestBytes) {
          ++stats_.bad_requests;
          start_response(fd, conn, plain(400, "request too large\n"));
          return;
        }
      }
      continue;
    }
    if (n == 0) {  // peer closed its half
      if (!conn.responding) {
        // EOF without a complete request head: try to parse what arrived
        // (curl-less probes send bare "GET /path\n" lines), else drop.
        process_request(fd, conn);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // drained
    close_conn(fd);  // hard error
    return;
  }

  if (!conn.responding && conn.in.find("\r\n\r\n") != std::string::npos) {
    process_request(fd, conn);
  }
}

void AdminServer::process_request(int fd, Conn& conn) {
  // Request line: METHOD SP PATH [SP VERSION]. Everything else in the head
  // is ignored — no header has any effect on this server.
  const std::size_t eol = conn.in.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? conn.in : conn.in.substr(0, eol);

  const std::size_t method_end = line.find(' ');
  if (line.empty() || method_end == std::string::npos) {
    ++stats_.bad_requests;
    if (line.empty()) {
      close_conn(fd);  // EOF before any bytes: nothing to answer
      return;
    }
    start_response(fd, conn, plain(400, "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, method_end);
  std::size_t path_end = line.find(' ', method_end + 1);
  if (path_end == std::string::npos) path_end = line.size();
  std::string path = line.substr(method_end + 1, path_end - method_end - 1);
  if (const std::size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);
  }

  if (method != "GET") {
    ++stats_.bad_requests;
    start_response(fd, conn, plain(405, "only GET is supported\n"));
    return;
  }
  if (path.empty() || path[0] != '/') {
    ++stats_.bad_requests;
    start_response(fd, conn, plain(400, "malformed path\n"));
    return;
  }

  const auto handler = handlers_.find(path);
  if (handler == handlers_.end()) {
    ++stats_.not_found;
    std::string known = "not found; paths:";
    for (const auto& [p, h] : handlers_) known += " " + p;
    start_response(fd, conn, plain(404, known + "\n"));
    return;
  }

  ++stats_.requests;
  try {
    start_response(fd, conn, handler->second());
  } catch (const std::exception& e) {
    ++stats_.handler_errors;
    start_response(fd, conn,
                   plain(500, std::string("handler failed: ") + e.what() +
                                  "\n"));
  } catch (...) {
    ++stats_.handler_errors;
    start_response(fd, conn, plain(500, "handler failed\n"));
  }
}

void AdminServer::start_response(int fd, Conn& conn,
                                 const Response& response) {
  conn.responding = true;
  conn.out = encode_response(response);
  conn.written = 0;
  arm_idle_timer(fd, conn);  // the drain gets a fresh deadline
  continue_write(fd);
}

void AdminServer::continue_write(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (conn.written < conn.out.size()) {
    const ssize_t n = ::write(fd, conn.out.data() + conn.written,
                              conn.out.size() - conn.written);
    if (n > 0) {
      conn.written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: retry on a short timer instead of teaching the
      // scheduler POLLOUT — admin responses are small and localhost-fast.
      scheduler_.after(kWriteRetryDelay, [this, fd] { continue_write(fd); });
      return;
    }
    close_conn(fd);  // peer vanished mid-response
    return;
  }
  close_conn(fd);  // fully written: Connection: close semantics
}

}  // namespace rbcast::trace
