// Structured protocol event log.
//
// Records every protocol-level event (attachments, detachments, cycle
// breaks, timeouts, rejections, deliveries) with its virtual timestamp.
// Tests assert on event sequences; examples dump human-readable timelines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol_observer.h"
#include "sim/time.h"
#include "trace/trace_sink.h"
#include "util/scheduler.h"

namespace rbcast::trace {

enum class EventType {
  kAttachRequested,
  kAttached,
  kDetached,
  kParentTimeout,  // a kDetached caused by liveness expiry
  kCycleBroken,
  kAttachTimeout,
  kNewMaxRejected,
  kDelivered,
  // Gap filling (Section 4.4) — makes the PR-3 suppression logic
  // observable: offers are planner-driven redeliveries, accepts are gaps
  // actually closed, relays are accepted fills forwarded onward.
  kGapFillOffered,
  kGapFillAccepted,
  kGapFillRelayed,
};

[[nodiscard]] const char* to_string(EventType type);

struct Event {
  sim::TimePoint at{0};
  EventType type{EventType::kDelivered};
  HostId host;          // the host the event happened on
  HostId peer{kNoHost}; // counterpart (parent/candidate/sender), if any
  util::Seq seq{0};     // for deliveries / rejections
  std::string detail;   // e.g. the attachment rule

  [[nodiscard]] std::string describe() const;
};

class EventLog final : public core::ProtocolObserver {
 public:
  // Takes any clock source — sim::Simulator for simulated runs,
  // util::RealTimeScheduler for rbcast_node — so both backends stamp
  // events identically.
  explicit EventLog(util::Scheduler& clock) : clock_(clock) {}

  // --- ProtocolObserver -----------------------------------------------
  void on_attach_requested(HostId host, HostId candidate,
                           const std::string& rule) override;
  void on_attached(HostId host, HostId parent) override;
  void on_detached(HostId host, HostId old_parent, bool timeout) override;
  void on_cycle_broken(HostId host) override;
  void on_attach_timeout(HostId host, HostId candidate) override;
  void on_new_max_rejected(HostId host, HostId from, util::Seq seq) override;
  void on_delivered(HostId host, util::Seq seq) override;
  void on_gapfill_offered(HostId host, HostId to, util::Seq seq) override;
  void on_gapfill_accepted(HostId host, HostId from, util::Seq seq) override;
  void on_gapfill_relayed(HostId host, HostId to, util::Seq seq) override;

  // --- queries -------------------------------------------------------------

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t count(EventType type) const;
  [[nodiscard]] std::vector<Event> events_of(HostId host) const;
  // Events in [from, to), any type.
  [[nodiscard]] std::vector<Event> between(sim::TimePoint from,
                                           sim::TimePoint to) const;

  // Human-readable timeline; deliveries are summarized unless
  // `include_deliveries`.
  void dump(std::ostream& os, bool include_deliveries = false) const;

  // Order-sensitive FNV-1a digest over every recorded event (timestamp,
  // type, host, peer, seq, detail). Two runs of the same seed must produce
  // identical digests — the runtime half of the determinism gate
  // (rbcast_check --determinism-check).
  [[nodiscard]] std::uint64_t digest() const;

  void clear() { events_.clear(); }

  // Mirrors every recorded event to `sink` as a "protocol" TraceRecord
  // (nullptr to stop). Purely additive: the in-memory log, queries and
  // digest() are unchanged by mirroring.
  void set_sink(TraceSink* sink) { sink_ = sink; }

 private:
  void push(EventType type, HostId host, HostId peer, util::Seq seq,
            std::string detail);

  util::Scheduler& clock_;
  std::vector<Event> events_;
  TraceSink* sink_{nullptr};
};

}  // namespace rbcast::trace
