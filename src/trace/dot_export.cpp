#include "trace/dot_export.h"

#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace rbcast::trace {

void write_parent_graph_dot(
    std::ostream& os, const std::vector<const core::BroadcastHost*>& hosts,
    const net::Network& network, HostId source) {
  RBCAST_CHECK_ARG(!hosts.empty(), "no hosts to export");
  const auto clusters = network.clusters();
  const auto cluster_of = network.host_cluster_index();

  os << "digraph parent_graph {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, style=filled, fillcolor=white];\n";

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    os << "  subgraph cluster_" << c << " {\n"
       << "    label=\"cluster " << c << "\";\n"
       << "    style=rounded;\n";
    for (HostId h : clusters[c]) {
      const auto* host = hosts[static_cast<std::size_t>(h.value)];
      const HostId parent = host->parent();
      const bool is_leader =
          !parent.valid() ||
          cluster_of[static_cast<std::size_t>(parent.value)] !=
              static_cast<int>(c);
      os << "    h" << h.value << " [label=\"h" << h.value;
      if (h == source) os << "\\n(source)";
      os << "\\nINFO max " << host->info().max_seq() << '"';
      if (h == source) {
        os << ", fillcolor=gold";
      } else if (is_leader) {
        os << ", fillcolor=lightblue";  // the paper's shaded leader boxes
      }
      os << "];\n";
    }
    os << "  }\n";
  }

  for (const auto* host : hosts) {
    const HostId parent = host->parent();
    if (!parent.valid()) continue;
    const bool crosses =
        cluster_of[static_cast<std::size_t>(host->self().value)] !=
        cluster_of[static_cast<std::size_t>(parent.value)];
    os << "  h" << host->self().value << " -> h" << parent.value;
    if (crosses) os << " [style=dashed, color=red]";
    os << ";\n";
  }
  os << "}\n";
}

void write_topology_dot(std::ostream& os, const net::Network& network) {
  const auto& topology = network.topology();
  os << "graph topology {\n"
     << "  layout=neato;\n"
     << "  overlap=false;\n"
     << "  node [fontsize=10];\n";
  for (const auto& server : topology.servers()) {
    os << "  s" << server.id.value << " [shape=circle];\n";
  }
  for (const auto& host : topology.hosts()) {
    os << "  h" << host.id.value << " [shape=box];\n"
       << "  h" << host.id.value << " -- s" << host.server.value
       << " [style=dotted];\n";
  }
  for (const auto& link : topology.links()) {
    if (link.is_access) continue;
    os << "  s" << link.a.value << " -- s" << link.b.value;
    const bool down = !network.link_up(link.id);
    if (link.link_class == topo::LinkClass::kExpensive) {
      os << " [style=dashed" << (down ? ", color=red" : "") << "]";
    } else if (down) {
      os << " [color=red]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string parent_graph_dot(
    const std::vector<const core::BroadcastHost*>& hosts,
    const net::Network& network, HostId source) {
  std::ostringstream os;
  write_parent_graph_dot(os, hosts, network, source);
  return os.str();
}

std::string topology_dot(const net::Network& network) {
  std::ostringstream os;
  write_topology_dot(os, network);
  return os.str();
}

}  // namespace rbcast::trace
