#include "trace/trace_reader.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <iterator>
#include <ostream>
#include <set>
#include <sstream>

namespace rbcast::trace {

namespace {

// Minimal recursive-descent JSON scanner. Two clients: the JSONL record
// parser (flat objects, typed leaves only) and the structural validator
// (arbitrary nesting, value shape ignored).
class Cursor {
 public:
  explicit Cursor(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  [[nodiscard]] bool eof() const { return i_ >= s_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : s_[i_]; }
  char take() { return eof() ? '\0' : s_[i_++]; }

  bool expect(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(i_, n, word) != 0) return false;
    i_ += n;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return i_; }

 private:
  const std::string& s_;
  std::size_t i_{0};
};

void append_utf8(std::string* out, unsigned cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool parse_string(Cursor& c, std::string* out, std::string* error) {
  if (!c.expect('"')) {
    *error = "expected string";
    return false;
  }
  out->clear();
  while (true) {
    if (c.eof()) {
      *error = "unterminated string";
      return false;
    }
    const char ch = c.take();
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    const char esc = c.take();
    switch (esc) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case '/':
        out->push_back('/');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case 'u': {
        unsigned cp = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.take();
          if (!std::isxdigit(static_cast<unsigned char>(h))) {
            *error = "bad \\u escape";
            return false;
          }
          cp = cp * 16 + static_cast<unsigned>(
                             std::isdigit(static_cast<unsigned char>(h))
                                 ? h - '0'
                                 : std::tolower(h) - 'a' + 10);
        }
        append_utf8(out, cp);
        break;
      }
      default:
        *error = "bad escape";
        return false;
    }
  }
}

bool parse_number(Cursor& c, FieldValue* out, std::string* error) {
  std::string digits;
  bool is_double = false;
  if (c.peek() == '-') digits.push_back(c.take());
  if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
    *error = "expected number";
    return false;
  }
  while (std::isdigit(static_cast<unsigned char>(c.peek()))) {
    digits.push_back(c.take());
  }
  const std::size_t int_digits = digits.size() - (digits[0] == '-' ? 1 : 0);
  if (int_digits > 1 && digits[digits.size() - int_digits] == '0') {
    *error = "leading zero";
    return false;
  }
  if (c.peek() == '.') {
    is_double = true;
    digits.push_back(c.take());
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
      *error = "bad fraction";
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) {
      digits.push_back(c.take());
    }
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    is_double = true;
    digits.push_back(c.take());
    if (c.peek() == '+' || c.peek() == '-') digits.push_back(c.take());
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) {
      *error = "bad exponent";
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) {
      digits.push_back(c.take());
    }
  }
  try {
    if (is_double) {
      *out = std::stod(digits);
    } else if (digits[0] == '-') {
      *out = static_cast<std::int64_t>(std::stoll(digits));
    } else {
      *out = static_cast<std::uint64_t>(std::stoull(digits));
    }
  } catch (const std::exception&) {
    *error = "number out of range";
    return false;
  }
  return true;
}

// A scalar JSON value (what the JSONL schema allows as field values).
bool parse_scalar(Cursor& c, FieldValue* out, std::string* error) {
  c.skip_ws();
  const char ch = c.peek();
  if (ch == '"') {
    std::string s;
    if (!parse_string(c, &s, error)) return false;
    *out = std::move(s);
    return true;
  }
  if (ch == 't') {
    if (!c.literal("true")) {
      *error = "bad literal";
      return false;
    }
    *out = true;
    return true;
  }
  if (ch == 'f') {
    if (!c.literal("false")) {
      *error = "bad literal";
      return false;
    }
    *out = false;
    return true;
  }
  if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
    return parse_number(c, out, error);
  }
  *error = "unsupported value (JSONL fields are scalars)";
  return false;
}

// Arbitrary JSON value, structure only (validator). Depth-capped so a
// hostile file cannot blow the stack.
bool skip_value(Cursor& c, int depth, std::string* error) {
  if (depth > 64) {
    *error = "nesting too deep";
    return false;
  }
  c.skip_ws();
  const char ch = c.peek();
  if (ch == '{') {
    c.take();
    c.skip_ws();
    if (c.expect('}')) return true;
    while (true) {
      c.skip_ws();
      std::string key;
      if (!parse_string(c, &key, error)) return false;
      c.skip_ws();
      if (!c.expect(':')) {
        *error = "expected ':'";
        return false;
      }
      if (!skip_value(c, depth + 1, error)) return false;
      c.skip_ws();
      if (c.expect(',')) continue;
      if (c.expect('}')) return true;
      *error = "expected ',' or '}'";
      return false;
    }
  }
  if (ch == '[') {
    c.take();
    c.skip_ws();
    if (c.expect(']')) return true;
    while (true) {
      if (!skip_value(c, depth + 1, error)) return false;
      c.skip_ws();
      if (c.expect(',')) continue;
      if (c.expect(']')) return true;
      *error = "expected ',' or ']'";
      return false;
    }
  }
  if (ch == 'n') {
    if (!c.literal("null")) {
      *error = "bad literal";
      return false;
    }
    return true;
  }
  FieldValue scratch;
  return parse_scalar(c, &scratch, error);
}

std::int64_t to_int(const FieldValue& v, std::int64_t fallback) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    return static_cast<std::int64_t>(*u);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

void write_field_value(std::ostream& os, const FieldValue& value) {
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else {
          os << v;
        }
      },
      value);
}

}  // namespace

// --- parsing ---------------------------------------------------------------

bool parse_jsonl_line(const std::string& line, TraceRecord* out,
                      std::string* error) {
  Cursor c(line);
  c.skip_ws();
  if (!c.expect('{')) {
    *error = "expected '{'";
    return false;
  }
  *out = TraceRecord{};
  bool first = true;
  while (true) {
    c.skip_ws();
    if (c.expect('}')) break;
    if (!first && !c.expect(',')) {
      *error = "expected ','";
      return false;
    }
    c.skip_ws();
    // A leading comma before the first pair (or after the last) is
    // malformed; parse_string reports it as "expected string".
    std::string key;
    if (!parse_string(c, &key, error)) return false;
    c.skip_ws();
    if (!c.expect(':')) {
      *error = "expected ':'";
      return false;
    }
    FieldValue value;
    if (!parse_scalar(c, &value, error)) return false;
    first = false;

    if (key == "t") {
      if (std::holds_alternative<std::string>(value) ||
          std::holds_alternative<bool>(value)) {
        *error = "\"t\" must be a number";
        return false;
      }
      out->at = to_int(value, 0);
    } else if (key == "cat") {
      if (const auto* s = std::get_if<std::string>(&value)) {
        out->category = *s;
      } else {
        *error = "\"cat\" must be a string";
        return false;
      }
    } else if (key == "ev") {
      if (const auto* s = std::get_if<std::string>(&value)) {
        out->name = *s;
      } else {
        *error = "\"ev\" must be a string";
        return false;
      }
    } else if (key == "host") {
      if (std::holds_alternative<std::string>(value) ||
          std::holds_alternative<bool>(value)) {
        *error = "\"host\" must be a number";
        return false;
      }
      out->host = HostId{
          static_cast<HostId::value_type>(to_int(value, kNoHost.value))};
    } else {
      out->field(std::move(key), std::move(value));
    }
  }
  c.skip_ws();
  if (!c.eof()) {
    *error = "trailing characters after record";
    return false;
  }
  return true;
}

bool read_jsonl(std::istream& is, std::vector<TraceRecord>* out,
                std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceRecord r;
    std::string line_error;
    if (!parse_jsonl_line(line, &r, &line_error)) {
      std::ostringstream os;
      os << "line " << lineno << ": " << line_error;
      *error = os.str();
      return false;
    }
    out->push_back(std::move(r));
  }
  return true;
}

bool json_syntax_valid(const std::string& text, std::string* error) {
  Cursor c(text);
  std::string local;
  if (!skip_value(c, 0, &local)) {
    std::ostringstream os;
    os << local << " at offset " << c.pos();
    *error = os.str();
    return false;
  }
  c.skip_ws();
  if (!c.eof()) {
    *error = "trailing characters after document";
    return false;
  }
  return true;
}

const FieldValue* find_field(const TraceRecord& r, const std::string& key) {
  for (const auto& [k, v] : r.fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t field_int(const TraceRecord& r, const std::string& key,
                       std::int64_t fallback) {
  const FieldValue* v = find_field(r, key);
  return v != nullptr ? to_int(*v, fallback) : fallback;
}

std::string field_string(const TraceRecord& r, const std::string& key) {
  const FieldValue* v = find_field(r, key);
  if (v == nullptr) return {};
  const auto* s = std::get_if<std::string>(v);
  return s != nullptr ? *s : std::string{};
}

// --- queries ---------------------------------------------------------------

const TraceRecord* find_manifest(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    if (r.category == "manifest") return &r;
  }
  return nullptr;
}

TraceSummary summarize(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  std::set<std::int32_t> hosts;
  bool first = true;
  for (const TraceRecord& r : records) {
    ++s.records;
    if (first || r.at < s.first_at) s.first_at = r.at;
    if (first || r.at > s.last_at) s.last_at = r.at;
    first = false;
    ++s.by_category[r.category];
    ++s.by_event[r.category + "/" + r.name];
    if (r.host.valid()) hosts.insert(r.host.value);
    if (r.category == "protocol" && r.name == "delivered") ++s.deliveries;
    if (r.category == "net" && r.name == "drop") ++s.drops;
    const std::int64_t seq = field_int(r, "seq", -1);
    if (seq > 0) {
      s.max_seq = std::max(s.max_seq, static_cast<std::uint64_t>(seq));
    }
  }
  s.host_count = hosts.size();
  return s;
}

std::vector<TraceRecord> timeline(const std::vector<TraceRecord>& records,
                                  std::int32_t host) {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records) {
    if (r.host.value == host) out.push_back(r);
  }
  return out;
}

std::vector<LineageStep> lineage(const std::vector<TraceRecord>& records,
                                 std::uint64_t seq) {
  std::vector<LineageStep> steps;
  for (const TraceRecord& r : records) {
    const std::int64_t record_seq = field_int(r, "seq", -1);
    if (record_seq < 0 || static_cast<std::uint64_t>(record_seq) != seq) {
      continue;
    }
    LineageStep step;
    step.at = r.at;
    step.event = r.name;
    step.host = r.host.value;
    if (r.category == "net") {
      if (r.name == "host_send") {
        step.peer = static_cast<std::int32_t>(field_int(r, "to", -1));
        step.detail = field_string(r, "kind");
      } else if (r.name == "deliver") {
        step.peer = static_cast<std::int32_t>(field_int(r, "from", -1));
        step.detail = field_string(r, "kind");
      } else if (r.name == "drop") {
        step.peer = static_cast<std::int32_t>(field_int(r, "from", -1));
        step.detail = field_string(r, "reason");
      } else {
        continue;
      }
    } else if (r.category == "protocol") {
      if (r.name != "delivered" && r.name != "gapfill-offered" &&
          r.name != "gapfill-accepted" && r.name != "gapfill-relayed") {
        continue;
      }
      step.peer = static_cast<std::int32_t>(field_int(r, "peer", -1));
    } else {
      continue;
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

bool lineage_covers(const std::vector<LineageStep>& steps,
                    std::int32_t source,
                    const std::vector<std::int32_t>& hosts) {
  std::set<std::int32_t> covered{source};
  // Fixpoint over delivery edges (peer = sender, host = receiver): a
  // single time-ordered pass would also do, but the fixpoint does not
  // depend on that invariant.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const LineageStep& step : steps) {
      if (step.event != "deliver") continue;
      if (covered.contains(step.peer) && !covered.contains(step.host)) {
        covered.insert(step.host);
        grew = true;
      }
    }
  }
  return std::all_of(hosts.begin(), hosts.end(), [&covered](std::int32_t h) {
    return covered.contains(h);
  });
}

ConvergenceTimeline convergence_timeline(
    const std::vector<TraceRecord>& records) {
  ConvergenceTimeline t;
  for (const TraceRecord& r : records) {
    if (r.category != "protocol") continue;
    const bool shape_change = r.name == "attached" || r.name == "detached" ||
                              r.name == "cycle-broken" ||
                              r.name == "parent-timeout";
    if (r.name == "attached") ++t.attaches;
    if (r.name == "detached" || r.name == "parent-timeout") ++t.detaches;
    if (r.name == "cycle-broken") ++t.cycles_broken;
    if (r.name == "attach-timeout") ++t.attach_timeouts;
    if (shape_change) t.last_change_at = std::max(t.last_change_at, r.at);
  }
  return t;
}

// --- sim-vs-real divergence -------------------------------------------------

DeliveryMap delivery_map(const std::vector<TraceRecord>& records) {
  DeliveryMap m;
  for (const TraceRecord& r : records) {
    if (r.category != "protocol" || r.name != "delivered") continue;
    const std::int64_t seq = field_int(r, "seq");
    if (seq < 0 || !r.host.valid()) continue;
    m.by_host[r.host.value].push_back(static_cast<std::uint64_t>(seq));
    m.max_seq = std::max(m.max_seq, static_cast<std::uint64_t>(seq));
    m.last_delivery_at = std::max(m.last_delivery_at, r.at);
  }
  // The verdict compares sets; order of first receipt legitimately differs
  // between a virtual and a wall clock.
  for (auto& [host, seqs] : m.by_host) std::sort(seqs.begin(), seqs.end());
  return m;
}

namespace {

// Renders up to kMaxListed elements of a seq list, then "... (+n more)".
std::string seq_list(const std::vector<std::uint64_t>& seqs) {
  constexpr std::size_t kMaxListed = 8;
  std::ostringstream os;
  for (std::size_t i = 0; i < seqs.size() && i < kMaxListed; ++i) {
    if (i > 0) os << ' ';
    os << seqs[i];
  }
  if (seqs.size() > kMaxListed) {
    os << " ... (+" << (seqs.size() - kMaxListed) << " more)";
  }
  return os.str();
}

}  // namespace

TraceComparison compare_traces(const std::vector<TraceRecord>& left,
                               const std::vector<TraceRecord>& right) {
  constexpr std::size_t kMaxDivergences = 32;
  TraceComparison cmp;
  cmp.left = delivery_map(left);
  cmp.right = delivery_map(right);
  cmp.left_tree = convergence_timeline(left);
  cmp.right_tree = convergence_timeline(right);

  auto note = [&cmp](const std::string& line) {
    if (cmp.divergences.size() < kMaxDivergences) cmp.divergences.push_back(line);
  };

  std::set<std::int32_t> hosts;
  for (const auto& [h, _] : cmp.left.by_host) hosts.insert(h);
  for (const auto& [h, _] : cmp.right.by_host) hosts.insert(h);
  for (const std::int32_t h : hosts) {
    const auto li = cmp.left.by_host.find(h);
    const auto ri = cmp.right.by_host.find(h);
    if (li == cmp.left.by_host.end()) {
      note("h" + std::to_string(h) + ": delivered nothing in left trace");
      continue;
    }
    if (ri == cmp.right.by_host.end()) {
      note("h" + std::to_string(h) + ": delivered nothing in right trace");
      continue;
    }
    if (li->second == ri->second) continue;
    std::vector<std::uint64_t> only_left;
    std::vector<std::uint64_t> only_right;
    std::set_difference(li->second.begin(), li->second.end(),
                        ri->second.begin(), ri->second.end(),
                        std::back_inserter(only_left));
    std::set_difference(ri->second.begin(), ri->second.end(),
                        li->second.begin(), li->second.end(),
                        std::back_inserter(only_right));
    if (!only_left.empty()) {
      note("h" + std::to_string(h) + ": only in left: " + seq_list(only_left));
    }
    if (!only_right.empty()) {
      note("h" + std::to_string(h) +
           ": only in right: " + seq_list(only_right));
    }
    // Duplicates within one trace make the multisets differ even when the
    // symmetric difference is empty (the protocol promises at-most-once).
    if (only_left.empty() && only_right.empty()) {
      note("h" + std::to_string(h) + ": duplicate deliveries differ");
    }
  }
  cmp.match = cmp.divergences.empty() && !hosts.empty();
  if (hosts.empty()) note("neither trace contains a protocol delivery");
  return cmp;
}

void print_comparison(std::ostream& os, const TraceComparison& cmp,
                      const std::string& left_label,
                      const std::string& right_label) {
  auto side = [&os](const char* tag, const std::string& label,
                    const DeliveryMap& m, const ConvergenceTimeline& t) {
    std::size_t total = 0;
    for (const auto& [_, seqs] : m.by_host) total += seqs.size();
    os << tag << ' ' << label << ": " << m.by_host.size() << " hosts, "
       << total << " deliveries, max seq " << m.max_seq
       << ", last delivery at " << sim::to_seconds(m.last_delivery_at)
       << "s\n"
       << tag << " tree: " << t.attaches << " attaches, " << t.detaches
       << " detaches, " << t.cycles_broken
       << " cycles broken, last shape change at "
       << sim::to_seconds(t.last_change_at) << "s\n";
  };
  side("left ", left_label, cmp.left, cmp.left_tree);
  side("right", right_label, cmp.right, cmp.right_tree);
  if (cmp.match) {
    os << "MATCH: every host delivered the same sequence set in both "
          "traces\n";
    return;
  }
  os << "DIVERGED: " << cmp.divergences.size() << " difference"
     << (cmp.divergences.size() == 1 ? "" : "s") << '\n';
  for (const std::string& d : cmp.divergences) os << "  " << d << '\n';
}

// --- rendering --------------------------------------------------------------

void print_record(std::ostream& os, const TraceRecord& r) {
  os << '[' << sim::to_seconds(r.at) << "s] ";
  if (r.host.valid()) {
    os << 'h' << r.host.value;
  } else {
    os << "run";
  }
  os << ' ' << r.category << '/' << r.name;
  for (const auto& [key, value] : r.fields) {
    os << ' ' << key << '=';
    write_field_value(os, value);
  }
  os << '\n';
}

void print_summary(std::ostream& os,
                   const std::vector<TraceRecord>& records) {
  const TraceRecord* manifest = find_manifest(records);
  if (manifest != nullptr) os << manifest_line(*manifest) << '\n';
  const TraceSummary s = summarize(records);
  os << "records: " << s.records << " spanning "
     << sim::to_seconds(s.first_at) << "s.." << sim::to_seconds(s.last_at)
     << "s over " << s.host_count << " hosts\n";
  os << "deliveries: " << s.deliveries << "  drops: " << s.drops
     << "  max seq: " << s.max_seq << '\n';
  for (const auto& [key, n] : s.by_event) {
    os << "  " << key << ": " << n << '\n';
  }
}

void print_lineage(std::ostream& os, const std::vector<LineageStep>& steps,
                   std::uint64_t seq) {
  os << "lineage of seq " << seq << " (" << steps.size() << " events)\n";
  for (const LineageStep& step : steps) {
    os << "  [" << sim::to_seconds(step.at) << "s] h" << step.host << ' '
       << step.event;
    if (step.peer >= 0) {
      const bool inbound = step.event == "deliver";
      os << (inbound ? " <- h" : " -> h") << step.peer;
    }
    if (!step.detail.empty()) os << " (" << step.detail << ')';
    os << '\n';
  }
}

void print_convergence(std::ostream& os,
                       const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    if (r.category != "protocol") continue;
    if (r.name == "delivered" || r.name.rfind("gapfill", 0) == 0) continue;
    print_record(os, r);
  }
  const ConvergenceTimeline t = convergence_timeline(records);
  os << "attaches: " << t.attaches << "  detaches: " << t.detaches
     << "  cycles broken: " << t.cycles_broken
     << "  attach timeouts: " << t.attach_timeouts << '\n';
  os << "tree shape last changed at " << sim::to_seconds(t.last_change_at)
     << "s\n";
}

}  // namespace rbcast::trace
