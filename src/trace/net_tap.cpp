#include "trace/net_tap.h"

namespace rbcast::trace {

namespace {

TraceRecord base(sim::TimePoint at, const char* name, HostId track,
                 const net::Delivery& d) {
  TraceRecord r;
  r.at = at;
  r.category = "net";
  r.name = name;
  r.host = track;
  r.field("kind", d.kind).field("bytes", std::uint64_t{d.bytes});
  if (d.trace_id != 0) {
    r.field("trace_id", d.trace_id)
        .field("seq", net::trace_seq(d.trace_id));
  }
  return r;
}

}  // namespace

void NetTap::on_host_send(const net::Delivery& d) {
  TraceRecord r = base(clock_.now(), "host_send", d.from, d);
  r.field("to", std::int64_t{d.to.value});
  sink_.record(r);
}

void NetTap::on_deliver(const net::Delivery& d) {
  TraceRecord r = base(clock_.now(), "deliver", d.to, d);
  r.field("from", std::int64_t{d.from.value})
      .field("expensive", d.expensive)
      .field("hops", std::int64_t{d.hops})
      .field("flight_us", std::int64_t{clock_.now() - d.sent_at});
  sink_.record(r);
}

void NetTap::on_drop(const net::Delivery& d, net::DropReason reason) {
  TraceRecord r = base(clock_.now(), "drop", d.to, d);
  r.field("from", std::int64_t{d.from.value})
      .field("reason", std::string(net::to_string(reason)));
  sink_.record(r);
}

}  // namespace rbcast::trace
