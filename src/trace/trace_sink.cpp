#include "trace/trace_sink.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "core/config.h"

namespace rbcast::trace {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_value(std::ostream& os, const FieldValue& value) {
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, double>) {
          // Shortest round-trippable form keeps output platform-stable
          // (no locale, fixed precision cap).
          std::ostringstream tmp;
          tmp.precision(12);
          tmp << v;
          os << tmp.str();
        } else if constexpr (std::is_same_v<T, std::string>) {
          write_escaped(os, v);
        } else {
          os << v;
        }
      },
      value);
}

// True when the value is numeric (usable as a Chrome counter arg).
bool numeric(const FieldValue& value) {
  return !std::holds_alternative<std::string>(value);
}

}  // namespace

// --- JsonlSink --------------------------------------------------------------

void JsonlSink::record(const TraceRecord& r) {
  os_ << "{\"t\":" << r.at << ",\"cat\":";
  write_escaped(os_, r.category);
  os_ << ",\"ev\":";
  write_escaped(os_, r.name);
  os_ << ",\"host\":" << r.host.value;
  for (const auto& [key, value] : r.fields) {
    os_ << ',';
    write_escaped(os_, key);
    os_ << ':';
    write_value(os_, value);
  }
  os_ << "}\n";
}

void JsonlSink::close() { os_.flush(); }

// --- ChromeTraceSink --------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) { os_ << "[\n"; }

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::begin_event() {
  if (!first_) os_ << ",\n";
  first_ = false;
}

void ChromeTraceSink::name_track(int tid, const std::string& name) {
  if (std::find(named_tracks_.begin(), named_tracks_.end(), tid) !=
      named_tracks_.end()) {
    return;
  }
  named_tracks_.push_back(tid);
  begin_event();
  os_ << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
      << R"(,"args":{"name":)";
  write_escaped(os_, name);
  os_ << "}}";
}

void ChromeTraceSink::record(const TraceRecord& r) {
  if (closed_) return;
  // Track 0 carries run-global records; host h<N> rides track N+1.
  const int tid = r.host.valid() ? r.host.value + 1 : 0;

  if (r.category == "manifest") {
    begin_event();
    os_ << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":)";
    std::ostringstream label;
    label << "rbcast";
    for (const auto& [key, value] : r.fields) {
      if (key == "topology" || key == "seed") {
        label << ' ' << key << '=';
        std::visit([&label](const auto& v) { label << v; }, value);
      }
    }
    write_escaped(os_, label.str());
    os_ << "}}";
  }
  name_track(tid, r.host.valid() ? "h" + std::to_string(r.host.value)
                                 : "run");

  if (r.category == "metric") {
    // One counter event per record; numeric fields become series.
    begin_event();
    os_ << R"({"name":)";
    write_escaped(os_, r.name);
    os_ << R"(,"cat":"metric","ph":"C","ts":)" << r.at
        << R"(,"pid":1,"args":{)";
    bool first_field = true;
    for (const auto& [key, value] : r.fields) {
      if (!numeric(value)) continue;
      if (!first_field) os_ << ',';
      first_field = false;
      write_escaped(os_, key);
      os_ << ':';
      write_value(os_, value);
    }
    os_ << "}}";
    return;
  }

  begin_event();
  os_ << R"({"name":)";
  write_escaped(os_, r.name);
  os_ << R"(,"cat":)";
  write_escaped(os_, r.category);
  os_ << R"(,"ph":"i","s":"t","ts":)" << r.at << R"(,"pid":1,"tid":)" << tid
      << R"(,"args":{)";
  bool first_field = true;
  for (const auto& [key, value] : r.fields) {
    if (!first_field) os_ << ',';
    first_field = false;
    write_escaped(os_, key);
    os_ << ':';
    write_value(os_, value);
  }
  os_ << "}}";
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "\n]\n";
  os_.flush();
}

// --- run manifest ---------------------------------------------------------

const char* build_version() {
#ifdef RBCAST_GIT_DESCRIBE
  return RBCAST_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string describe_config(const core::Config& config) {
  std::ostringstream os;
  os << "attach_period=" << sim::to_seconds(config.attach_period)
     << "s info_intra=" << sim::to_seconds(config.info_period_intra)
     << "s info_inter=" << sim::to_seconds(config.info_period_inter)
     << "s gapfill_neighbor=" << sim::to_seconds(config.gapfill_period_neighbor)
     << "s gapfill_far=" << sim::to_seconds(config.gapfill_period_far)
     << "s parent_timeout=" << sim::to_seconds(config.parent_timeout)
     << "s suppress=" << sim::to_seconds(config.gapfill_suppress_period)
     << "s burst=" << config.gapfill_burst
     << " nonneighbor=" << (config.nonneighbor_gapfill ? 1 : 0)
     << " pruning=" << (config.enable_pruning ? 1 : 0)
     << " piggyback=" << (config.piggyback_info ? 1 : 0)
     << " data_bytes=" << config.data_bytes;
  return os.str();
}

TraceRecord run_manifest(std::uint64_t seed, const std::string& topology,
                         const std::string& protocol,
                         const std::string& config) {
  TraceRecord r;
  r.at = 0;
  r.category = "manifest";
  r.name = "run";
  r.field("seed", seed)
      .field("topology", topology)
      .field("protocol", protocol)
      .field("config", config)
      .field("build", std::string(build_version()))
      .field("schema", std::int64_t{1});
  return r;
}

std::string manifest_line(const TraceRecord& manifest) {
  std::ostringstream os;
  os << "manifest:";
  for (const auto& [key, value] : manifest.fields) {
    os << ' ' << key << '=';
    std::visit(
        [&os](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, bool>) {
            os << (v ? "true" : "false");
          } else {
            os << v;
          }
        },
        value);
  }
  return os.str();
}

}  // namespace rbcast::trace
