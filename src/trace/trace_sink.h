// Structured trace export: one stream of timestamped records, many
// backends.
//
// Everything observable — protocol events (trace::EventLog), network
// events (trace::NetTap), periodic metric samples (trace::MetricSampler)
// and the run manifest — flows through a TraceSink as flat TraceRecords
// carrying the virtual timestamp, a category, an event name, the host
// track and typed key/value fields. Two backends ship:
//
//  * JsonlSink — one JSON object per line; the stable machine-readable
//    format read back by trace::TraceReader and the rbcast_trace CLI
//    (schema documented in PROTOCOL.md);
//  * ChromeTraceSink — the Chrome/Perfetto trace_event JSON array format
//    (load in ui.perfetto.dev or chrome://tracing); per-host tracks via
//    tid, metric samples as counter tracks.
//
// Determinism contract: records carry only virtual time and run
// parameters — never wall-clock time — so a replay of the same seed and
// topology produces byte-identical output (verified by a ctest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace rbcast::core {
struct Config;
}  // namespace rbcast::core

namespace rbcast::trace {

// Typed field value; serialized unquoted (numbers, bools) or as an
// escaped JSON string.
using FieldValue =
    std::variant<std::int64_t, std::uint64_t, double, bool, std::string>;

struct TraceRecord {
  sim::TimePoint at{0};
  // Record family: "manifest", "protocol", "net", "metric".
  std::string category;
  // Event name within the family ("attached", "host_send", "latency"...).
  std::string name;
  // The track the record belongs to; kNoHost = run-global.
  HostId host{kNoHost};
  std::vector<std::pair<std::string, FieldValue>> fields;

  TraceRecord& field(std::string key, FieldValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
  // Finalizes the output (closing brackets, stream flush). Idempotent;
  // backends also close on destruction.
  virtual void close() {}
};

// --- backends --------------------------------------------------------------

// One JSON object per line:
//   {"t":<us>,"cat":"...","ev":"...","host":<id|-1>, <fields...>}
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void record(const TraceRecord& r) override;
  void close() override;

 private:
  std::ostream& os_;
};

// Chrome trace_event JSON array. Protocol/net records become instant
// events ("ph":"i") on per-host tracks; metric records become counter
// events ("ph":"C"); the manifest becomes process metadata. Host tracks
// are named h<N> via thread_name metadata emitted on first use.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() override;
  void record(const TraceRecord& r) override;
  void close() override;

 private:
  void begin_event();
  void name_track(int tid, const std::string& name);

  std::ostream& os_;
  bool closed_{false};
  bool first_{true};
  std::vector<int> named_tracks_;
};

// Fans one record stream out to several sinks (e.g. JSONL + Chrome from
// one run). Sinks are borrowed.
class MultiSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void record(const TraceRecord& r) override {
    for (TraceSink* s : sinks_) s->record(r);
  }
  void close() override {
    for (TraceSink* s : sinks_) s->close();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

// --- run manifest ---------------------------------------------------------

// The version string baked in at configure time (`git describe
// --always --dirty`), or "unknown" outside a git checkout.
[[nodiscard]] const char* build_version();

// Compact single-line summary of the protocol tunables (periods in
// seconds, toggles), for the manifest and rbcast_sim stdout.
[[nodiscard]] std::string describe_config(const core::Config& config);

// The record every trace starts with: everything needed to reproduce the
// run (seed, topology, protocol, config, build). Deterministic — carries
// no wall-clock timestamp.
[[nodiscard]] TraceRecord run_manifest(std::uint64_t seed,
                                       const std::string& topology,
                                       const std::string& protocol,
                                       const std::string& config);

// Human-readable one-liner of the same manifest (rbcast_sim stdout).
[[nodiscard]] std::string manifest_line(const TraceRecord& manifest);

}  // namespace rbcast::trace
