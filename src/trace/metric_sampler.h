// MetricSampler — periodic metric time series for a running experiment.
//
// Experiments previously reported end-of-run totals only; the sampler
// turns the same sources into curves over virtual time, emitted as
// "metric" TraceRecords every `period`:
//
//  * "counters"  — per-counter deltas since the previous sample (only
//    counters that moved), so rates are directly visible;
//  * "backlog"   — the most recent serialization backlog observed per
//    server (seconds), via its own NetObserver hook (install through a
//    net::NetObserverFanout next to trace::Metrics);
//  * "latency"   — delivery-latency distribution so far: count, mean,
//    p50/p95/p99 (exact, from trace::Metrics samples) plus cumulative
//    util::Histogram bucket counts (le_<bound> fields);
//  * "tree"      — protocol tree shape (depth, cluster-leader count,
//    orphan count) when a TreeShapeFn is supplied (paper protocol only);
//  * "registry"  — counter deltas and gauge values from an attached
//    util::MetricsRegistry (set_registry), which is how transport-level
//    stats (coalescer flushes, decode errors...) reach the time series
//    without the sampler knowing any backend type.
//
// Deterministic by construction: the sampler runs on whatever
// util::Scheduler drives the system — the virtual clock in simulations
// (where samples read only simulation state and replay byte-identically)
// or util::RealTimeScheduler in a live node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/message.h"
#include "trace/metrics.h"
#include "trace/trace_sink.h"
#include "util/metrics_registry.h"
#include "util/scheduler.h"
#include "util/stats.h"

namespace rbcast::trace {

class MetricSampler final : public net::NetObserver {
 public:
  struct TreeShape {
    int depth{0};     // longest parent chain, in hops
    int leaders{0};   // hosts whose parent is NIL or in another cluster
    int orphans{0};   // non-source hosts with no parent
  };
  using TreeShapeFn = std::function<TreeShape()>;

  // THE delivery-latency bucket bounds, in seconds — the schema shared by
  // the sampler's le_* fields, the registry histograms rbcast_node
  // exposes, and the Prometheus exposition (DESIGN.md §14). Spans
  // sub-millisecond localhost deliveries through partition-healing gap
  // fills; above 60s only the +inf bucket counts.
  [[nodiscard]] static std::vector<double> latency_bounds();

  // `metrics` and `sink` are borrowed and must outlive the sampler; any
  // util::Scheduler works (sim::Simulator or util::RealTimeScheduler).
  MetricSampler(util::Scheduler& scheduler, Metrics& metrics, TraceSink& sink,
                util::Duration period, TreeShapeFn tree_shape = {});
  ~MetricSampler();

  MetricSampler(const MetricSampler&) = delete;
  MetricSampler& operator=(const MetricSampler&) = delete;

  // Arms the periodic task; the first sample fires one period from now.
  void start();
  void stop();

  // Takes one sample immediately (the harness calls this at run end so
  // the series always covers the full run).
  void sample_now();

  // Attaches (or detaches, with nullptr) a registry whose counters and
  // gauges are folded into each sample as a "registry" record. Borrowed;
  // must outlive the sampler or be detached first.
  void set_registry(const util::MetricsRegistry* registry);

  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

  // --- NetObserver (latest-backlog tracking) -----------------------------
  void on_queue_backlog(ServerId server, LinkId link,
                        sim::Duration backlog) override;

 private:
  void emit_counters();
  void emit_backlog();
  void emit_latency();
  void emit_tree();
  void emit_registry();

  util::Scheduler& scheduler_;
  Metrics& metrics_;
  TraceSink& sink_;
  sim::Duration period_;
  TreeShapeFn tree_shape_;
  const util::MetricsRegistry* registry_{nullptr};

  // Ordered: sample emission iterates these and field order must be
  // stable across runs (byte-identical trace replay).
  std::map<std::string, std::uint64_t> last_counters_;
  std::map<std::string, std::uint64_t> last_registry_counters_;
  std::map<ServerId, sim::Duration> latest_backlog_;
  util::Histogram latency_histogram_;
  std::uint64_t samples_{0};

  std::unique_ptr<util::PeriodicTask> task_;
};

}  // namespace rbcast::trace
