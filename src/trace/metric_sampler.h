// MetricSampler — periodic metric time series for a running experiment.
//
// Experiments previously reported end-of-run totals only; the sampler
// turns the same sources into curves over virtual time, emitted as
// "metric" TraceRecords every `period`:
//
//  * "counters"  — per-counter deltas since the previous sample (only
//    counters that moved), so rates are directly visible;
//  * "backlog"   — the most recent serialization backlog observed per
//    server (seconds), via its own NetObserver hook (install through a
//    net::NetObserverFanout next to trace::Metrics);
//  * "latency"   — delivery-latency distribution so far: count, mean,
//    p50/p95/p99 (exact, from trace::Metrics samples) plus cumulative
//    util::Histogram bucket counts (le_<bound> fields);
//  * "tree"      — protocol tree shape (depth, cluster-leader count,
//    orphan count) when a TreeShapeFn is supplied (paper protocol only).
//
// Deterministic by construction: samples fire on the virtual clock and
// read only simulation state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/message.h"
#include "sim/simulator.h"
#include "trace/metrics.h"
#include "trace/trace_sink.h"
#include "util/stats.h"

namespace rbcast::trace {

class MetricSampler final : public net::NetObserver {
 public:
  struct TreeShape {
    int depth{0};     // longest parent chain, in hops
    int leaders{0};   // hosts whose parent is NIL or in another cluster
    int orphans{0};   // non-source hosts with no parent
  };
  using TreeShapeFn = std::function<TreeShape()>;

  // `metrics` and `sink` are borrowed and must outlive the sampler.
  MetricSampler(sim::Simulator& simulator, Metrics& metrics, TraceSink& sink,
                sim::Duration period, TreeShapeFn tree_shape = {});
  ~MetricSampler();

  MetricSampler(const MetricSampler&) = delete;
  MetricSampler& operator=(const MetricSampler&) = delete;

  // Arms the periodic task; the first sample fires one period from now.
  void start();
  void stop();

  // Takes one sample immediately (the harness calls this at run end so
  // the series always covers the full run).
  void sample_now();

  [[nodiscard]] sim::Duration period() const { return period_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

  // --- NetObserver (latest-backlog tracking) -----------------------------
  void on_queue_backlog(ServerId server, LinkId link,
                        sim::Duration backlog) override;

 private:
  void emit_counters();
  void emit_backlog();
  void emit_latency();
  void emit_tree();

  sim::Simulator& simulator_;
  Metrics& metrics_;
  TraceSink& sink_;
  sim::Duration period_;
  TreeShapeFn tree_shape_;

  // Ordered: sample emission iterates these and field order must be
  // stable across runs (byte-identical trace replay).
  std::map<std::string, std::uint64_t> last_counters_;
  std::map<ServerId, sim::Duration> latest_backlog_;
  util::Histogram latency_histogram_;
  std::uint64_t samples_{0};

  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace rbcast::trace
