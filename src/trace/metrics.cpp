#include "trace/metrics.h"

#include <algorithm>
#include <ostream>

#include "util/assert.h"

namespace rbcast::trace {

namespace {
const util::Accumulator kEmptyAccumulator{};
}

Metrics::Metrics(sim::Simulator& simulator, net::Network& network)
    : simulator_(simulator), network_(network) {}

void Metrics::attach() { network_.set_observer(this); }

bool Metrics::is_data_kind(const std::string& kind) {
  return kind == "data" || kind == "gapfill" || kind == "data_retx";
}

bool Metrics::crosses_clusters(HostId a, HostId b) {
  if (cluster_epoch_ != network_.topology_epoch()) {
    cluster_index_ = network_.host_cluster_index();
    cluster_epoch_ = network_.topology_epoch();
  }
  return cluster_index_[static_cast<std::size_t>(a.value)] !=
         cluster_index_[static_cast<std::size_t>(b.value)];
}

void Metrics::on_host_send(const net::Delivery& d) {
  counters_.inc("send." + d.kind);
  counters_.inc("send_bytes." + d.kind, d.bytes);
  if (crosses_clusters(d.from, d.to)) {
    counters_.inc("send.intercluster." + d.kind);
    counters_.inc("send_bytes.intercluster." + d.kind, d.bytes);
  }
}

void Metrics::on_deliver(const net::Delivery& d) {
  counters_.inc("deliver." + d.kind);
}

void Metrics::on_drop(const net::Delivery& d, net::DropReason reason) {
  counters_.inc(std::string("drop.") + to_string(reason));
  counters_.inc("drop_kind." + d.kind);
}

void Metrics::on_link_transmit(LinkId link, const net::Delivery& d) {
  const auto& spec = network_.topology().link(link);
  const char* cls = topo::to_string(spec.link_class);
  counters_.inc(std::string("link.") + cls);
  counters_.inc(std::string("link.") + cls + "." + d.kind);
  counters_.inc(std::string("link_bytes.") + cls, d.bytes);
  link_busy_[link] += spec.transmission_time(d.bytes);
}

void Metrics::on_queue_backlog(ServerId server, LinkId /*link*/,
                               sim::Duration backlog) {
  backlog_[server].add(sim::to_seconds(backlog));
}

void Metrics::record_broadcast(Seq seq) {
  broadcast_at_[seq] = simulator_.now();
}

void Metrics::record_delivery(HostId host, Seq seq) {
  auto& per_host = first_delivery_[seq];
  per_host.emplace(host, simulator_.now());  // keeps the first one
}

std::uint64_t Metrics::counter_prefix_sum(const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const auto& [name, value] : counters_.all()) {
    if (name.rfind(prefix, 0) == 0) sum += value;
  }
  return sum;
}

std::uint64_t Metrics::intercluster_data_sends() const {
  return counter("send.intercluster.data") +
         counter("send.intercluster.gapfill") +
         counter("send.intercluster.data_retx");
}

std::uint64_t Metrics::intercluster_control_sends() const {
  return counter_prefix_sum("send.intercluster.") - intercluster_data_sends();
}

double Metrics::delivery_latency(HostId host, Seq seq) const {
  auto bit = broadcast_at_.find(seq);
  if (bit == broadcast_at_.end()) return -1.0;
  auto sit = first_delivery_.find(seq);
  if (sit == first_delivery_.end()) return -1.0;
  auto hit = sit->second.find(host);
  if (hit == sit->second.end()) return -1.0;
  return sim::to_seconds(hit->second - bit->second);
}

util::Samples Metrics::all_latencies() const {
  return latencies_between(1, ~Seq{0});
}

util::Samples Metrics::latencies_between(Seq lo, Seq hi) const {
  util::Samples out;
  for (const auto& [seq, per_host] : first_delivery_) {
    if (seq < lo || seq > hi) continue;
    auto bit = broadcast_at_.find(seq);
    if (bit == broadcast_at_.end()) continue;
    for (const auto& [host, at] : per_host) {
      out.add(sim::to_seconds(at - bit->second));
    }
  }
  return out;
}

std::size_t Metrics::delivered_count(Seq seq) const {
  auto it = first_delivery_.find(seq);
  return it != first_delivery_.end() ? it->second.size() : 0;
}

sim::Duration Metrics::link_busy_time(LinkId link) const {
  auto it = link_busy_.find(link);
  return it != link_busy_.end() ? it->second : 0;
}

double Metrics::link_utilization(LinkId link) const {
  const sim::Duration window = simulator_.now() - window_start_;
  if (window <= 0) return 0.0;
  return static_cast<double>(link_busy_time(link)) /
         static_cast<double>(window);
}

LinkId Metrics::busiest_trunk() const {
  LinkId best = kNoLink;
  sim::Duration best_busy = 0;
  for (const auto& [link, busy] : link_busy_) {
    if (network_.topology().link(link).is_access) continue;
    if (busy > best_busy) {
      best_busy = busy;
      best = link;
    }
  }
  return best;
}

std::vector<std::pair<double, double>> Metrics::completion_curve(
    double bucket_seconds, std::size_t host_count) const {
  RBCAST_CHECK_ARG(bucket_seconds > 0, "bucket must be positive");
  std::vector<double> times;
  for (const auto& [seq, per_host] : first_delivery_) {
    if (!broadcast_at_.contains(seq)) continue;
    for (const auto& [host, at] : per_host) {
      times.push_back(sim::to_seconds(at));
    }
  }
  const double expected =
      static_cast<double>(broadcast_at_.size()) *
      static_cast<double>(host_count);
  std::vector<std::pair<double, double>> curve;
  if (times.empty() || expected == 0) return curve;
  std::sort(times.begin(), times.end());
  const double horizon = times.back();
  std::size_t done = 0;
  for (double t = 0.0; t <= horizon + bucket_seconds; t += bucket_seconds) {
    while (done < times.size() && times[done] <= t) ++done;
    curve.emplace_back(t, static_cast<double>(done) / expected);
  }
  return curve;
}

const util::Accumulator& Metrics::queue_backlog(ServerId server) const {
  auto it = backlog_.find(server);
  return it != backlog_.end() ? it->second : kEmptyAccumulator;
}

double Metrics::max_queue_backlog_seconds(ServerId server) const {
  return queue_backlog(server).max();
}

void Metrics::write_counters_csv(std::ostream& os) const {
  os << "name,value\n";
  for (const auto& [name, value] : counters_.all()) {
    os << name << ',' << value << '\n';
  }
}

void Metrics::write_latencies_csv(std::ostream& os) const {
  os << "seq,host,latency_seconds\n";
  for (const auto& [seq, per_host] : first_delivery_) {
    auto bit = broadcast_at_.find(seq);
    if (bit == broadcast_at_.end()) continue;
    for (const auto& [host, at] : per_host) {
      os << seq << ',' << host.value << ','
         << sim::to_seconds(at - bit->second) << '\n';
    }
  }
}

void Metrics::reset() {
  counters_.clear();
  backlog_.clear();
  link_busy_.clear();
  window_start_ = simulator_.now();
  broadcast_at_.clear();
  first_delivery_.clear();
}

}  // namespace rbcast::trace
