// Exposition — rendering util::MetricsRegistry snapshots for consumers
// outside the process.
//
// Two formats, one naming contract (DESIGN.md §14):
//
//  * Prometheus text exposition (write_prometheus): dotted registry names
//    become `rbcast_<name with dots as underscores>`, HELP/TYPE lines are
//    emitted once per family, histograms render the standard
//    _bucket{le="..."} / _sum / _count triple with bucket bounds exactly
//    matching util::Histogram::upper_bounds() plus the implicit +Inf;
//  * a JSON status document (StatusDoc): the machine-readable snapshot the
//    node admin endpoint serves at /status and rbcast_top aggregates
//    across a fleet — host attachment state, seq watermarks, transport
//    health, and the full metrics snapshot, round-trippable through
//    util::parse_json.
//
// Everything here is pure formatting over a snapshot: no sockets, no
// clocks, no protocol types — which is what makes the admin plane
// observation-only by construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/metrics_registry.h"

namespace rbcast::trace {

// "transport.datagrams_sent" -> "rbcast_transport_datagrams_sent": every
// character outside [a-zA-Z0-9_] becomes '_', and the rbcast_ prefix is
// added unless already present.
[[nodiscard]] std::string prometheus_name(const std::string& dotted);

// Prometheus text exposition format (version 0.0.4) of a full snapshot.
void write_prometheus(std::ostream& os,
                      const std::vector<util::MetricSnapshot>& snapshot);

// The same snapshot as a JSON array (member order fixed, byte-stable).
void write_metrics_json(std::ostream& os,
                        const std::vector<util::MetricSnapshot>& snapshot);

// --- /status ---------------------------------------------------------------

// One protocol host as the admin endpoint reports it.
struct HostStatus {
  std::int64_t id{-1};
  bool source{false};
  std::int64_t parent{-1};  // -1 = no parent (NIL)
  bool orphan{false};       // non-source host with no parent
  bool leader{false};       // parent is NIL or outside CLUSTER_i
  std::uint64_t info_count{0};   // sequences held
  std::int64_t max_seq{0};       // seq watermark
  std::uint64_t deliveries{0};   // first receipts handed to the app
  std::uint64_t decode_errors{0};
  std::uint64_t auth_rejects{0};  // frames dropped by per-source auth
  std::vector<std::int64_t> cluster;  // CLUSTER_i view, sorted
};

// The whole /status document. `now_s` is wall-clock seconds since the
// node's scheduler epoch — never part of any digest.
struct StatusDoc {
  double now_s{0};
  bool ready{false};  // what /healthz keys on: locally converged
  std::int64_t source{-1};
  std::int64_t messages_expected{0};
  std::int64_t messages_sent{0};
  std::vector<HostStatus> hosts;
  std::vector<util::MetricSnapshot> metrics;
};

void write_status_json(std::ostream& os, const StatusDoc& doc);
[[nodiscard]] std::string status_json(const StatusDoc& doc);

// Parses a /status document (rbcast_top's input). Throws
// std::invalid_argument on malformed JSON or schema violations.
[[nodiscard]] StatusDoc parse_status_json(const std::string& text);

}  // namespace rbcast::trace
