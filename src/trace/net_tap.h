// NetTap — streams network events into a TraceSink.
//
// The passive sibling of trace::Metrics: where Metrics aggregates network
// events into counters, the tap exports each host-level event (send,
// delivery, drop) as a structured TraceRecord, carrying the causal trace
// id so rbcast_trace --lineage can reconstruct the full relay and
// gap-fill path of one broadcast message. Both observe the same network
// through a net::NetObserverFanout.
//
// Per-link transmissions are deliberately not exported: on a large
// topology they dominate trace volume while the host-level record
// already names every relay hop the protocol took.
#pragma once

#include "net/message.h"
#include "sim/simulator.h"
#include "trace/trace_sink.h"

namespace rbcast::trace {

class NetTap final : public net::NetObserver {
 public:
  NetTap(sim::Simulator& simulator, TraceSink& sink)
      : simulator_(simulator), sink_(sink) {}

  void on_host_send(const net::Delivery& d) override;
  void on_deliver(const net::Delivery& d) override;
  void on_drop(const net::Delivery& d, net::DropReason reason) override;

 private:
  sim::Simulator& simulator_;
  TraceSink& sink_;
};

}  // namespace rbcast::trace
