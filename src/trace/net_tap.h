// NetTap — streams network events into a TraceSink.
//
// The passive sibling of trace::Metrics: where Metrics aggregates network
// events into counters, the tap exports each host-level event (send,
// delivery, drop) as a structured TraceRecord, carrying the causal trace
// id so rbcast_trace --lineage can reconstruct the full relay and
// gap-fill path of one broadcast message. Both observe the same network
// through a net::NetObserverFanout.
//
// Per-link transmissions are deliberately not exported: on a large
// topology they dominate trace volume while the host-level record
// already names every relay hop the protocol took.
#pragma once

#include "net/message.h"
#include "trace/trace_sink.h"
#include "util/scheduler.h"

namespace rbcast::trace {

class NetTap final : public net::NetObserver {
 public:
  // `clock` is whichever Scheduler the observed backend runs on —
  // sim::Simulator or util::RealTimeScheduler — so simulated and real
  // traces share one record schema and timestamp domain.
  NetTap(util::Scheduler& clock, TraceSink& sink)
      : clock_(clock), sink_(sink) {}

  void on_host_send(const net::Delivery& d) override;
  void on_deliver(const net::Delivery& d) override;
  void on_drop(const net::Delivery& d, net::DropReason reason) override;

 private:
  util::Scheduler& clock_;
  TraceSink& sink_;
};

}  // namespace rbcast::trace
