// Graphviz export of protocol and network structure.
//
// Two views, mirroring the paper's two figures of structure:
//  * the host parent graph (Figure 3.2's boxes and arrows): one node per
//    host, an edge from each host to its parent, hosts grouped into
//    subgraph clusters by ground truth, leaders highlighted;
//  * the physical topology: servers, hosts and links, expensive trunks
//    dashed.
//
// Render with:  dot -Tsvg graph.dot -o graph.svg
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "net/network.h"

namespace rbcast::trace {

// Writes the current host parent graph. `hosts` indexed by HostId value.
void write_parent_graph_dot(std::ostream& os,
                            const std::vector<const core::BroadcastHost*>& hosts,
                            const net::Network& network, HostId source);

// Writes the physical topology (servers, hosts, links).
void write_topology_dot(std::ostream& os, const net::Network& network);

// Convenience: both as strings.
[[nodiscard]] std::string parent_graph_dot(
    const std::vector<const core::BroadcastHost*>& hosts,
    const net::Network& network, HostId source);
[[nodiscard]] std::string topology_dot(const net::Network& network);

}  // namespace rbcast::trace
