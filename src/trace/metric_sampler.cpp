#include "trace/metric_sampler.h"

#include <sstream>

#include "util/assert.h"

namespace rbcast::trace {

namespace {

// Stable field key for a bucket bound: "le_0.001" .. "le_60" (trailing
// zeros trimmed so keys read naturally).
std::string bucket_key(double bound) {
  std::ostringstream os;
  os << "le_" << bound;
  return os.str();
}

}  // namespace

std::vector<double> MetricSampler::latency_bounds() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0};
}

MetricSampler::MetricSampler(util::Scheduler& scheduler, Metrics& metrics,
                             TraceSink& sink, util::Duration period,
                             TreeShapeFn tree_shape)
    : scheduler_(scheduler),
      metrics_(metrics),
      sink_(sink),
      period_(period),
      tree_shape_(std::move(tree_shape)),
      latency_histogram_(latency_bounds()) {
  RBCAST_CHECK_ARG(period > 0, "sample period must be positive");
  task_ = std::make_unique<util::PeriodicTask>(scheduler_, period_,
                                               [this] { sample_now(); });
}

MetricSampler::~MetricSampler() = default;

void MetricSampler::start() { task_->start(period_); }

void MetricSampler::stop() { task_->stop(); }

void MetricSampler::on_queue_backlog(ServerId server, LinkId /*link*/,
                                     sim::Duration backlog) {
  latest_backlog_[server] = backlog;
}

void MetricSampler::set_registry(const util::MetricsRegistry* registry) {
  registry_ = registry;
  last_registry_counters_.clear();
}

void MetricSampler::sample_now() {
  ++samples_;
  emit_counters();
  emit_backlog();
  emit_latency();
  emit_tree();
  emit_registry();
}

void MetricSampler::emit_counters() {
  TraceRecord r;
  r.at = scheduler_.now();
  r.category = "metric";
  r.name = "counters";
  for (const auto& [name, value] : metrics_.counters().all()) {
    const std::uint64_t before = last_counters_[name];
    if (value != before) r.field(name, value - before);
    last_counters_[name] = value;
  }
  // An all-quiet interval still emits a (fieldless) sample: gaps in the
  // series would otherwise be indistinguishable from sampling stopping.
  sink_.record(r);
}

void MetricSampler::emit_backlog() {
  if (latest_backlog_.empty()) return;
  TraceRecord r;
  r.at = scheduler_.now();
  r.category = "metric";
  r.name = "backlog";
  for (const auto& [server, backlog] : latest_backlog_) {
    r.field("s" + std::to_string(server.value), sim::to_seconds(backlog));
  }
  sink_.record(r);
}

void MetricSampler::emit_latency() {
  const util::Samples latencies = metrics_.all_latencies();
  if (latencies.count() == 0) return;
  // Rebuilt from scratch each sample: a gap fill can complete an *early*
  // sequence late in the run, so there is no stable "new samples" suffix
  // to fold in incrementally. Sample counts are modest (hosts x messages).
  latency_histogram_.clear();
  for (double v : latencies.values()) latency_histogram_.add(v);

  TraceRecord r;
  r.at = scheduler_.now();
  r.category = "metric";
  r.name = "latency";
  r.field("count", std::uint64_t{latencies.count()})
      .field("mean_s", latencies.mean())
      .field("p50_s", latencies.quantile(0.5))
      .field("p95_s", latencies.quantile(0.95))
      .field("p99_s", latencies.quantile(0.99))
      .field("max_s", latencies.max());
  const auto& bounds = latency_histogram_.upper_bounds();
  const auto cumulative = latency_histogram_.cumulative_counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    r.field(bucket_key(bounds[i]), cumulative[i]);
  }
  sink_.record(r);
}

void MetricSampler::emit_tree() {
  if (!tree_shape_) return;
  const TreeShape shape = tree_shape_();
  TraceRecord r;
  r.at = scheduler_.now();
  r.category = "metric";
  r.name = "tree";
  r.field("depth", std::int64_t{shape.depth})
      .field("leaders", std::int64_t{shape.leaders})
      .field("orphans", std::int64_t{shape.orphans});
  sink_.record(r);
}

void MetricSampler::emit_registry() {
  if (registry_ == nullptr) return;
  TraceRecord r;
  r.at = scheduler_.now();
  r.category = "metric";
  r.name = "registry";
  // Counters as per-interval deltas (same convention as "counters"),
  // summed across label sets; only counters that moved become fields.
  for (const auto& [name, value] : registry_->counter_totals()) {
    const std::uint64_t before = last_registry_counters_[name];
    if (value != before) r.field(name, value - before);
    last_registry_counters_[name] = value;
  }
  if (r.fields.empty()) return;  // "counters" already marks quiet intervals
  sink_.record(r);
}

}  // namespace rbcast::trace
