#include "trace/event_log.h"

#include <ostream>
#include <sstream>
#include <type_traits>

namespace rbcast::trace {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kAttachRequested:
      return "attach-requested";
    case EventType::kAttached:
      return "attached";
    case EventType::kDetached:
      return "detached";
    case EventType::kParentTimeout:
      return "parent-timeout";
    case EventType::kCycleBroken:
      return "cycle-broken";
    case EventType::kAttachTimeout:
      return "attach-timeout";
    case EventType::kNewMaxRejected:
      return "new-max-rejected";
    case EventType::kDelivered:
      return "delivered";
    case EventType::kGapFillOffered:
      return "gapfill-offered";
    case EventType::kGapFillAccepted:
      return "gapfill-accepted";
    case EventType::kGapFillRelayed:
      return "gapfill-relayed";
  }
  return "?";
}

std::string Event::describe() const {
  std::ostringstream os;
  os << '[' << sim::to_seconds(at) << "s] " << host << ' '
     << to_string(type);
  if (peer.valid()) os << ' ' << peer;
  if (seq != 0) os << " #" << seq;
  if (!detail.empty()) os << " (" << detail << ')';
  return os.str();
}

void EventLog::push(EventType type, HostId host, HostId peer, util::Seq seq,
                    std::string detail) {
  events_.push_back(Event{clock_.now(), type, host, peer, seq,
                          std::move(detail)});
  if (sink_ != nullptr) {
    const Event& e = events_.back();
    TraceRecord r;
    r.at = e.at;
    r.category = "protocol";
    r.name = to_string(type);
    r.host = host;
    if (e.peer.valid()) r.field("peer", std::int64_t{e.peer.value});
    if (e.seq != 0) r.field("seq", std::uint64_t{e.seq});
    if (!e.detail.empty()) r.field("detail", e.detail);
    sink_->record(r);
  }
}

void EventLog::on_attach_requested(HostId host, HostId candidate,
                                   const std::string& rule) {
  push(EventType::kAttachRequested, host, candidate, 0, rule);
}

void EventLog::on_attached(HostId host, HostId parent) {
  push(EventType::kAttached, host, parent, 0, {});
}

void EventLog::on_detached(HostId host, HostId old_parent, bool timeout) {
  push(timeout ? EventType::kParentTimeout : EventType::kDetached, host,
       old_parent, 0, {});
}

void EventLog::on_cycle_broken(HostId host) {
  push(EventType::kCycleBroken, host, kNoHost, 0, {});
}

void EventLog::on_attach_timeout(HostId host, HostId candidate) {
  push(EventType::kAttachTimeout, host, candidate, 0, {});
}

void EventLog::on_new_max_rejected(HostId host, HostId from, util::Seq seq) {
  push(EventType::kNewMaxRejected, host, from, seq, {});
}

void EventLog::on_delivered(HostId host, util::Seq seq) {
  push(EventType::kDelivered, host, kNoHost, seq, {});
}

void EventLog::on_gapfill_offered(HostId host, HostId to, util::Seq seq) {
  push(EventType::kGapFillOffered, host, to, seq, {});
}

void EventLog::on_gapfill_accepted(HostId host, HostId from, util::Seq seq) {
  push(EventType::kGapFillAccepted, host, from, seq, {});
}

void EventLog::on_gapfill_relayed(HostId host, HostId to, util::Seq seq) {
  push(EventType::kGapFillRelayed, host, to, seq, {});
}

std::size_t EventLog::count(EventType type) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

std::vector<Event> EventLog::events_of(HostId host) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.host == host) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::between(sim::TimePoint from,
                                     sim::TimePoint to) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.at >= from && e.at < to) out.push_back(e);
  }
  return out;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mix(std::uint64_t& h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  mix_bytes(h, &value, sizeof(value));
}

}  // namespace

std::uint64_t EventLog::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const Event& e : events_) {
    mix(h, e.at);
    mix(h, static_cast<std::int32_t>(e.type));
    mix(h, e.host.value);
    mix(h, e.peer.value);
    mix(h, e.seq);
    mix_bytes(h, e.detail.data(), e.detail.size());
    mix(h, '\n');
  }
  return h;
}

void EventLog::dump(std::ostream& os, bool include_deliveries) const {
  std::size_t deliveries = 0;
  for (const Event& e : events_) {
    if (e.type == EventType::kDelivered && !include_deliveries) {
      ++deliveries;
      continue;
    }
    os << e.describe() << '\n';
  }
  if (deliveries > 0) {
    os << "(+ " << deliveries << " delivery events)\n";
  }
}

}  // namespace rbcast::trace
