// Convergence probes: do the hosts' parent pointers currently form the
// structure Section 4 promises?
//
// At quiescence in a connected network the host parent graph should be a
// tree rooted at the source that *induces a cluster tree*: per Section 4.1,
// (1) the graph is a tree, and (2) the children of every cluster leader
// include all other hosts of its cluster — equivalently, each ground-truth
// cluster has exactly one leader and every other member is attached
// directly to it.
//
// Tests assert these properties after fault-free runs and after
// fault/repair cycles; benches report them as convergence observables.
#pragma once

#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "net/network.h"

namespace rbcast::trace {

struct ConvergenceReport {
  // Parent pointers contain no cycle.
  bool acyclic{false};
  // Exactly one root (a host with no parent) and it is the source, and
  // every host reaches the source by following parents.
  bool tree_rooted_at_source{false};
  // Condition (2) of Section 4.1 against ground-truth clusters.
  bool induces_cluster_tree{false};
  // All hosts hold every message the source has generated.
  bool all_caught_up{false};

  // Hosts whose parent lies outside their ground-truth cluster (or is
  // NIL) — "cluster leaders" per Section 4.1.
  int leader_count{0};
  std::vector<int> leaders_per_cluster;

  // Human-readable diagnosis of the first violated property (empty when
  // everything holds).
  std::string detail;

  [[nodiscard]] bool fully_converged() const {
    return acyclic && tree_rooted_at_source && induces_cluster_tree;
  }
};

// `hosts` must contain one entry per host, indexed by HostId value.
[[nodiscard]] ConvergenceReport analyze_convergence(
    const std::vector<const core::BroadcastHost*>& hosts,
    const net::Network& network, HostId source);

}  // namespace rbcast::trace
