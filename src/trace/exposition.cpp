#include "trace/exposition.h"

#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace rbcast::trace {

namespace {

// Shortest round-trippable double, matching the JSONL sink's convention
// (no locale, capped precision) so every exposition format agrees on how
// a value prints.
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const char* kind_name(util::MetricSnapshot::Kind kind) {
  switch (kind) {
    case util::MetricSnapshot::Kind::kCounter:
      return "counter";
    case util::MetricSnapshot::Kind::kGauge:
      return "gauge";
    case util::MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

// "name" or "name{labels}" / "name{labels,le=...}" series heads.
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = {}) {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void write_metric_json(std::ostream& os, const util::MetricSnapshot& m) {
  os << "{\"name\":";
  write_escaped(os, m.name);
  os << ",\"labels\":";
  write_escaped(os, m.labels);
  os << ",\"kind\":\"" << kind_name(m.kind) << "\"";
  switch (m.kind) {
    case util::MetricSnapshot::Kind::kCounter:
      os << ",\"value\":" << m.counter;
      break;
    case util::MetricSnapshot::Kind::kGauge:
      os << ",\"value\":" << fmt_double(m.gauge);
      break;
    case util::MetricSnapshot::Kind::kHistogram: {
      os << ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        os << (i > 0 ? "," : "") << fmt_double(m.bounds[i]);
      }
      os << "],\"cumulative\":[";
      for (std::size_t i = 0; i < m.cumulative.size(); ++i) {
        os << (i > 0 ? "," : "") << m.cumulative[i];
      }
      os << "],\"count\":" << m.count << ",\"sum\":" << fmt_double(m.sum);
      break;
    }
  }
  os << "}";
}

std::uint64_t member_u64(const util::Json& obj, const char* key,
                         const char* context) {
  const double v = util::json_num_or(obj, key, 0, context);
  if (v < 0) {
    throw std::invalid_argument(std::string(context) + ": '" + key +
                                "' must be non-negative");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string prometheus_name(const std::string& dotted) {
  std::string out;
  out.reserve(dotted.size() + 7);
  for (char c : dotted) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_';
    out += ok ? c : '_';
  }
  if (out.rfind("rbcast", 0) != 0) out.insert(0, "rbcast_");
  return out;
}

void write_prometheus(std::ostream& os,
                      const std::vector<util::MetricSnapshot>& snapshot) {
  // The snapshot is ordered by (name, labels), so one family's series are
  // consecutive: emit HELP/TYPE at each family head only.
  std::string previous;
  for (const util::MetricSnapshot& m : snapshot) {
    const std::string name = prometheus_name(m.name);
    if (name != previous) {
      os << "# HELP " << name << " "
         << (m.help.empty() ? m.name : m.help) << "\n";
      os << "# TYPE " << name << " " << kind_name(m.kind) << "\n";
      previous = name;
    }
    switch (m.kind) {
      case util::MetricSnapshot::Kind::kCounter:
        os << series(name, m.labels) << " " << m.counter << "\n";
        break;
      case util::MetricSnapshot::Kind::kGauge:
        os << series(name, m.labels) << " " << fmt_double(m.gauge) << "\n";
        break;
      case util::MetricSnapshot::Kind::kHistogram: {
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          os << series(name + "_bucket", m.labels,
                       "le=\"" + fmt_double(m.bounds[i]) + "\"")
             << " " << m.cumulative[i] << "\n";
        }
        os << series(name + "_bucket", m.labels, "le=\"+Inf\"") << " "
           << m.count << "\n";
        os << series(name + "_sum", m.labels) << " " << fmt_double(m.sum)
           << "\n";
        os << series(name + "_count", m.labels) << " " << m.count << "\n";
        break;
      }
    }
  }
}

void write_metrics_json(std::ostream& os,
                        const std::vector<util::MetricSnapshot>& snapshot) {
  os << "[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) os << ",";
    write_metric_json(os, snapshot[i]);
  }
  os << "]";
}

void write_status_json(std::ostream& os, const StatusDoc& doc) {
  os << "{\"now_s\":" << fmt_double(doc.now_s)
     << ",\"ready\":" << (doc.ready ? "true" : "false")
     << ",\"source\":" << doc.source
     << ",\"messages_expected\":" << doc.messages_expected
     << ",\"messages_sent\":" << doc.messages_sent << ",\"hosts\":[";
  for (std::size_t i = 0; i < doc.hosts.size(); ++i) {
    const HostStatus& h = doc.hosts[i];
    if (i > 0) os << ",";
    os << "{\"id\":" << h.id
       << ",\"source\":" << (h.source ? "true" : "false")
       << ",\"parent\":" << h.parent
       << ",\"orphan\":" << (h.orphan ? "true" : "false")
       << ",\"leader\":" << (h.leader ? "true" : "false")
       << ",\"info_count\":" << h.info_count << ",\"max_seq\":" << h.max_seq
       << ",\"deliveries\":" << h.deliveries
       << ",\"decode_errors\":" << h.decode_errors
       << ",\"auth_rejects\":" << h.auth_rejects << ",\"cluster\":[";
    for (std::size_t j = 0; j < h.cluster.size(); ++j) {
      os << (j > 0 ? "," : "") << h.cluster[j];
    }
    os << "]}";
  }
  os << "],\"metrics\":";
  write_metrics_json(os, doc.metrics);
  os << "}";
}

std::string status_json(const StatusDoc& doc) {
  std::ostringstream os;
  write_status_json(os, doc);
  return os.str();
}

StatusDoc parse_status_json(const std::string& text) {
  constexpr const char* kContext = "status";
  const util::Json root = util::parse_json(text, kContext);
  if (root.type != util::Json::Type::kObject) {
    throw std::invalid_argument("status: document must be an object");
  }
  StatusDoc doc;
  doc.now_s = util::json_num_or(root, "now_s", 0, kContext);
  doc.ready = util::json_bool_or(root, "ready", false, kContext);
  doc.source = util::json_int_or(root, "source", -1, kContext);
  doc.messages_expected =
      util::json_int_or(root, "messages_expected", 0, kContext);
  doc.messages_sent = util::json_int_or(root, "messages_sent", 0, kContext);

  const util::Json* hosts = root.find("hosts");
  if (hosts != nullptr) {
    if (hosts->type != util::Json::Type::kArray) {
      throw std::invalid_argument("status: 'hosts' must be an array");
    }
    for (const util::Json& h : hosts->items) {
      HostStatus hs;
      hs.id = util::json_int_or(h, "id", -1, kContext);
      hs.source = util::json_bool_or(h, "source", false, kContext);
      hs.parent = util::json_int_or(h, "parent", -1, kContext);
      hs.orphan = util::json_bool_or(h, "orphan", false, kContext);
      hs.leader = util::json_bool_or(h, "leader", false, kContext);
      hs.info_count = member_u64(h, "info_count", kContext);
      hs.max_seq = util::json_int_or(h, "max_seq", 0, kContext);
      hs.deliveries = member_u64(h, "deliveries", kContext);
      hs.decode_errors = member_u64(h, "decode_errors", kContext);
      // Absent in documents from pre-auth nodes: default 0, not an error.
      if (h.find("auth_rejects") != nullptr) {
        hs.auth_rejects = member_u64(h, "auth_rejects", kContext);
      }
      if (const util::Json* cluster = h.find("cluster"); cluster != nullptr) {
        if (cluster->type != util::Json::Type::kArray) {
          throw std::invalid_argument("status: 'cluster' must be an array");
        }
        for (const util::Json& member : cluster->items) {
          if (member.type != util::Json::Type::kNumber) {
            throw std::invalid_argument(
                "status: 'cluster' must hold numbers");
          }
          hs.cluster.push_back(static_cast<std::int64_t>(member.number));
        }
      }
      doc.hosts.push_back(std::move(hs));
    }
  }

  const util::Json* metrics = root.find("metrics");
  if (metrics != nullptr) {
    if (metrics->type != util::Json::Type::kArray) {
      throw std::invalid_argument("status: 'metrics' must be an array");
    }
    for (const util::Json& m : metrics->items) {
      util::MetricSnapshot ms;
      ms.name = util::json_str_or(m, "name", "", kContext);
      ms.labels = util::json_str_or(m, "labels", "", kContext);
      const std::string kind = util::json_str_or(m, "kind", "", kContext);
      if (kind == "counter") {
        ms.kind = util::MetricSnapshot::Kind::kCounter;
        ms.counter = member_u64(m, "value", kContext);
      } else if (kind == "gauge") {
        ms.kind = util::MetricSnapshot::Kind::kGauge;
        ms.gauge = util::json_num_or(m, "value", 0, kContext);
      } else if (kind == "histogram") {
        ms.kind = util::MetricSnapshot::Kind::kHistogram;
        ms.count = member_u64(m, "count", kContext);
        ms.sum = util::json_num_or(m, "sum", 0, kContext);
        const util::Json* bounds = m.find("bounds");
        const util::Json* cumulative = m.find("cumulative");
        if (bounds == nullptr || cumulative == nullptr ||
            bounds->type != util::Json::Type::kArray ||
            cumulative->type != util::Json::Type::kArray ||
            bounds->items.size() != cumulative->items.size()) {
          throw std::invalid_argument(
              "status: histogram needs matching 'bounds'/'cumulative'");
        }
        for (const util::Json& b : bounds->items) {
          ms.bounds.push_back(b.number);
        }
        for (const util::Json& c : cumulative->items) {
          if (c.number < 0) {
            throw std::invalid_argument(
                "status: histogram counts must be non-negative");
          }
          ms.cumulative.push_back(static_cast<std::uint64_t>(c.number));
        }
      } else {
        throw std::invalid_argument("status: unknown metric kind '" + kind +
                                    "'");
      }
      doc.metrics.push_back(std::move(ms));
    }
  }
  return doc;
}

}  // namespace rbcast::trace
