#include "trace/convergence.h"

#include <sstream>

#include "util/assert.h"

namespace rbcast::trace {

ConvergenceReport analyze_convergence(
    const std::vector<const core::BroadcastHost*>& hosts,
    const net::Network& network, HostId source) {
  ConvergenceReport report;
  const std::size_t n = hosts.size();
  RBCAST_CHECK_ARG(n > 0, "no hosts to analyze");
  std::ostringstream detail;

  auto parent_of = [&](HostId h) {
    return hosts[static_cast<std::size_t>(h.value)]->parent();
  };

  // --- acyclicity and rootedness -------------------------------------
  report.acyclic = true;
  bool all_reach_source = true;
  int roots = 0;
  HostId a_root = kNoHost;
  for (std::size_t i = 0; i < n; ++i) {
    const HostId start{static_cast<std::int32_t>(i)};
    if (!parent_of(start).valid()) {
      ++roots;
      a_root = start;
    }
    // Walk to the root; a walk longer than n hosts means a cycle.
    HostId cursor = start;
    std::size_t steps = 0;
    while (parent_of(cursor).valid() && steps <= n) {
      cursor = parent_of(cursor);
      ++steps;
    }
    if (steps > n) {
      report.acyclic = false;
      detail << "cycle reachable from " << start << "; ";
      break;
    }
    if (cursor != source) all_reach_source = false;
  }
  report.tree_rooted_at_source =
      report.acyclic && roots == 1 && a_root == source && all_reach_source;
  if (report.acyclic && !report.tree_rooted_at_source) {
    detail << roots << " roots (source " << source << "); ";
  }

  // --- induced cluster tree -------------------------------------------
  const auto clusters = network.clusters();
  const auto cluster_of = network.host_cluster_index();
  report.leaders_per_cluster.assign(clusters.size(), 0);
  bool members_under_leader = true;

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    HostId leader = kNoHost;
    for (HostId h : clusters[c]) {
      const HostId p = parent_of(h);
      const bool is_leader =
          !p.valid() ||
          cluster_of[static_cast<std::size_t>(p.value)] != static_cast<int>(c);
      if (is_leader) {
        ++report.leaders_per_cluster[c];
        ++report.leader_count;
        leader = h;
      }
    }
    if (report.leaders_per_cluster[c] != 1) {
      members_under_leader = false;
      detail << "cluster " << c << " has " << report.leaders_per_cluster[c]
             << " leaders; ";
      continue;
    }
    for (HostId h : clusters[c]) {
      if (h == leader) continue;
      if (parent_of(h) != leader) {
        members_under_leader = false;
        detail << h << " not directly under leader " << leader << "; ";
      }
    }
  }
  report.induces_cluster_tree =
      report.acyclic && report.tree_rooted_at_source && members_under_leader;

  // --- stream completeness ------------------------------------------------
  const core::BroadcastHost* src =
      hosts[static_cast<std::size_t>(source.value)];
  const util::Seq last = src->last_broadcast_seq();
  report.all_caught_up = true;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& info = hosts[i]->info();
    if (info.count() != last || (last > 0 && info.max_seq() != last)) {
      report.all_caught_up = false;
      detail << "host h" << i << " has " << info.count() << "/" << last
             << " messages; ";
      break;
    }
  }

  report.detail = detail.str();
  return report;
}

}  // namespace rbcast::trace
