#include "transport/sim_transport.h"

#include <utility>

#include "transport/wire.h"

namespace rbcast::transport {

// Per-host sending side when batching is on: enqueues every frame into a
// Coalescer whose flush hands the whole batch to the network as one
// message. The simulator carries payloads in-process, so the flush wraps
// the queued items in a SimBatch; Delivery::bytes is the exact version-2
// container size the UDP backend would transmit.
class SimTransport::BatchingEndpoint final : public net::HostEndpoint {
 public:
  BatchingEndpoint(SimTransport& owner, HostId self)
      : owner_(owner),
        self_(self),
        inner_(owner.network_.endpoint(self)),
        coalescer_(owner.simulator_, owner.coalesce_,
                   [this](HostId to, std::vector<Coalescer::Item> items) {
                     flush(to, std::move(items));
                   }) {}

  [[nodiscard]] HostId self() const override { return self_; }

  void send(HostId to, std::any payload, std::size_t bytes, std::string kind,
            net::TraceId trace_id) override {
    Coalescer::Item item;
    item.payload = std::move(payload);
    item.bytes = bytes;
    item.kind = std::move(kind);
    item.trace_id = trace_id;
    coalescer_.enqueue(to, std::move(item));
  }

  void flush_all() { coalescer_.flush_all(); }

  [[nodiscard]] const Coalescer::Stats& stats() const {
    return coalescer_.stats();
  }

  [[nodiscard]] std::size_t pending_frames() const {
    return coalescer_.pending_frames();
  }

 private:
  void flush(HostId to, std::vector<Coalescer::Item> items) {
    // A batch of one still amortizes nothing but must stay a well-formed
    // datagram: charge it as the bare frame it would be on the UDP wire.
    if (items.size() == 1) {
      Coalescer::Item& only = items.front();
      inner_.send(to, std::move(only.payload), only.bytes,
                  std::move(only.kind), only.trace_id);
      return;
    }
    std::size_t bytes = kBatchHeaderBytes;
    for (const Coalescer::Item& item : items) {
      bytes += kBatchPerFrameBytes + item.bytes;
    }
    inner_.send(to, std::any(SimBatch{std::move(items)}), bytes, "batch",
                /*trace_id=*/0);
  }

  SimTransport& owner_;
  HostId self_;
  net::HostEndpoint& inner_;
  Coalescer coalescer_;
};

SimTransport::SimTransport(sim::Simulator& simulator, net::Network& network,
                           CoalescerConfig coalesce)
    : simulator_(simulator), network_(network), coalesce_(coalesce) {}

SimTransport::~SimTransport() = default;

net::HostEndpoint& SimTransport::attach(HostId host, net::DeliveryFn deliver) {
  if (!coalesce_.enabled()) {
    network_.register_host(host, std::move(deliver));
    return network_.endpoint(host);
  }
  // Receive side: unpack batch deliveries into per-frame upcalls sharing
  // the container's path metadata (cost bit, timing, hop count).
  network_.register_host(
      host, [inner = std::move(deliver)](const net::Delivery& d) {
        const auto* batch = std::any_cast<SimBatch>(&d.payload);
        if (batch == nullptr) {
          inner(d);
          return;
        }
        for (const Coalescer::Item& item : batch->items) {
          net::Delivery frame;
          frame.from = d.from;
          frame.to = d.to;
          frame.expensive = d.expensive;
          frame.payload = item.payload;
          frame.bytes = item.bytes;
          frame.kind = item.kind;
          frame.sent_at = d.sent_at;
          frame.hops = d.hops;
          frame.trace_id = item.trace_id;
          inner(frame);
        }
      });
  auto& ep = endpoints_[host.value];
  if (ep == nullptr) {
    ep = std::make_unique<BatchingEndpoint>(*this, host);
  }
  return *ep;
}

void SimTransport::detach(HostId host) {
  // Network has no unregister; park a sink so in-flight messages that
  // arrive after the host died are silently discarded, as the paper's
  // network would discard messages to a crashed host.
  auto it = endpoints_.find(host.value);
  if (it != endpoints_.end()) it->second->flush_all();
  network_.register_host(host, [](const net::Delivery&) {});
}

Coalescer::Stats SimTransport::coalescer_stats() const {
  Coalescer::Stats total;
  for (const auto& [host, ep] : endpoints_) {
    const Coalescer::Stats& s = ep->stats();
    total.frames_enqueued += s.frames_enqueued;
    total.batches_flushed += s.batches_flushed;
    total.size_flushes += s.size_flushes;
    total.deadline_flushes += s.deadline_flushes;
  }
  return total;
}

std::size_t SimTransport::coalescer_pending_frames() const {
  std::size_t n = 0;
  for (const auto& [host, ep] : endpoints_) n += ep->pending_frames();
  return n;
}

void SimTransport::register_metrics(util::MetricsRegistry& registry) {
  register_coalescer_metrics(
      registry, [this] { return coalescer_stats(); },
      [this] { return coalescer_pending_frames(); });
}

}  // namespace rbcast::transport
