#include "transport/sim_transport.h"

#include <utility>

namespace rbcast::transport {

net::HostEndpoint& SimTransport::attach(HostId host, net::DeliveryFn deliver) {
  network_.register_host(host, std::move(deliver));
  return network_.endpoint(host);
}

void SimTransport::detach(HostId host) {
  // Network has no unregister; park a sink so in-flight messages that
  // arrive after the host died are silently discarded, as the paper's
  // network would discard messages to a crashed host.
  network_.register_host(host, [](const net::Delivery&) {});
}

}  // namespace rbcast::transport
