// Seeded UDP impairment — the paper's failure model on a loopback wire.
//
// Localhost UDP is too polite to exercise the protocol (it rarely loses,
// never duplicates, and almost never reorders), so UdpTransport applies
// the failure model itself at send time: each outgoing datagram is
// independently dropped, duplicated and/or delayed according to a seeded
// RNG. The integration test needs no root, no `tc netem`, and reproduces
// exactly per seed. The decision order is fixed (loss, then duplication,
// then per-copy delay) so a given seed perturbs the same datagrams no
// matter which knobs are on.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace rbcast::transport {

struct ImpairmentConfig {
  double loss{0};       // P(datagram silently dropped)
  double duplicate{0};  // P(datagram sent twice)
  double reorder{0};    // P(a copy is delayed by uniform (0, delay_max])
  util::Duration delay_max{util::Duration{20'000}};  // 20ms default
  std::uint64_t seed{0};

  [[nodiscard]] bool enabled() const {
    return loss > 0 || duplicate > 0 || reorder > 0;
  }
};

// One send decision: how many copies leave, and when.
struct ImpairmentPlan {
  bool dropped{false};
  int copies{1};
  // Per-copy extra delay; copies beyond kMaxCopies share the last slot.
  static constexpr int kMaxCopies = 2;
  util::Duration delay[kMaxCopies]{0, 0};
};

class Impairment {
 public:
  explicit Impairment(const ImpairmentConfig& config)
      : config_(config), rng_(config.seed) {}

  [[nodiscard]] ImpairmentPlan next();

 private:
  ImpairmentConfig config_;
  util::Rng rng_;
};

}  // namespace rbcast::transport
