// Datagram frame codec — the transport-level envelope around a payload.
//
// Every UDP datagram carries one frame (see PROTOCOL.md "Wire format"):
//
//   offset  size  field
//        0     3  magic "RBC"
//        3     1  version (kWireVersion; receivers drop other versions)
//        4     4  from host id, int32 LE
//        8     4  to host id, int32 LE
//       12     1  flags (bit 0: traversed an expensive link)
//       13     1  kind length K (metrics label, <= kMaxKind)
//       14     K  kind bytes
//     14+K     8  trace id, uint64 LE
//     22+K     4  payload length P, uint32 LE (<= kMaxPayload)
//     26+K     P  payload bytes (opaque here; see transport::PayloadCodec)
//
// The explicit payload length makes the frame self-delimiting even though
// UDP already frames datagrams: a truncated or padded datagram is detected
// instead of silently mis-parsed, and the same bytes could later travel a
// stream transport unchanged. decode_frame() is total — any malformed
// input returns nullopt, never UB — because datagrams arrive from
// untrusted peers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/message.h"
#include "util/ids.h"

namespace rbcast::transport {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kMaxKind = 32;
// Generous ceiling for one protocol message; real datagrams must also fit
// the socket buffer, this bound just stops a hostile length prefix from
// forcing a huge allocation.
inline constexpr std::size_t kMaxPayload = 1 << 20;

struct Frame {
  HostId from{kNoHost};
  HostId to{kNoHost};
  bool expensive{false};
  std::string kind;
  net::TraceId trace_id{0};
  std::string payload;
};

[[nodiscard]] std::string encode_frame(const Frame& frame);

// nullopt on malformed input: short buffer, bad magic, unknown version,
// oversized kind/payload length, or trailing bytes past the payload.
[[nodiscard]] std::optional<Frame> decode_frame(const char* data,
                                                std::size_t size);

}  // namespace rbcast::transport
