// Datagram frame codec — the transport-level envelope around a payload.
//
// A UDP datagram carries either one version-1 frame or one version-2
// batch container holding several version-1 frames back to back (see
// PROTOCOL.md "Wire format").
//
// Single frame (version 1):
//
//   offset  size  field
//        0     3  magic "RBC"
//        3     1  version (kSingleFrameVersion; receivers drop others)
//        4     4  from host id, int32 LE
//        8     4  to host id, int32 LE
//       12     1  flags (bit 0: traversed an expensive link)
//       13     1  kind length K (metrics label, <= kMaxKind)
//       14     K  kind bytes
//     14+K     8  trace id, uint64 LE
//     22+K     4  payload length P, uint32 LE (<= kMaxPayload)
//     26+K     P  payload bytes (opaque here; see transport::PayloadCodec)
//
// Batch container (version 2, added by the coalescing data plane):
//
//   offset  size  field
//        0     3  magic "RBC"
//        3     1  version (kWireVersion == 2)
//        4     2  frame count N, uint16 LE (>= 1)
//        6     -  N x { frame length L, uint32 LE; L bytes of a complete
//                       version-1 frame, magic and all }
//
// The explicit lengths make both layouts self-delimiting even though UDP
// already frames datagrams: a truncated or padded datagram is detected
// instead of silently mis-parsed, and the same bytes could later travel a
// stream transport unchanged. The decoders are total — any malformed
// input returns nullopt, never UB — because datagrams arrive from
// untrusted peers. A malformed container delivers nothing: no partial
// batches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/ids.h"

namespace rbcast::transport {

// Current protocol version: the batch container. Single frames keep
// emitting (and accepting only) version 1, so pre-batching peers and
// recorded traces stay byte-compatible.
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::uint8_t kSingleFrameVersion = 1;
inline constexpr std::size_t kMaxKind = 32;
// Generous ceiling for one protocol message; real datagrams must also fit
// the socket buffer, this bound just stops a hostile length prefix from
// forcing a huge allocation.
inline constexpr std::size_t kMaxPayload = 1 << 20;
// Container fixed header (magic + version + count) and per-frame length
// prefix — what a batch costs on the wire beyond its frames.
inline constexpr std::size_t kBatchHeaderBytes = 6;
inline constexpr std::size_t kBatchPerFrameBytes = 4;
inline constexpr std::size_t kMaxBatchFrames = 0xffff;

struct Frame {
  HostId from{kNoHost};
  HostId to{kNoHost};
  bool expensive{false};
  std::string kind;
  net::TraceId trace_id{0};
  std::string payload;
};

[[nodiscard]] std::string encode_frame(const Frame& frame);

// nullopt on malformed input: short buffer, bad magic, unknown version,
// oversized kind/payload length, or trailing bytes past the payload.
[[nodiscard]] std::optional<Frame> decode_frame(const char* data,
                                                std::size_t size);

// Wraps already-encoded version-1 frames in a version-2 container.
// Asserts 1 <= count <= kMaxBatchFrames.
[[nodiscard]] std::string encode_batch_container(
    const std::vector<std::string>& encoded_frames);

// Encodes `frames` as one datagram: a bare version-1 frame when there is
// exactly one, a version-2 container otherwise. nullopt when `frames` is
// empty (an empty flush is a no-op, not a datagram) or when the encoded
// datagram would exceed `max_bytes`.
[[nodiscard]] std::optional<std::string> encode_batch(
    const std::vector<Frame>& frames, std::size_t max_bytes);

// The version-aware reader: accepts a bare version-1 frame (vector of
// one) or a version-2 batch container. nullopt on any malformed input —
// bad magic, unknown version, zero frame count, a contained frame that
// fails decode_frame(), truncation, or trailing bytes. Never delivers a
// partial batch.
[[nodiscard]] std::optional<std::vector<Frame>> decode_datagram(
    const char* data, std::size_t size);

}  // namespace rbcast::transport
