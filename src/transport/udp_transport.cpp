#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <any>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "transport/wire.h"
#include "util/assert.h"

namespace rbcast::transport {

struct UdpTransport::PeerState {
  Peer peer;
  sockaddr_in sa{};
};

// The per-host socket + endpoint handed to the protocol instance.
class UdpTransport::Binding final : public net::HostEndpoint {
 public:
  Binding(UdpTransport& owner, HostId host, net::DeliveryFn deliver)
      : owner_(owner), host_(host), deliver_(std::move(deliver)) {
    if (owner.config_coalesce_.enabled()) {
      coalescer = std::make_unique<Coalescer>(
          owner.scheduler_, owner.config_coalesce_,
          [this](HostId to, std::vector<Coalescer::Item> items) {
            owner_.flush_from(*this, to, std::move(items));
          });
    }
  }

  ~Binding() override {
    if (fd >= 0) ::close(fd);
  }

  Binding(const Binding&) = delete;
  Binding& operator=(const Binding&) = delete;

  [[nodiscard]] HostId self() const override { return host_; }

  void send(HostId to, std::any payload, std::size_t bytes, std::string kind,
            net::TraceId trace_id) override {
    owner_.send_from(*this, to, std::move(payload), bytes, std::move(kind),
                     trace_id);
  }

  void deliver(const net::Delivery& d) { deliver_(d); }

  int fd{-1};
  // Present iff Config::coalesce is enabled; frames queue here and go out
  // via UdpTransport::flush_from.
  std::unique_ptr<Coalescer> coalescer;

 private:
  UdpTransport& owner_;
  HostId host_;
  net::DeliveryFn deliver_;
};

namespace {

sockaddr_in resolve(const UdpTransport::Peer& peer) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(peer.port);
  if (inet_pton(AF_INET, peer.addr.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("udp transport: bad peer address '" + peer.addr +
                             "'");
  }
  return sa;
}

}  // namespace

UdpTransport::UdpTransport(util::RealTimeScheduler& scheduler,
                           const PayloadCodec& codec, Config config)
    : scheduler_(scheduler),
      codec_(codec),
      impairment_config_(config.impairment),
      config_coalesce_(config.coalesce) {
  if (impairment_config_.enabled()) {
    impairment_ = std::make_unique<Impairment>(impairment_config_);
  }
  for (const Peer& peer : config.peers) {
    RBCAST_CHECK_ARG(peer.host.valid(), "udp transport: invalid peer host");
    RBCAST_CHECK_ARG(find_peer(peer.host) == nullptr,
                     "udp transport: duplicate peer host");
    auto state = std::make_unique<PeerState>();
    state->peer = peer;
    state->sa = resolve(peer);
    peers_.push_back(std::move(state));
  }
}

UdpTransport::~UdpTransport() {
  for (auto& [host, binding] : bindings_) {
    if (binding->coalescer != nullptr) binding->coalescer->flush_all();
    if (binding->fd >= 0) scheduler_.unwatch_fd(binding->fd);
  }
}

util::Scheduler& UdpTransport::scheduler() { return scheduler_; }

UdpTransport::PeerState* UdpTransport::find_peer(HostId host) {
  for (auto& state : peers_) {
    if (state->peer.host == host) return state.get();
  }
  return nullptr;
}

const UdpTransport::PeerState* UdpTransport::find_peer(HostId host) const {
  for (const auto& state : peers_) {
    if (state->peer.host == host) return state.get();
  }
  return nullptr;
}

bool UdpTransport::known_source(const sockaddr_in& src) const {
  if (src.sin_family != AF_INET) return false;
  for (const auto& state : peers_) {
    // Port 0 means "not yet learned" (set_peer_port fills it in later);
    // such an entry cannot vouch for any sender.
    if (state->peer.port == 0) continue;
    if (state->sa.sin_addr.s_addr == src.sin_addr.s_addr &&
        state->sa.sin_port == src.sin_port) {
      return true;
    }
  }
  return false;
}

net::HostEndpoint& UdpTransport::attach(HostId host, net::DeliveryFn deliver) {
  RBCAST_CHECK_ARG(deliver != nullptr, "udp transport: null delivery fn");
  RBCAST_CHECK_ARG(bindings_.find(host.value) == bindings_.end(),
                   "udp transport: host already attached");
  PeerState* me = find_peer(host);
  if (me == nullptr) {
    throw std::runtime_error("udp transport: host not in the peer table");
  }

  auto binding = std::make_unique<Binding>(*this, host, std::move(deliver));
  binding->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (binding->fd < 0) {
    throw std::runtime_error(std::string("udp transport: socket: ") +
                             std::strerror(errno));
  }
  if (::bind(binding->fd, reinterpret_cast<const sockaddr*>(&me->sa),
             sizeof(me->sa)) != 0) {
    throw std::runtime_error("udp transport: bind " + me->peer.addr + ":" +
                             std::to_string(me->peer.port) + ": " +
                             std::strerror(errno));
  }
  if (me->peer.port == 0) {
    // Ephemeral bind: read the port back and fix up the local peer table
    // so other hosts in this process can address us.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    RBCAST_ASSERT_MSG(
        ::getsockname(binding->fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0,
        "getsockname failed");
    set_peer_port(host, ntohs(bound.sin_port));
  }

  Binding* raw = binding.get();
  scheduler_.watch_fd(raw->fd, [this, raw] { on_readable(*raw); });
  bindings_.emplace(host.value, std::move(binding));
  return *raw;
}

void UdpTransport::detach(HostId host) {
  const auto it = bindings_.find(host.value);
  if (it == bindings_.end()) return;
  if (it->second->coalescer != nullptr) it->second->coalescer->flush_all();
  if (it->second->fd >= 0) scheduler_.unwatch_fd(it->second->fd);
  bindings_.erase(it);
}

std::uint16_t UdpTransport::local_port(HostId host) const {
  const PeerState* state = find_peer(host);
  RBCAST_CHECK_ARG(state != nullptr, "udp transport: unknown host");
  return state->peer.port;
}

void UdpTransport::set_peer_port(HostId host, std::uint16_t port) {
  PeerState* state = find_peer(host);
  RBCAST_CHECK_ARG(state != nullptr, "udp transport: unknown host");
  state->peer.port = port;
  state->sa.sin_port = htons(port);
}

void UdpTransport::send_from(Binding& from, HostId to, std::any payload,
                             std::size_t bytes, std::string kind,
                             net::TraceId trace_id) {
  net::Delivery d;
  d.from = from.self();
  d.to = to;
  d.payload = std::move(payload);
  d.bytes = bytes;
  d.kind = std::move(kind);
  d.sent_at = scheduler_.now();
  d.trace_id = trace_id;
  if (observer_ != nullptr) observer_->on_host_send(d);

  const PeerState* dest = find_peer(to);
  if (dest == nullptr || dest->peer.port == 0) {
    ++stats_.send_errors;
    if (observer_ != nullptr) observer_->on_drop(d, net::DropReason::kNoRoute);
    return;
  }

  Frame frame;
  frame.from = d.from;
  frame.to = to;
  frame.expensive = false;  // a localhost wire has no expensive links
  frame.kind = d.kind;
  frame.trace_id = trace_id;
  if (!codec_.encode(d.payload, frame.payload)) {
    // A payload the codec cannot name is a wiring bug, not a peer's fault.
    RBCAST_ASSERT_MSG(false, "udp transport: unencodable payload");
    return;
  }
  std::string encoded = encode_frame(frame);

  if (from.coalescer != nullptr) {
    Coalescer::Item item;
    item.bytes = encoded.size();
    item.encoded = std::move(encoded);
    item.kind = std::move(d.kind);
    item.trace_id = trace_id;
    from.coalescer->enqueue(to, std::move(item));
    return;
  }

  send_datagram(from, *dest, encoded, /*frames=*/1, &d);
}

void UdpTransport::flush_from(Binding& from, HostId to,
                              std::vector<Coalescer::Item> items) {
  RBCAST_ASSERT(!items.empty());
  const PeerState* dest = find_peer(to);
  if (dest == nullptr || dest->peer.port == 0) {
    stats_.send_errors += items.size();
    return;
  }
  if (items.size() == 1) {
    send_datagram(from, *dest, items.front().encoded, /*frames=*/1);
    return;
  }
  std::vector<std::string> encoded;
  encoded.reserve(items.size());
  for (Coalescer::Item& item : items) encoded.push_back(std::move(item.encoded));
  send_datagram(from, *dest, encode_batch_container(encoded), items.size());
}

void UdpTransport::send_datagram(Binding& from, const PeerState& dest,
                                 const std::string& datagram,
                                 std::size_t frames, const net::Delivery* d) {
  // One impairment draw per datagram — the wire loses datagrams, not
  // frames — but stats count contained frames, so a duplicated batch does
  // not under-report and a dropped one does not hide its cost.
  ImpairmentPlan plan;
  if (impairment_ != nullptr) plan = impairment_->next();
  if (plan.dropped) {
    stats_.impair_drops += frames;
    if (d != nullptr && observer_ != nullptr) {
      observer_->on_drop(*d, net::DropReason::kRandomLoss);
    }
    return;
  }
  if (plan.copies > 1) stats_.impair_duplicates += frames;
  for (int c = 0; c < plan.copies; ++c) {
    const util::Duration delay =
        plan.delay[std::min(c, ImpairmentPlan::kMaxCopies - 1)];
    if (delay <= 0) {
      transmit(from.fd, dest, datagram);
    } else {
      stats_.impair_delays += frames;
      // Copy the destination state: the peer table may be edited before
      // the timer fires.
      scheduler_.after(delay, [this, fd = from.fd, d2 = dest, datagram] {
        transmit(fd, d2, datagram);
      });
    }
  }
}

void UdpTransport::transmit(int fd, const PeerState& dest,
                            const std::string& datagram) {
  const ssize_t n =
      ::sendto(fd, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest.sa), sizeof(dest.sa));
  if (n == static_cast<ssize_t>(datagram.size())) {
    ++stats_.datagrams_sent;
  } else {
    // Fire-and-forget, exactly like the paper's network: a full socket
    // buffer is just another lossy link.
    ++stats_.send_errors;
  }
}

void UdpTransport::on_readable(Binding& binding) {
  char buf[64 * 1024];
  // Drain the socket: poll() is level-triggered but each wakeup costs a
  // loop iteration, so take everything available now.
  while (true) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        recv_fn_ ? recv_fn_(binding.fd, buf, sizeof(buf), &src)
                 : ::recvfrom(binding.fd, buf, sizeof(buf), 0,
                              reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      // A signal mid-call left the datagram in the queue: retry now
      // instead of waiting for the next poll wakeup.
      if (errno == EINTR) continue;
      // Drained — the normal exit of the level-triggered loop.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Anything else is a sick socket (EBADF, ENOTSOCK, ECONNREFUSED
      // from an ICMP error, ...): count it so it is distinguishable from
      // "no data", then let poll decide whether to call us again.
      ++stats_.recv_errors;
      return;
    }
    ++stats_.datagrams_received;
    // Source filter: only configured peer bindings may speak to us. The
    // check runs BEFORE any frame decoding, so an unsolicited sender gets
    // no parser surface at all. (UDP sources are spoofable, so this is
    // hygiene and blast-radius reduction, not authentication — that is
    // the codec-level auth tag's job.)
    if (!known_source(src)) {
      ++stats_.recv_unknown_peer;
      continue;
    }
    auto frames = decode_datagram(buf, static_cast<std::size_t>(n));
    if (!frames.has_value()) {
      ++stats_.frame_decode_errors;
      continue;
    }
    if (frames->size() == 1) {
      // Bare version-1 frame: Delivery::bytes is the datagram size, as it
      // always was.
      deliver_frame(binding, std::move(frames->front()),
                    static_cast<std::size_t>(n));
      continue;
    }
    for (Frame& frame : *frames) {
      // Contained frame: charge what it would have cost standalone
      // (header + kind + payload; see wire.h).
      const std::size_t wire_bytes =
          26 + frame.kind.size() + frame.payload.size();
      deliver_frame(binding, std::move(frame), wire_bytes);
    }
  }
}

void UdpTransport::deliver_frame(Binding& binding, Frame frame,
                                 std::size_t wire_bytes) {
  if (frame.to != binding.self()) {
    ++stats_.misdirected;
    return;
  }
  net::Delivery d;
  d.from = frame.from;
  d.to = frame.to;
  d.expensive = frame.expensive;
  d.bytes = wire_bytes;
  d.kind = std::move(frame.kind);
  d.sent_at = scheduler_.now();  // sender clocks are not comparable
  d.hops = 1;
  d.trace_id = frame.trace_id;
  d.payload = codec_.decode(frame.payload.data(), frame.payload.size());
  if (!d.payload.has_value()) {
    // Malformed body from an untrusted peer: hand the empty payload up
    // so the protocol's own decode_errors counter sees it.
    ++stats_.payload_decode_errors;
  }
  if (observer_ != nullptr) observer_->on_deliver(d);
  binding.deliver(d);
}

Coalescer::Stats UdpTransport::coalescer_stats() const {
  Coalescer::Stats total;
  for (const auto& [host, binding] : bindings_) {
    if (binding->coalescer == nullptr) continue;
    const Coalescer::Stats& s = binding->coalescer->stats();
    total.frames_enqueued += s.frames_enqueued;
    total.batches_flushed += s.batches_flushed;
    total.size_flushes += s.size_flushes;
    total.deadline_flushes += s.deadline_flushes;
  }
  return total;
}

std::size_t UdpTransport::coalescer_pending_frames() const {
  std::size_t n = 0;
  for (const auto& [host, binding] : bindings_) {
    if (binding->coalescer != nullptr) n += binding->coalescer->pending_frames();
  }
  return n;
}

void UdpTransport::register_metrics(util::MetricsRegistry& registry) {
  struct Field {
    const char* name;
    const char* help;
    std::uint64_t Stats::* member;
  };
  // Dotted names here and the coalescer's are THE wire-transport metric
  // schema (DESIGN.md §14): /metrics exposes them via prometheus_name()
  // and sim traces carry them through MetricSampler's "registry" record.
  static constexpr Field kFields[] = {
      {"transport.datagrams_sent", "UDP datagrams sent",
       &Stats::datagrams_sent},
      {"transport.datagrams_received", "UDP datagrams received",
       &Stats::datagrams_received},
      {"transport.frame_decode_errors",
       "Datagrams dropped: garbage, truncation or bad container version",
       &Stats::frame_decode_errors},
      {"transport.payload_decode_errors",
       "Frames whose payload the codec rejected",
       &Stats::payload_decode_errors},
      {"transport.misdirected", "Frames addressed to a different host",
       &Stats::misdirected},
      {"transport.send_errors", "sendto failures and unknown peers",
       &Stats::send_errors},
      {"transport.recv_errors", "Hard recvfrom errors",
       &Stats::recv_errors},
      {"transport.recv_unknown_peer",
       "Datagrams dropped: source is not a configured peer binding",
       &Stats::recv_unknown_peer},
      {"transport.impair_drops", "Frames dropped by the impairment shim",
       &Stats::impair_drops},
      {"transport.impair_duplicates",
       "Frames duplicated by the impairment shim", &Stats::impair_duplicates},
      {"transport.impair_delays", "Frames delayed by the impairment shim",
       &Stats::impair_delays},
  };
  for (const Field& f : kFields) {
    registry.register_counter_fn(f.name, "", f.help,
                                 [this, m = f.member] { return stats_.*m; });
  }
  register_coalescer_metrics(
      registry, [this] { return coalescer_stats(); },
      [this] { return coalescer_pending_frames(); });
}

}  // namespace rbcast::transport
