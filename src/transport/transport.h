// Transport — the backend seam between the protocol layer and a message
// fabric.
//
// The paper's network model (single-destination sends; delivery may lose,
// reorder and duplicate; a cost bit is the only feedback) is implemented
// twice: by the discrete-event simulator (net::Network under
// sim::Simulator) and by real UDP sockets (udp_transport.h under
// util::RealTimeScheduler). This header is the ONLY transport/ file the
// protocol layer may include — rbcast_analyze enforces that core/ never
// names a concrete backend — so a BroadcastHost built against Transport
// runs unmodified in either world.
//
// A Transport owns the wiring for a set of local hosts: attach() binds a
// host's delivery upcall and hands back the endpoint it sends through;
// scheduler() is the clock those hosts must run their timers on.
#pragma once

#include <any>
#include <cstddef>
#include <string>

#include "net/message.h"
#include "util/ids.h"
#include "util/scheduler.h"

namespace rbcast::transport {

// Serializes the protocol payload carried opaquely (std::any) inside
// net::Delivery. Byte-level backends need one, the simulator does not
// (in-process deliveries hand the std::any through untouched). The
// implementation lives ABOVE transport — core/wire_codec.h encodes
// core::ProtocolMessage — and is injected at composition roots, keeping
// this layer ignorant of protocol types.
class PayloadCodec {
 public:
  virtual ~PayloadCodec();

  // Appends the wire encoding of `payload` to `out`; false when the
  // std::any does not hold a type this codec understands.
  virtual bool encode(const std::any& payload, std::string& out) const = 0;

  // Decodes `size` payload bytes. Returns an EMPTY std::any on malformed
  // input — never throws, never UB — so receivers can count and drop.
  [[nodiscard]] virtual std::any decode(const char* data,
                                        std::size_t size) const = 0;
};

class Transport {
 public:
  virtual ~Transport();

  // The clock and timer source hosts attached to this transport must use.
  [[nodiscard]] virtual util::Scheduler& scheduler() = 0;

  // Binds a local host: incoming messages addressed to it invoke
  // `deliver`, and the returned endpoint (owned by the transport, valid
  // until detach() or transport destruction) is what it sends through.
  // One attach per host; the host must detach before its deliver callback
  // dies.
  virtual net::HostEndpoint& attach(HostId host, net::DeliveryFn deliver) = 0;

  virtual void detach(HostId host) = 0;
};

}  // namespace rbcast::transport
