// UdpTransport — the Transport over real nonblocking UDP sockets.
//
// Runs the protocol on the network the paper assumed all along: unreliable
// single-destination datagrams. Each attached host gets its own socket
// (bound to the address the peer table names for it), datagrams carry a
// transport::Frame around a codec-encoded payload, and readiness is driven
// by util::RealTimeScheduler's poll loop — everything stays on one thread,
// so the protocol code runs under exactly the concurrency model the
// simulator gave it.
//
// One UdpTransport can host any subset of the topology: one host per
// process for a real deployment (rbcast_node), or all of them in one
// process for the localhost integration test. The seeded impairment shim
// (impairment.h) applies loss/duplication/reordering at send time, so
// tests get the paper's failure model without `tc`.
//
// Untrusted input: every incoming datagram is decoded defensively. Frame-
// level garbage is counted in Stats and dropped here; a valid frame whose
// payload fails the codec is delivered with an EMPTY std::any so the
// protocol layer can count it (BroadcastHost::Counters::decode_errors)
// and drop it.
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "net/message.h"
#include "transport/coalescer.h"
#include "transport/impairment.h"
#include "transport/wire.h"
#include "transport/transport.h"
#include "util/ids.h"
#include "util/metrics_registry.h"
#include "util/real_time_scheduler.h"

namespace rbcast::transport {

class UdpTransport final : public Transport {
 public:
  // Where each host of the topology listens. Port 0 (test convenience)
  // binds an ephemeral port at attach(); local_port() reads the result
  // back, and the local peer table is updated automatically.
  struct Peer {
    HostId host{kNoHost};
    std::string addr{"127.0.0.1"};
    std::uint16_t port{0};
  };

  struct Config {
    std::vector<Peer> peers;
    ImpairmentConfig impairment{};
    // Per-destination outbound batching; disabled (flush_delay 0) sends
    // every frame as its own version-1 datagram, exactly as before.
    CoalescerConfig coalesce{};
  };

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t datagrams_received{0};
    std::uint64_t frame_decode_errors{0};   // garbage/truncated/bad version
    std::uint64_t payload_decode_errors{0}; // frame ok, codec rejected body
    std::uint64_t misdirected{0};           // frame.to is not the socket owner
    std::uint64_t send_errors{0};           // unknown peer or sendto failure
    // Hard recvfrom errors (not EAGAIN/EWOULDBLOCK, not EINTR): counted
    // so a sick socket is distinguishable from a drained one.
    std::uint64_t recv_errors{0};
    // Datagrams whose source (address, port) matches no configured peer
    // binding: dropped before any decoding — an unsolicited sender gets
    // no parser surface at all, only this counter.
    std::uint64_t recv_unknown_peer{0};
    // Impairment stats count CONTAINED FRAMES, not datagrams: dropping a
    // batch of 5 loses 5 frames, and the sim-vs-real comparison reasons
    // about frames. (With batching off the two units coincide.)
    std::uint64_t impair_drops{0};
    std::uint64_t impair_duplicates{0};
    std::uint64_t impair_delays{0};
  };

  // `scheduler` and `codec` must outlive this object.
  UdpTransport(util::RealTimeScheduler& scheduler, const PayloadCodec& codec,
               Config config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] util::Scheduler& scheduler() override;

  // Opens and binds this host's socket; throws std::runtime_error when the
  // host is not in the peer table or the bind fails.
  net::HostEndpoint& attach(HostId host, net::DeliveryFn deliver) override;

  void detach(HostId host) override;

  // The port `host`'s socket actually bound (resolves port-0 configs).
  [[nodiscard]] std::uint16_t local_port(HostId host) const;

  // Updates where datagrams for `host` are sent (multi-process setups
  // learning ephemeral ports out of band).
  void set_peer_port(HostId host, std::uint16_t port);

  // Observes send/deliver/drop exactly like net::Network's observer hook,
  // so trace::NetTap gives real runs the same JSONL schema as simulated
  // ones (nullptr to remove).
  void set_observer(net::NetObserver* observer) { observer_ = observer; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Aggregate coalescer stats over attached hosts (zeros when batching is
  // off).
  [[nodiscard]] Coalescer::Stats coalescer_stats() const;

  // Frames currently queued across all hosts' coalescers (0 when batching
  // is off) — the admin plane's queue-depth gauge.
  [[nodiscard]] std::size_t coalescer_pending_frames() const;

  // Registers every Stats field plus the shared transport.coalescer.*
  // series into `registry` as callback-backed instruments. The transport
  // must outlive any snapshot taken from `registry`.
  void register_metrics(util::MetricsRegistry& registry);

  // Test seam for the receive loop: replaces ::recvfrom so regression
  // tests can inject EINTR, EAGAIN, hard errno values and spoofed source
  // addresses. The callable must behave like recvfrom(fd, buf, len, 0,
  // (sockaddr*)src, ...): return the datagram size (filling `src` with
  // the claimed sender, which the unknown-peer filter then judges), or -1
  // with errno set. A callable that leaves `src` untouched simulates an
  // unconfigured sender (the struct arrives zeroed).
  using RecvFn = std::function<ssize_t(int fd, void* buf, std::size_t len,
                                       sockaddr_in* src)>;
  void set_recv_fn_for_test(RecvFn fn) { recv_fn_ = std::move(fn); }

 private:
  class Binding;
  struct PeerState;

  void send_from(Binding& from, HostId to, std::any payload,
                 std::size_t bytes, std::string kind, net::TraceId trace_id);
  // Coalescer flush: materialises one datagram from `items`, draws the
  // impairment plan once for it, and counts impairment per contained frame.
  void flush_from(Binding& from, HostId to,
                  std::vector<Coalescer::Item> items);
  // `frames` is the contained-frame count for impairment accounting; `d`
  // (unbatched path only) lets the observer see impairment drops.
  void send_datagram(Binding& from, const PeerState& dest,
                     const std::string& datagram, std::size_t frames,
                     const net::Delivery* d = nullptr);
  void transmit(int fd, const PeerState& dest, const std::string& datagram);
  void on_readable(Binding& binding);
  void deliver_frame(Binding& binding, Frame frame, std::size_t wire_bytes);
  [[nodiscard]] PeerState* find_peer(HostId host);
  [[nodiscard]] const PeerState* find_peer(HostId host) const;
  // True when `src` matches a configured peer binding with a known port.
  [[nodiscard]] bool known_source(const sockaddr_in& src) const;

  util::RealTimeScheduler& scheduler_;
  const PayloadCodec& codec_;
  ImpairmentConfig impairment_config_;
  CoalescerConfig config_coalesce_;
  std::unique_ptr<Impairment> impairment_;  // null when not enabled
  net::NetObserver* observer_{nullptr};
  std::vector<std::unique_ptr<PeerState>> peers_;
  // Ordered by host id so shutdown order is deterministic.
  std::map<std::int32_t, std::unique_ptr<Binding>> bindings_;
  Stats stats_;
  RecvFn recv_fn_;  // test-only recvfrom replacement; empty in production
};

}  // namespace rbcast::transport
