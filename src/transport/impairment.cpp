#include "transport/impairment.h"

namespace rbcast::transport {

ImpairmentPlan Impairment::next() {
  ImpairmentPlan plan;
  if (rng_.chance(config_.loss)) {
    plan.dropped = true;
    return plan;
  }
  if (rng_.chance(config_.duplicate)) plan.copies = 2;
  for (int c = 0; c < plan.copies; ++c) {
    if (rng_.chance(config_.reorder)) {
      plan.delay[c] = rng_.uniform_int(1, config_.delay_max);
    }
  }
  return plan;
}

}  // namespace rbcast::transport
