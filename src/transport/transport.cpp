#include "transport/transport.h"

namespace rbcast::transport {

// Out-of-line key functions: one vtable/RTTI anchor per interface instead
// of one per translation unit.
PayloadCodec::~PayloadCodec() = default;
Transport::~Transport() = default;

}  // namespace rbcast::transport
