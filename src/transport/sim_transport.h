// SimTransport — the Transport over the discrete-event simulator.
//
// With batching off (the default CoalescerConfig) this is a pure
// forwarding adapter: attach() is exactly the Network::register_host +
// Network::endpoint pair every composition root used to call by hand, and
// scheduler() is the simulator itself. No state, no extra events, no RNG
// draws — a run wired through SimTransport is bit-for-bit identical (same
// EventLog::digest()) to one wired directly, which is what the
// determinism gate holds this adapter to.
//
// With batching on, each attached host sends through a
// transport::Coalescer: frames to the same destination ride one network
// message (kind "batch", charged the version-2 container byte count), and
// the receive side unpacks the batch into per-frame deliveries before the
// host sees them. The simulator never serializes payloads, so a SimBatch
// carries the queued std::any payloads through in-process — the byte
// accounting matches what UdpTransport would put on a real wire.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/coalescer.h"
#include "transport/transport.h"

namespace rbcast::transport {

// The in-process stand-in for a version-2 batch container: what a batched
// SimTransport send carries inside Delivery::payload.
struct SimBatch {
  std::vector<Coalescer::Item> items;
};

class SimTransport final : public Transport {
 public:
  // Both references must outlive this object (and any attached host).
  // `coalesce` defaults to disabled, which keeps the zero-overhead
  // forwarding path.
  // Out of line: BatchingEndpoint is an incomplete type here.
  SimTransport(sim::Simulator& simulator, net::Network& network,
               CoalescerConfig coalesce = {});
  ~SimTransport() override;

  [[nodiscard]] util::Scheduler& scheduler() override { return simulator_; }

  net::HostEndpoint& attach(HostId host, net::DeliveryFn deliver) override;

  // Network keeps registrations for its whole lifetime; detaching just
  // disconnects the upcall (and flushes any frames still coalescing) so a
  // destroyed host is never called back.
  void detach(HostId host) override;

  [[nodiscard]] bool batching() const { return coalesce_.enabled(); }

  // Aggregate coalescer stats over all attached hosts (zeros when
  // batching is off).
  [[nodiscard]] Coalescer::Stats coalescer_stats() const;

  // Frames currently queued across all hosts' coalescers (0 when batching
  // is off).
  [[nodiscard]] std::size_t coalescer_pending_frames() const;

  // Registers the shared transport.coalescer.* series (same names as
  // UdpTransport::register_metrics) so sim traces carry wire-transport
  // stats through MetricSampler's "registry" record. Reading a snapshot
  // touches only deterministic simulation state.
  void register_metrics(util::MetricsRegistry& registry);

 private:
  class BatchingEndpoint;

  sim::Simulator& simulator_;
  net::Network& network_;
  CoalescerConfig coalesce_;
  // Batched endpoints outlive detach(): a host destructor may still hold
  // the reference while tearing down. Ordered for deterministic teardown.
  std::map<HostId::value_type, std::unique_ptr<BatchingEndpoint>> endpoints_;
};

}  // namespace rbcast::transport
