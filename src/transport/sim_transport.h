// SimTransport — the Transport over the discrete-event simulator.
//
// A pure forwarding adapter: attach() is exactly the
// Network::register_host + Network::endpoint pair every composition root
// used to call by hand, and scheduler() is the simulator itself. No state,
// no extra events, no RNG draws — a run wired through SimTransport is
// bit-for-bit identical (same EventLog::digest()) to one wired directly,
// which is what the determinism gate holds this adapter to.
#pragma once

#include "net/network.h"
#include "sim/simulator.h"
#include "transport/transport.h"

namespace rbcast::transport {

class SimTransport final : public Transport {
 public:
  // Both references must outlive this object (and any attached host).
  SimTransport(sim::Simulator& simulator, net::Network& network)
      : simulator_(simulator), network_(network) {}

  [[nodiscard]] util::Scheduler& scheduler() override { return simulator_; }

  net::HostEndpoint& attach(HostId host, net::DeliveryFn deliver) override;

  // Network keeps registrations for its whole lifetime; detaching just
  // disconnects the upcall so a destroyed host is never called back.
  void detach(HostId host) override;

 private:
  sim::Simulator& simulator_;
  net::Network& network_;
};

}  // namespace rbcast::transport
