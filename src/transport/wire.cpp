#include "transport/wire.h"

#include <cstring>

#include "util/assert.h"

namespace rbcast::transport {

namespace {

constexpr char kMagic[3] = {'R', 'B', 'C'};

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked little-endian reads over the datagram.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool take_u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  [[nodiscard]] bool take_u16(std::uint16_t& v) {
    if (pos_ + 2 > size_) return false;
    v = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]) |
        (static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_ + 1]))
         << 8));
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool take_u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool take_u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool take_bytes(std::string& out, std::size_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace

std::string encode_frame(const Frame& frame) {
  RBCAST_ASSERT_MSG(frame.kind.size() <= kMaxKind, "frame kind too long");
  RBCAST_ASSERT_MSG(frame.payload.size() <= kMaxPayload,
                    "frame payload too large");
  std::string out;
  out.reserve(26 + frame.kind.size() + frame.payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u8(out, kSingleFrameVersion);
  put_u32(out, static_cast<std::uint32_t>(frame.from.value));
  put_u32(out, static_cast<std::uint32_t>(frame.to.value));
  put_u8(out, frame.expensive ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(frame.kind.size()));
  out.append(frame.kind);
  put_u64(out, frame.trace_id);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

std::optional<Frame> decode_frame(const char* data, std::size_t size) {
  if (size < 4 || std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  if (static_cast<std::uint8_t>(data[3]) != kSingleFrameVersion) {
    return std::nullopt;
  }
  Reader r(data + 4, size - 4);

  Frame f;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint8_t flags = 0;
  std::uint8_t kind_len = 0;
  if (!r.take_u32(from) || !r.take_u32(to) || !r.take_u8(flags) ||
      !r.take_u8(kind_len)) {
    return std::nullopt;
  }
  f.from = HostId{static_cast<HostId::value_type>(from)};
  f.to = HostId{static_cast<HostId::value_type>(to)};
  if ((flags & ~std::uint8_t{1}) != 0) return std::nullopt;
  f.expensive = (flags & 1) != 0;
  if (kind_len > kMaxKind || !r.take_bytes(f.kind, kind_len)) {
    return std::nullopt;
  }
  std::uint32_t payload_len = 0;
  if (!r.take_u64(f.trace_id) || !r.take_u32(payload_len)) {
    return std::nullopt;
  }
  if (payload_len > kMaxPayload || !r.take_bytes(f.payload, payload_len)) {
    return std::nullopt;
  }
  if (r.remaining() != 0) return std::nullopt;  // padded datagram
  return f;
}

std::string encode_batch_container(
    const std::vector<std::string>& encoded_frames) {
  RBCAST_ASSERT_MSG(!encoded_frames.empty(), "empty batch container");
  RBCAST_ASSERT_MSG(encoded_frames.size() <= kMaxBatchFrames,
                    "batch container too large");
  std::size_t total = kBatchHeaderBytes;
  for (const std::string& f : encoded_frames) {
    total += kBatchPerFrameBytes + f.size();
  }
  std::string out;
  out.reserve(total);
  out.append(kMagic, sizeof(kMagic));
  put_u8(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(encoded_frames.size()));
  for (const std::string& f : encoded_frames) {
    put_u32(out, static_cast<std::uint32_t>(f.size()));
    out.append(f);
  }
  return out;
}

std::optional<std::string> encode_batch(const std::vector<Frame>& frames,
                                        std::size_t max_bytes) {
  if (frames.empty() || frames.size() > kMaxBatchFrames) return std::nullopt;
  if (frames.size() == 1) {
    std::string out = encode_frame(frames.front());
    if (out.size() > max_bytes) return std::nullopt;
    return out;
  }
  std::vector<std::string> encoded;
  encoded.reserve(frames.size());
  std::size_t total = kBatchHeaderBytes;
  for (const Frame& f : frames) {
    encoded.push_back(encode_frame(f));
    total += kBatchPerFrameBytes + encoded.back().size();
  }
  if (total > max_bytes) return std::nullopt;
  return encode_batch_container(encoded);
}

std::optional<std::vector<Frame>> decode_datagram(const char* data,
                                                  std::size_t size) {
  if (size < 4 || std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  const auto version = static_cast<std::uint8_t>(data[3]);
  if (version == kSingleFrameVersion) {
    auto f = decode_frame(data, size);
    if (!f) return std::nullopt;
    std::vector<Frame> out;
    out.push_back(*std::move(f));
    return out;
  }
  if (version != kWireVersion) return std::nullopt;

  Reader r(data + 4, size - 4);
  std::uint16_t count = 0;
  if (!r.take_u16(count) || count == 0) return std::nullopt;
  std::vector<Frame> out;
  out.reserve(count);
  std::string bytes;
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!r.take_u32(len)) return std::nullopt;
    // A contained frame is at least an empty-kind, empty-payload frame
    // (26 bytes); the cap mirrors decode_frame's own limits.
    if (len > kBatchPerFrameBytes + 26 + kMaxKind + kMaxPayload) {
      return std::nullopt;
    }
    if (!r.take_bytes(bytes, len)) return std::nullopt;
    auto f = decode_frame(bytes.data(), bytes.size());
    if (!f) return std::nullopt;
    out.push_back(*std::move(f));
  }
  if (r.remaining() != 0) return std::nullopt;  // padded container
  return out;
}

}  // namespace rbcast::transport
