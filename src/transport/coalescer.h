// Coalescer — per-destination outbound frame batching for the data plane.
//
// Both transport backends funnel sends through one of these when batching
// is enabled (Config::batch_flush_delay > 0). Frames queue per destination
// host; a queue flushes as one multi-frame datagram when either
//
//   - adding the next frame would push the encoded datagram past
//     `max_bytes` (size flush: the full queue goes out first, then the new
//     frame starts a fresh one), or
//   - `flush_delay` elapses after the queue's first frame arrived
//     (deadline flush: bounds the latency cost of waiting for company).
//
// The coalescer is backend-agnostic: it never encodes anything itself. An
// Item carries whatever the backend needs to materialise the datagram at
// flush time — the simulator keeps the std::any payload, the UDP backend
// keeps pre-encoded frame bytes — plus the byte count used against the
// size budget. Timers come from the same util::Scheduler the owning
// transport runs on, so simulated batching is as deterministic as
// everything else in the DES.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/ids.h"
#include "util/metrics_registry.h"
#include "util/scheduler.h"

namespace rbcast::transport {

struct CoalescerConfig {
  // 0 disables batching entirely: the owning transport must not construct
  // a Coalescer (enabled() is the gate the backends check).
  util::Duration flush_delay{0};
  // Encoded-datagram budget, container overhead included.
  std::size_t max_bytes{1200};

  [[nodiscard]] bool enabled() const { return flush_delay > 0; }
};

class Coalescer {
 public:
  // One queued frame. `bytes` is the encoded version-1 frame size — what
  // the frame costs inside a batch container before the per-frame length
  // prefix. The backend fills whichever carrier it flushes from.
  struct Item {
    std::any payload;      // sim backend: the in-memory protocol message
    std::string encoded;   // udp backend: encoded version-1 frame bytes
    std::size_t bytes{0};
    std::string kind;
    net::TraceId trace_id{0};
  };

  struct Stats {
    std::uint64_t frames_enqueued{0};
    std::uint64_t batches_flushed{0};
    std::uint64_t size_flushes{0};
    std::uint64_t deadline_flushes{0};
  };

  using FlushFn = std::function<void(HostId to, std::vector<Item> items)>;

  Coalescer(util::Scheduler& scheduler, CoalescerConfig config, FlushFn flush);
  ~Coalescer();

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  // Queues `item` for `to`, size-flushing the existing queue first when the
  // datagram budget would overflow. The first frame in a queue arms the
  // deadline timer.
  void enqueue(HostId to, Item item);

  // Flushes one destination / every destination immediately (shutdown and
  // test hook; counted as deadline flushes in neither case).
  void flush(HostId to);
  void flush_all();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_frames() const;

 private:
  struct Queue {
    std::vector<Item> items;
    std::size_t bytes{0};  // encoded datagram size if flushed now
    util::EventId timer{};
    bool timer_armed{false};
  };

  void do_flush(Queue& q, HostId to);

  util::Scheduler& scheduler_;
  CoalescerConfig config_;
  FlushFn flush_;
  // Ordered by host id so flush_all() walks destinations deterministically.
  std::map<HostId::value_type, Queue> queues_;
  Stats stats_;
};

// Registers the standard transport.coalescer.* series over snapshot
// callbacks. Both backends call this with their own aggregation, so a sim
// run and a real node expose identical coalescer metric names
// (DESIGN.md §14). `stats_fn` must stay callable for the registry's
// lifetime (or until the names are unregistered); `pending_fn` may be
// empty to skip the queue-depth gauge.
void register_coalescer_metrics(util::MetricsRegistry& registry,
                                std::function<Coalescer::Stats()> stats_fn,
                                std::function<std::size_t()> pending_fn = {});

}  // namespace rbcast::transport
