#include "transport/coalescer.h"

#include <utility>

#include "transport/wire.h"
#include "util/assert.h"

namespace rbcast::transport {

Coalescer::Coalescer(util::Scheduler& scheduler, CoalescerConfig config,
                     FlushFn flush)
    : scheduler_(scheduler), config_(config), flush_(std::move(flush)) {
  RBCAST_CHECK_ARG(config_.enabled(), "Coalescer built with batching off");
  RBCAST_CHECK_ARG(config_.max_bytes > kBatchHeaderBytes,
                   "batch_max_bytes leaves no room for frames");
  RBCAST_CHECK_ARG(flush_ != nullptr, "Coalescer: null flush fn");
}

Coalescer::~Coalescer() {
  for (auto& [host, q] : queues_) {
    if (q.timer_armed) scheduler_.cancel(q.timer);
  }
}

void Coalescer::enqueue(HostId to, Item item) {
  RBCAST_CHECK_ARG(to.valid(), "Coalescer::enqueue: bad destination");
  Queue& q = queues_[to.value];
  const std::size_t cost = kBatchPerFrameBytes + item.bytes;
  // An empty queue costs the container header once its first frame lands.
  // A frame that cannot fit even alone still goes out (as an oversized
  // singleton datagram) rather than sticking in the queue forever.
  if (!q.items.empty() &&
      q.bytes + cost > config_.max_bytes) {
    ++stats_.size_flushes;
    do_flush(q, to);
  }
  if (q.items.empty()) {
    q.bytes = kBatchHeaderBytes;
    q.timer = scheduler_.after(config_.flush_delay, [this, to] {
      auto it = queues_.find(to.value);
      if (it == queues_.end() || it->second.items.empty()) return;
      it->second.timer_armed = false;
      ++stats_.deadline_flushes;
      do_flush(it->second, to);
    });
    q.timer_armed = true;
  }
  q.bytes += cost;
  q.items.push_back(std::move(item));
  ++stats_.frames_enqueued;
  if (q.items.size() >= kMaxBatchFrames) {
    ++stats_.size_flushes;
    do_flush(q, to);
  }
}

void Coalescer::flush(HostId to) {
  auto it = queues_.find(to.value);
  if (it == queues_.end() || it->second.items.empty()) return;
  do_flush(it->second, to);
}

void Coalescer::flush_all() {
  for (auto& [host, q] : queues_) {
    if (!q.items.empty()) do_flush(q, HostId{host});
  }
}

std::size_t Coalescer::pending_frames() const {
  std::size_t n = 0;
  for (const auto& [host, q] : queues_) n += q.items.size();
  return n;
}

void Coalescer::do_flush(Queue& q, HostId to) {
  if (q.timer_armed) {
    scheduler_.cancel(q.timer);
    q.timer_armed = false;
  }
  std::vector<Item> items;
  items.swap(q.items);
  q.bytes = 0;
  ++stats_.batches_flushed;
  // Flush after clearing the queue: the callback may re-enter enqueue().
  flush_(to, std::move(items));
}

void register_coalescer_metrics(util::MetricsRegistry& registry,
                                std::function<Coalescer::Stats()> stats_fn,
                                std::function<std::size_t()> pending_fn) {
  registry.register_counter_fn(
      "transport.coalescer.frames_enqueued", "",
      "Frames queued for outbound batching",
      [stats_fn] { return stats_fn().frames_enqueued; });
  registry.register_counter_fn(
      "transport.coalescer.batches_flushed", "",
      "Batch datagrams materialised (size, deadline and shutdown flushes)",
      [stats_fn] { return stats_fn().batches_flushed; });
  registry.register_counter_fn(
      "transport.coalescer.size_flushes", "",
      "Flushes forced by the datagram byte budget",
      [stats_fn] { return stats_fn().size_flushes; });
  registry.register_counter_fn(
      "transport.coalescer.deadline_flushes", "",
      "Flushes forced by the flush-delay deadline",
      [stats_fn] { return stats_fn().deadline_flushes; });
  if (pending_fn) {
    registry.register_gauge_fn(
        "transport.coalescer.pending_frames", "",
        "Frames currently queued awaiting a flush", [pending_fn] {
          return static_cast<double>(pending_fn());
        });
  }
}

}  // namespace rbcast::transport
