// Virtual time — re-exported from util/time.h.
//
// The definitions moved to src/util/time.h so that src/core can reference
// time without an include edge into sim/ (the layer DAG enforced by
// rbcast_analyze forbids core → sim; see DESIGN.md §11). Simulation-side
// code keeps spelling the names rbcast::sim::TimePoint etc.; they are the
// same types.
#pragma once

#include "util/time.h"

namespace rbcast::sim {

using util::Duration;
using util::TimePoint;

using util::from_seconds;
using util::microseconds;
using util::milliseconds;
using util::seconds;
using util::to_seconds;

}  // namespace rbcast::sim
