// The discrete-event simulation driver.
//
// Single-threaded: one virtual clock, one event queue. Every component of
// the reproduction — links, servers, protocol hosts, fault injectors,
// workload generators — schedules callbacks here. Determinism contract:
// given the same topology, configuration and RNG seed, a run is
// bit-for-bit reproducible.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace rbcast::sim {

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules at an absolute time, which must not be in the past.
  EventId at(TimePoint t, EventQueue::Action action);

  // Schedules `d` ticks from now (d >= 0).
  EventId after(Duration d, EventQueue::Action action);

  // Cancels a pending event; false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs every event with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  // Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  // Runs all pending events to exhaustion (only safe when no component
  // self-reschedules forever; tests use it, full scenarios use run_until).
  void run_to_completion();

  // Fires the single earliest event, if any. Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  TimePoint now_{0};
  EventQueue queue_;
};

// A self-rescheduling periodic activity (the paper's "periodically
// activated" procedures: attachment, INFO exchange, gap filling).
//
// The first firing can be offset (jittered) so that hosts do not act in
// lock-step; after that the task fires every `period` ticks until stopped
// or destroyed. Destroying the task cancels the pending event (RAII).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, Duration period,
               std::function<void()> action);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // Arms the task; the first firing happens `first_delay` from now.
  void start(Duration first_delay);
  void stop();

  [[nodiscard]] bool running() const { return pending_.valid(); }
  [[nodiscard]] Duration period() const { return period_; }

  // Changes the period; takes effect at the next (re)scheduling.
  void set_period(Duration period);

 private:
  void fire();

  Simulator& simulator_;
  Duration period_;
  std::function<void()> action_;
  EventId pending_{};
};

}  // namespace rbcast::sim
