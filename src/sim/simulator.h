// The discrete-event simulation driver.
//
// Single-threaded: one virtual clock, one event queue. Every component of
// the reproduction — links, servers, protocol hosts, fault injectors,
// workload generators — schedules callbacks here. Determinism contract:
// given the same topology, configuration and RNG seed, a run is
// bit-for-bit reproducible.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/scheduler.h"

namespace rbcast::sim {

// Implements util::Scheduler (now/after/cancel) so the protocol layer can
// run on a Simulator without an include edge into sim/. `final` lets calls
// through a concrete Simulator& devirtualize.
class Simulator final : public util::Scheduler {
 public:
  Simulator();
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const override { return now_; }

  // Schedules at an absolute time, which must not be in the past.
  EventId at(TimePoint t, EventQueue::Action action);

  // Schedules `d` ticks from now (d >= 0).
  EventId after(Duration d, EventQueue::Action action) override;

  // Cancels a pending event; false if it already fired.
  bool cancel(EventId id) override { return queue_.cancel(id); }

  // Runs every event with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  // Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  // Runs all pending events to exhaustion (only safe when no component
  // self-reschedules forever; tests use it, full scenarios use run_until).
  void run_to_completion();

  // Fires the single earliest event, if any. Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  TimePoint now_{0};
  EventQueue queue_;
};

// The self-rescheduling periodic activity wrapper moved to
// util/scheduler.h with the Scheduler interface; this alias keeps the
// simulation-side spelling working.
using PeriodicTask = util::PeriodicTask;

}  // namespace rbcast::sim
