#include "sim/simulator.h"

#include "util/assert.h"
#include "util/logging.h"

namespace rbcast::sim {

Simulator::Simulator() {
  util::Logger::instance().set_clock(&now_);
}

Simulator::~Simulator() {
  util::Logger::instance().set_clock(nullptr);
}

EventId Simulator::at(TimePoint t, EventQueue::Action action) {
  RBCAST_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(action));
}

EventId Simulator::after(Duration d, EventQueue::Action action) {
  RBCAST_ASSERT_MSG(d >= 0, "negative delay");
  return queue_.schedule(now_ + d, std::move(action));
}

void Simulator::run_until(TimePoint t) {
  RBCAST_ASSERT_MSG(t >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto fired = queue_.pop();
    RBCAST_PARANOID_ASSERT_MSG(fired.time >= now_,
                               "virtual time ran backwards");
    now_ = fired.time;
    fired.action();
  }
  now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  RBCAST_PARANOID_ASSERT_MSG(fired.time >= now_,
                             "virtual time ran backwards");
  now_ = fired.time;
  fired.action();
  return true;
}

}  // namespace rbcast::sim
