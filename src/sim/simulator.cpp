#include "sim/simulator.h"

#include "util/assert.h"
#include "util/logging.h"

namespace rbcast::sim {

Simulator::Simulator() {
  util::Logger::instance().set_clock(&now_);
}

Simulator::~Simulator() {
  util::Logger::instance().set_clock(nullptr);
}

EventId Simulator::at(TimePoint t, EventQueue::Action action) {
  RBCAST_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(action));
}

EventId Simulator::after(Duration d, EventQueue::Action action) {
  RBCAST_ASSERT_MSG(d >= 0, "negative delay");
  return queue_.schedule(now_ + d, std::move(action));
}

void Simulator::run_until(TimePoint t) {
  RBCAST_ASSERT_MSG(t >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.next_time() <= t) {
    auto fired = queue_.pop();
    RBCAST_PARANOID_ASSERT_MSG(fired.time >= now_,
                               "virtual time ran backwards");
    now_ = fired.time;
    fired.action();
  }
  now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  RBCAST_PARANOID_ASSERT_MSG(fired.time >= now_,
                             "virtual time ran backwards");
  now_ = fired.time;
  fired.action();
  return true;
}

PeriodicTask::PeriodicTask(Simulator& simulator, Duration period,
                           std::function<void()> action)
    : simulator_(simulator), period_(period), action_(std::move(action)) {
  RBCAST_CHECK_ARG(period > 0, "periodic task needs a positive period");
  RBCAST_CHECK_ARG(action_ != nullptr, "periodic task needs an action");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(Duration first_delay) {
  RBCAST_ASSERT_MSG(!pending_.valid(), "task already running");
  RBCAST_ASSERT(first_delay >= 0);
  pending_ = simulator_.after(first_delay, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (pending_.valid()) {
    simulator_.cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTask::set_period(Duration period) {
  RBCAST_CHECK_ARG(period > 0, "periodic task needs a positive period");
  period_ = period;
}

void PeriodicTask::fire() {
  // Reschedule before running the action so the action may stop() us.
  pending_ = simulator_.after(period_, [this] { fire(); });
  action_();
}

}  // namespace rbcast::sim
