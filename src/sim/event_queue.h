// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, insertion sequence). The insertion-sequence
// tie-break makes simultaneous events fire in the order they were
// scheduled, which keeps runs deterministic. Cancellation is lazy: a
// cancelled entry stays in the heap as a tombstone and is skipped on pop,
// which makes cancel O(1) amortized — important because the protocol arms
// and disarms many acknowledgment timeouts.
//
// Tombstones are not allowed to accumulate without bound: when dead
// entries outnumber live ones the heap is compacted (dead entries filtered
// out, heap rebuilt). Rebuilding cannot disturb the firing order because
// the (time, seq) keys of live entries are untouched — the heap is only a
// different arrangement of the same totally ordered set. This keeps a long
// run with heavy timer arm/disarm churn at O(live) memory instead of
// O(total cancellations).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/time.h"
#include "util/scheduler.h"

namespace rbcast::sim {

// Handle type shared with the abstract util::Scheduler interface that
// Simulator implements (the protocol layer holds these without seeing the
// queue).
using EventId = util::EventId;

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `t`. Returns a handle usable with
  // cancel(). Precondition: action is non-null.
  EventId schedule(TimePoint t, Action action);

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled. O(1) amortized (tombstone + periodic compaction).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Heap entries currently allocated, live + tombstones — exposed so tests
  // and benchmarks can assert that compaction bounds tombstone growth.
  [[nodiscard]] std::size_t backing_size() const { return heap_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] TimePoint next_time() const;

  struct Fired {
    TimePoint time;
    Action action;
  };

  // Removes and returns the earliest pending event; only when !empty().
  Fired pop();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;
  void maybe_compact();

  // Min-heap over Entry via std::greater (see operator> above), stored as
  // an explicit vector so compaction can filter and rebuild it in place.
  // Ordered by seq within equal times: iteration order (and thus any
  // derived behavior) must not depend on a hash function — see
  // tools/rbcast_lint.cpp.
  mutable std::vector<Entry> heap_;
  std::map<std::uint64_t, Action> actions_;  // seq -> action (live events)
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace rbcast::sim
