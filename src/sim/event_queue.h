// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, insertion sequence). The insertion-sequence
// tie-break makes simultaneous events fire in the order they were
// scheduled, which keeps runs deterministic. Cancellation is lazy: a
// cancelled entry stays in the heap and is skipped on pop, which makes
// cancel O(1) — important because the protocol arms and disarms many
// acknowledgment timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace rbcast::sim {

struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Schedules `action` at absolute time `t`. Returns a handle usable with
  // cancel(). Precondition: action is non-null.
  EventId schedule(TimePoint t, Action action);

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  // Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] TimePoint next_time() const;

  struct Fired {
    TimePoint time;
    Action action;
  };

  // Removes and returns the earliest pending event; only when !empty().
  Fired pop();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  // Ordered by seq: iteration order (and thus any derived behavior) must
  // not depend on a hash function — see tools/rbcast_lint.cpp.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::map<std::uint64_t, Action> actions_;  // seq -> action
  std::uint64_t next_seq_{1};
  std::size_t live_{0};
};

}  // namespace rbcast::sim
