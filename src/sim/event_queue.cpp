#include "sim/event_queue.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::sim {

namespace {
// Below this size the heap is left alone: compacting tiny heaps would churn
// for no measurable memory win.
constexpr std::size_t kMinCompactSize = 64;
}  // namespace

EventId EventQueue::schedule(TimePoint t, Action action) {
  RBCAST_ASSERT_MSG(action != nullptr, "null event action");
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{t, seq});  // analyze:allow(hot-alloc) amortized heap growth; event pooling is the scale-PR's zero-alloc task
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  actions_.emplace(seq, std::move(action));  // analyze:allow(hot-alloc) node-per-event map; replaced by a slab in the zero-alloc event path work
  ++live_;
  RBCAST_PARANOID_ASSERT(actions_.size() == live_);
  RBCAST_PARANOID_ASSERT(heap_.size() >= live_);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = actions_.find(id.value);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  --live_;
  maybe_compact();
  RBCAST_PARANOID_ASSERT(actions_.size() == live_);
  RBCAST_PARANOID_ASSERT(heap_.size() >= live_);
  return true;
}

void EventQueue::maybe_compact() {
  // Compact once tombstones outnumber live entries. Each compaction is
  // O(heap) but at least half the heap is dead when it runs, so the cost
  // amortizes to O(1) per cancellation.
  if (heap_.size() < kMinCompactSize || heap_.size() - live_ <= live_) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return actions_.find(e.seq) == actions_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  RBCAST_PARANOID_ASSERT(heap_.size() == live_);
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() &&
         actions_.find(heap_.front().seq) == actions_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

TimePoint EventQueue::next_time() const {
  skip_cancelled();
  RBCAST_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  RBCAST_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  auto it = actions_.find(top.seq);
  RBCAST_ASSERT(it != actions_.end());
  Fired fired{top.time, std::move(it->second)};
  actions_.erase(it);
  --live_;
  RBCAST_PARANOID_ASSERT(actions_.size() == live_);
  RBCAST_PARANOID_ASSERT(heap_.size() >= live_);
  return fired;
}

}  // namespace rbcast::sim
