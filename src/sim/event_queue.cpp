#include "sim/event_queue.h"

#include "util/assert.h"

namespace rbcast::sim {

EventId EventQueue::schedule(TimePoint t, Action action) {
  RBCAST_ASSERT_MSG(action != nullptr, "null event action");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq});
  actions_.emplace(seq, std::move(action));
  ++live_;
  RBCAST_PARANOID_ASSERT(actions_.size() == live_);
  RBCAST_PARANOID_ASSERT(heap_.size() >= live_);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = actions_.find(id.value);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  --live_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() &&
         actions_.find(heap_.top().seq) == actions_.end()) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  skip_cancelled();
  RBCAST_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  RBCAST_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.seq);
  RBCAST_ASSERT(it != actions_.end());
  Fired fired{top.time, std::move(it->second)};
  actions_.erase(it);
  --live_;
  RBCAST_PARANOID_ASSERT(actions_.size() == live_);
  return fired;
}

}  // namespace rbcast::sim
