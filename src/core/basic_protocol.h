// The "basic algorithm" the paper compares against (Sections 1 and 5):
// "send a separately addressed copy of [the message] to every host in the
// network and repeat this process until an acknowledgment is received."
//
// Implemented faithfully, including its pathologies the evaluation
// measures: every data message costs one unicast per destination (all
// funneled through the source's server — the congestion claim, E5), lost
// messages are redelivered only by the source (the recovery-locality
// claim, E3), and during a partition the source keeps retransmitting to
// unreachable hosts forever (the wasted-transmissions claim, E4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "net/message.h"
#include "util/scheduler.h"
#include "util/rng.h"
#include "util/seq_set.h"

namespace rbcast::core {

using util::Seq;

struct BasicData {
  Seq seq{0};
  std::string body;
};

struct BasicAck {
  Seq seq{0};
};

using BasicMessage = std::variant<BasicData, BasicAck>;

[[nodiscard]] std::size_t wire_size(const BasicMessage& m);
[[nodiscard]] const char* kind_of(const BasicMessage& m);

struct BasicConfig {
  // How often unacknowledged (host, seq) pairs are retransmitted.
  util::Duration retransmit_period{util::seconds(2)};
  // Retransmissions per round are unbounded by default, like the naive
  // algorithm; a cap can model a politer sender.
  std::size_t retransmit_burst{SIZE_MAX};
};

// The source role of the basic algorithm.
class BasicSource {
 public:
  BasicSource(util::Scheduler& scheduler, net::HostEndpoint& endpoint,
              std::vector<HostId> all_hosts, BasicConfig config,
              util::Rng rng);

  void start();

  // Unicasts `body` to every other host; retransmits until acknowledged.
  Seq broadcast(std::string body);

  // Network upcall (acknowledgments).
  void on_delivery(const net::Delivery& delivery);

  [[nodiscard]] HostId self() const { return endpoint_.self(); }

  // (host, seq) pairs still awaiting acknowledgment.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] bool fully_acked(Seq seq) const;

  struct Counters {
    std::uint64_t first_sends{0};
    std::uint64_t retransmissions{0};
    std::uint64_t acks_received{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void retransmit_round();

  util::Scheduler& scheduler_;
  net::HostEndpoint& endpoint_;
  std::vector<HostId> destinations_;  // all hosts except self
  BasicConfig config_;
  util::Rng rng_;

  Seq next_seq_{1};
  std::map<Seq, std::string> bodies_;
  // unacked_[seq] = destinations that have not acknowledged seq yet.
  std::map<Seq, std::set<HostId>> unacked_;
  Counters counters_;
  std::unique_ptr<util::PeriodicTask> retransmit_task_;
};

// The receiver role: acknowledge everything, deliver each message once.
class BasicReceiver {
 public:
  using AppDeliverFn = std::function<void(Seq, const std::string& body)>;

  BasicReceiver(net::HostEndpoint& endpoint, AppDeliverFn app_deliver = {});

  void on_delivery(const net::Delivery& delivery);

  [[nodiscard]] HostId self() const { return endpoint_.self(); }
  [[nodiscard]] const util::SeqSet& received() const { return received_; }

  struct Counters {
    std::uint64_t deliveries{0};
    std::uint64_t duplicates{0};
    std::uint64_t acks_sent{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  net::HostEndpoint& endpoint_;
  AppDeliverFn app_deliver_;
  util::SeqSet received_;
  Counters counters_;
};

}  // namespace rbcast::core
