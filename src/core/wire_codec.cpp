#include "core/wire_codec.h"

#include "core/messages.h"

namespace rbcast::core {

bool ProtocolCodec::encode(const std::any& payload, std::string& out) const {
  const auto* message = std::any_cast<ProtocolMessage>(&payload);
  if (message == nullptr) return false;
  out.append(encode_message(*message));
  return true;
}

std::any ProtocolCodec::decode(const char* data, std::size_t size) const {
  auto message = decode_message(data, size);
  if (!message.has_value()) return {};
  return std::any{*std::move(message)};
}

}  // namespace rbcast::core
