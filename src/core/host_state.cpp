#include "core/host_state.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

namespace {
const SeqSet kEmptySet{};
}

HostState::HostState(HostId self, std::vector<HostId> all_hosts,
                     HostId source)
    : self_(self), all_hosts_(std::move(all_hosts)), source_(source) {
  RBCAST_CHECK_ARG(self.valid(), "invalid self id");
  RBCAST_CHECK_ARG(
      std::find(all_hosts_.begin(), all_hosts_.end(), self) != all_hosts_.end(),
      "self must be among all_hosts");
  for (HostId h : all_hosts_) {
    source_order_ = std::max(source_order_, h.value + 1);
  }
  // "CLUSTER_i is initialized to {i}, i.e., in the beginning each host
  // assumes that it is in a cluster by itself."
  cluster_.insert(self_);
}

void HostState::check_invariants() const {
#if defined(RBCAST_PARANOID)
  // "CLUSTER_i always contains i"; a host is never its own child; the two
  // parent representations agree; every stored body is recorded in INFO.
  RBCAST_ASSERT(cluster_.contains(self_));
  RBCAST_ASSERT(!children_.contains(self_));
  auto self_view = parent_view_.find(self_);
  RBCAST_ASSERT(self_view == parent_view_.end() ||
                self_view->second == parent_of_self_);
  for (const auto& [seq, body] : bodies_) {
    RBCAST_ASSERT_MSG(info_.contains(seq), "body stored without INFO entry");
  }
#endif
}

bool HostState::record_message(Seq seq, Payload body) {
  if (!info_.insert(seq)) return false;
  bodies_.emplace(seq, std::move(body));
  check_invariants();
  return true;
}

const Payload* HostState::body_of(Seq seq) const {
  auto it = bodies_.find(seq);
  return it != bodies_.end() ? &it->second : nullptr;
}

void HostState::prune(Seq watermark) {
  info_.prune_below(watermark);
  bodies_.erase(bodies_.begin(), bodies_.upper_bound(watermark));
}

Seq HostState::safe_prefix() const {
  Seq prefix = info_.contiguous_prefix();
  for (HostId j : all_hosts_) {
    if (j == self_) continue;
    prefix = std::min(prefix, map(j).contiguous_prefix());
    if (prefix == 0) return 0;
  }
  return prefix;
}

const SeqSet& HostState::map(HostId j) const {
  if (j == self_) return info_;
  auto it = map_.find(j);
  return it != map_.end() ? it->second : kEmptySet;
}

void HostState::learn_info(HostId j, const SeqSet& info) {
  if (j == self_) return;
  map_[j].merge(info);
}

void HostState::learn_has(HostId j, Seq seq) {
  if (j == self_) return;
  map_[j].insert(seq);
}

void HostState::update_cluster_from_cost_bit(HostId j, bool expensive) {
  if (j == self_) return;
  if (expensive) {
    cluster_.erase(j);
  } else {
    cluster_.insert(j);
  }
}

void HostState::set_cluster(std::set<HostId> cluster) {
  cluster_ = std::move(cluster);
  cluster_.insert(self_);
  check_invariants();
}

HostId HostState::parent_of(HostId j) const {
  if (j == self_) return parent_of_self_;
  auto it = parent_view_.find(j);
  return it != parent_view_.end() ? it->second : kNoHost;
}

void HostState::learn_parent(HostId j, HostId parent) {
  if (j == self_) return;
  parent_view_[j] = parent;
  check_invariants();
}

std::vector<HostId> HostState::neighbors() const {
  std::vector<HostId> out(children_.begin(), children_.end());
  if (parent_of_self_.valid() && !children_.contains(parent_of_self_)) {
    out.push_back(parent_of_self_);
  }
  return out;
}

HostState::AncestorWalk HostState::ancestors_of_self() const {
  AncestorWalk walk;
  std::set<HostId> seen{self_};
  HostId cursor = parent_of_self_;
  while (cursor.valid()) {
    if (cursor == self_) {
      walk.cycle = true;
      return walk;
    }
    if (seen.contains(cursor)) {
      // A cycle that does not pass through self (stale views); stop.
      return walk;
    }
    seen.insert(cursor);
    walk.ancestors.push_back(cursor);
    cursor = parent_of(cursor);
  }
  return walk;
}

}  // namespace rbcast::core
