#include "core/ordered_delivery.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

OrderedDeliveryAdapter::OrderedDeliveryAdapter(DownstreamFn downstream)
    : downstream_(std::move(downstream)) {
  RBCAST_CHECK_ARG(downstream_ != nullptr,
                   "ordered delivery needs a downstream callback");
}

void OrderedDeliveryAdapter::on_message(util::Seq seq,
                                        std::string_view body) {
  RBCAST_ASSERT_MSG(seq >= next_, "duplicate delivery from upstream");
  if (seq == next_) {
    downstream_(seq, body);
    ++released_;
    ++next_;
    flush();
    return;
  }
  buffer_.emplace(seq, std::string(body));
  max_buffered_ = std::max(max_buffered_, buffer_.size());
}

void OrderedDeliveryAdapter::flush() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_) {
    downstream_(it->first, it->second);
    ++released_;
    ++next_;
    it = buffer_.erase(it);
  }
}

}  // namespace rbcast::core
