// Per-source authentication for the broadcast data plane.
//
// The paper assumes crash-prone but honest hosts; the Byzantine hardening
// pass (ROADMAP, Bonomi/Farina/Tixeuil arXiv 1811.01770 and Imbs-Raynal
// arXiv 1510.06882 in PAPERS.md) needs the standard authenticated-channel
// defense: every DATA/gap-fill frame carries a payload digest plus a tag
// that binds (source, seq, digest) under a per-source secret. A relay that
// corrupts the body, equivocates (different bodies for one seq), or forges
// a frame for a sequence the source never signed cannot produce a valid
// tag, so receivers reject the frame on arrival and the blast radius of a
// faulty relay collapses to its direct edges.
//
// This is a *model* of unforgeable signatures, not cryptography: the tag
// is a seeded 64-bit mixer (splitmix64 over the bound fields), and the
// experiment contract is that the adversary layer (harness/byzantine.*)
// mutates frames without recomputing tags — exactly the capability split
// the Byzantine reliable-broadcast literature assumes for signed messages.
// Do not reuse outside the simulator/testbed.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/ids.h"
#include "util/seq_set.h"

namespace rbcast::core {

// What a DATA/gap-fill frame carries when Config::auth_enabled.
struct AuthTag {
  std::uint64_t digest{0};  // payload_digest(body)
  std::uint64_t tag{0};     // auth_mac(secret, source, seq, digest)

  friend bool operator==(const AuthTag&, const AuthTag&) = default;
};

// FNV-1a 64-bit over the body bytes. Unkeyed: anyone can recompute it,
// and a receiver uses it to pin the tag to the exact bytes received.
[[nodiscard]] std::uint64_t payload_digest(std::string_view body);

// Keyed tag over (source, seq, digest). Only the source (holder of the
// per-source secret derived from `secret`) can produce it; every receiver
// can verify it — the symmetric stand-in for a signature.
[[nodiscard]] std::uint64_t auth_mac(std::uint64_t secret, HostId source,
                                     util::Seq seq, std::uint64_t digest);

[[nodiscard]] AuthTag make_auth_tag(std::uint64_t secret, HostId source,
                                    util::Seq seq, std::string_view body);

// True iff `t` is exactly what make_auth_tag would produce for this body.
[[nodiscard]] bool verify_auth_tag(std::uint64_t secret, HostId source,
                                   util::Seq seq, std::string_view body,
                                   const AuthTag& t);

}  // namespace rbcast::core
