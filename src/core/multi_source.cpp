#include "core/multi_source.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

void MultiSourceNode::MuxEndpoint::send(HostId to, std::any payload,
                                        std::size_t bytes, std::string kind,
                                        net::TraceId trace_id) {
  auto* inner = std::any_cast<ProtocolMessage>(&payload);
  RBCAST_ASSERT_MSG(inner != nullptr,
                    "mux endpoint expects protocol messages");
  // +4 bytes: the stream-source demux field in the packet header.
  real_.send(to, std::any(MuxMessage{stream_source_, std::move(*inner)}),
             bytes + 4, std::move(kind), trace_id);
}

MultiSourceNode::MultiSourceNode(util::Scheduler& scheduler,
                                 net::HostEndpoint& endpoint,
                                 std::vector<HostId> sources,
                                 std::vector<HostId> all_hosts,
                                 const Config& config,
                                 const util::RngFactory& rngs,
                                 AppDeliverFn app_deliver)
    : endpoint_(endpoint),
      sources_(std::move(sources)),
      app_deliver_(std::move(app_deliver)) {
  RBCAST_CHECK_ARG(!sources_.empty(), "need at least one source");
  for (HostId source : sources_) {
    RBCAST_CHECK_ARG(std::find(all_hosts.begin(), all_hosts.end(), source) !=
                         all_hosts.end(),
                     "every source must be a participating host");
    RBCAST_CHECK_ARG(!instances_.contains(source), "duplicate source");
    auto mux = std::make_unique<MuxEndpoint>(endpoint_, source);
    auto deliver = [this, source](Seq seq, std::string_view body) {
      if (app_deliver_) app_deliver_(source, seq, body);
    };
    auto instance = std::make_unique<BroadcastHost>(
        scheduler, *mux, source, all_hosts, config,
        // Independent jitter stream per (host, stream) pair.
        rngs.stream("msrc.jitter",
                    static_cast<std::int64_t>(endpoint_.self().value) * 4096 +
                        source.value),
        std::move(deliver));
    mux_endpoints_.emplace(source, std::move(mux));
    instances_.emplace(source, std::move(instance));
  }
}

void MultiSourceNode::start() {
  for (auto& [source, instance] : instances_) instance->start();
}

void MultiSourceNode::on_delivery(const net::Delivery& delivery) {
  const auto* mux = std::any_cast<MuxMessage>(&delivery.payload);
  RBCAST_ASSERT_MSG(mux != nullptr,
                    "MultiSourceNode received a foreign payload");
  auto it = instances_.find(mux->stream_source);
  RBCAST_ASSERT_MSG(it != instances_.end(), "unknown stream source");

  net::Delivery unwrapped = delivery;
  unwrapped.payload = std::any(mux->inner);
  if (unwrapped.bytes >= 4) unwrapped.bytes -= 4;
  it->second->on_delivery(unwrapped);
}

Seq MultiSourceNode::broadcast(std::string body) {
  RBCAST_ASSERT_MSG(is_source(),
                    "broadcast() on a host that is not a stream source");
  return instances_.at(self())->broadcast(std::move(body));
}

BroadcastHost& MultiSourceNode::instance(HostId source) {
  auto it = instances_.find(source);
  RBCAST_ASSERT_MSG(it != instances_.end(), "unknown stream source");
  return *it->second;
}

const BroadcastHost& MultiSourceNode::instance(HostId source) const {
  auto it = instances_.find(source);
  RBCAST_ASSERT_MSG(it != instances_.end(), "unknown stream source");
  return *it->second;
}

std::size_t MultiSourceNode::total_deliveries() const {
  std::size_t n = 0;
  for (const auto& [source, instance] : instances_) {
    n += instance->counters().deliveries;
  }
  return n;
}

}  // namespace rbcast::core
